#!/usr/bin/env python3
"""Paper Figure 9: a kernel stack error on the G4 crashes fast.

Reproduces the kjournald() scenario: a corrupted word on the kernel
stack is loaded into a register (the paper's `lwz r11,40(r31)` picking
up the bogus value 1), the next dereference touches an invalid kernel
address, and the DSI handler — after the exception-entry wrapper checks
the stack pointer — reports "kernel access of bad area" within a couple
of thousand cycles.
"""

from repro.injection.collector import CrashDataCollector
from repro.kernel.abi import Syscall
from repro.machine.events import KernelCrash
from repro.machine.machine import Machine, MachineConfig
from repro.ppc.disasm import disassemble_range


def main() -> None:
    machine = Machine("ppc", config=MachineConfig(
        seed=1, dump_loss_probability=0.0))
    collector = CrashDataCollector()
    machine.nic.receiver = collector.receive
    machine.boot()

    image = machine.image
    info = image.functions["kjournald"]
    code = image.text_bytes[info.addr - image.text_base:
                            info.addr - image.text_base + 32]
    print("=== kjournald() prologue (fs subsystem, G4 compile) ===")
    for line in disassemble_range(code, info.addr, 6):
        print("   ", line)

    # Corrupt the journal's running-transaction pointer the way the
    # paper's stack error corrupted the value feeding r11: the loaded
    # pointer becomes the invalid kernel address 1.
    journal = image.globals["the_journal"]
    little = image.little_endian
    machine.cpu.mem.write_u32(journal.addr, 1, little)

    cycles_before = machine.cpu.cycles
    try:
        machine.run_kthread(2)                   # kjournald pass
    except KernelCrash as crash:
        report = crash.report
        print()
        print("=== crash ===")
        print(f"  vector:    {report.vector.name} "
              f"(kernel access of bad area)")
        print(f"  address:   {report.address:#010x} "
              f"(the paper's example faults at 0x0000004d)")
        print(f"  in:        {report.function}() "
              f"[{report.subsystem} subsystem]")
        latency = report.cycles_at_crash - cycles_before
        print(f"  latency:   {latency} cycles "
              f"(paper: 1,592 cycles / 210 instructions)")
        print(f"  dump:      {'delivered' if report.dump_delivered else 'lost'}"
              f" to the remote collector "
              f"({collector.count} records)")
        assert latency < 20_000, "expected a fast G4 crash"
        return
    raise SystemExit("expected kjournald to crash")


if __name__ == "__main__":
    main()
