#!/usr/bin/env python3
"""Paper Figures 7 & 14: a single bit flip regroups P4 instructions.

Demonstrates the variable-length-decode mechanism on real kernel code:
one bit in the epilogue of free_pages_ok() merges `lea -0xc(%ebp),%esp`
with the following `pop %ebx` into one longer instruction, silently
corrupting the stack pointer — the start of the paper's Figure 7 error
propagation from mm/ into net/.
"""

from repro.isa.bits import bit_flip
from repro.kernel.build import build_kernel
from repro.x86.disasm import disassemble_range


def main() -> None:
    image = build_kernel("x86")
    info = image.functions["free_pages_ok"]
    code = image.text_bytes[info.addr - image.text_base:
                            info.addr - image.text_base + info.size]

    # locate the epilogue: lea -0xc(%ebp),%esp = 8d 65 f4
    epilogue = code.find(b"\x8d\x65\xf4")
    assert epilogue >= 0, "epilogue pattern not found"
    addr = info.addr + epilogue

    print("=== free_pages_ok() epilogue, original (mm subsystem) ===")
    for line in disassemble_range(code[epilogue:epilogue + 8], addr, 5):
        print("   ", line)

    # Figure 7's flip: 0x65 -> 0x64 (bit 0 of the ModRM byte) turns the
    # ebp-relative lea into an esp+esi*8 SIB form that swallows the
    # following pop %ebx
    corrupted = bytearray(code[epilogue:epilogue + 8])
    corrupted[1] = bit_flip(corrupted[1], 0, 8)

    print()
    print("=== after one bit flip in the ModRM byte ===")
    for line in disassemble_range(bytes(corrupted), addr, 5):
        print("   ", line)

    print()
    print("The stream re-synchronized: the pop %ebx disappeared into")
    print("the lea's SIB byte, ESP takes a garbage value, and nothing")
    print("detects it — the P4 has no stack-overflow exception.  The")
    print("error propagates until some dereference faults (the paper")
    print("measured 13,116,444 cycles to the crash in alloc_skb()).")


if __name__ == "__main__":
    main()
