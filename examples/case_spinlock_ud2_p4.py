#!/usr/bin/env python3
"""Paper Figure 13: a data error surfaces as Invalid Instruction.

A single bit flip in a spinlock's SPINLOCK_MAGIC word (0xDEAD4EAD, in
the kernel data section) is caught by the spin_lock debug check, which
executes ud2a — so the crash is reported as an *Invalid Instruction*
even though the root cause is a data error.  The paper calls out this
detection scheme as fast but misleading for diagnosis.
"""

from repro.analysis.classify import classify_crash
from repro.injection.outcomes import CrashCauseP4
from repro.isa.bits import bit_flip
from repro.kernel.abi import SPINLOCK_MAGIC, Syscall
from repro.machine.events import KernelCrash
from repro.machine.machine import Machine, MachineConfig


def main() -> None:
    machine = Machine("x86", config=MachineConfig(
        seed=3, dump_loss_probability=0.0))
    machine.boot()

    image = machine.image
    lock = image.globals["pipe_lock"]
    magic_offset = image.field("spinlock_t", "magic").offset
    magic_addr = lock.addr + magic_offset

    original = machine.cpu.mem.read_u32(magic_addr, True)
    assert original == SPINLOCK_MAGIC
    corrupted = bit_flip(original, 22)           # 4E -> 0E, as in Fig 13
    machine.cpu.mem.write_u32(magic_addr, corrupted, True)
    print(f"pipe_lock.magic: {original:#010x} -> {corrupted:#010x} "
          f"(one flipped bit in the kernel data section)")

    machine._switch_to(3)
    task = machine.tasks[3]
    machine.write_user(task, 0, b"ping")
    try:
        machine.syscall(Syscall.PIPE_WRITE, task.user_buf, 4)
    except KernelCrash as crash:
        report = crash.report
        cause = classify_crash(report)
        print()
        print(f"crash vector:  {report.vector.name}")
        print(f"classified as: {cause.value}")
        print(f"in function:   {report.function}()")
        print()
        print("The spin_lock magic check detected the corruption")
        print("quickly — but by executing ud2a, so the crash dump says")
        print("'Invalid Instruction' and hides the data-error origin.")
        assert cause is CrashCauseP4.INVALID_INSTRUCTION
        assert report.function == "spin_lock"
        return
    raise SystemExit("expected the spinlock check to trap")


if __name__ == "__main__":
    main()
