#!/usr/bin/env python3
"""Paper Section 5.2: which system registers actually matter.

Runs a register campaign on both platforms and breaks the outcomes
down *per register* — reproducing the paper's observation that out of
~20 P4 and 99 G4 system registers, only a handful (CR0, FS/GS, ESP,
EIP, EFLAGS on the P4; MSR, SDR1, SPRG2, BATs, HID0 on the G4) ever
produce a crash, while the rest absorb bit flips silently.
"""

from collections import defaultdict

from repro.core import CampaignKind, run_campaign
from repro.injection.outcomes import Outcome


def breakdown(arch: str, count: int) -> None:
    label = "P4" if arch == "x86" else "G4"
    print(f"=== {label}: {count} system-register injections ===")
    outcome = run_campaign(arch, CampaignKind.REGISTER, count=count,
                           seed=13, ops=40)
    per_register = defaultdict(lambda: [0, 0])
    for result in outcome.results:
        bucket = per_register[result.target.name]
        bucket[0] += 1
        if result.outcome.manifested and \
                result.outcome is not Outcome.NOT_MANIFESTED:
            bucket[1] += 1
    manifesting = {name: counts for name, counts in
                   per_register.items() if counts[1]}
    silent = len(per_register) - len(manifesting)
    print(f"  registers hit: {len(per_register)}; "
          f"manifesting: {len(manifesting)}; silent: {silent}")
    for name, (injected, manifested) in sorted(
            manifesting.items(), key=lambda kv: -kv[1][1]):
        print(f"    {name:<12} {manifested}/{injected} manifested")
    print()


def main() -> None:
    breakdown("x86", 220)
    breakdown("ppc", 260)
    print("Paper: only 7 of ~20 P4 registers and 15 of 99 G4 registers")
    print("contributed any crash or hang.")


if __name__ == "__main__":
    main()
