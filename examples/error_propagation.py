#!/usr/bin/env python3
"""Paper Figure 7 (statistically): cross-subsystem error propagation.

Runs code-injection campaigns on both platforms and reports, for every
crash, which subsystem received the error versus which subsystem's
code finally crashed.  The P4 — lacking stack-overflow detection and
re-synchronizing corrupted instruction streams into valid-but-wrong
ones — lets more errors escape their home subsystem before crashing.
"""

from repro.analysis.propagation import (
    code_propagation, propagation_rate, render_propagation,
)
from repro.core import CampaignKind
from repro.injection.campaign import CampaignContext, run_campaign


def main() -> None:
    for arch, label in (("x86", "P4"), ("ppc", "G4")):
        outcome = run_campaign(arch, CampaignKind.CODE, count=120,
                               seed=31, ops=40)
        image = CampaignContext.get(arch, 31, 40).base_machine.image
        edges = code_propagation(outcome.results, image)
        print(f"=== {label} ===")
        print(render_propagation(edges))
        print(f"propagation rate: {propagation_rate(edges):.1f}% of "
              f"crashes escaped their subsystem")
        print()


if __name__ == "__main__":
    main()
