#!/usr/bin/env python3
"""Quickstart: run a miniature version of the paper's full study.

Runs all eight campaigns (stack / system registers / data / code on
both the P4-like and G4-like targets) at a small scale and prints the
paper's Table 5, Table 6, the stack crash-cause figure, and the
cycles-to-crash panels — each with paper-vs-measured columns.

Takes a couple of minutes.  Increase the sizes for tighter statistics.
"""

from repro.core import CampaignKind, Study, StudyConfig


def main() -> None:
    config = StudyConfig(
        seed=42,
        ops=40,
        overrides={
            arch: {
                CampaignKind.STACK: 120,
                CampaignKind.REGISTER: 80,
                CampaignKind.DATA: 400,
                CampaignKind.CODE: 60,
            }
            for arch in ("x86", "ppc")
        },
    )
    study = Study(config)

    for arch in ("x86", "ppc"):
        for kind in (CampaignKind.STACK, CampaignKind.REGISTER,
                     CampaignKind.DATA, CampaignKind.CODE):
            print(f"running {arch} {kind.value} campaign "
                  f"({config.campaign_count(arch, kind)} injections)...")
            study.run_campaign(arch, kind)

    print()
    print(study.render_table("x86"))
    print()
    print(study.render_table("ppc"))
    print()
    print(study.render_figure(6))
    print()
    print(study.render_latency_figure())


if __name__ == "__main__":
    main()
