#!/usr/bin/env python3
"""Paper Section 5.3, quantified: what does a bit flip do to an
instruction on each architecture?

For every instruction in the compiled kernel's hot functions, flip
every bit of its encoding and decode the result:

* on the P4 (variable-length CISC) most flips still decode to *valid*
  instructions — often with a different length, desynchronizing the
  stream (fewer Invalid Instruction crashes, more wild memory
  accesses);
* on the G4 (fixed 32-bit RISC) a large share of flips land in
  unassigned encoding space (Illegal Instruction).
"""

from repro.kernel.build import build_kernel
from repro.ppc import decoder as ppc_decoder
from repro.x86 import decoder as x86_decoder


def x86_stats(image, functions):
    total = valid = length_changed = 0
    for name in functions:
        info = image.functions[name]
        base = info.addr - image.text_base
        for index, addr in enumerate(info.insn_addrs):
            offset = addr - image.text_base
            if index + 1 < len(info.insn_addrs):
                length = info.insn_addrs[index + 1] - addr
            else:
                length = info.addr + info.size - addr
            raw = bytearray(image.text_bytes[offset:offset + 12])
            raw.extend(b"\x00" * 12)
            for bit in range(length * 8):
                mutated = bytearray(raw)
                mutated[bit // 8] ^= 1 << (bit % 8)
                instr = x86_decoder.decode(bytes(mutated), addr)
                total += 1
                if instr.execute is not x86_decoder.exec_invalid:
                    valid += 1
                    if instr.length != length:
                        length_changed += 1
    return total, valid, length_changed


def ppc_stats(image, functions):
    total = valid = 0
    for name in functions:
        info = image.functions[name]
        base = info.addr - image.text_base
        for offset in range(base, base + info.size, 4):
            word = int.from_bytes(
                image.text_bytes[offset:offset + 4], "big")
            for bit in range(32):
                instr = ppc_decoder.decode(word ^ (1 << bit))
                total += 1
                if instr.execute is not ppc_decoder.exec_illegal:
                    valid += 1
    return total, valid


def main() -> None:
    functions = ["memcpy", "getblk", "sys_read", "sys_write",
                 "schedule", "do_syscall", "alloc_skb"]

    x86 = build_kernel("x86")
    total, valid, resync = x86_stats(x86, functions)
    print("=== P4 (variable-length CISC) ===")
    print(f"  bit flips tried:        {total}")
    print(f"  still decode valid:     {valid} "
          f"({100 * valid / total:.1f}%)")
    print(f"  ...with changed length: {resync} "
          f"({100 * resync / total:.1f}%)  <- stream resynchronizes")

    ppc = build_kernel("ppc")
    total_p, valid_p = ppc_stats(ppc, functions)
    print()
    print("=== G4 (fixed 32-bit RISC) ===")
    print(f"  bit flips tried:        {total_p}")
    print(f"  still decode valid:     {valid_p} "
          f"({100 * valid_p / total_p:.1f}%)")
    print(f"  illegal encodings:      {total_p - valid_p} "
          f"({100 * (total_p - valid_p) / total_p:.1f}%)"
          f"  <- Illegal Instruction")
    print()
    print("Paper: code crashes are 24.2% Invalid Instruction on the")
    print("P4 versus 41.5% on the G4; the decode densities above are")
    print("the mechanism.")


if __name__ == "__main__":
    main()
