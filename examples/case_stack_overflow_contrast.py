#!/usr/bin/env python3
"""Paper Sections 5.1/6: the stack-overflow detection contrast.

Corrupt the running kernel's stack pointer identically on both
platforms and watch the two kernels disagree:

* the G4 kernel's exception-entry wrapper checks the stack pointer
  against the task's 8 KiB stack and reports **Stack Overflow**;
* the P4 kernel has no such check — the same corruption propagates and
  surfaces as **Bad Paging** (or is lost entirely when the exception
  handler cannot even push its frame).
"""

from repro.analysis.classify import classify_crash
from repro.kernel.abi import Syscall
from repro.machine.events import KernelCrash
from repro.machine.machine import Machine, MachineConfig


def corrupt_stack_pointer(arch: str):
    machine = Machine(arch, config=MachineConfig(
        seed=9, dump_loss_probability=0.0))
    machine.boot()
    machine._switch_to(3)

    def wreck():
        if arch == "x86":
            machine.cpu.regs[4] ^= 0x00100000    # ESP leaves the stack
        else:
            machine.cpu.gpr[1] ^= 0x00100000     # r1 leaves the stack

    machine.schedule_action(machine.cpu.instret + 200, wreck)
    task = machine.tasks[3]
    machine.write_user(task, 0, bytes(64))
    try:
        fd = machine.syscall(Syscall.OPEN, 1)
        machine.syscall(Syscall.WRITE, fd, task.user_buf, 64)
        machine.syscall(Syscall.GETPID)
    except KernelCrash as crash:
        return crash.report
    raise SystemExit(f"{arch}: expected a crash")


def main() -> None:
    for arch, label in (("ppc", "G4"), ("x86", "P4")):
        report = corrupt_stack_pointer(arch)
        cause = classify_crash(report)
        print(f"=== {label}: identical stack-pointer corruption ===")
        print(f"   raw vector:      {report.vector.name}")
        print(f"   wrapper flagged: {report.stack_out_of_range}")
        print(f"   dump possible:   {not report.dump_failed}")
        print(f"   classified as:   {cause.value}")
        print()

    print("The G4 wrapper turns the corruption into an explicit Stack")
    print("Overflow; the P4 kernel reports a generic memory fault (or")
    print("double-faults with no dump at all), which is why the Stack")
    print("Overflow category exists only in the paper's Table 4.")


if __name__ == "__main__":
    main()
