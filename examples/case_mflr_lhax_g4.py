#!/usr/bin/env python3
"""Paper Figure 15: one bit turns mflr into lhax on the G4.

The paper's sys_read() case: flipping bit 3 of the extended-opcode
field of `mflr r0` (7c 08 02 a6) yields `lhax r0,r8,r0` (7c 08 02 ae) —
still a *valid* instruction, which computes an address from whatever
r8+r0 happen to hold and crashes with "kernel access of bad area" at a
workload-dependent time.
"""

from repro.injection.injector import InjectionRun, RunSpec
from repro.injection.campaign import CampaignContext
from repro.injection.outcomes import CampaignKind, Outcome
from repro.injection.targets import CodeTarget
from repro.ppc.disasm import disassemble_word


def main() -> None:
    word = 0x7C0802A6
    flipped = word ^ 0x8
    print("=== the bit flip, in isolation ===")
    for value in (word, flipped):
        _, text = disassemble_word(value)
        raw = " ".join(f"{b:02x}" for b in value.to_bytes(4, 'big'))
        print(f"   {raw}   {text}")

    # Now do it for real: find an mflr in a hot kernel function and
    # inject exactly that flip through the NFTAPE-style machinery.
    context = CampaignContext.get("ppc", seed=0, ops=40)
    image = context.base_machine.image
    info = image.functions["sys_read"]
    offset = image.text_bytes.find(
        word.to_bytes(4, "big"),
        info.addr - image.text_base,
        info.addr - image.text_base + info.size)
    assert offset >= 0, "sys_read has an mflr in its prologue"
    addr = image.text_base + offset
    # bit 3 of the instruction, in our byte/bit addressing: the low
    # byte of the big-endian word is byte 3, bit 3 of that byte
    target = CodeTarget("sys_read", addr, 4, bit=3 * 8 + 3)

    run = InjectionRun(RunSpec(
        base_machine=context.base_machine,
        base_programs=context.base_programs,
        kind=CampaignKind.CODE, target=target, ops=40, seed=5,
        dump_loss_probability=0.0))
    result = run.execute()

    print()
    print("=== injected through the instruction breakpoint ===")
    print(f"   outcome:  {result.outcome.value}")
    if result.cause is not None:
        print(f"   cause:    {result.cause.value}")
    if result.latency is not None:
        print(f"   latency:  {result.latency} cycles "
              f"(workload-dependent, as the paper notes)")
    print(f"   detail:   {result.detail[:70]}")
    assert result.outcome.manifested


if __name__ == "__main__":
    main()
