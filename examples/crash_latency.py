#!/usr/bin/env python3
"""Paper Figure 16 / Section 6: cycles-to-crash by campaign.

Runs the stack and code campaigns on both platforms and prints the
latency histograms in the paper's buckets, showing the two opposite
trends:

* stack errors crash *fast on the G4* (the exception-entry wrapper)
  and slower on the P4 (no detection, errors propagate);
* code errors crash *fast on the P4* (instruction-stream
  resynchronization fails fast) and slower on the G4 (the corrupted
  instruction takes effect on the function's next invocation, and 32
  GPRs keep wrong values alive longer).
"""

from repro.analysis.latency import BUCKET_LABELS, latency_percentages
from repro.core import CampaignKind, run_campaign


def panel(kind: CampaignKind, counts: dict) -> None:
    print(f"--- latency, {kind.value} campaign ---")
    print(f"{'platform':<10}" + "".join(f"{b:>8}"
                                        for b in BUCKET_LABELS))
    for arch, count in counts.items():
        outcome = run_campaign(arch, kind, count=count, seed=21,
                               ops=40)
        percentages = latency_percentages(outcome.results)
        label = "Pentium" if arch == "x86" else "PPC"
        print(f"{label:<10}" + "".join(
            f"{percentages[bucket]:7.1f}%" for bucket in BUCKET_LABELS))
    print()


def main() -> None:
    panel(CampaignKind.STACK, {"x86": 150, "ppc": 150})
    panel(CampaignKind.CODE, {"x86": 60, "ppc": 60})


if __name__ == "__main__":
    main()
