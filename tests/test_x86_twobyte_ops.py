"""Two-byte (0F xx) opcode semantics: setcc, cmovcc, bit ops, shld."""


from repro.isa.memory import Region
from repro.x86.cpu import X86CPU
from repro.x86.registers import FLAG_CF, FLAG_ZF

TEXT = 0xC0100000
DATA = 0xC0300000
STACK = 0xC0500000


def run_bytes(code: bytes, steps: int, setup=None) -> X86CPU:
    cpu = X86CPU()
    cpu.aspace.map_region(Region(TEXT, 0x1000, "rx", "text"))
    cpu.aspace.map_region(Region(DATA, 0x1000, "rwx", "data"))
    cpu.aspace.map_region(Region(STACK, 0x2000, "rw", "stack"))
    cpu.regs[4] = STACK + 0x2000 - 16
    cpu.mem.write(TEXT, code)
    cpu.eip = TEXT
    if setup:
        setup(cpu)
    for _ in range(steps):
        cpu.step()
    return cpu


class TestSetcc:
    def test_sete_true(self):
        # xor eax,eax ; sete bl
        cpu = run_bytes(b"\x31\xc0\x0f\x94\xc3", 2)
        assert cpu.get_reg(3, 1) == 1

    def test_setne_false(self):
        cpu = run_bytes(b"\x31\xc0\x0f\x95\xc3", 2)
        assert cpu.get_reg(3, 1) == 0

    def test_setb_to_memory(self):
        # stc ; setb [DATA]
        code = b"\xf9\x0f\x92\x05" + DATA.to_bytes(4, "little")
        cpu = run_bytes(code, 2)
        assert cpu.mem.read_u8(DATA) == 1


class TestCmov:
    def test_cmove_taken(self):
        def setup(cpu):
            cpu.regs[1] = 77
        # xor eax,eax (ZF=1) ; cmove eax, ecx
        cpu = run_bytes(b"\x31\xc0\x0f\x44\xc1", 2, setup)
        assert cpu.regs[0] == 77

    def test_cmovne_not_taken(self):
        def setup(cpu):
            cpu.regs[0] = 5
            cpu.regs[1] = 77
        # test eax,eax (ZF=0 since 5) ; cmove eax, ecx -> not taken
        cpu = run_bytes(b"\x85\xc0\x0f\x44\xc1", 2, setup)
        assert cpu.regs[0] == 5


class TestBitOps:
    def test_bt_sets_cf(self):
        def setup(cpu):
            cpu.regs[0] = 0b100
            cpu.regs[1] = 2
        cpu = run_bytes(b"\x0f\xa3\xc8", 1, setup)   # bt eax, ecx
        assert cpu.eflags & FLAG_CF

    def test_bts_sets_bit(self):
        def setup(cpu):
            cpu.regs[0] = 0
            cpu.regs[1] = 7
        cpu = run_bytes(b"\x0f\xab\xc8", 1, setup)   # bts eax, ecx
        assert cpu.regs[0] == 0x80
        assert not cpu.eflags & FLAG_CF

    def test_btr_imm(self):
        def setup(cpu):
            cpu.regs[3] = 0xFF
        cpu = run_bytes(b"\x0f\xba\xf3\x04", 1, setup)  # btr ebx, 4
        assert cpu.regs[3] == 0xEF
        assert cpu.eflags & FLAG_CF

    def test_bsf_bsr(self):
        def setup(cpu):
            cpu.regs[1] = 0x00010800
        cpu = run_bytes(b"\x0f\xbc\xc1\x0f\xbd\xd1", 2, setup)
        assert cpu.regs[0] == 11          # bsf
        assert cpu.regs[2] == 16          # bsr

    def test_bsf_zero_sets_zf(self):
        def setup(cpu):
            cpu.regs[1] = 0
            cpu.regs[0] = 99
        cpu = run_bytes(b"\x0f\xbc\xc1", 1, setup)
        assert cpu.eflags & FLAG_ZF
        assert cpu.regs[0] == 99          # destination unchanged


class TestDoubleShift:
    def test_shld(self):
        def setup(cpu):
            cpu.regs[0] = 0x0000BEEF      # destination
            cpu.regs[1] = 0xDEAD0000      # filler
        # shld eax, ecx, 16
        cpu = run_bytes(b"\x0f\xa4\xc8\x10", 1, setup)
        assert cpu.regs[0] == 0xBEEFDEAD

    def test_shrd(self):
        def setup(cpu):
            cpu.regs[0] = 0xBEEF0000
            cpu.regs[1] = 0x0000DEAD
        cpu = run_bytes(b"\x0f\xac\xc8\x10", 1, setup)
        assert cpu.regs[0] == 0xDEADBEEF


class TestAtomics:
    def test_xadd(self):
        def setup(cpu):
            cpu.regs[0] = 10
            cpu.regs[1] = 3
        cpu = run_bytes(b"\x0f\xc1\xc8", 1, setup)   # xadd eax, ecx
        assert cpu.regs[0] == 13
        assert cpu.regs[1] == 10

    def test_cmpxchg_success(self):
        def setup(cpu):
            cpu.mem.write_u32(DATA, 42, True)
            cpu.regs[0] = 42              # eax matches
            cpu.regs[3] = 99              # replacement
        code = b"\x0f\xb1\x1d" + DATA.to_bytes(4, "little")
        cpu = run_bytes(code, 1, setup)
        assert cpu.mem.read_u32(DATA, True) == 99
        assert cpu.eflags & FLAG_ZF

    def test_cmpxchg_failure_loads_eax(self):
        def setup(cpu):
            cpu.mem.write_u32(DATA, 7, True)
            cpu.regs[0] = 42
            cpu.regs[3] = 99
        code = b"\x0f\xb1\x1d" + DATA.to_bytes(4, "little")
        cpu = run_bytes(code, 1, setup)
        assert cpu.mem.read_u32(DATA, True) == 7
        assert cpu.regs[0] == 7
        assert not cpu.eflags & FLAG_ZF
