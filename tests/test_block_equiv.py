"""Differential equivalence: compiled-block core vs single-step core.

The block compiler (``repro.compile``) promises bit-identical execution:
every architectural fact the step core exposes — registers, flags/CR,
memory contents, instret, cycles, fault identity — must match at every
block boundary and at every exception entry.  This harness enforces the
promise two ways:

* a **lockstep driver** over bare CPUs: the block core executes one
  compiled block, the step core single-steps the same number of
  retired instructions, and the full state (including a memory digest)
  is compared at the boundary — and again after a fault, where the
  block's partial-retirement bookkeeping must equal the step core's;
* **hypothesis-generated instruction streams** fed through the lockstep
  driver for both architectures, so operand patterns nobody thought to
  hand-write (unaligned effective addresses, flag-chaining sequences,
  stack over/underflow, branches splitting blocks) get covered;
* **full kernel workloads** run to several checkpoints under both
  exec modes with all state compared at each checkpoint.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.compile import BlockCache, lookup_block
from repro.isa.memory import Region
from repro.machine.machine import Machine, MachineConfig
from repro.ppc.assembler import PPCAssembler
from repro.ppc.cpu import PPCCPU
from repro.ppc.exceptions import PPCFault
from repro.workload.driver import UnixBenchDriver
from repro.x86.assembler import Mem, X86Assembler
from repro.x86.cpu import X86CPU
from repro.x86.exceptions import X86Fault

TEXT = 0xC0100000
DATA = 0xC0300000
STACK = 0xC0500000

_FAULTS = (X86Fault, PPCFault)


# ---------------------------------------------------------------------------
# state snapshots


def _mem_digest(mem) -> str:
    h = hashlib.sha256()
    for index in sorted(mem._pages):
        h.update(index.to_bytes(4, "little"))
        h.update(mem._pages[index])
    return h.hexdigest()


def _snapshot(arch: str, cpu):
    if arch == "x86":
        return (tuple(cpu.regs), cpu.eflags, cpu.eip, cpu.current_eip,
                cpu.instret, cpu.cycles, cpu.cr0, cpu.cr2,
                cpu.user_mode, cpu.halted, _mem_digest(cpu.mem))
    return (tuple(cpu.gpr), cpu.cr, cpu.xer, cpu.lr, cpu.ctr,
            cpu.pc, cpu.current_pc, cpu.instret, cpu.cycles, cpu.msr,
            tuple(sorted(cpu.spr.items())), _mem_digest(cpu.mem))


def _fault_key(exc):
    if exc is None:
        return None
    if isinstance(exc, X86Fault):
        return ("x86", exc.vector, exc.address, exc.error_code)
    return ("ppc", exc.vector, exc.address, exc.dsisr, exc.program_reason)


# ---------------------------------------------------------------------------
# lockstep driver


def _ppc_halt(asm: PPCAssembler) -> None:
    """PowerPC has no hlt; a self-branch keeps the PC parked (the
    lockstep driver bounds total retirement) instead of letting
    execution run off the end of the emitted words."""
    spin = asm.new_label("spin")
    asm.label(spin)
    asm.b_label(spin)


def _make_cpu(arch: str):
    if arch == "x86":
        cpu = X86CPU()
        cpu.regs[4] = STACK + 0x2000 - 16          # ESP
        cpu.eip = TEXT
    else:
        cpu = PPCCPU()
        cpu.gpr[1] = STACK + 0x2000 - 64
        cpu.pc = TEXT
    cpu.aspace.map_region(Region(TEXT, 0x1000, "rx", "text"))
    cpu.aspace.map_region(Region(DATA, 0x1000, "rwx", "data"))
    cpu.aspace.map_region(Region(STACK, 0x2000, "rw", "stack"))
    return cpu


def run_lockstep(arch: str, code: bytes, max_insns: int):
    """Execute *code* on a block-dispatching CPU and a single-stepping
    twin, asserting bit-identical state at every block boundary and at
    fault entry.  Returns (boundaries, compiled_blocks, fault_key)."""
    step_cpu = _make_cpu(arch)
    block_cpu = _make_cpu(arch)
    for cpu in (step_cpu, block_cpu):
        cpu.mem.write(TEXT, code)
    cache = BlockCache()
    block_cpu._block_cache = cache
    boundaries = 0
    compiled = 0
    while block_cpu.instret < max_insns and not block_cpu.halted:
        addr = (block_cpu.eip if arch == "x86"
                else block_cpu.pc & 0xFFFFFFFC)
        blk = cache.hot.get(addr)
        if blk is None:
            blk = lookup_block(block_cpu, cache, addr, arch, None)
        base = block_cpu.instret
        blk_exc = None
        if blk is not None and blk.fn is not None:
            compiled += 1
            try:
                blk.fn(block_cpu)
            except _FAULTS as exc:
                blk_exc = exc
        else:
            # marker / uncompilable head: fall back to stepping, which
            # is exactly what the machine dispatch loop does
            try:
                block_cpu.step()
            except _FAULTS as exc:
                blk_exc = exc
        retired = block_cpu.instret - base
        # the step twin retires the same count without faulting ...
        for _ in range(retired):
            step_cpu.step()
        step_exc = None
        if blk_exc is not None:
            # ... and its next step must raise the identical fault
            try:
                step_cpu.step()
            except _FAULTS as exc:
                step_exc = exc
            assert step_exc is not None, \
                "block core faulted where step core did not"
        boundaries += 1
        assert _fault_key(blk_exc) == _fault_key(step_exc)
        assert _snapshot(arch, block_cpu) == _snapshot(arch, step_cpu)
        if blk_exc is not None:
            return boundaries, compiled, _fault_key(blk_exc)
        if retired == 0:
            break                       # e.g. halted without retiring
    assert _snapshot(arch, block_cpu) == _snapshot(arch, step_cpu)
    return boundaries, compiled, None


# ---------------------------------------------------------------------------
# directed streams: straight lines, mid-block faults, multiple-ops


class TestDirectedX86:
    def test_straight_line_single_boundary(self):
        asm = X86Assembler()
        asm.mov_r_imm(0, 0x12345678)
        asm.mov_r_imm(1, 3)
        asm.alu_r_rm("add", 0, 1)
        asm.mov_rm_r(Mem(disp=DATA + 0x40), 0)
        asm.mov_r_rm(2, Mem(disp=DATA + 0x40))
        asm.hlt()
        boundaries, compiled, fault = run_lockstep(
            "x86", asm.finish(), 16)
        assert compiled >= 1
        assert fault is None

    def test_mid_block_store_fault(self):
        """A store to an unmapped address in the middle of a compiled
        block: partial retirement and fault identity must match."""
        asm = X86Assembler()
        asm.mov_r_imm(0, 0xAA)
        asm.mov_rm_r(Mem(disp=DATA), 0)
        asm.mov_rm_r(Mem(disp=0x100), 0)       # unmapped -> #PF
        asm.mov_r_imm(1, 0xBB)                 # never retires
        _boundaries, compiled, fault = run_lockstep(
            "x86", asm.finish(), 16)
        assert compiled >= 1
        assert fault is not None and fault[0] == "x86"

    def test_store_to_text_protection_fault(self):
        asm = X86Assembler()
        asm.mov_r_imm(0, 0xCC)
        asm.mov_rm_r(Mem(disp=TEXT), 0)        # text is rx -> fault
        _b, _c, fault = run_lockstep("x86", asm.finish(), 8)
        assert fault is not None

    def test_branches_split_blocks(self):
        asm = X86Assembler()
        asm.mov_r_imm(0, 5)
        loop = asm.new_label("loop")
        asm.label(loop)
        asm.dec_r(0)
        asm.alu_rm_imm("cmp", 0, 0)
        asm.jcc_label("ne", loop)
        asm.hlt()
        boundaries, compiled, fault = run_lockstep(
            "x86", asm.finish(), 64)
        assert boundaries >= 5                  # one per loop iteration
        assert fault is None


class TestDirectedPPC:
    def test_straight_line_single_boundary(self):
        asm = PPCAssembler()
        asm.load_imm32(9, DATA)
        asm.li(3, 1234)
        asm.stw(3, 0x40, 9)
        asm.lwz(4, 0x40, 9)
        asm.add(5, 3, 4)
        _ppc_halt(asm)
        boundaries, compiled, fault = run_lockstep(
            "ppc", asm.finish(), 7)
        assert compiled >= 1
        assert fault is None

    def test_mid_block_store_fault(self):
        asm = PPCAssembler()
        asm.load_imm32(9, 0x100)               # unmapped base
        asm.li(3, 7)
        asm.stw(3, 0, 9)                       # DSI mid-block
        asm.li(4, 8)                           # never retires
        _b, compiled, fault = run_lockstep("ppc", asm.finish(), 8)
        assert compiled >= 1
        assert fault is not None and fault[0] == "ppc"

    def test_lmw_stmw_roundtrip(self):
        """The inlined load/store-multiple emitters against the step
        core's loop implementation."""
        asm = PPCAssembler()
        asm.load_imm32(9, DATA + 0x100)
        for reg in range(26, 32):
            asm.li(reg, reg * 3)
        asm.stmw(26, 0, 9)
        for reg in range(26, 32):
            asm.li(reg, 0)
        asm.lmw(26, 0, 9)
        _ppc_halt(asm)
        boundaries, compiled, fault = run_lockstep(
            "ppc", asm.finish(), 18)
        assert compiled >= 1
        assert fault is None

    def test_lmw_alignment_fault(self):
        asm = PPCAssembler()
        asm.load_imm32(9, DATA + 2)            # misaligned EA
        asm.lmw(28, 0, 9)
        _b, _c, fault = run_lockstep("ppc", asm.finish(), 8)
        assert fault is not None and fault[0] == "ppc"

    def test_stmw_crossing_into_unmapped(self):
        """Store-multiple starting in the data region but running past
        its end: the fault fires partway through the register sweep and
        the partially-updated memory must match the step core's."""
        asm = PPCAssembler()
        asm.load_imm32(9, DATA + 0x1000 - 8)   # room for 2 of 4 words
        asm.stmw(28, 0, 9)
        _b, _c, fault = run_lockstep("ppc", asm.finish(), 8)
        assert fault is not None and fault[0] == "ppc"

    def test_branch_loop(self):
        asm = PPCAssembler()
        asm.li(3, 6)
        loop = asm.new_label("loop")
        asm.label(loop)
        asm.addi(3, 3, -1)
        asm.cmpwi(3, 0)
        asm.bne(loop)
        _ppc_halt(asm)
        boundaries, _compiled, fault = run_lockstep(
            "ppc", asm.finish(), 22)
        assert boundaries >= 6
        assert fault is None


# ---------------------------------------------------------------------------
# hypothesis-generated streams


@st.composite
def x86_programs(draw):
    asm = X86Assembler()
    count = draw(st.integers(min_value=4, max_value=24))
    for _ in range(count):
        kind = draw(st.sampled_from(
            ["imm", "alu", "load", "store", "push", "pop", "shift",
             "incdec", "neg", "imul", "test", "movzx", "branch"]))
        r = draw(st.integers(0, 3))
        r2 = draw(st.integers(0, 3))
        off = draw(st.integers(0, 0x3F0))
        if kind == "imm":
            asm.mov_r_imm(r, draw(st.integers(0, 0xFFFFFFFF)))
        elif kind == "alu":
            op = draw(st.sampled_from(
                ["add", "sub", "and", "or", "xor", "cmp", "adc", "sbb"]))
            asm.alu_r_rm(op, r, r2)
        elif kind == "load":
            asm.mov_r_rm(r, Mem(disp=DATA + off),
                         width=draw(st.sampled_from([1, 2, 4])))
        elif kind == "store":
            asm.mov_rm_r(Mem(disp=DATA + off), r,
                         width=draw(st.sampled_from([1, 2, 4])))
        elif kind == "push":
            asm.push_r(r)
        elif kind == "pop":
            asm.pop_r(r)
        elif kind == "shift":
            asm.shift_rm_imm(draw(st.sampled_from(["shl", "shr", "sar"])),
                             r, draw(st.integers(0, 31)))
        elif kind == "incdec":
            (asm.inc_r if draw(st.booleans()) else asm.dec_r)(r)
        elif kind == "neg":
            (asm.neg_rm if draw(st.booleans()) else asm.not_rm)(r)
        elif kind == "imul":
            asm.imul_r_rm(r, r2)
        elif kind == "test":
            asm.test_rm_r(r, r2)
        elif kind == "movzx":
            asm.movzx(r, Mem(disp=DATA + off),
                      draw(st.sampled_from([1, 2])))
        elif kind == "branch":
            skip = asm.new_label()
            asm.alu_r_rm("cmp", r, r2)
            asm.jcc_label(draw(st.sampled_from(["e", "ne", "l", "g"])),
                          skip)
            asm.mov_r_imm(r2, draw(st.integers(0, 0xFFFF)))
            asm.label(skip)
    asm.hlt()
    return asm.finish(), len(asm.insn_offsets)


@st.composite
def ppc_programs(draw):
    asm = PPCAssembler()
    asm.load_imm32(9, DATA)                    # shared memory base
    count = draw(st.integers(min_value=4, max_value=24))
    for _ in range(count):
        kind = draw(st.sampled_from(
            ["imm", "arith", "logic", "shift", "rlwinm", "load",
             "store", "multiple", "cmp", "branch"]))
        r = draw(st.integers(2, 8))
        ra = draw(st.integers(2, 8))
        rb = draw(st.integers(2, 8))
        off = draw(st.integers(0, 0x3F0))
        if kind == "imm":
            asm.load_imm32(r, draw(st.integers(0, 0xFFFFFFFF)))
        elif kind == "arith":
            op = draw(st.sampled_from(
                [asm.add, asm.subf, asm.mullw, asm.divw, asm.divwu]))
            op(r, ra, rb)
        elif kind == "logic":
            op = draw(st.sampled_from(
                [asm.and_, asm.or_, asm.xor_, asm.nor]))
            op(r, ra, rb)
        elif kind == "shift":
            asm.srawi(r, ra, draw(st.integers(0, 31)))
        elif kind == "rlwinm":
            asm.rlwinm(r, ra, draw(st.integers(0, 31)),
                       draw(st.integers(0, 31)), draw(st.integers(0, 31)))
        elif kind == "load":
            op = draw(st.sampled_from([asm.lwz, asm.lbz, asm.lhz]))
            op(r, off, 9)
        elif kind == "store":
            op = draw(st.sampled_from([asm.stw, asm.stb, asm.sth]))
            op(r, off, 9)
        elif kind == "multiple":
            rt = draw(st.integers(26, 31))
            word_off = draw(st.integers(0, 0x100)) * 4
            if draw(st.booleans()):
                asm.stmw(rt, word_off, 9)
            else:
                asm.lmw(rt, word_off, 9)
        elif kind == "cmp":
            asm.cmpwi(r, draw(st.integers(-0x8000, 0x7FFF)))
        elif kind == "branch":
            skip = asm.new_label()
            asm.cmpw(ra, rb)
            (asm.beq if draw(st.booleans()) else asm.bne)(skip)
            asm.li(r, draw(st.integers(-0x8000, 0x7FFF)))
            asm.label(skip)
    _ppc_halt(asm)
    return asm.finish(), len(asm.words)


class TestHypothesisStreams:
    """Random instruction streams must retire identically on both
    cores — including any fault they happen to trip (stack underflow,
    running off the end of the emitted code, ...)."""

    @settings(max_examples=40, deadline=None)
    @given(program=x86_programs())
    def test_x86_streams(self, program):
        code, insns = program
        run_lockstep("x86", code, insns + 8)

    @settings(max_examples=40, deadline=None)
    @given(program=ppc_programs())
    def test_ppc_streams(self, program):
        code, insns = program
        run_lockstep("ppc", code, insns + 8)


# ---------------------------------------------------------------------------
# full kernel workloads


class TestKernelWorkload:
    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_workload_checkpoints_bit_identical(self, arch):
        """Boot + scheduler + syscalls + watchdog under both exec
        modes, compared at four checkpoints (after setup and after 8,
        16 and 24 user operations)."""
        checkpoints = {}
        for mode in ("step", "block"):
            machine = Machine(arch, config=MachineConfig(exec_mode=mode))
            machine.boot()
            driver = UnixBenchDriver(machine, seed=11)
            driver.setup()
            snaps = [_snapshot(arch, machine.cpu)]
            for target in (8, 16, 24):
                driver.run(target)
                snaps.append(_snapshot(arch, machine.cpu))
            if mode == "block":
                cache = machine.cpu._block_cache
                assert cache is not None and cache.hot, \
                    "block machine never compiled anything"
            checkpoints[mode] = snaps
        assert checkpoints["step"] == checkpoints["block"]

    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_forked_machine_inherits_equivalence(self, arch):
        """A fork taken after warmup must also match: the inherited
        warm block tier re-validates before running."""
        finals = {}
        for mode in ("step", "block"):
            base = Machine(arch, config=MachineConfig(exec_mode=mode))
            base.boot()
            warm = UnixBenchDriver(base, seed=3)
            warm.setup()
            warm.run(6)
            clone = base.fork()
            driver = UnixBenchDriver(clone, seed=5)
            driver.setup()
            driver.run(10)
            finals[mode] = _snapshot(arch, clone.cpu)
        assert finals["step"] == finals["block"]
