"""Differential tests: compiled code vs the reference interpreter.

Each program is compiled for both architectures, executed on the
corresponding simulated CPU, and compared against the interpreter bound
to the same image (return value AND final data-section bytes).  A
hypothesis-driven generator also produces random arithmetic functions
and checks all three executors agree.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.memory import PhysicalMemory, Region
from repro.kcc import analyze, build_image, parse
from repro.kcc.interp import Interp
from repro.ppc.cpu import PPCCPU
from repro.x86.cpu import X86CPU

STOP = 0xDEAD0000


def run_compiled(image, fname: str, args):
    cpu = X86CPU() if image.arch == "x86" else PPCCPU()
    text_size = (len(image.text_bytes) + 4095) & ~4095
    data_size = (len(image.data_bytes) + 4095) & ~4095
    cpu.aspace.map_region(Region(image.text_base, text_size, "rx", "t"))
    cpu.aspace.map_region(Region(image.data_base, data_size, "rwx", "d"))
    cpu.aspace.map_region(Region(0xC0800000, 0x4000, "rw", "s"))
    cpu.mem.write(image.text_base, image.text_bytes)
    cpu.mem.write(image.data_base, image.data_bytes)
    entry = image.functions[fname].addr
    if image.arch == "x86":
        cpu.regs[4] = 0xC0803F00
        for arg in reversed(args):
            cpu.regs[4] -= 4
            cpu.mem.write_u32(cpu.regs[4], arg & 0xFFFFFFFF, True)
        cpu.regs[4] -= 4
        cpu.mem.write_u32(cpu.regs[4], STOP, True)
        cpu.eip = entry
        for _ in range(300_000):
            if cpu.eip == STOP:
                break
            cpu.step()
        else:
            raise RuntimeError("compiled run did not finish")
        result = cpu.regs[0]
    else:
        cpu.gpr[1] = 0xC0803F00
        for index, arg in enumerate(args):
            cpu.gpr[3 + index] = arg & 0xFFFFFFFF
        cpu.lr = STOP
        cpu.pc = entry
        for _ in range(300_000):
            if cpu.pc == STOP:
                break
            cpu.step()
        else:
            raise RuntimeError("compiled run did not finish")
        result = cpu.gpr[3]
    data = cpu.mem.read(image.data_base, len(image.data_bytes))
    return result, data


def differential(source: str, fname: str, args):
    """Assert interp == compiled on both architectures."""
    program = analyze(parse(source))
    out = {}
    for arch in ("x86", "ppc"):
        image = build_image(program, arch)
        memory = PhysicalMemory()
        memory.write(image.data_base, image.data_bytes)
        expected = Interp(image, memory).call(fname, list(args))
        expected_data = memory.read(image.data_base,
                                    len(image.data_bytes))
        got, got_data = run_compiled(image, fname, args)
        assert got == expected, \
            f"{arch}: compiled={got:#x} interp={expected:#x}"
        assert got_data == expected_data, f"{arch}: data diverged"
        out[arch] = got
    return out


class TestBasics:
    def test_arith(self):
        differential("""
            fn f(a: u32, b: u32) -> u32 {
                return (a + b) * 3 - (a / (b + 1)) + (a % 7)
                       + (a & b) + (a | b) + (a ^ b);
            }
        """, "f", [1234, 77])

    def test_shifts_and_unary(self):
        differential("""
            fn f(a: u32) -> u32 {
                return (a << 3) + (a >> 2) + (~a) + (-a) + (!a);
            }
        """, "f", [0xDEAD])

    def test_comparisons_value_context(self):
        differential("""
            fn f(a: u32, b: u32) -> u32 {
                return (a < b) * 1 + (a <= b) * 2 + (a > b) * 4
                       + (a >= b) * 8 + (a == b) * 16 + (a != b) * 32;
            }
        """, "f", [5, 9])

    def test_short_circuit(self):
        differential("""
            global hits: u32 = 0;
            fn bump() -> u32 { hits = hits + 1; return 1; }
            fn f(a: u32) -> u32 {
                if (a > 10 && bump() == 1) { hits = hits + 100; }
                if (a > 100 || bump() == 1) { hits = hits + 1000; }
                return hits;
            }
        """, "f", [50])

    def test_loops_and_break(self):
        differential("""
            fn f(n: u32) -> u32 {
                var total: u32 = 0;
                var i: u32 = 0;
                while (i < n) {
                    i = i + 1;
                    if (i % 3 == 0) { continue; }
                    if (i > 40) { break; }
                    total = total + i;
                }
                return total;
            }
        """, "f", [100])

    def test_many_locals_spill(self):
        """More locals than register homes on either backend."""
        decls = "\n".join(f"var v{i}: u32 = {i} * n;"
                          for i in range(24))
        total = " + ".join(f"v{i}" for i in range(24))
        differential(f"""
            fn f(n: u32) -> u32 {{
                {decls}
                return {total};
            }}
        """, "f", [3])

    def test_nested_calls(self):
        differential("""
            fn add(a: u32, b: u32) -> u32 { return a + b; }
            fn mul(a: u32, b: u32) -> u32 { return a * b; }
            fn f(x: u32) -> u32 {
                return add(mul(x, add(x, 1)), mul(add(x, 2), x))
                       + add(x, mul(x, x));
            }
        """, "f", [11])

    def test_eight_args(self):
        differential("""
            fn g(a: u32, b: u32, c: u32, d: u32,
                 e: u32, f: u32, g: u32, h: u32) -> u32 {
                return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6
                       + g * 7 + h * 8;
            }
            fn top(x: u32) -> u32 {
                return g(x, x + 1, x + 2, x + 3, x + 4, x + 5,
                         x + 6, x + 7);
            }
        """, "top", [9])

    def test_recursion(self):
        differential("""
            fn fib(n: u32) -> u32 {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
        """, "fib", [12])


class TestDataSemantics:
    def test_struct_fields_all_widths(self):
        differential("""
            struct mixed { b: u8; h: u16; w: u32; p: *mixed; }
            global items: mixed[3];
            fn f() -> u32 {
                var m: *mixed = items[1];
                m.b = 0x1FF;            // truncates to u8 semantics
                m.h = 0x1FFFF;
                m.w = 0xDEADBEEF;
                m.p = items[2];
                return m.b + m.h + (m.w >> 16);
            }
        """, "f", [])

    def test_scalar_global_widths(self):
        differential("""
            global small: u8 = 7;
            global half: u16 = 300;
            global word: u32 = 100000;
            fn f() -> u32 {
                small = small + 250;    // wraps at 8 bits
                half = half + 65530;    // wraps at 16 bits
                word = word + 1;
                return small + half + word;
            }
        """, "f", [])

    def test_arrays(self):
        differential("""
            global bytes_: u8[16];
            global halves: u16[8];
            global words: u32[8];
            fn f() -> u32 {
                var i: u32 = 0;
                while (i < 8) {
                    bytes_[i] = i * 40;
                    halves[i] = i * 10000;
                    words[i] = i * 100000;
                    i = i + 1;
                }
                return bytes_[5] + halves[6] + words[7];
            }
        """, "f", [])

    def test_raw_intrinsics(self):
        differential("""
            global buf: u8[32];
            fn f() -> u32 {
                __store32(&buf + 0, 0x11223344);
                __store16(&buf + 4, 0xAABB);
                __store8(&buf + 6, 0xCC);
                return __load32(&buf + 0) + __load16(&buf + 4)
                       + __load8(&buf + 6);
            }
        """, "f", [])

    def test_indirect_call(self):
        differential("""
            global table: u32[2];
            fn double_(x: u32, b: u32, c: u32) -> u32 { return x * 2; }
            fn triple(x: u32, b: u32, c: u32) -> u32 { return x * 3; }
            fn f(which: u32) -> u32 {
                table[0] = &double_;
                table[1] = &triple;
                return __icall3(table[which], 21, 0, 0);
            }
        """, "f", [1])

    def test_sizeof_differs_by_arch(self):
        source = """
            struct s { a: u8; b: u8; c: u16; d: u32; }
            fn f() -> u32 { return sizeof(s); }
        """
        program = analyze(parse(source))
        x86 = build_image(program, "x86")
        ppc = build_image(program, "ppc")
        assert x86.sizeof("s") == 8           # packed
        assert ppc.sizeof("s") == 16          # word per field


_small = st.integers(min_value=0, max_value=0xFFFF)


class TestPropertyDifferential:
    @settings(max_examples=20, deadline=None)
    @given(a=_small, b=_small, c=_small)
    def test_random_expression_values(self, a, b, c):
        differential("""
            fn f(a: u32, b: u32, c: u32) -> u32 {
                var t: u32 = a * 31 + (b ^ (c << 5));
                if (t % 3 == 0) { t = t + b / (c | 1); }
                while (t > 100000) { t = t - (t >> 3) - 1; }
                return t * 17 + (a & c);
            }
        """, "f", [a, b, c])
