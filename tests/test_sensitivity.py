"""Per-subsystem sensitivity analysis tests."""

from repro.analysis.sensitivity import (
    code_target_sensitivity, crash_site_breakdown, render_sensitivity,
)
from repro.injection.outcomes import CampaignKind, InjectionResult, Outcome
from repro.injection.targets import CodeTarget


def _result(outcome, subsystem="", function="free_pages_ok",
            kind=CampaignKind.CODE):
    target = CodeTarget(function, 0xC0100000, 2, 1)
    return InjectionResult(arch="x86", kind=kind, target=target,
                           outcome=outcome, subsystem=subsystem)


class TestCrashSites:
    def test_counts_known_crashes_only(self):
        results = [
            _result(Outcome.CRASH_KNOWN, "mm"),
            _result(Outcome.CRASH_KNOWN, "mm"),
            _result(Outcome.CRASH_KNOWN, "net"),
            _result(Outcome.CRASH_UNKNOWN, "fs"),
            _result(Outcome.NOT_MANIFESTED),
        ]
        sites = crash_site_breakdown(results)
        assert sites == {"mm": 2, "net": 1}

    def test_outside_text_bucket(self):
        sites = crash_site_breakdown([_result(Outcome.CRASH_KNOWN, "")])
        assert sites == {"(outside kernel text)": 1}


class TestCodeSensitivity:
    def test_per_subsystem_rates(self, x86_image):
        results = [
            _result(Outcome.CRASH_KNOWN, "mm",
                    function="free_pages_ok"),
            _result(Outcome.NOT_MANIFESTED, "",
                    function="free_pages_ok"),
            _result(Outcome.CRASH_KNOWN, "net", function="alloc_skb"),
        ]
        rows = code_target_sensitivity(results, x86_image)
        by_name = {row.subsystem: row for row in rows}
        assert by_name["mm"].injected == 2
        assert by_name["mm"].manifested == 1
        assert by_name["mm"].manifestation_pct == 50.0
        assert by_name["net"].crashes == 1

    def test_render(self, x86_image):
        text = render_sensitivity(
            [_result(Outcome.CRASH_KNOWN, "mm")], x86_image, "test")
        assert "crash sites" in text
        assert "mm" in text

    def test_measured_campaign(self, x86_context):
        from repro.injection.campaign import run_campaign
        outcome = run_campaign("x86", CampaignKind.CODE, count=30,
                               seed=23, ops=36)
        rows = code_target_sensitivity(
            outcome.results, x86_context.base_machine.image)
        assert rows
        assert sum(row.injected for row in rows) == 30
