"""Injection framework tests: targets, mechanics, campaigns."""


from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.injector import InjectionRun, RunSpec
from repro.injection.outcomes import CampaignKind, Outcome
from repro.injection.targets import (
    CodeTarget, DataTarget, RegisterTarget, TargetGenerator,
)


class TestTargetGenerator:
    def test_code_targets_inside_hot_functions(self, x86_context):
        generator = TargetGenerator(x86_context.base_machine.image,
                                    profile=x86_context.profile, seed=1)
        targets = generator.code_targets(50)
        image = x86_context.base_machine.image
        hot = {name for name, _ in
               x86_context.profile.hot_functions(0.99)}
        for target in targets:
            assert target.function in hot
            info = image.functions[target.function]
            assert info.addr <= target.addr < info.addr + info.size
            assert 0 <= target.bit < target.insn_len * 8

    def test_data_targets_inside_data_section(self, ppc_context):
        image = ppc_context.base_machine.image
        generator = TargetGenerator(image, seed=2)
        targets = generator.data_targets(100, (1000, 2000))
        for target in targets:
            assert image.data_base <= target.addr < image.data_end
            assert 1000 <= target.at_instret < 2000
        # the heap (pools) must NOT be sampled
        assert all(not (image.heap_base <= t.addr <
                        image.heap_base + len(image.heap_bytes))
                   for t in targets)

    def test_register_targets_match_catalogue(self, x86_context,
                                              ppc_context):
        for context, arch, count in ((x86_context, "x86", 21),
                                     (ppc_context, "ppc", 99)):
            generator = TargetGenerator(context.base_machine.image,
                                        seed=3)
            targets = generator.register_targets(300, arch, (0, 100))
            names = {target.name for target in targets}
            assert len(names) > count // 3        # decent coverage

    def test_determinism(self, x86_context):
        image = x86_context.base_machine.image
        first = TargetGenerator(image, x86_context.profile,
                                seed=7).code_targets(20)
        second = TargetGenerator(image, x86_context.profile,
                                 seed=7).code_targets(20)
        assert first == second


class TestInjectionMechanics:
    def _spec(self, context, kind, target):
        return RunSpec(base_machine=context.base_machine,
                       base_programs=context.base_programs,
                       kind=kind, target=target, ops=context.ops,
                       seed=11)

    def test_code_breakpoint_activates(self, ppc_context):
        """A breakpoint on do_syscall's first instruction must fire."""
        image = ppc_context.base_machine.image
        info = image.functions["do_syscall"]
        target = CodeTarget("do_syscall", info.insn_addrs[0], 4, bit=33)
        # bit 33 is out of range for insn 0; use a valid one
        target = CodeTarget("do_syscall", info.insn_addrs[0], 4, bit=3)
        run = InjectionRun(self._spec(ppc_context, CampaignKind.CODE,
                                      target))
        result = run.execute()
        assert result.outcome is not Outcome.NOT_ACTIVATED

    def test_unreached_code_not_activated(self, x86_context):
        image = x86_context.base_machine.image
        info = image.functions["task_exit"]       # never called
        target = CodeTarget("task_exit", info.insn_addrs[2], 2, bit=1)
        run = InjectionRun(self._spec(x86_context, CampaignKind.CODE,
                                      target))
        assert run.execute().outcome is Outcome.NOT_ACTIVATED

    def test_data_write_reinjection(self, x86_context):
        """Write-first activation re-injects the error (paper 3.3)."""
        machine = x86_context.base_machine
        addr = machine.global_addr("jiffies")     # written every tick
        target = DataTarget(addr=addr, bit=30,
                            at_instret=x86_context.probe.boot_instret
                            + 100, initialized=True)
        run = InjectionRun(self._spec(x86_context, CampaignKind.DATA,
                                      target))
        result = run.execute()
        assert result.outcome is not Outcome.NOT_ACTIVATED
        # a flipped high bit of jiffies is harmless
        assert result.outcome in (Outcome.NOT_MANIFESTED,
                                  Outcome.FAIL_SILENCE_VIOLATION)

    def test_pointer_data_flip_crashes(self, ppc_context):
        """Flipping a high bit of the hot 'current' pointer is a wild
        dereference."""
        machine = ppc_context.base_machine
        addr = machine.global_addr("current")
        target = DataTarget(addr=addr + 0, bit=5,
                            at_instret=ppc_context.probe.boot_instret
                            + 50, initialized=False)
        run = InjectionRun(self._spec(ppc_context, CampaignKind.DATA,
                                      target))
        result = run.execute()
        assert result.outcome in (Outcome.CRASH_KNOWN,
                                  Outcome.CRASH_UNKNOWN, Outcome.HANG)

    def test_register_flip_msr_machine_checks(self, ppc_context):
        target = RegisterTarget(name="MSR", bit=4, spr=-1,
                                at_instret=ppc_context.probe
                                .boot_instret + 50)
        run = InjectionRun(self._spec(ppc_context,
                                      CampaignKind.REGISTER, target))
        result = run.execute()
        assert result.outcome in (Outcome.CRASH_KNOWN,
                                  Outcome.CRASH_UNKNOWN)

    def test_register_flip_benign_spr(self, ppc_context):
        target = RegisterTarget(name="PMC1", bit=7, spr=953,
                                at_instret=ppc_context.probe
                                .boot_instret + 50)
        run = InjectionRun(self._spec(ppc_context,
                                      CampaignKind.REGISTER, target))
        assert run.execute().outcome is Outcome.NOT_MANIFESTED

    def test_x86_fs_corruption_eventually_gp(self, x86_context):
        """A corrupted FS selector survives until a context-switch
        reload validates it (General Protection)."""
        from repro.injection.outcomes import CrashCauseP4
        target = RegisterTarget(name="FS", bit=6, attr="fs",
                                at_instret=x86_context.probe
                                .boot_instret + 50)
        run = InjectionRun(self._spec(x86_context,
                                      CampaignKind.REGISTER, target))
        result = run.execute()
        if result.outcome is Outcome.CRASH_KNOWN:
            assert result.cause is CrashCauseP4.GENERAL_PROTECTION
            assert result.latency > 100_000       # parked until reload


class TestCampaign:
    def test_campaign_runs_and_screens(self, ppc_context):
        config = CampaignConfig(arch="ppc", kind=CampaignKind.DATA,
                                count=60, seed=5, ops=ppc_context.ops)
        outcome = Campaign(config, ppc_context).run()
        assert outcome.injected == 60
        screened = [r for r in outcome.results if r.screened]
        assert screened, "expected screened not-activated results"
        assert all(r.outcome is Outcome.NOT_ACTIVATED
                   for r in screened)

    def test_campaign_determinism(self, ppc_context):
        config = CampaignConfig(arch="ppc", kind=CampaignKind.STACK,
                                count=25, seed=6, ops=ppc_context.ops)
        first = Campaign(config, ppc_context).run()
        second = Campaign(config, ppc_context).run()
        assert [r.outcome for r in first.results] == \
            [r.outcome for r in second.results]

    def test_progress_callback(self, x86_context):
        seen = []
        config = CampaignConfig(arch="x86", kind=CampaignKind.DATA,
                                count=10, seed=1, ops=x86_context.ops)
        Campaign(config, x86_context).run(
            progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (10, 10)
