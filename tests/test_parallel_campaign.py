"""Serial ≡ parallel equivalence for the sharded campaign engine.

The parallel engine's contract (``repro.injection.parallel``) is that
``workers=N`` is bit-identical to ``workers=1`` for every campaign kind
on both arches: same per-target outcomes, crash causes, cycle counts,
and order.  These tests pin that down, plus the worker-failure
retry/record degradation path and the sharding helper itself.
"""

from __future__ import annotations

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.outcomes import CampaignKind
from repro.injection.parallel import (
    SHARDS_PER_WORKER, run_parallel, shard_targets,
)

#: small but non-trivial campaign sizes (register runs are the most
#: expensive per injection; screened kinds are cheap)
COUNTS = {
    CampaignKind.REGISTER: 10,
    CampaignKind.STACK: 12,
    CampaignKind.DATA: 12,
    CampaignKind.CODE: 8,
}

#: serial baselines, computed once per (arch, kind) across all
#: worker-count parametrizations
_serial_cache: dict = {}


def _config(arch: str, kind: CampaignKind) -> CampaignConfig:
    return CampaignConfig(arch=arch, kind=kind, count=COUNTS[kind],
                          seed=0, ops=36)


def _signature(result):
    """Everything the equivalence guarantee covers, per target."""
    return [(r.target, r.outcome, r.cause, r.screened,
             r.activation_cycles, r.crash_cycles)
            for r in result.results]


def _serial(arch: str, kind: CampaignKind, context):
    key = (arch, kind)
    if key not in _serial_cache:
        _serial_cache[key] = Campaign(_config(arch, kind), context).run()
    return _serial_cache[key]


def _context_for(arch, x86_context, ppc_context):
    return x86_context if arch == "x86" else ppc_context


class TestShardTargets:
    def test_covers_range_in_order(self):
        for count in (1, 7, 16, 100):
            for workers in (1, 2, 4):
                shards = shard_targets(count, workers)
                flat = [i for start, stop in shards
                        for i in range(start, stop)]
                assert flat == list(range(count))
                assert all(stop > start for start, stop in shards)
                assert len(shards) <= workers * SHARDS_PER_WORKER

    def test_empty(self):
        assert shard_targets(0, 4) == []


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("workers", [
        pytest.param(2, id="workers2"), pytest.param(4, id="workers4")])
    @pytest.mark.parametrize("kind", list(CampaignKind),
                             ids=[k.value for k in CampaignKind])
    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_bit_identical(self, arch, kind, workers,
                           x86_context, ppc_context):
        context = _context_for(arch, x86_context, ppc_context)
        serial = _serial(arch, kind, context)
        parallel = Campaign(_config(arch, kind),
                            context).run(workers=workers)
        assert _signature(parallel) == _signature(serial)
        assert parallel.failures == []

    def test_progress_reports_per_shard(self, x86_context):
        ticks = []
        config = _config("x86", CampaignKind.DATA)
        result = Campaign(config, x86_context).run(
            workers=2, progress=lambda done, total: ticks.append(
                (done, total)))
        assert result.injected == config.count
        assert ticks[-1] == (config.count, config.count)
        assert [done for done, _ in ticks] == \
            sorted(done for done, _ in ticks)
        assert len(ticks) > 1             # finer than one tick per run


class TestWorkerFailure:
    def test_failed_shard_retried_serially_and_recorded(
            self, x86_context):
        kind = CampaignKind.DATA
        serial = _serial("x86", kind, x86_context)
        campaign = Campaign(_config("x86", kind), x86_context)
        result = run_parallel(campaign, workers=2, fail_shards={0})
        # the failure is recorded, not silently dropped ...
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.shard == 0
        assert failure.recovered
        assert "injected worker failure" in failure.error
        # ... and the serial retry kept the result bit-identical
        assert _signature(result) == _signature(serial)

    def test_every_shard_failing_still_completes(self, x86_context):
        kind = CampaignKind.DATA
        serial = _serial("x86", kind, x86_context)
        campaign = Campaign(_config("x86", kind), x86_context)
        shards = shard_targets(COUNTS[kind], 2)
        result = run_parallel(campaign, workers=2,
                              fail_shards=range(len(shards)))
        assert len(result.failures) == len(shards)
        assert all(f.recovered for f in result.failures)
        assert _signature(result) == _signature(serial)
