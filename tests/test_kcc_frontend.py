"""Lexer, parser, and sema tests for the kernel DSL."""

import pytest

from repro.kcc import ast
from repro.kcc.lexer import LexError, tokenize
from repro.kcc.parser import ParseError, parse
from repro.kcc.sema import SemaError, analyze


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("fn foo(x: u32) -> u32 { return x + 0x10; }")
        kinds = [token.kind for token in tokens]
        assert kinds[-1] == "eof"
        texts = [token.text for token in tokens[:4]]
        assert texts == ["fn", "foo", "(", "x"]

    def test_hex_and_decimal(self):
        tokens = tokenize("0xDEAD4EAD 42")
        assert tokens[0].value == 0xDEAD4EAD
        assert tokens[1].value == 42

    def test_comments(self):
        tokens = tokenize("a // line comment\n /* block\ncomment */ b")
        assert [t.text for t in tokens[:2]] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_multichar_operators(self):
        tokens = tokenize("a << b >= c != d && e")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["<<", ">=", "!=", "&&"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 4]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestParser:
    def test_struct_and_global(self):
        program = parse("""
            struct pair { lo: u16; hi: u16; }
            global table: u32[8] = {1, 2, 3};
            global p: pair;
            const K = 4 * 3 + 1;
        """)
        assert program.structs[0].name == "pair"
        assert len(program.structs[0].fields) == 2
        table = program.global_by_name("table")
        assert table.count == 8
        assert table.init == [1, 2, 3]
        assert program.global_by_name("p").is_struct
        assert program.consts["K"] == 13

    def test_function_shapes(self):
        program = parse("""
            fn f(a: u32, b: *u8) -> u32 {
                var x: u32 = a + 1;
                if (x > 3) { return x; } else { x = 0; }
                while (x < 10) {
                    x = x + 1;
                    if (x == 5) { break; }
                    continue;
                }
                return x;
            }
        """)
        func = program.functions[0]
        assert len(func.params) == 2
        assert func.params[1].var_type.pointee == "u8"

    def test_precedence(self):
        program = parse("fn f() -> u32 { return 2 + 3 * 4; }")
        ret = program.functions[0].body[0]
        assert isinstance(ret.value, ast.Binary)
        assert ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_field_chain(self):
        program = parse("""
            struct s { next: *s; v: u32; }
            fn f(p: *s) -> u32 { return p.next.v; }
        """)
        ret = program.functions[0].body[0]
        assert isinstance(ret.value, ast.FieldAccess)
        assert isinstance(ret.value.base, ast.FieldAccess)

    def test_errors(self):
        with pytest.raises(ParseError):
            parse("fn f( { }")
        with pytest.raises(ParseError):
            parse("global x: u32")           # missing semicolon
        with pytest.raises(ParseError):
            parse("fn f() { 1 + ; }")
        with pytest.raises(ParseError):
            parse("fn f() { 1 + 2 = 3; }")   # bad lvalue

    def test_sizeof_and_null(self):
        program = parse("""
            struct s { v: u32; }
            fn f() -> u32 { return sizeof(s) + null; }
        """)
        assert program is not None


class TestSema:
    def _analyze(self, source: str):
        return analyze(parse(source))

    def test_binds_names(self):
        program = self._analyze("""
            global counter: u32;
            fn bump(by: u32) -> u32 {
                var before: u32 = counter;
                counter = counter + by;
                return before;
            }
        """)
        func = program.functions[0]
        decl = func.body[0]
        assert decl.init.kind == "global"
        assign = func.body[1]
        assert assign.value.right.kind == "param"

    def test_pointer_typing(self):
        program = self._analyze("""
            struct task { state: u16; pad: u16; }
            global tasks: task[4];
            fn f(i: u32) -> u32 {
                var t: *task = tasks[i];
                return t.state;
            }
        """)
        ret = program.functions[0].body[1]
        assert ret.value.struct == "task"
        assert ret.value.type.width == 2

    def test_rejects_unknown_name(self):
        with pytest.raises(SemaError):
            self._analyze("fn f() -> u32 { return nope; }")

    def test_rejects_field_on_scalar(self):
        with pytest.raises(SemaError):
            self._analyze("fn f(x: u32) -> u32 { return x.bad; }")

    def test_rejects_unknown_field(self):
        with pytest.raises(SemaError):
            self._analyze("""
                struct s { v: u32; }
                fn f(p: *s) -> u32 { return p.nope; }
            """)

    def test_rejects_bad_arity(self):
        with pytest.raises(SemaError):
            self._analyze("""
                fn g(a: u32) -> u32 { return a; }
                fn f() -> u32 { return g(1, 2); }
            """)

    def test_rejects_duplicate_local(self):
        with pytest.raises(SemaError):
            self._analyze("""
                fn f() { var x: u32; var x: u32; }
            """)

    def test_rejects_break_outside_loop(self):
        with pytest.raises(SemaError):
            self._analyze("fn f() { break; }")

    def test_intrinsic_arity(self):
        with pytest.raises(SemaError):
            self._analyze("fn f() { __store32(1); }")

    def test_whole_array_use_rejected(self):
        with pytest.raises(SemaError):
            self._analyze("""
                global a: u32[4];
                fn f() -> u32 { return a; }
            """)

    def test_kernel_source_analyzes(self, kernel_program_fixture):
        assert len(kernel_program_fixture.functions) > 50
