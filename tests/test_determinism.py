"""Reproducibility guarantees: same seed, same campaign, bit for bit.

Publishable campaign results must be exactly repeatable (the
cross-architecture radiation and CentOS fault-injection studies both
lean on this).  ``run_campaign`` with the same ``(arch, kind, count,
seed, ops)`` must produce the identical outcome sequence every time,
and campaign-level invariants must hold for any seed.
"""

from __future__ import annotations

import pytest

from repro.injection.campaign import run_campaign
from repro.injection.outcomes import CampaignKind, Outcome


def _signature(result):
    return [(r.target, r.outcome, r.cause, r.screened,
             r.activation_cycles, r.crash_cycles)
            for r in result.results]


class TestSameSeedTwice:
    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_run_campaign_is_reproducible(self, arch,
                                          x86_context, ppc_context):
        first = run_campaign(arch, CampaignKind.DATA, 15,
                             seed=0, ops=36)
        second = run_campaign(arch, CampaignKind.DATA, 15,
                              seed=0, ops=36)
        assert _signature(first) == _signature(second)

    def test_register_campaign_is_reproducible(self, x86_context):
        first = run_campaign("x86", CampaignKind.REGISTER, 8,
                             seed=0, ops=36)
        second = run_campaign("x86", CampaignKind.REGISTER, 8,
                              seed=0, ops=36)
        assert _signature(first) == _signature(second)


class TestCampaignInvariants:
    """Property-style seed sweep: invariants hold for any seed."""

    SEEDS = list(range(10))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_invariants_across_seeds(self, seed):
        count = 12
        result = run_campaign("x86", CampaignKind.DATA, count,
                              seed=seed, ops=36)
        assert result.injected == count
        assert result.activated <= result.injected
        assert 0 <= result.activated
        assert result.activated == sum(
            1 for r in result.results if r.outcome.activated)
        for r in result.results:
            if r.screened:
                assert r.outcome is Outcome.NOT_ACTIVATED
        assert sum(result.count_outcome(outcome)
                   for outcome in Outcome) == result.injected
