"""ABI coherence: the Python mirror must match the DSL constants."""

from repro.kernel import abi


class TestSyscallNumbers:
    def test_numbers_match_dsl(self, kernel_program_fixture):
        consts = kernel_program_fixture.consts
        for name, number in abi.SYSCALL_NUMBERS.items():
            assert consts[name] == number, name

    def test_nr_syscalls(self, kernel_program_fixture):
        assert kernel_program_fixture.consts["NR_SYSCALLS"] == \
            abi.NR_SYSCALLS

    def test_task_states(self, kernel_program_fixture):
        consts = kernel_program_fixture.consts
        assert consts["TASK_RUNNING"] == abi.TASK_RUNNING
        assert consts["TASK_INTERRUPTIBLE"] == abi.TASK_INTERRUPTIBLE
        assert consts["TASK_STOPPED"] == abi.TASK_STOPPED
        assert consts["TASK_UNUSED"] == abi.TASK_UNUSED
        assert consts["NR_TASKS"] == abi.NR_TASKS

    def test_spinlock_magic(self, kernel_program_fixture):
        assert kernel_program_fixture.consts["SPINLOCK_MAGIC"] == \
            abi.SPINLOCK_MAGIC == 0xDEAD4EAD   # the paper's Figure 13

    def test_error_codes(self, kernel_program_fixture):
        consts = kernel_program_fixture.consts
        assert consts["ENOSYS_RET"] == abi.ENOSYS
        assert consts["EBADF"] == abi.EBADF
        assert consts["EINVAL"] == abi.EINVAL

    def test_entry_functions_exist(self, x86_image, ppc_image):
        for name in abi.ENTRY_FUNCTIONS:
            assert name in x86_image.functions, name
            assert name in ppc_image.functions, name

    def test_every_syscall_slot_wired(self, kernel_program_fixture):
        """syscall_init must populate a slot for each abi.Syscall."""
        source_names = {f.name for f in kernel_program_fixture.functions}
        expected = {
            abi.Syscall.GETPID: "sys_getpid",
            abi.Syscall.SCHED_YIELD: "sys_sched_yield",
            abi.Syscall.READ: "sys_read",
            abi.Syscall.WRITE: "sys_write",
            abi.Syscall.PIPE_WRITE: "sys_pipe_write",
            abi.Syscall.SEND: "sys_send",
        }
        for syscall, fname in expected.items():
            assert fname in source_names, fname
