"""The runnable examples must keep working (they assert internally)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

#: quick case studies (the campaign-running examples are exercised by
#: the benchmark suite instead)
QUICK = [
    "case_instruction_resync_p4.py",
    "case_stack_error_g4.py",
    "case_spinlock_ud2_p4.py",
    "case_stack_overflow_contrast.py",
]


@pytest.mark.parametrize("script", QUICK)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


def test_examples_exist():
    scripts = list(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3
    assert (EXAMPLES / "quickstart.py").exists()
