"""The fault-model subsystem (:mod:`repro.faults`).

Covers the declarative spec codec (hypothesis round-trips through the
canonical-JSON boundary every layer shares), the registry, plan
derivation purity and shape per target kind, the targeted structure
pool, the prune soundness gate (multi-bit campaigns must *never*
prune), MBU-vs-SBU manifestation ordering on both architectures,
legacy manifest mapping, the service protocol fields, and the CLI
surface.  The per-model digest gate lives in
``tests/test_fault_digests.py``.
"""

from __future__ import annotations

import dataclasses
import json
import logging

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import (
    DEFAULT_MODEL, TARGETED_STRUCTURES, FaultModel, FaultModelError,
    FaultSpec, FaultSpecError, available_models, flip_mask, get_model,
    model_applies, plan_span, register_model, spec_from_dict,
)
from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.outcomes import CampaignKind

# ---------------------------------------------------------------------------
# spec codec


def _specs() -> st.SearchStrategy[FaultSpec]:
    """Valid FaultSpec instances across the whole parameter space."""
    names = st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
        min_size=1, max_size=24).filter(lambda s: s.strip("-"))
    bits = st.tuples(st.integers(1, 32), st.integers(1, 32)).map(sorted)
    retrigger = st.one_of(
        st.just((0, 0)),
        st.tuples(st.integers(1, 100_000), st.integers(1, 64)))
    structures = st.lists(
        st.sampled_from(TARGETED_STRUCTURES), max_size=4, unique=True)

    def build(name, bit_pair, sched, structs):
        lo, hi = bit_pair
        return FaultSpec(
            name=name, min_bits=lo, max_bits=hi,
            spatial="adjacent" if hi > 1 else "single",
            retrigger_period=sched[0], retrigger_count=sched[1],
            structures=tuple(structs))

    return st.builds(build, names, bits, retrigger, structures)


class TestSpecCodec:
    @given(_specs())
    @settings(max_examples=80, deadline=None)
    def test_round_trips_through_canonical_json(self, spec):
        from repro.store.codec import canonical_json
        payload = json.loads(canonical_json(spec.to_dict()))
        again = spec_from_dict(payload)
        assert again == spec
        assert again.digest() == spec.digest()

    @given(_specs(), _specs())
    @settings(max_examples=40, deadline=None)
    def test_digest_is_an_identity(self, a, b):
        assert (a.digest() == b.digest()) == (a == b)

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown"):
            spec_from_dict({"name": "x", "burst": 3})

    def test_non_dict_rejected(self):
        with pytest.raises(FaultSpecError):
            spec_from_dict(["single-bit"])

    @pytest.mark.parametrize("kwargs", [
        dict(name=""),
        dict(name="x", pattern="stuck-at-0"),
        dict(name="x", spatial="diagonal"),
        dict(name="x", min_bits=0),
        dict(name="x", min_bits=3, max_bits=2),
        dict(name="x", max_bits=33, spatial="adjacent"),
        dict(name="x", max_bits=4),              # multi-bit, no shape
        dict(name="x", retrigger_period=100),    # period without count
        dict(name="x", retrigger_count=3),       # count without period
        dict(name="x", retrigger_period=-1, retrigger_count=1),
        dict(name="x", structures=("", "jiffies")),
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(FaultSpecError):
            FaultSpec(**kwargs)

    def test_describe_mentions_every_dimension(self):
        text = FaultSpec(name="x", min_bits=2, max_bits=8,
                         spatial="adjacent", retrigger_period=500,
                         retrigger_count=3,
                         structures=("jiffies",)).describe()
        assert "2-8" in text and "x3" in text and "jiffies" in text


# ---------------------------------------------------------------------------
# registry


class TestRegistry:
    def test_ships_four_models_in_order(self):
        assert available_models() == (
            "single-bit", "burst", "intermittent", "targeted")

    def test_default_is_single_bit(self):
        assert DEFAULT_MODEL == "single-bit"
        spec = get_model(DEFAULT_MODEL).spec
        assert spec.multiplicity == 1
        assert not spec.intermittent and not spec.targeted

    def test_unknown_model_names_the_known_ones(self):
        with pytest.raises(FaultModelError, match="single-bit"):
            get_model("rowhammer")

    def test_duplicate_registration_refused(self):
        with pytest.raises(FaultModelError, match="already registered"):
            register_model(FaultModel(FaultSpec(name="burst")))
        # replace=True is the explicit override; restore the original
        original = get_model("burst")
        try:
            register_model(FaultModel(FaultSpec(name="burst")),
                           replace=True)
            assert get_model("burst").spec.multiplicity == 1
        finally:
            register_model(original, replace=True)

    def test_targeted_applies_to_data_only(self):
        for kind in CampaignKind:
            expected = kind is CampaignKind.DATA
            assert model_applies("targeted", kind.value) is expected
            assert model_applies("burst", kind.value)


# ---------------------------------------------------------------------------
# plan derivation


class TestPlans:
    def test_single_bit_memory_plan_is_the_legacy_flip(self):
        model = get_model("single-bit")
        for seed in (0, 7919, 123456):
            plan = model.memory_plan(0xC030_0010, 5, seed,
                                     0xC030_0000, 0xC031_0000)
            assert plan.flips == ((0xC030_0010, 5),)
            assert plan.retriggers == 0

    def test_single_bit_code_plan_is_the_legacy_flip(self):
        model = get_model("single-bit")
        # legacy: byte_offset = bit // 8, flipped bit = bit % 8
        plan = model.code_plan(0xC000_1000, 19, 4, seed=42)
        assert plan.flips == ((0xC000_1002, 3),)

    def test_burst_spills_across_byte_boundaries(self):
        model = get_model("burst")
        plan = model.memory_plan(0xC030_0010, 6, 0,
                                 0xC030_0000, 0xC031_0000)
        size = len(plan.flips)
        assert 2 <= size <= 8
        positions = [addr * 8 + bit for addr, bit in plan.flips]
        assert positions == list(range(positions[0],
                                       positions[0] + size))
        assert positions[0] == 0xC030_0010 * 8 + 6
        # starting at bit 6, any burst >= 3 crosses into the next byte
        if size >= 3:
            assert len({addr for addr, _ in plan.flips}) >= 2

    def test_burst_truncates_at_region_end(self):
        model = get_model("burst")
        hi = 0xC030_0011                      # region ends next byte
        plan = model.memory_plan(0xC030_0010, 6, 0, 0xC030_0000, hi)
        assert all(addr < hi for addr, _ in plan.flips)
        assert len(plan.flips) >= 1           # the target bit survives

    def test_burst_code_plan_stays_in_the_encoding(self):
        model = get_model("burst")
        for seed in range(8):
            plan = model.code_plan(0xC000_1000, 30, 4, seed)
            assert plan.flips[0] == (0xC000_1003, 6)
            assert all(0xC000_1000 <= addr < 0xC000_1004
                       for addr, _ in plan.flips)

    def test_register_plan_clamps_at_width(self):
        model = get_model("burst")
        plan = model.register_plan(30, 32, seed=1)
        assert plan.register_bits[0] == 30
        assert max(plan.register_bits) <= 31
        assert flip_mask(plan.register_bits) >> 30 in (1, 3)

    def test_plans_are_pure_functions(self):
        a = FaultModel(FaultSpec(name="burst", min_bits=2, max_bits=8,
                                 spatial="adjacent"))
        b = get_model("burst")
        for seed in range(16):
            assert a.memory_plan(0xC030_0040, 3, seed, 0xC030_0000,
                                 0xC031_0000) == \
                b.memory_plan(0xC030_0040, 3, seed, 0xC030_0000,
                              0xC031_0000)

    def test_screen_span_covers_the_plan(self):
        for name in available_models():
            model = get_model(name)
            for seed in range(12):
                plan = model.memory_plan(0xC030_0040, 7, seed,
                                         0xC030_0000, 0xC031_0000)
                lo, hi = plan_span(plan)
                assert hi - lo <= model.screen_span_bytes(7, seed)
            assert model.screen_span_bytes(0, 0) >= 1

    def test_single_bit_screen_span_is_one_byte(self):
        model = get_model("single-bit")
        assert all(model.screen_span_bytes(bit, seed) == 1
                   for bit in range(8) for seed in range(4))

    def test_intermittent_schedule_from_spec(self):
        model = get_model("intermittent")
        plan = model.memory_plan(0xC030_0010, 1, 0,
                                 0xC030_0000, 0xC031_0000)
        assert plan.retriggers == model.spec.retrigger_count
        assert plan.retrigger_period == model.spec.retrigger_period
        assert len(plan.flips) == 1          # same single bit re-fires


# ---------------------------------------------------------------------------
# targeted structure resolution


class TestTargetedPool:
    def test_pool_matches_linker_symbols(self, x86_image):
        pool = get_model("targeted").target_pool(x86_image)
        assert len(pool) == len(TARGETED_STRUCTURES)
        for symbol, (lo, hi) in zip(TARGETED_STRUCTURES, pool):
            info = x86_image.globals[symbol]
            assert (lo, hi) == (info.addr, info.addr + info.size)

    def test_unknown_symbol_is_a_hard_error(self, x86_image):
        model = FaultModel(FaultSpec(name="bad-target",
                                     structures=("no_such_global",)))
        with pytest.raises(FaultModelError, match="no_such_global"):
            model.target_pool(x86_image)

    def test_targets_draw_only_from_the_pool(self, x86_context):
        config = CampaignConfig(arch="x86", kind=CampaignKind.DATA,
                                count=64, seed=3, ops=36,
                                fault_model="targeted")
        campaign = Campaign(config, x86_context)
        pool = get_model("targeted").target_pool(
            x86_context.base_machine.image)
        targets = campaign.generate_targets()
        assert len(targets) == 64
        for target in targets:
            assert any(lo <= target.addr < hi for lo, hi in pool)
        # weighted draw: big structures should absorb multiple hits
        assert len({t.addr for t in targets}) > 8

    def test_targeted_rejected_off_data(self):
        with pytest.raises(ValueError, match="does not apply"):
            CampaignConfig(arch="x86", kind=CampaignKind.CODE,
                           count=4, fault_model="targeted")

    def test_unknown_model_rejected_by_config(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            CampaignConfig(arch="x86", kind=CampaignKind.DATA,
                           count=4, fault_model="rowhammer")


# ---------------------------------------------------------------------------
# prune soundness: multi-bit campaigns must never prune


class TestPruneSoundness:
    @pytest.mark.parametrize("prune", ["dead", "taint"])
    def test_multibit_escapes_prune(self, prune, ppc_context, caplog):
        """The battery: under every multi-bit model, both prune
        policies conservatively escape — same targets as unpruned,
        zero rejected draws, loud flag — because single-bit inertness
        proofs do not compose across simultaneous flips."""
        base = CampaignConfig(arch="ppc", kind=CampaignKind.CODE,
                              count=24, seed=0, ops=36,
                              fault_model="burst")
        unpruned = Campaign(base, ppc_context)
        expected = unpruned.generate_targets()
        pruned_config = dataclasses.replace(base, prune=prune)
        campaign = Campaign(pruned_config, ppc_context)
        with caplog.at_level(logging.WARNING,
                             logger="repro.injection.campaign"):
            targets = campaign.generate_targets()
        assert campaign.prune_escaped
        assert campaign.pruned_draws == 0
        assert targets == expected
        assert any("do not compose" in record.getMessage()
                   for record in caplog.records)

    def test_multibit_run_never_prunes(self, ppc_context):
        """End-to-end: a taint-pruned burst campaign reports the
        escape on its result and spent no draws on pruning."""
        config = CampaignConfig(arch="ppc", kind=CampaignKind.CODE,
                                count=8, seed=0, ops=36,
                                fault_model="burst", prune="taint")
        result = Campaign(config, ppc_context).run()
        assert result.prune_escaped
        assert result.pruned_draws == 0
        assert result.injected == 8

    def test_single_bit_still_prunes(self, ppc_context):
        """Control: the soundness gate keys on multiplicity, not on
        the prune flag — the single-bit model still prunes."""
        from repro.static.predictor import dead_code_bits
        assert len(dead_code_bits("ppc")) > 0
        config = CampaignConfig(arch="ppc", kind=CampaignKind.CODE,
                                count=24, seed=0, ops=36,
                                prune="dead")
        campaign = Campaign(config, ppc_context)
        targets = campaign.generate_targets()
        assert not campaign.prune_escaped
        dead = dead_code_bits("ppc")
        assert all((t.addr, t.bit) not in dead for t in targets)

    def test_intermittent_single_bit_may_prune(self, ppc_context):
        """Intermittent is multiplicity 1: the inertness proof holds
        for every re-application of the same flip, so pruning stays
        sound and enabled."""
        config = CampaignConfig(arch="ppc", kind=CampaignKind.CODE,
                                count=12, seed=0, ops=36,
                                fault_model="intermittent",
                                prune="dead")
        campaign = Campaign(config, ppc_context)
        campaign.generate_targets()
        assert not campaign.prune_escaped


# ---------------------------------------------------------------------------
# MBU vs SBU (the acceptance criterion)


class TestMbuVsSbu:
    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_burst_manifests_at_least_single_bit(self, arch,
                                                 x86_context,
                                                 ppc_context):
        from repro.analysis.fault_models import (
            render_model_table, sensitivity_for,
        )
        context = x86_context if arch == "x86" else ppc_context
        rows = {}
        for model in ("single-bit", "burst"):
            config = CampaignConfig(arch=arch, kind=CampaignKind.CODE,
                                    count=48, seed=0, ops=36,
                                    fault_model=model)
            result = Campaign(config, context).run(workers=2)
            rows[model] = sensitivity_for(model, arch,
                                          CampaignKind.CODE,
                                          result.results)
        table = render_model_table(list(rows.values()))
        assert rows["burst"].manifested >= \
            rows["single-bit"].manifested, f"\n{table}"
        # both models see the identical target stream, so activation
        # (breakpoint reached) is identical by construction
        assert rows["burst"].activated == rows["single-bit"].activated


# ---------------------------------------------------------------------------
# store manifests: identity + legacy mapping


class TestManifest:
    def _manifest(self, **overrides):
        from repro.store.manifest import CampaignManifest
        config = CampaignConfig(arch="x86", kind=CampaignKind.DATA,
                                count=10, seed=0, ops=36, **overrides)
        return CampaignManifest.from_config(config)

    def test_fault_model_joins_identity(self):
        default = self._manifest()
        burst = self._manifest(fault_model="burst")
        assert default.campaign_id != burst.campaign_id
        assert "fault_model" in burst.identity()
        assert "fault_model" not in default.identity()

    def test_single_bit_serializes_to_format3_shape(self):
        manifest = self._manifest()
        assert manifest._hash_payload() == {
            key: value for key, value
            in dataclasses.asdict(manifest).items()
            if key != "fault_model"}

    def test_legacy_manifest_loads_as_single_bit(self, tmp_path):
        """A format-3 manifest (no fault_model key) loads cleanly:
        the stored hash verifies and the model defaults."""
        from repro.store.manifest import CampaignManifest
        manifest = self._manifest()
        manifest.save(tmp_path)
        path = tmp_path / "manifest.json"
        payload = json.loads(path.read_text())
        assert payload["fault_model"] == "single-bit"
        del payload["fault_model"]            # exactly the old shape
        path.write_text(json.dumps(payload))
        loaded = CampaignManifest.load(tmp_path)
        assert loaded.fault_model == "single-bit"
        assert loaded.campaign_id == manifest.campaign_id
        assert loaded == manifest

    def test_non_default_manifest_round_trips(self, tmp_path):
        from repro.store.manifest import CampaignManifest
        manifest = self._manifest(fault_model="targeted")
        manifest.save(tmp_path)
        loaded = CampaignManifest.load(tmp_path)
        assert loaded.fault_model == "targeted"
        assert loaded == manifest

    def test_tampered_fault_model_detected(self, tmp_path):
        from repro.store.manifest import CampaignManifest, ManifestError
        self._manifest(fault_model="burst").save(tmp_path)
        path = tmp_path / "manifest.json"
        payload = json.loads(path.read_text())
        payload["fault_model"] = "intermittent"
        path.write_text(json.dumps(payload))
        with pytest.raises(ManifestError, match="hash mismatch"):
            CampaignManifest.load(tmp_path)


# ---------------------------------------------------------------------------
# store + replay integration


class TestStoreReplay:
    def test_burst_campaign_stores_and_replays(self, tmp_path,
                                               x86_context):
        from repro.store.manifest import CampaignManifest
        from repro.store.store import CampaignStore
        from repro.trace.replay import Replayer
        config = CampaignConfig(arch="x86", kind=CampaignKind.STACK,
                                count=5, seed=0, ops=36,
                                fault_model="intermittent")
        store = CampaignStore(tmp_path)
        Campaign(config, x86_context).run(store=store)
        campaign_id = CampaignManifest.from_config(config).campaign_id
        replayer = Replayer(store, campaign_id)
        assert replayer.config.fault_model == "intermittent"
        outcomes = replayer.replay_all()
        assert len(outcomes) == 5
        for outcome in outcomes:
            assert outcome.replayed == outcome.journaled


# ---------------------------------------------------------------------------
# service protocol


class TestProtocol:
    def test_campaign_payload_round_trip(self):
        from repro.service.protocol import (
            campaign_config_from_payload, config_to_payload,
        )
        config = CampaignConfig(arch="ppc", kind=CampaignKind.DATA,
                                count=12, seed=5, ops=24,
                                fault_model="targeted")
        payload = config_to_payload(config)
        assert payload["fault_model"] == "targeted"
        again = campaign_config_from_payload(payload)
        assert again == config

    def test_default_when_omitted(self):
        from repro.service.protocol import campaign_config_from_payload
        config = campaign_config_from_payload(
            {"arch": "x86", "kind": "data", "count": 4})
        assert config.fault_model == "single-bit"

    def test_unknown_model_is_a_400(self):
        from repro.service.protocol import (
            ValidationError, campaign_config_from_payload,
        )
        with pytest.raises(ValidationError, match="fault_model"):
            campaign_config_from_payload(
                {"arch": "x86", "kind": "data", "count": 4,
                 "fault_model": "rowhammer"})

    def test_inapplicable_model_is_a_400(self):
        from repro.service.protocol import (
            ValidationError, campaign_config_from_payload,
        )
        with pytest.raises(ValidationError, match="does not apply"):
            campaign_config_from_payload(
                {"arch": "x86", "kind": "code", "count": 4,
                 "fault_model": "targeted"})

    def test_study_payload_applies_model_per_kind(self):
        from repro.service.protocol import study_configs_from_payload
        configs = study_configs_from_payload(
            {"fault_model": "targeted", "scale": 0.001})
        by_kind = {(c.arch, c.kind): c.fault_model for c in configs}
        assert len(configs) == 8
        for arch in ("x86", "ppc"):
            assert by_kind[(arch, CampaignKind.DATA)] == "targeted"
            assert by_kind[(arch, CampaignKind.CODE)] == "single-bit"


# ---------------------------------------------------------------------------
# study fallback


class TestStudyFallback:
    def test_inapplicable_model_falls_back_per_kind(self):
        from repro.core import Study, StudyConfig
        study = Study(StudyConfig(fault_model="targeted"))
        data = study._campaign_config("x86", CampaignKind.DATA, 4)
        stack = study._campaign_config("x86", CampaignKind.STACK, 4)
        assert data.fault_model == "targeted"
        assert stack.fault_model == "single-bit"

    def test_applicable_model_used_everywhere(self):
        from repro.core import Study, StudyConfig
        study = Study(StudyConfig(fault_model="burst"))
        for kind in CampaignKind:
            config = study._campaign_config("ppc", kind, 4)
            assert config.fault_model == "burst"


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    def test_faults_list(self, capsys):
        from repro.__main__ import main
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for name in available_models():
            assert name in out
        assert "[default]" in out
        assert get_model("burst").spec.digest()[:12] in out

    def test_campaign_accepts_fault_model(self):
        from repro.__main__ import build_parser
        args = build_parser().parse_args(
            ["campaign", "--kind", "data", "--fault-model", "burst"])
        assert args.fault_model == "burst"

    def test_campaign_rejects_inapplicable_model(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit, match="does not apply"):
            main(["campaign", "--kind", "code",
                  "--fault-model", "targeted", "-n", "2"])

    def test_campaign_rejects_unknown_model(self, capsys):
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["campaign", "--kind", "data",
                  "--fault-model", "rowhammer"])

    def test_study_and_submit_accept_fault_model(self):
        from repro.__main__ import build_parser
        parser = build_parser()
        study = parser.parse_args(["study", "--fault-model",
                                   "intermittent"])
        assert study.fault_model == "intermittent"
        submit = parser.parse_args(["submit", "--kind", "data",
                                    "--fault-model", "targeted"])
        assert submit.fault_model == "targeted"


# ---------------------------------------------------------------------------
# injector-level behavior


class TestInjectorBehavior:
    def test_intermittent_refires_on_schedule(self, x86_context):
        """The arming chain re-applies the flip on the spec's period:
        trace the experiment and count the inject events."""
        from repro.injection.injector import InjectionRun
        from repro.trace.recorder import EventKind, TraceRecorder
        config = CampaignConfig(arch="x86", kind=CampaignKind.STACK,
                                count=6, seed=0, ops=36,
                                fault_model="intermittent",
                                exec_mode="step", checkpoints=0)
        campaign = Campaign(config, x86_context)
        targets = campaign.generate_targets()
        spec = campaign.spec_for(0, targets[0])
        run = InjectionRun(spec)
        recorder = TraceRecorder(mode="full", capacity=200_000)
        run.machine.attach_tracer(recorder)
        try:
            run.execute()
        finally:
            run.machine.detach_tracer()
        injects = [e for e in recorder.events
                   if e.kind is EventKind.INJECT]
        model = get_model("intermittent")
        # initial injection + up to retrigger_count re-fires (fewer
        # only if the run ended first)
        assert 1 <= len(injects) <= 1 + model.spec.retrigger_count
        if len(injects) > 2:
            gaps = [b.instret - a.instret
                    for a, b in zip(injects[1:], injects[2:])]
            assert all(gap == model.spec.retrigger_period
                       for gap in gaps)

    def test_single_bit_runspec_default(self, x86_context):
        config = CampaignConfig(arch="x86", kind=CampaignKind.DATA,
                                count=2, seed=0, ops=36)
        campaign = Campaign(config, x86_context)
        spec = campaign.spec_for(0, campaign.generate_targets()[0])
        assert spec.fault_model == "single-bit"
