"""Deterministic replay of journaled experiments.

The campaigns here are journaled once per module (serially and through
the parallel engine), then every journaled experiment is re-executed
and verified against its record — the store's durability contract and
the engine's serial-equivalence contract, checked end to end.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.outcomes import CampaignKind, Outcome
from repro.store.journal import decode_record, encode_record
from repro.store.manifest import JOURNAL_NAME, CampaignManifest
from repro.store.store import CampaignStore
from repro.trace.dissect import dissect_experiment, render_dissection
from repro.trace.replay import (
    ReplayDivergence, ReplayError, Replayer,
)

X86_CONFIG = dict(arch="x86", kind=CampaignKind.STACK, count=6,
                  seed=0, ops=36)
PPC_CONFIG = dict(arch="ppc", kind=CampaignKind.CODE, count=12,
                  seed=0, ops=36)


@pytest.fixture(scope="module")
def stores(tmp_path_factory, x86_context, ppc_context):
    """(serial store, workers=4 store) with journaled campaigns."""
    root = tmp_path_factory.mktemp("replay-stores")
    serial = CampaignStore(root / "w1")
    parallel = CampaignStore(root / "w4")
    Campaign(CampaignConfig(**X86_CONFIG), x86_context).run(store=serial)
    Campaign(CampaignConfig(**PPC_CONFIG), ppc_context).run(store=serial)
    Campaign(CampaignConfig(**X86_CONFIG), x86_context).run(
        store=parallel, workers=4)
    return serial, parallel


def _campaign_id(config: dict) -> str:
    return CampaignManifest.from_config(
        CampaignConfig(**config)).campaign_id


# -- every journaled experiment replays bit-identically -----------------------

@pytest.mark.parametrize("config", [X86_CONFIG, PPC_CONFIG],
                         ids=["x86-stack", "ppc-code"])
def test_replay_all_serial(stores, config):
    serial, _parallel = stores
    replayer = Replayer(serial, _campaign_id(config))
    outcomes = replayer.replay_all()
    assert len(outcomes) == config["count"]
    for outcome in outcomes:
        assert outcome.replayed == outcome.journaled
        if outcome.spec is None:       # screened: no machine ran
            assert outcome.replayed.screened
            assert outcome.recorder.total_emitted == 0
        else:
            assert outcome.recorder.total_emitted > 0


def test_replay_all_from_parallel_run(stores):
    """A campaign journaled at workers=4 replays experiment-by-
    experiment on the serial path — the serial-equivalence contract."""
    _serial, parallel = stores
    replayer = Replayer(parallel, _campaign_id(X86_CONFIG))
    outcomes = replayer.replay_all()
    assert len(outcomes) == X86_CONFIG["count"]
    assert all(outcome.replayed == outcome.journaled
               for outcome in outcomes)


def test_parallel_and_serial_journals_agree(stores):
    serial, parallel = stores
    campaign_id = _campaign_id(X86_CONFIG)
    assert [dataclasses.asdict(result) if dataclasses.is_dataclass(
        result) else result for result in serial.results(campaign_id)] \
        == [dataclasses.asdict(result) if dataclasses.is_dataclass(
            result) else result
            for result in parallel.results(campaign_id)]


# -- divergence and refusal ---------------------------------------------------

def _tamper_crash_cycles(store: CampaignStore, campaign_id: str) -> int:
    """Rewrite one crashed record with crash_cycles+1 (crc kept valid);
    returns the tampered index."""
    journal_path = store.campaign_dir(campaign_id) / JOURNAL_NAME
    lines = journal_path.read_text().splitlines()
    for position, line in enumerate(lines):
        index, result = decode_record(line)
        if result.crash_cycles is not None:
            tampered = dataclasses.replace(
                result, crash_cycles=result.crash_cycles + 1)
            lines[position] = encode_record(index, tampered)
            journal_path.write_text("\n".join(lines) + "\n")
            return index
    raise AssertionError("no crashed record to tamper with")


def test_tampered_journal_raises_divergence(stores, tmp_path,
                                            x86_context):
    store = CampaignStore(tmp_path / "tampered")
    Campaign(CampaignConfig(**X86_CONFIG), x86_context).run(store=store)
    campaign_id = _campaign_id(X86_CONFIG)
    index = _tamper_crash_cycles(store, campaign_id)
    replayer = Replayer(store, campaign_id)
    with pytest.raises(ReplayDivergence) as excinfo:
        replayer.replay(index)
    assert "crash_cycles" in excinfo.value.fields
    journaled, replayed = excinfo.value.fields["crash_cycles"]
    assert journaled == replayed + 1


def test_unknown_index_and_campaign_refused(stores):
    serial, _parallel = stores
    replayer = Replayer(serial, _campaign_id(X86_CONFIG))
    with pytest.raises(ReplayError, match="no journaled result"):
        replayer.replay(X86_CONFIG["count"] + 5)
    with pytest.raises(ReplayError):
        Replayer(serial, "stack-x86-000000000000")


def test_foreign_code_version_refused(stores, tmp_path, x86_context):
    store = CampaignStore(tmp_path / "foreign")
    Campaign(CampaignConfig(**X86_CONFIG), x86_context).run(store=store)
    campaign_id = _campaign_id(X86_CONFIG)
    directory = store.campaign_dir(campaign_id)
    manifest = CampaignManifest.load(directory)
    foreign = dataclasses.replace(manifest,
                                  code_version="9.9.9+fmt999")
    foreign.save(directory)
    with pytest.raises(ReplayError, match="code version|written by"):
        Replayer(store, campaign_id)


def test_screened_experiment_replays_without_machine(stores):
    serial, _parallel = stores
    replayer = Replayer(serial, _campaign_id(X86_CONFIG))
    screened = [index for index in replayer.indices
                if replayer.journaled(index).screened]
    assert screened, "expected at least one screened experiment"
    outcome = replayer.replay(screened[0])
    assert outcome.spec is None
    assert outcome.replayed.outcome is Outcome.NOT_ACTIVATED


# -- dissection over replayed experiments -------------------------------------

@pytest.mark.parametrize("config", [X86_CONFIG, PPC_CONFIG],
                         ids=["x86-stack", "ppc-code"])
def test_dissection_stages_sum_to_latency(stores, config):
    serial, _parallel = stores
    replayer = Replayer(serial, _campaign_id(config))
    crashed = [index for index in replayer.indices
               if replayer.journaled(index).crash_cycles is not None]
    assert crashed, f"expected a crash in {config}"
    dissection = dissect_experiment(replayer, crashed[0])
    result = dissection.result
    assert dissection.infected
    assert dissection.hops
    breakdown = dissection.stages
    assert breakdown is not None
    assert breakdown.arch == config["arch"]
    assert breakdown.stage1 + breakdown.stage2 + breakdown.stage3 \
        == breakdown.total == result.latency
    report = render_dissection(dissection)
    assert "error propagation chain" in report
    assert "stages (cycles)" in report


def test_replay_trace_dump(stores, tmp_path):
    serial, _parallel = stores
    replayer = Replayer(serial, _campaign_id(X86_CONFIG))
    crashed = [index for index in replayer.indices
               if replayer.journaled(index).crash_cycles is not None]
    outcome = replayer.replay(crashed[0], mode="full")
    path = tmp_path / "trace.jsonl"
    count = outcome.recorder.write_jsonl(path)
    assert count == outcome.recorder.total_emitted
    first = json.loads(path.read_text().splitlines()[0])
    assert {"kind", "instret", "cycles", "pc"} <= set(first)


# -- replay under the compiled-block default ----------------------------------

@pytest.mark.parametrize("config", [X86_CONFIG, PPC_CONFIG],
                         ids=["x86-stack", "ppc-code"])
def test_replay_forces_step_core(stores, config):
    """The dissector reasons about per-instruction trace events, so the
    replayer must pin ``exec_mode="step"`` regardless of the campaign
    default — and since exec_mode is not part of campaign identity,
    the step-mode config still resolves the journaled campaign id."""
    serial, _parallel = stores
    replayer = Replayer(serial, _campaign_id(config))
    assert replayer.config.exec_mode == "step"
    assert CampaignManifest.from_config(replayer.config).campaign_id == \
        _campaign_id(config)


def test_block_recorded_journal_replays_bit_identically(
        stores, x86_context):
    """The module's journals were recorded under the block-core default
    (CampaignConfig's exec_mode), while replay single-steps: every
    event stream still verifies, which is itself a step-vs-block
    equivalence check across the store boundary."""
    serial, _parallel = stores
    recorded = CampaignConfig(**X86_CONFIG)
    assert recorded.exec_mode == "block"
    replayer = Replayer(serial, _campaign_id(X86_CONFIG))
    outcomes = replayer.replay_all()
    assert outcomes and all(o.replayed == o.journaled for o in outcomes)
