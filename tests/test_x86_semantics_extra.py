"""Additional x86 instruction-semantics coverage (corruption-reachable
corners: string ops, adc/sbb, flag ops, leave, moffs, iret, sreg
moves)."""

import pytest

from repro.isa.memory import Region
from repro.x86.cpu import X86CPU
from repro.x86.exceptions import X86Fault, X86Vector
from repro.x86.registers import FLAG_CF, FLAG_ZF

TEXT = 0xC0100000
DATA = 0xC0300000
STACK = 0xC0500000


def make_cpu(code: bytes) -> X86CPU:
    cpu = X86CPU()
    cpu.aspace.map_region(Region(TEXT, 0x1000, "rx", "text"))
    cpu.aspace.map_region(Region(DATA, 0x1000, "rwx", "data"))
    cpu.aspace.map_region(Region(STACK, 0x2000, "rw", "stack"))
    cpu.regs[4] = STACK + 0x2000 - 16
    cpu.mem.write(TEXT, code)
    cpu.eip = TEXT
    return cpu


def run_bytes(code: bytes, steps: int, setup=None) -> X86CPU:
    cpu = make_cpu(code)
    if setup:
        setup(cpu)
    for _ in range(steps):
        cpu.step()
    return cpu


class TestStringOps:
    def test_rep_movsd(self):
        def setup(cpu):
            cpu.mem.write(DATA, bytes(range(32)))
            cpu.regs[6] = DATA            # esi
            cpu.regs[7] = DATA + 0x100    # edi
            cpu.regs[1] = 8               # ecx: 8 dwords

        cpu = run_bytes(b"\xf3\xa5", 1, setup)
        assert cpu.mem.read(DATA + 0x100, 32) == bytes(range(32))
        assert cpu.regs[1] == 0
        assert cpu.regs[6] == DATA + 32

    def test_rep_stosb(self):
        def setup(cpu):
            cpu.regs[0] = 0xAB
            cpu.regs[7] = DATA
            cpu.regs[1] = 16

        cpu = run_bytes(b"\xf3\xaa", 1, setup)
        assert cpu.mem.read(DATA, 16) == b"\xab" * 16

    def test_single_movsb(self):
        def setup(cpu):
            cpu.mem.write_u8(DATA, 0x5A)
            cpu.regs[6] = DATA
            cpu.regs[7] = DATA + 1

        cpu = run_bytes(b"\xa4", 1, setup)
        assert cpu.mem.read_u8(DATA + 1) == 0x5A


class TestCarryChain:
    def test_adc(self):
        # stc; adc eax, ecx  (0x11 /r is adc rm,r)
        code = b"\xf9\x11\xc8"
        def setup(cpu):
            cpu.regs[0] = 5
            cpu.regs[1] = 10
        cpu = run_bytes(code, 2, setup)
        assert cpu.regs[0] == 16            # 5 + 10 + carry

    def test_sbb(self):
        code = b"\xf9\x19\xc8"              # stc; sbb eax, ecx
        def setup(cpu):
            cpu.regs[0] = 10
            cpu.regs[1] = 3
        cpu = run_bytes(code, 2, setup)
        assert cpu.regs[0] == 6             # 10 - 3 - carry


class TestMisc:
    def test_leave(self):
        def setup(cpu):
            cpu.regs[5] = STACK + 0x1000    # ebp
            cpu.mem.write_u32(STACK + 0x1000, 0xCAFE, True)
        cpu = run_bytes(b"\xc9", 1, setup)
        assert cpu.regs[4] == STACK + 0x1004
        assert cpu.regs[5] == 0xCAFE

    def test_cwde_cdq(self):
        def setup(cpu):
            cpu.regs[0] = 0x8000            # negative 16-bit
        cpu = run_bytes(b"\x98\x99", 2, setup)
        assert cpu.regs[0] == 0xFFFF8000
        assert cpu.regs[2] == 0xFFFFFFFF

    def test_pushfd_popfd(self):
        def setup(cpu):
            cpu.eflags |= FLAG_CF
        cpu = run_bytes(b"\x9c\x58", 2, setup)  # pushfd; pop eax
        assert cpu.regs[0] & FLAG_CF

    def test_moffs(self):
        def setup(cpu):
            cpu.mem.write_u32(DATA + 8, 0x1234, True)
        code = b"\xa1" + (DATA + 8).to_bytes(4, "little") + \
            b"\xa3" + (DATA + 12).to_bytes(4, "little")
        cpu = run_bytes(code, 2, setup)
        assert cpu.regs[0] == 0x1234
        assert cpu.mem.read_u32(DATA + 12, True) == 0x1234

    def test_into_without_of_is_nop(self):
        cpu = run_bytes(b"\xce", 1)
        assert cpu.eip == TEXT + 1

    def test_into_with_of_traps(self):
        def setup(cpu):
            cpu.eflags |= 0x800             # OF
        with pytest.raises(X86Fault) as exc:
            run_bytes(b"\xce", 1, setup)
        assert exc.value.vector == X86Vector.OVERFLOW

    def test_iret_without_nt_pops_frame(self):
        def setup(cpu):
            cpu.push32(0x2)                 # eflags
            cpu.push32(0x10)                # cs
            cpu.push32(TEXT + 0x100)        # eip
        cpu = run_bytes(b"\xcf", 1, setup)
        assert cpu.eip == TEXT + 0x100

    def test_mov_sreg_roundtrip(self):
        # mov ax, 0x3b ; mov gs, ax ; mov cx, gs
        code = b"\x66\xb8\x3b\x00\x8e\xe8\x8c\xe9"
        cpu = run_bytes(code, 3)
        assert cpu.sregs[5] == 0x3B
        assert cpu.regs[1] & 0xFFFF == 0x3B

    def test_push_pop_segment_legacy(self):
        # push ds; pop es
        cpu = run_bytes(b"\x1e\x07", 2)
        assert cpu.sregs[0] == cpu.sregs[3]

    def test_int3_and_stray_int_survive(self):
        cpu = run_bytes(b"\xcc\xcd\x10\x90", 3)
        assert cpu.eip == TEXT + 4

    def test_int80_is_syscall_vector(self):
        with pytest.raises(X86Fault) as exc:
            run_bytes(b"\xcd\x80", 1)
        assert exc.value.vector == X86Vector.SYSCALL

    def test_grp5_push_memory(self):
        def setup(cpu):
            cpu.mem.write_u32(DATA, 0x77, True)
            cpu.regs[3] = DATA
        cpu = run_bytes(b"\xff\x33\x58", 2, setup)  # push [ebx]; pop eax
        assert cpu.regs[0] == 0x77

    def test_xchg_memory(self):
        def setup(cpu):
            cpu.mem.write_u32(DATA, 111, True)
            cpu.regs[0] = 222
            cpu.regs[3] = DATA
        cpu = run_bytes(b"\x87\x03", 1, setup)      # xchg [ebx], eax
        assert cpu.regs[0] == 111
        assert cpu.mem.read_u32(DATA, True) == 222

    def test_zero_flag_chain(self):
        # xor eax,eax ; jz +2 ; ud2 ; nop
        code = b"\x31\xc0\x74\x02\x0f\x0b\x90"
        cpu = run_bytes(code, 3)
        assert cpu.eflags & FLAG_ZF
        assert cpu.eip == TEXT + 7
