"""NIC / lossy channel / crash packets / watchdog / collector tests."""

import pytest
from hypothesis import given, strategies as st

from repro.injection.collector import CrashDataCollector
from repro.machine.nic import (
    LossyChannel, NIC, Packet, decode_crash_packet, encode_crash_packet,
)
from repro.machine.watchdog import Watchdog


class TestCrashPackets:
    def test_roundtrip(self):
        payload = encode_crash_packet(
            "ppc", 0x300, 0xC0104567, 0x0000004D, 123456,
            [0xC0101111, 0xC0102222], "kernel access of bad area")
        decoded = decode_crash_packet(payload)
        assert decoded["arch"] == "ppc"
        assert decoded["vector"] == 0x300
        assert decoded["pc"] == 0xC0104567
        assert decoded["address"] == 0x4D
        assert decoded["cycles"] == 123456
        assert decoded["frame_pointers"] == [0xC0101111, 0xC0102222]
        assert "bad area" in decoded["detail"]

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_crash_packet(b"\x00" * 64)

    @given(st.integers(min_value=0, max_value=0xFFF),
           st.integers(min_value=0, max_value=0xFFFFFFFF),
           st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF),
                    max_size=8),
           st.text(max_size=40))
    def test_roundtrip_property(self, vector, pc, frames, detail):
        payload = encode_crash_packet("x86", vector, pc, 0, 1, frames,
                                      detail)
        decoded = decode_crash_packet(payload)
        assert decoded["vector"] == vector
        assert decoded["pc"] == pc
        assert decoded["frame_pointers"] == \
            [f & 0xFFFFFFFF for f in frames]


class TestLossyChannel:
    def test_no_loss(self):
        channel = LossyChannel(0.0, seed=1)
        received = []
        for index in range(50):
            assert channel.deliver(Packet(b"x", index), received.append)
        assert len(received) == 50
        assert channel.lost == 0

    def test_total_loss(self):
        channel = LossyChannel(1.0, seed=1)
        received = []
        for index in range(50):
            assert not channel.deliver(Packet(b"x", index),
                                       received.append)
        assert not received
        assert channel.lost == 50

    def test_partial_loss_statistics(self):
        channel = LossyChannel(0.2, seed=7)
        delivered = sum(
            1 for index in range(2000)
            if channel.deliver(Packet(b"x", index), None))
        assert 1500 < delivered < 1700        # ~80%

    def test_determinism_by_seed(self):
        outcomes = []
        for _ in range(2):
            channel = LossyChannel(0.5, seed=99)
            outcomes.append([channel.deliver(Packet(b"x", i), None)
                             for i in range(100)])
        assert outcomes[0] == outcomes[1]

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            LossyChannel(1.5)


class TestNIC:
    def test_sequence_numbers(self):
        channel = LossyChannel(0.0, seed=0)
        received = []
        nic = NIC(channel, receiver=received.append)
        nic.send_raw(b"one")
        nic.send_raw(b"two")
        assert [packet.seq for packet in received] == [1, 2]
        assert nic.tx_count == 2


class TestCollector:
    def test_receives_and_dedups(self):
        collector = CrashDataCollector()
        payload = encode_crash_packet("x86", 14, 0xC0100000, 0, 5, [],
                                      "oops")
        collector.receive(Packet(payload, 1))
        collector.receive(Packet(payload, 1))       # duplicate seq
        collector.receive(Packet(payload, 2))
        assert collector.count == 2

    def test_malformed_counted(self):
        collector = CrashDataCollector()
        collector.receive(Packet(b"garbage", 1))
        assert collector.count == 0
        assert collector.malformed == 1

    def test_clear(self):
        collector = CrashDataCollector()
        payload = encode_crash_packet("x86", 14, 0, 0, 0, [], "")
        collector.receive(Packet(payload, 1))
        collector.clear()
        assert collector.count == 0
        assert collector.last() is None


class TestWatchdog:
    def test_expiry(self):
        dog = Watchdog(timeout_cycles=1000)
        dog.pet(0)
        assert not dog.expired(900)
        assert dog.expired(1001)
        dog.pet(1001)
        assert not dog.expired(1500)

    def test_fire_and_reset(self):
        dog = Watchdog(timeout_cycles=10)
        dog.fire()
        assert dog.fired
        assert dog.reboots == 1
        dog.reset()
        assert not dog.fired

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            Watchdog(0)
