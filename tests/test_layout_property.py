"""Property-based layout invariants (hypothesis over random structs)."""

from hypothesis import given, strategies as st

from repro.kcc import ast
from repro.kcc.layout import layout_struct_ppc, layout_struct_x86

_types = st.sampled_from([ast.U8, ast.U16, ast.U32,
                          ast.Type(4, pointee="other")])


@st.composite
def struct_defs(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    fields = [ast.StructField(f"f{index}", draw(_types), 0)
              for index in range(count)]
    return ast.StructDef("s", fields, 0)


class TestLayoutInvariants:
    @given(struct_defs())
    def test_fields_never_overlap_x86(self, struct):
        layout = layout_struct_x86(struct)
        spans = sorted(
            (info.offset, info.offset + info.access_width)
            for info in layout.fields.values())
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    @given(struct_defs())
    def test_fields_never_overlap_ppc(self, struct):
        layout = layout_struct_ppc(struct)
        spans = sorted(
            (info.offset, info.offset + info.access_width)
            for info in layout.fields.values())
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    @given(struct_defs())
    def test_natural_alignment_x86(self, struct):
        layout = layout_struct_x86(struct)
        for field in struct.fields:
            info = layout.field(field.name)
            assert info.offset % info.access_width == 0

    @given(struct_defs())
    def test_ppc_fields_word_aligned_word_accessed(self, struct):
        layout = layout_struct_ppc(struct)
        for info in layout.fields.values():
            assert info.offset % 4 == 0
            assert info.access_width == 4

    @given(struct_defs())
    def test_ppc_never_smaller_than_x86(self, struct):
        """The paper's data-sparsity claim, as an invariant: the
        word-per-field layout is never more compact."""
        assert layout_struct_ppc(struct).size >= \
            layout_struct_x86(struct).size

    @given(struct_defs())
    def test_sizes_cover_all_fields(self, struct):
        for engine in (layout_struct_x86, layout_struct_ppc):
            layout = engine(struct)
            for info in layout.fields.values():
                assert info.offset + info.access_width <= layout.size

    @given(struct_defs())
    def test_masks_match_semantics(self, struct):
        layout = layout_struct_ppc(struct)
        for field in struct.fields:
            info = layout.field(field.name)
            if field.field_type.width == 4:
                assert info.load_mask == 0
            else:
                assert info.load_mask == \
                    (1 << (field.field_type.width * 8)) - 1
