"""Shared fixtures.

The expensive artifacts (kernel images, booted machines, clean-run
probes, small campaign batteries) are session-scoped: building the
kernel takes ~1 s and booting a machine ~0.5 s, so tests share them.
"""

from __future__ import annotations

import pytest

from repro.injection.campaign import CampaignContext
from repro.kernel.build import build_kernel, kernel_program
from repro.machine.machine import Machine


@pytest.fixture(scope="session", autouse=True)
def _isolated_campaign_context_cache():
    """Start and end the session with empty process-global caches.

    ``CampaignContext._cache`` is process-global and never invalidated
    on its own, so contexts built by an earlier in-process run (or left
    behind for a later one) could leak between parametrized arches.
    The ``repro.static`` predictor keeps module-level ``lru_cache``s
    keyed on kernel images (dead-bit and taint-masked-bit sets) with
    the same lifetime hazard — clear them on the same schedule.
    """
    from repro.static.predictor import clear_caches
    CampaignContext.clear_cache()
    clear_caches()
    yield
    CampaignContext.clear_cache()
    clear_caches()


@pytest.fixture(scope="session")
def kernel_program_fixture():
    return kernel_program()


@pytest.fixture(scope="session")
def x86_image():
    return build_kernel("x86")


@pytest.fixture(scope="session")
def ppc_image():
    return build_kernel("ppc")


def _static_triple(arch, image):
    from repro.static.cfg import build_cfg
    from repro.static.liveness import compute_liveness
    from repro.static.predictor import analyze_image
    cfg = build_cfg(arch, image)
    liveness = compute_liveness(cfg)
    report = analyze_image(arch, image, cfg=cfg, liveness=liveness)
    return cfg, liveness, report


@pytest.fixture(scope="session")
def x86_static(x86_image):
    """(KernelCFG, LivenessResult, StaticSensitivityReport) for x86."""
    return _static_triple("x86", x86_image)


@pytest.fixture(scope="session")
def ppc_static(ppc_image):
    """(KernelCFG, LivenessResult, StaticSensitivityReport) for ppc."""
    return _static_triple("ppc", ppc_image)


@pytest.fixture(scope="session")
def x86_context() -> CampaignContext:
    return CampaignContext.get("x86", seed=0, ops=36)


@pytest.fixture(scope="session")
def ppc_context() -> CampaignContext:
    return CampaignContext.get("ppc", seed=0, ops=36)


def _booted(arch: str) -> Machine:
    machine = Machine(arch)
    machine.boot()
    return machine


@pytest.fixture(scope="session")
def booted_x86() -> Machine:
    return _booted("x86")


@pytest.fixture(scope="session")
def booted_ppc() -> Machine:
    return _booted("ppc")


@pytest.fixture()
def fresh_x86(booted_x86) -> Machine:
    """A pristine fork per test (cheap)."""
    return booted_x86.fork()


@pytest.fixture()
def fresh_ppc(booted_ppc) -> Machine:
    return booted_ppc.fork()
