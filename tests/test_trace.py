"""Flight recorder: ring semantics, hooks, and non-perturbation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.injector import InjectionRun
from repro.injection.outcomes import CampaignKind, Outcome
from repro.store.codec import result_to_dict
from repro.trace.dissect import (
    dissect_traces, render_dissection, render_stage_table,
    stage_breakdown,
)
from repro.trace.events import (
    ARCH_KINDS, EventKind, TraceEvent, read_jsonl, write_jsonl,
)
from repro.trace.recorder import TraceRecorder


def _event(n: int, kind: EventKind = EventKind.FETCH) -> TraceEvent:
    return TraceEvent(kind, instret=n, cycles=2 * n, pc=0x1000 + n)


def _run_traced(context, kind: CampaignKind, index: int,
                mode: str = "full", capacity: int = 4096):
    """One campaign experiment with the recorder armed."""
    config = CampaignConfig(arch=context.arch, kind=kind,
                            count=index + 1, seed=0, ops=36)
    campaign = Campaign(config, context)
    targets = campaign.generate_targets()
    run = InjectionRun(campaign.spec_for(index, targets[index]))
    recorder = TraceRecorder(mode=mode, capacity=capacity)
    run.machine.attach_tracer(recorder)
    try:
        result = run.execute()
    finally:
        run.machine.detach_tracer()
    return result, recorder


def _run_untraced(context, kind: CampaignKind, index: int):
    config = CampaignConfig(arch=context.arch, kind=kind,
                            count=index + 1, seed=0, ops=36)
    campaign = Campaign(config, context)
    targets = campaign.generate_targets()
    return InjectionRun(campaign.spec_for(index, targets[index])).execute()


# -- ring buffer semantics ----------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(total=st.integers(min_value=0, max_value=300),
       capacity=st.integers(min_value=1, max_value=64))
def test_ring_keeps_exactly_last_n(total, capacity):
    recorder = TraceRecorder(mode="ring", capacity=capacity)
    for n in range(total):
        recorder.emit(_event(n))
    kept = recorder.events
    expected = [_event(n) for n in range(max(0, total - capacity),
                                         total)]
    assert kept == expected
    assert len(recorder) == min(total, capacity)
    assert recorder.total_emitted == total
    assert recorder.dropped == max(0, total - capacity)


def test_full_mode_keeps_everything():
    recorder = TraceRecorder(mode="full")
    for n in range(10_000):
        recorder.emit(_event(n))
    assert len(recorder) == 10_000
    assert recorder.dropped == 0


def test_invalid_mode_and_capacity_rejected():
    with pytest.raises(ValueError):
        TraceRecorder(mode="rolling")
    with pytest.raises(ValueError):
        TraceRecorder(mode="ring", capacity=0)


def test_clear_resets_counters():
    recorder = TraceRecorder(mode="ring", capacity=4)
    for n in range(9):
        recorder.emit(_event(n))
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.total_emitted == 0
    assert recorder.dropped == 0


# -- event codec --------------------------------------------------------------

def test_jsonl_round_trip(tmp_path):
    events = [
        TraceEvent(EventKind.FETCH, 5, 12, 0xC0100000),
        TraceEvent(EventKind.LOAD, 6, 14, 0xC0100004,
                   addr=0xC0500000, width=4, value=0xDEAD),
        TraceEvent(EventKind.REG_WRITE, 6, 15, 0xC0100004,
                   reg="eax", old=1, new=2),
        TraceEvent(EventKind.EXC_ENTER, 7, 20, 0xC0100008,
                   vector=14, addr=4, detail="fatal: page fault"),
        TraceEvent(EventKind.SCHED, 8, 30, 0xC010000C,
                   old=1, new=2, pid=2),
    ]
    path = tmp_path / "trace.jsonl"
    assert write_jsonl(events, path) == len(events)
    assert read_jsonl(path) == events


def test_arch_key_excludes_cycles():
    one = TraceEvent(EventKind.LOAD, 5, 100, 0x10, addr=0x20,
                     width=4, value=7)
    other = TraceEvent(EventKind.LOAD, 5, 999, 0x10, addr=0x20,
                       width=4, value=7)
    assert one.arch_key() == other.arch_key()
    assert ARCH_KINDS == {EventKind.FETCH, EventKind.LOAD,
                          EventKind.STORE, EventKind.REG_WRITE}


# -- armed recorder does not perturb the experiment ---------------------------

def test_armed_tracing_does_not_perturb_x86(x86_context):
    untraced = _run_untraced(x86_context, CampaignKind.STACK, 0)
    traced, recorder = _run_traced(x86_context, CampaignKind.STACK, 0)
    assert result_to_dict(traced) == result_to_dict(untraced)
    assert recorder.total_emitted > 0


def test_armed_tracing_does_not_perturb_ppc(ppc_context):
    untraced = _run_untraced(ppc_context, CampaignKind.CODE, 0)
    traced, recorder = _run_traced(ppc_context, CampaignKind.CODE, 0)
    assert result_to_dict(traced) == result_to_dict(untraced)
    assert recorder.total_emitted > 0


def test_ring_mode_bounds_memory_on_real_run(x86_context):
    result, recorder = _run_traced(x86_context, CampaignKind.STACK, 0,
                                   mode="ring", capacity=256)
    assert result.outcome in (Outcome.CRASH_KNOWN,
                              Outcome.CRASH_UNKNOWN)
    assert len(recorder) == 256
    assert recorder.dropped == recorder.total_emitted - 256


def test_fork_does_not_inherit_tracer(fresh_x86):
    recorder = TraceRecorder()
    fresh_x86.attach_tracer(recorder)
    clone = fresh_x86.fork()
    assert clone.trace is None
    assert clone.cpu.tracer is None
    assert fresh_x86.detach_tracer() is recorder


# -- crash runs carry the stage boundaries ------------------------------------

@pytest.mark.parametrize("arch,kind,index", [
    ("x86", CampaignKind.STACK, 0),
    ("ppc", CampaignKind.CODE, 0),
])
def test_crash_trace_has_stage_boundaries(arch, kind, index,
                                          x86_context, ppc_context):
    context = x86_context if arch == "x86" else ppc_context
    result, recorder = _run_traced(context, kind, index)
    assert result.crash_cycles is not None
    kinds = [event.kind for event in recorder.events]
    assert EventKind.INJECT in kinds
    assert EventKind.CRASH in kinds
    assert EventKind.EXC_STAGE3 in kinds
    assert any(event.kind is EventKind.EXC_ENTER
               and event.detail.startswith("fatal:")
               for event in recorder.events)
    breakdown = stage_breakdown(recorder.events, result=result)
    assert breakdown is not None
    assert breakdown.stage1 + breakdown.stage2 + breakdown.stage3 \
        == breakdown.total == result.latency
    table = render_stage_table([breakdown], arch)
    assert "cycles-to-crash by stage" in table
    assert str(breakdown.total) in table


def test_instret_latency_recorded_on_crash(x86_context):
    from repro.analysis.latency import instruction_latency_histogram
    result = _run_untraced(x86_context, CampaignKind.STACK, 0)
    assert result.crash_instret is not None
    assert result.activation_instret is not None
    assert result.latency_instructions is not None
    assert result.latency_instructions <= result.latency
    histogram = instruction_latency_histogram([result])
    assert sum(histogram.values()) == 1


# -- dissection on synthetic traces -------------------------------------------

def test_dissect_identical_traces_is_clean():
    events = [_event(n) for n in range(20)]
    dissection = dissect_traces(events, events)
    assert not dissection.infected
    assert dissection.hops == []
    assert "no architectural divergence" in \
        render_dissection(dissection)


def test_dissect_orders_hops_by_first_corruption():
    clean = [
        TraceEvent(EventKind.FETCH, 1, 2, 0x10),
        TraceEvent(EventKind.LOAD, 2, 4, 0x14, addr=0x100, width=4,
                   value=5),
        TraceEvent(EventKind.REG_WRITE, 2, 5, 0x14, reg="r3", old=0,
                   new=5),
    ]
    faulty = [
        clean[0],
        TraceEvent(EventKind.LOAD, 2, 4, 0x14, addr=0x100, width=4,
                   value=9),                      # corrupt load
        TraceEvent(EventKind.REG_WRITE, 2, 5, 0x14, reg="r3", old=0,
                   new=9),                        # infects r3
        TraceEvent(EventKind.STORE, 3, 7, 0x18, addr=0x200, width=4,
                   value=9),                      # r3 spills to memory
    ]
    dissection = dissect_traces(faulty, clean)
    assert dissection.infected
    assert dissection.first_divergence.kind is EventKind.LOAD
    assert [hop.location for hop in dissection.hops] == \
        ["mem 0x00000100", "reg r3", "mem 0x00000200"]
    assert dissection.infected_registers == {"r3"}
    assert dissection.infected_addresses == {0x100, 0x200}
    report = render_dissection(dissection)
    assert "reg r3" in report and "mem 0x00000200" in report
