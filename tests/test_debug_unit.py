"""Tests for the debug unit (breakpoints/watchpoints)."""

import pytest

from repro.isa.debug import DebugUnit
from repro.isa.faults import AccessKind


class TestInstructionBreakpoints:
    def test_fires_on_exact_address(self):
        unit = DebugUnit()
        hits = []
        unit.on_breakpoint = hits.append
        unit.set_instruction_breakpoint(0x1000)
        unit.check_fetch(0x0FFF, 1)
        unit.check_fetch(0x1001, 2)
        assert not hits
        unit.check_fetch(0x1000, 3)
        assert len(hits) == 1
        assert hits[0].addr == 0x1000
        assert hits[0].cycles == 3

    def test_one_shot_removes_itself(self):
        unit = DebugUnit()
        hits = []
        unit.on_breakpoint = hits.append
        unit.set_instruction_breakpoint(0x1000)
        unit.check_fetch(0x1000, 1)
        unit.check_fetch(0x1000, 2)
        assert len(hits) == 1
        assert not unit.has_instruction_breakpoints

    def test_persistent_breakpoint(self):
        unit = DebugUnit()
        hits = []
        unit.on_breakpoint = hits.append
        unit.set_instruction_breakpoint(0x1000, one_shot=False)
        unit.check_fetch(0x1000, 1)
        unit.check_fetch(0x1000, 2)
        assert len(hits) == 2

    def test_slot_limit(self):
        unit = DebugUnit(insn_slots=2)
        unit.set_instruction_breakpoint(0x1000)
        unit.set_instruction_breakpoint(0x2000)
        with pytest.raises(ValueError):
            unit.set_instruction_breakpoint(0x3000)


class TestWatchpoints:
    def test_fires_on_overlap(self):
        unit = DebugUnit()
        hits = []
        unit.on_watchpoint = hits.append
        unit.set_watchpoint(0x100, length=1)
        # word access covering the watched byte
        unit.check_access(0x0FE, 4, AccessKind.READ, 5)
        assert len(hits) == 1
        assert hits[0].kind is AccessKind.READ

    def test_no_fire_outside(self):
        unit = DebugUnit()
        hits = []
        unit.on_watchpoint = hits.append
        unit.set_watchpoint(0x100, length=1)
        unit.check_access(0x101, 4, AccessKind.READ, 1)
        unit.check_access(0x0FC, 4, AccessKind.WRITE, 2)
        assert not hits

    def test_kind_filtering(self):
        unit = DebugUnit()
        hits = []
        unit.on_watchpoint = hits.append
        wp = unit.set_watchpoint(0x100, length=4, on_read=False)
        unit.check_access(0x100, 4, AccessKind.READ, 1)
        assert not hits
        unit.check_access(0x100, 4, AccessKind.WRITE, 2)
        assert len(hits) == 1
        unit.clear_watchpoint(wp)
        unit.check_access(0x100, 4, AccessKind.WRITE, 3)
        assert len(hits) == 1

    def test_clear_twice_is_safe(self):
        unit = DebugUnit()
        wp = unit.set_watchpoint(0x100)
        unit.clear_watchpoint(wp)
        unit.clear_watchpoint(wp)
        assert not unit.has_watchpoints

    def test_slot_limit(self):
        unit = DebugUnit(data_slots=1)
        unit.set_watchpoint(0x100)
        with pytest.raises(ValueError):
            unit.set_watchpoint(0x200)

    def test_clear_all(self):
        unit = DebugUnit()
        unit.set_watchpoint(0x100)
        unit.set_instruction_breakpoint(0x1000)
        unit.clear_all()
        assert not unit.has_watchpoints
        assert not unit.has_instruction_breakpoints
