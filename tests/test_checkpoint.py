"""Checkpoint-ladder dispatch must be invisible to every experiment.

Three layers of proof, mirroring the block-vs-step harness
(``test_block_equiv``):

* **lockstep state equivalence** — for a real campaign target of every
  kind on both arches under both exec modes, the full machine state
  (all registers, flags, instret, cycles, and a memory digest) at the
  target's trigger instant is captured in a checkpoint-dispatched run
  and a from-boot run of the *same spec*, and compared bit-for-bit —
  along with the final state and the clean run's result record;
* **result equivalence** — the same spec executed as a full injection
  experiment (error installed) on both paths yields byte-identical
  serialized results;
* **ladder unit behavior** — rung placement, nearest-rung selection
  strictness, per-context caching, config validation, and the
  seed-invariance postconditions (a poisoned capture run must fail the
  build loudly, not corrupt every dispatched experiment silently).

``test_campaign_digests`` complements this file at campaign scale: all
eight pinned digests match with checkpoints on and off.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import random
from dataclasses import replace
from types import SimpleNamespace

import pytest

import repro.injection.campaign as campaign_mod
from repro.checkpoint.ladder import (
    DEFAULT_CHECKPOINTS, Checkpoint, CheckpointLadder,
    LadderInvariantError, build_ladder,
)
from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.injector import InjectionRun
from repro.injection.outcomes import CampaignKind
from repro.store.codec import result_to_dict

KINDS = (CampaignKind.STACK, CampaignKind.REGISTER, CampaignKind.DATA,
         CampaignKind.CODE)

#: targets generated per kind while hunting for a rung-eligible case —
#: generation is pure math (no simulation), so a big pool is cheap;
#: data targets need one because the access screen rejects most draws
_POOL = {CampaignKind.DATA: 200}


def _context(request, arch):
    return request.getfixturevalue(f"{arch}_context")


# ---------------------------------------------------------------------------
# state snapshots (same shape as test_block_equiv)


def _mem_digest(mem) -> str:
    h = hashlib.sha256()
    for index in sorted(mem._pages):
        h.update(index.to_bytes(4, "little"))
        h.update(mem._pages[index])
    return h.hexdigest()


def _snapshot(arch: str, cpu):
    if arch == "x86":
        return (tuple(cpu.regs), cpu.eflags, cpu.eip, cpu.current_eip,
                cpu.instret, cpu.cycles, cpu.cr0, cpu.cr2,
                cpu.user_mode, cpu.halted, _mem_digest(cpu.mem))
    return (tuple(cpu.gpr), cpu.cr, cpu.xer, cpu.lr, cpu.ctr,
            cpu.pc, cpu.current_pc, cpu.instret, cpu.cycles, cpu.msr,
            tuple(sorted(cpu.spr.items())), _mem_digest(cpu.mem))


# ---------------------------------------------------------------------------
# lockstep equivalence: checkpoint dispatch vs from-boot


def _checkpointed_case(campaign):
    """First unscreened target whose spec selects a checkpoint."""
    for index, target in enumerate(campaign.generate_targets()):
        if campaign._screen_not_activated(target):
            continue
        spec = campaign.spec_for(index, target)
        if spec.checkpoint is not None:
            trigger, _inclusive = campaign._trigger_instret(target)
            return spec, trigger
    raise AssertionError("no target selected a checkpoint rung")


def _run_clean_to_trigger(spec, arch, trigger):
    """Run *spec* without installing the error, snapshotting the full
    machine state at the trigger instant and at completion."""
    run = InjectionRun(spec)
    snaps = {}

    def capture() -> None:
        snaps["trigger"] = _snapshot(arch, run.machine.cpu)

    run.machine.schedule_action(trigger, capture)
    result = run.execute(install=False)
    assert "trigger" in snaps, "capture action never fired"
    return snaps["trigger"], _snapshot(arch, run.machine.cpu), result


@pytest.mark.parametrize("exec_mode", ["block", "step"])
@pytest.mark.parametrize("kind", KINDS, ids=[k.value for k in KINDS])
@pytest.mark.parametrize("arch", ["x86", "ppc"])
def test_dispatch_state_lockstep(arch, kind, exec_mode, request):
    """Full machine state at the trigger instant — and at the end of
    the window — is bit-identical between a checkpoint-dispatched run
    and a from-boot run of the same spec, for a real campaign target
    of every kind under both execution cores."""
    context = _context(request, arch)
    config = CampaignConfig(arch=arch, kind=kind,
                            count=_POOL.get(kind, 12), seed=0,
                            ops=context.ops, exec_mode=exec_mode)
    spec, trigger = _checkpointed_case(Campaign(config, context))

    dispatched = _run_clean_to_trigger(spec, arch, trigger)
    from_boot = _run_clean_to_trigger(
        replace(spec, checkpoint=None), arch, trigger)

    assert dispatched[0] == from_boot[0], "state at trigger diverged"
    assert dispatched[1] == from_boot[1], "final state diverged"
    assert result_to_dict(dispatched[2]) == result_to_dict(from_boot[2])
    # the rung itself stays pristine: experiments fork it, never run it
    assert spec.checkpoint.machine.cpu.instret == spec.checkpoint.instret
    assert spec.checkpoint.machine._rng is None


@pytest.mark.parametrize("exec_mode", ["block", "step"])
@pytest.mark.parametrize("kind", KINDS, ids=[k.value for k in KINDS])
@pytest.mark.parametrize("arch", ["x86", "ppc"])
def test_dispatch_result_equivalence(arch, kind, exec_mode, request):
    """The same spec run as a *full injection experiment* (error
    installed) serializes byte-identically on both paths."""
    context = _context(request, arch)
    config = CampaignConfig(arch=arch, kind=kind,
                            count=_POOL.get(kind, 12), seed=0,
                            ops=context.ops, exec_mode=exec_mode)
    spec, _trigger = _checkpointed_case(Campaign(config, context))

    dispatched = InjectionRun(spec).execute()
    from_boot = InjectionRun(replace(spec, checkpoint=None)).execute()
    assert result_to_dict(dispatched) == result_to_dict(from_boot)


# ---------------------------------------------------------------------------
# ladder construction


@pytest.mark.parametrize("arch", ["x86", "ppc"])
def test_ladder_shape(arch, request):
    context = _context(request, arch)
    ladder = context.ladder(DEFAULT_CHECKPOINTS)
    boot, total = context.run_window
    assert 1 <= len(ladder.checkpoints) <= DEFAULT_CHECKPOINTS
    instrets = [rung.instret for rung in ladder.checkpoints]
    assert instrets == sorted(set(instrets)), \
        "rungs must be strictly ascending (no duplicates)"
    assert all(boot < instret <= total for instret in instrets)
    for rung in ladder.checkpoints:
        assert rung.machine.cpu.instret == rung.instret
        assert 0 <= rung.completed_ops <= context.ops
    # building the ladder must not advance the shared base machine
    assert context.base_machine.cpu.instret == boot
    # per-context cache: same count -> same object, no rebuild
    assert context.ladder(DEFAULT_CHECKPOINTS) is ladder


def test_ladder_count_validation(x86_context):
    assert x86_context.ladder(0) is None
    assert x86_context.ladder(-3) is None
    with pytest.raises(ValueError):
        build_ladder(x86_context, 0)
    for bad in (-1, True, "8", 2.0):
        with pytest.raises(ValueError):
            CampaignConfig(arch="x86", kind=CampaignKind.REGISTER,
                           count=1, checkpoints=bad)


def test_best_for_selection_strictness():
    def rung(instret):
        return Checkpoint(instret=instret, machine=None, programs={},
                          completed_ops=0, ops_since_tick=0, rounds=0,
                          last_pet=0)

    ladder = CheckpointLadder(arch="x86", seed=0, ops=1, boot_instret=0,
                              total_instret=100,
                              checkpoints=[rung(10), rung(20), rung(30)])
    assert ladder.best_for(5) is None
    # strict (stack/data/register): a rung exactly at the trigger is
    # ambiguous and must be skipped ...
    assert ladder.best_for(10) is None
    assert ladder.best_for(20).instret == 10
    # ... inclusive (code): a rung at the trigger is admissible
    assert ladder.best_for(10, inclusive=True).instret == 10
    assert ladder.best_for(20, inclusive=True).instret == 20
    assert ladder.best_for(25).instret == 20
    assert ladder.best_for(10 ** 9).instret == 30
    assert ladder.best_for(10 ** 9, inclusive=True).instret == 30


def test_poisoned_capture_run_fails_loudly(x86_context):
    """A capture run that materializes per-machine randomness violates
    the seed-invariance precondition and must abort the build."""

    class PoisonedBase:
        def fork(self):
            machine = x86_context.base_machine.fork()
            machine._rng = random.Random(0)
            return machine

    shim = SimpleNamespace(
        arch=x86_context.arch, seed=x86_context.seed,
        ops=x86_context.ops, probe=x86_context.probe,
        base_machine=PoisonedBase(),
        base_programs=x86_context.base_programs)
    with pytest.raises(LadderInvariantError):
        build_ladder(shim, 2)


# ---------------------------------------------------------------------------
# parallel workers inherit the parent's ladder


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="ladder sharing rides OS fork inheritance")
def test_workers_inherit_parent_ladder(x86_context, tmp_path,
                                       monkeypatch):
    """A parallel campaign builds its ladder exactly once — in the
    parent, before the pool forks — and no worker re-runs the clean
    probe: the snapshots and the context both arrive through fork
    inheritance.  (Counters are files because the calls under test
    would happen in worker processes if they happened at all.)"""
    build_log = tmp_path / "ladder_builds"
    probe_log = tmp_path / "probe_runs"

    real_build = campaign_mod.build_ladder
    real_probe = campaign_mod.probe_clean_run

    def counting_build(context, count):
        with build_log.open("a") as fh:
            fh.write("build\n")
        return real_build(context, count)

    def counting_probe(*args, **kwargs):
        with probe_log.open("a") as fh:
            fh.write("probe\n")
        return real_probe(*args, **kwargs)

    monkeypatch.setattr(campaign_mod, "build_ladder", counting_build)
    monkeypatch.setattr(campaign_mod, "probe_clean_run", counting_probe)
    # a rung count nothing else uses, dropped first so the test is
    # order-independent within the session-scoped context
    x86_context._ladders.pop(5, None)

    config = CampaignConfig(arch="x86", kind=CampaignKind.REGISTER,
                            count=6, seed=0, ops=x86_context.ops,
                            checkpoints=5)
    result = Campaign(config, x86_context).run(workers=2)
    assert result.injected == 6
    assert not result.failures
    assert build_log.read_text().count("build") == 1, \
        "ladder must be built exactly once, in the parent"
    assert not probe_log.exists(), \
        "no worker may re-run the clean-run probe"
