"""Fault-model campaign outcomes pinned against recorded digests.

``tests/data/fault_model_digests.json`` pins one deterministic
campaign per non-default fault model per architecture (the single-bit
model is pinned by the eight ``campaign_digests.json`` recordings,
which this suite's registry extraction provably left byte-identical).
Each gate campaign replays three ways:

* serially (the recording conditions),
* sharded at ``workers=2`` — the per-model determinism sweep: plan
  derivation keys on the global index, so sharding must be invisible,
* with checkpoint dispatch disabled — for the intermittent model this
  is the retrigger-equivalence proof: the post-trigger arming chain
  schedules relative to fire-time instret, so time-travel dispatch
  must not move a single re-flip.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.outcomes import CampaignKind

DIGEST_PATH = Path(__file__).parent / "data" \
    / "fault_model_digests.json"
DIGESTS = json.loads(DIGEST_PATH.read_text())

_KINDS = {kind.value: kind for kind in CampaignKind}


def _digest(result) -> str:
    from repro.store.codec import canonical_json, result_to_dict
    payload = canonical_json(
        [result_to_dict(r) for r in result.results])
    return hashlib.sha256(payload.encode()).hexdigest()


def _run_and_check(key, workers, x86_context, ppc_context,
                   checkpoints=None):
    arch, model = key.split("/")
    recorded = DIGESTS[key]
    extra = {} if checkpoints is None else {"checkpoints": checkpoints}
    config = CampaignConfig(arch=arch, kind=_KINDS[recorded["kind"]],
                            count=recorded["count"],
                            seed=recorded["seed"], ops=recorded["ops"],
                            fault_model=model, **extra)
    context = x86_context if arch == "x86" else ppc_context
    result = Campaign(config, context).run(workers=workers)
    assert result.injected == recorded["count"]
    assert not result.failures
    assert _digest(result) == recorded["sha256"], (
        f"{key} (workers={workers}, checkpoints={checkpoints}) "
        f"diverged from the recording")


@pytest.mark.parametrize(
    "key", sorted(DIGESTS),
    ids=[key.replace("/", "-") for key in sorted(DIGESTS)])
@pytest.mark.parametrize("workers", [1, 2],
                         ids=["serial", "workers2"])
def test_matches_recorded_digest(key, workers, x86_context,
                                 ppc_context):
    _run_and_check(key, workers, x86_context, ppc_context)


@pytest.mark.parametrize(
    "key", sorted(DIGESTS),
    ids=[key.replace("/", "-") for key in sorted(DIGESTS)])
def test_checkpoints_disabled_still_matches(key, x86_context,
                                            ppc_context):
    """From-boot dispatch pins to the same digests the checkpointed
    runs match — in particular the intermittent retrigger chain fires
    at identical instrets whether or not the pre-trigger replay was
    skipped."""
    _run_and_check(key, 1, x86_context, ppc_context, checkpoints=0)
