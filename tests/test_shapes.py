"""Shape tests: the paper's comparative findings must hold.

These run scaled-down campaigns (shared across the module) and assert
the *direction* and rough *magnitude relations* of the paper's headline
results — who is more sensitive, which categories dominate, where the
latency mass sits.  Absolute percentages are not asserted tightly: the
substrate is a simulator and the samples are small.
"""

import pytest

from repro.analysis.figures import crash_cause_percentages
from repro.analysis.latency import cumulative_percent_below
from repro.analysis.tables import build_row
from repro.core import Study, StudyConfig
from repro.injection.outcomes import (
    CampaignKind, CrashCauseG4, CrashCauseP4, Outcome,
)


@pytest.fixture(scope="module")
def study():
    config = StudyConfig(seed=4, ops=36, overrides={
        "x86": {CampaignKind.CODE: 60, CampaignKind.STACK: 150,
                CampaignKind.DATA: 300, CampaignKind.REGISTER: 90},
        "ppc": {CampaignKind.CODE: 60, CampaignKind.STACK: 150,
                CampaignKind.DATA: 300, CampaignKind.REGISTER: 90},
    })
    return Study(config).run()


def row_of(study, arch, kind):
    return build_row(kind, study.results_for(arch, kind))


class TestManifestationOrdering:
    """Finding 1: P4 manifestation is roughly twice the G4's."""

    def test_stack_manifestation_p4_above_g4(self, study):
        p4 = row_of(study, "x86", CampaignKind.STACK).manifested_pct
        g4 = row_of(study, "ppc", CampaignKind.STACK).manifested_pct
        assert p4 > g4, (p4, g4)
        assert p4 > 35.0                  # paper: 56%
        assert g4 < p4 * 0.85             # clear separation

    def test_register_manifestation_p4_above_g4(self, study):
        p4 = row_of(study, "x86", CampaignKind.REGISTER).manifested_pct
        g4 = row_of(study, "ppc", CampaignKind.REGISTER).manifested_pct
        assert p4 > g4, (p4, g4)
        assert p4 < 30.0                  # registers are mostly inert
        assert g4 < 15.0                  # paper: ~5%

    def test_data_manifestation_p4_above_g4(self, study):
        p4 = row_of(study, "x86", CampaignKind.DATA)
        g4 = row_of(study, "ppc", CampaignKind.DATA)
        if p4.activated >= 12 and g4.activated >= 12:
            # direction only; tiny activated samples are noisy
            assert p4.manifested_pct >= g4.manifested_pct - 10.0
        else:
            pytest.skip("too few activated data errors at this scale")

    def test_register_not_manifested_dominates(self, study):
        """Paper: 89.5% (P4) and 95.1% (G4) of register errors are
        absorbed silently."""
        for arch, floor in (("x86", 70.0), ("ppc", 85.0)):
            row = row_of(study, arch, CampaignKind.REGISTER)
            assert row.pct(row.not_manifested) > floor


class TestActivation:
    def test_code_activation_in_paper_band(self, study):
        for arch in ("x86", "ppc"):
            row = row_of(study, arch, CampaignKind.CODE)
            assert 40.0 < row.activation_pct < 90.0

    def test_data_activation_is_rare(self, study):
        """Paper: 0.5-1.5% of data injections activate."""
        for arch in ("x86", "ppc"):
            row = row_of(study, arch, CampaignKind.DATA)
            assert row.activation_pct < 12.0

    def test_screening_marks_most_data_targets(self, study):
        results = study.results_for("ppc", CampaignKind.DATA)
        screened = sum(1 for r in results if r.screened)
        assert screened > len(results) * 0.7


class TestCrashCauses:
    def test_g4_stack_overflow_exists_p4_lacks_it(self, study):
        """The G4 wrapper reports Stack Overflow; the P4 cannot."""
        g4 = crash_cause_percentages(
            study.results_for("ppc", CampaignKind.STACK))
        assert g4.get(CrashCauseG4.STACK_OVERFLOW, 0.0) > 10.0
        p4_all = crash_cause_percentages(study.results_for("x86"))
        assert all(not isinstance(cause, CrashCauseG4)
                   for cause in p4_all)

    def test_p4_stack_errors_become_memory_faults(self, study):
        """On the P4 the same errors surface as Bad Paging / NULL /
        GP (paper Section 5.1)."""
        p4 = crash_cause_percentages(
            study.results_for("x86", CampaignKind.STACK))
        memory_share = (p4.get(CrashCauseP4.BAD_PAGING, 0)
                        + p4.get(CrashCauseP4.NULL_POINTER, 0)
                        + p4.get(CrashCauseP4.GENERAL_PROTECTION, 0))
        assert memory_share > 60.0

    def test_code_illegal_instruction_g4_above_p4(self, study):
        """RISC bit flips usually land on undefined encodings; CISC
        flips resynchronize into valid-but-wrong streams (paper 5.3)."""
        p4 = crash_cause_percentages(
            study.results_for("x86", CampaignKind.CODE))
        g4 = crash_cause_percentages(
            study.results_for("ppc", CampaignKind.CODE))
        p4_illegal = p4.get(CrashCauseP4.INVALID_INSTRUCTION, 0.0)
        g4_illegal = g4.get(CrashCauseG4.ILLEGAL_INSTRUCTION, 0.0)
        assert g4_illegal > p4_illegal
        assert p4_illegal < 40.0          # paper: 24.2%
        assert g4_illegal > 30.0          # paper: 41.5%

    def test_code_invalid_memory_access_dominates_p4(self, study):
        p4 = crash_cause_percentages(
            study.results_for("x86", CampaignKind.CODE))
        share = p4.get(CrashCauseP4.BAD_PAGING, 0) + \
            p4.get(CrashCauseP4.NULL_POINTER, 0)
        assert share > 50.0               # paper: ~70%

    def test_data_crashes_mostly_memory_faults(self, study):
        g4 = crash_cause_percentages(
            study.results_for("ppc", CampaignKind.DATA))
        if g4:
            assert g4.get(CrashCauseG4.BAD_AREA, 0.0) > 50.0


class TestLatencyShapes:
    def test_stack_g4_crashes_fast(self, study):
        """Paper: 80% of G4 stack-error crashes within 3k cycles (the
        exception-entry wrapper detects corrupted stack pointers
        early).  Our stage-2/3 cost model puts the fast cluster at
        1.5-7k cycles, so assert against the next bucket boundary."""
        results = study.results_for("ppc", CampaignKind.STACK)
        crashes = [r for r in results
                   if r.outcome in (Outcome.CRASH_KNOWN,
                                    Outcome.CRASH_UNKNOWN)
                   and r.latency is not None]
        if len(crashes) < 4:
            pytest.skip("too few G4 stack crashes at this scale")
        below = cumulative_percent_below(results, 10_000)
        assert below > 60.0

    def test_code_p4_fast_g4_slow(self, study):
        """Paper: 70% of P4 code crashes < 10k cycles; ~90% of G4's
        are above 10k."""
        p4 = cumulative_percent_below(
            study.results_for("x86", CampaignKind.CODE), 10_000)
        g4 = cumulative_percent_below(
            study.results_for("ppc", CampaignKind.CODE), 10_000)
        assert p4 > 60.0
        assert g4 < p4 - 15.0

    def test_some_register_errors_park_for_millions_of_cycles(
            self, study):
        """Paper Section 6: errors in rarely-consumed registers (FS/GS,
        SPRG2) park across scheduler quanta — crash latencies reach
        tens of millions of cycles."""
        merged = (study.results_for("x86", CampaignKind.REGISTER)
                  + study.results_for("ppc", CampaignKind.REGISTER))
        crashed = [r.latency for r in merged if r.latency is not None
                   and r.outcome in (Outcome.CRASH_KNOWN,
                                     Outcome.CRASH_UNKNOWN)]
        if len(crashed) < 5:
            pytest.skip("too few register crashes at this scale")
        assert max(crashed) > 1_000_000


class TestRendering:
    def test_render_all_mentions_everything(self, study):
        text = study.render_all()
        assert "Table 5" in text and "Table 6" in text
        assert "Figure 16" in text
        assert "Stack Overflow" in text
        assert "paper" in text and "measured" in text
