"""Linker and layout tests."""

import pytest

from repro.kcc import analyze, build_image, parse
from repro.kcc.layout import (
    compute_struct_layouts, layout_struct_ppc, layout_struct_x86,
    place_globals,
)
from repro.kcc.linker import LinkError

SOURCE = """
struct widget { flag: u8; count: u16; total: u32; next: *widget; }
global widgets: widget[4];
global lonely_byte: u8 = 9;
global lonely_half: u16 = 900;
global words: u32[4] = {10, 20, 30, 40};
global bytes_: u8[8] = {1, 2, 3};
fn helper(x: u32) -> u32 { return x + 1; }
fn entry(x: u32) -> u32 { return helper(x) * 2; }
"""


@pytest.fixture(scope="module")
def program():
    return analyze(parse(SOURCE))


class TestStructLayout:
    def test_x86_packed_natural_alignment(self, program):
        layout = layout_struct_x86(program.struct_by_name("widget"))
        assert layout.field("flag").offset == 0
        assert layout.field("count").offset == 2       # aligned to 2
        assert layout.field("total").offset == 4
        assert layout.field("next").offset == 8
        assert layout.size == 12
        assert layout.field("flag").access_width == 1
        assert layout.field("count").access_width == 2

    def test_ppc_word_per_field(self, program):
        layout = layout_struct_ppc(program.struct_by_name("widget"))
        assert [layout.field(n).offset
                for n in ("flag", "count", "total", "next")] == \
            [0, 4, 8, 12]
        assert layout.size == 16
        # every access is a word; sub-word fields masked in-register
        assert layout.field("flag").access_width == 4
        assert layout.field("flag").load_mask == 0xFF
        assert layout.field("count").load_mask == 0xFFFF
        assert layout.field("total").load_mask == 0

    def test_data_section_sparser_on_ppc(self, program):
        x86 = place_globals(program, "x86", 0xC0300000,
                            compute_struct_layouts(program, "x86"))
        ppc = place_globals(program, "ppc", 0xC0300000,
                            compute_struct_layouts(program, "ppc"))
        assert ppc["widgets"].size > x86["widgets"].size
        # single scalars get a whole word on ppc
        assert ppc["lonely_byte"].elem_size == 4
        assert x86["lonely_byte"].elem_size == 1
        # dense arrays stay dense on both
        assert ppc["bytes_"].elem_size == 1
        assert x86["bytes_"].elem_size == 1


class TestLink:
    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_symbols_resolve(self, program, arch):
        image = build_image(program, arch)
        assert image.symbol("entry") != image.symbol("helper")
        entry = image.functions["entry"]
        assert image.function_at(entry.addr).name == "entry"
        assert image.function_at(entry.addr + entry.size - 1).name == \
            "entry"
        assert image.function_at(0xDEAD0000) is None

    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_initialized_data(self, program, arch):
        image = build_image(program, arch)
        base = image.data_base
        info = image.globals["words"]
        little = image.little_endian
        offset = info.addr - base
        raw = image.data_bytes[offset:offset + 4]
        assert int.from_bytes(raw, "little" if little else "big") == 10
        ranges = image.init_data_ranges
        assert any(info.addr in r for r in ranges)
        # uninitialized struct array is not in the initialized set
        widgets = image.globals["widgets"]
        assert not any(widgets.addr in r for r in ranges)

    def test_undefined_symbol_fails(self):
        bad = analyze(parse(
            "fn f() -> u32 { return __icall0(&f) + g(); }"
            "fn g() -> u32 { return 0; }"))
        # remove g's body from functions to force a dangling reloc
        bad.functions = [bad.functions[0]]
        with pytest.raises(LinkError):
            build_image(bad, "x86")

    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_insn_addr_maps(self, program, arch):
        image = build_image(program, arch)
        for info in image.functions.values():
            assert info.insn_addrs[0] == info.addr
            assert all(info.addr <= a < info.addr + info.size
                       for a in info.insn_addrs)
            assert sorted(info.insn_addrs) == list(info.insn_addrs)

    def test_kernel_images_build(self, x86_image, ppc_image):
        assert x86_image.functions.keys() == ppc_image.functions.keys()
        assert "kupdate" in x86_image.functions
        assert "kjournald" in x86_image.functions
        assert "free_pages_ok" in x86_image.functions
        assert "alloc_skb" in x86_image.functions
        assert x86_image.functions["memcpy"].subsystem == "lib"
        assert x86_image.functions["kupdate"].subsystem == "fs"
        # the ppc data section is at least as large (word padding)
        assert len(ppc_image.data_bytes) >= len(x86_image.data_bytes)
