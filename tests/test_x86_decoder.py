"""Decoder tests for the P4-like core: lengths, forms, density."""

import pytest
from hypothesis import given, strategies as st

from repro.x86 import decoder
from repro.x86.decoder import decode, exec_invalid

PAD = b"\x00" * decoder.MAX_INSN_LEN


def d(raw: bytes):
    return decode(raw + PAD, 0)


class TestLengths:
    @pytest.mark.parametrize("raw,length,mnemonic", [
        (b"\x90", 1, "nop"),
        (b"\xc3", 1, "ret"),
        (b"\x55", 1, "push"),
        (b"\x5d", 1, "pop"),
        (b"\x89\xe5", 2, "mov"),
        (b"\x8b\x45\xfc", 3, "mov"),
        (b"\x8d\x65\xf4", 3, "lea"),
        (b"\xb8\x07\x00\x00\x00", 5, "mov"),
        (b"\xe8\x00\x00\x00\x00", 5, "call"),
        (b"\x0f\x0b", 2, "ud2a"),
        (b"\x83\xec\x10", 3, "grp1s"),
        (b"\x81\xc4\x00\x01\x00\x00", 6, "grp1"),
        (b"\xcd\x80", 2, "int"),
        (b"\x74\x27", 2, "je"),
        (b"\x0f\x84\x10\x00\x00\x00", 6, "je"),
        (b"\x8b\x8a\xe0\x7a\x43\xc0", 6, "mov"),      # paper fig 7
        (b"\xf7\xf1", 2, "grp3"),
        (b"\x66\x89\x45\xe0", 4, "mov"),              # 16-bit prefix
    ])
    def test_known_lengths(self, raw, length, mnemonic):
        instr = d(raw)
        assert instr.length == length
        assert instr.mnemonic == mnemonic

    def test_paper_figure7_corruption(self):
        """8d 65 f4 -> flip turns it into lea 0x5b(...,%esi,8),%esp.

        The paper's Figure 7: one bit flip merges `lea -0xc(%ebp),%esp`
        and the following `pop %ebx` (5b) into a single longer lea with
        a SIB byte, desynchronizing the stream.
        """
        original = d(b"\x8d\x65\xf4\x5b\x5e\x5f\x5d\xc3")
        assert original.length == 3
        corrupted = d(b"\x8d\x64\xf4\x5b\x5e\x5f\x5d\xc3")
        assert corrupted.mnemonic == "lea"
        assert corrupted.length == 4           # consumed the pop %ebx
        assert corrupted.index == 6            # %esi
        assert corrupted.scale == 8
        assert corrupted.disp == 0x5B

    def test_invalid_opcode_decodes_to_ud(self):
        instr = d(b"\xd8\x00")                 # FPU escape: not modelled
        assert instr.execute is exec_invalid


class TestModRM:
    def test_register_form(self):
        instr = d(b"\x89\xe5")                 # mov %esp,%ebp
        assert instr.rm_reg == 5
        assert instr.reg == 4

    def test_disp8(self):
        instr = d(b"\x8b\x45\xe0")             # mov -0x20(%ebp),%eax
        assert instr.base == 5
        assert instr.disp == 0xFFFFFFE0

    def test_disp32_absolute(self):
        instr = d(b"\x8b\x0d\xe0\x7a\x43\xc0")
        assert instr.base == -1
        assert instr.index == -1
        assert instr.disp == 0xC0437AE0

    def test_sib_scaled_index(self):
        instr = d(b"\x8b\x04\x8d\x00\x00\x30\xc0")
        # mov 0xc0300000(,%ecx,4),%eax
        assert instr.index == 1
        assert instr.scale == 4
        assert instr.disp == 0xC0300000

    def test_esp_base_requires_sib(self):
        instr = d(b"\x89\x04\x24")             # mov %eax,(%esp)
        assert instr.base == 4
        assert instr.index == -1


class TestPrefixes:
    def test_operand_size(self):
        instr = d(b"\x66\x89\x45\xe0")
        assert instr.width == 2

    def test_fs_override(self):
        instr = d(b"\x64\x8b\x05\x00\x00\x00\x00")
        assert instr.seg == 4                  # SEG_FS

    def test_lock_ignored(self):
        instr = d(b"\xf0\x01\x03")
        assert instr.mnemonic == "add"

    def test_rep_movsd(self):
        instr = d(b"\xf3\xa5")
        assert instr.mnemonic == "rep movsd"
        assert instr.op2 == 1


class TestDensity:
    def test_majority_of_single_bytes_decode(self):
        """Most one-byte opcodes are defined — the variable-length ISA
        property that keeps the P4's Invalid-Instruction share low."""
        valid = 0
        for opcode in range(256):
            instr = d(bytes([opcode]))
            if instr.execute is not exec_invalid:
                valid += 1
        assert valid >= 160, f"only {valid}/256 first bytes decode"

    @given(st.binary(min_size=decoder.MAX_INSN_LEN,
                     max_size=decoder.MAX_INSN_LEN))
    def test_never_raises_and_length_bounded(self, raw):
        instr = decode(raw, 0)
        assert 1 <= instr.length <= decoder.MAX_INSN_LEN
