"""Decoder tests for the G4-like core: fields, density, paper cases."""

from hypothesis import given, strategies as st

from repro.ppc.decoder import decode, exec_illegal, exec_lhax, exec_mfspr
from repro.ppc.assembler import dform, xform

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestKnownEncodings:
    def test_stwu(self):
        instr = decode(0x9421FFE0)             # stwu r1,-32(r1)
        assert instr.mnemonic == "stwu"
        assert instr.rt == 1 and instr.ra == 1
        assert instr.imm == 0xFFFFFFE0

    def test_mflr(self):
        instr = decode(0x7C0802A6)             # mflr r0
        assert instr.execute is exec_mfspr
        assert instr.imm == 8                  # SPR_LR

    def test_paper_figure15_flip(self):
        """7c 08 02 a6 (mflr r0) + one bit -> 7c 08 02 ae (lhax)."""
        corrupted = decode(0x7C0802AE)
        assert corrupted.execute is exec_lhax
        assert corrupted.rt == 0
        assert corrupted.ra == 8
        assert corrupted.rb == 0

    def test_paper_figure9_lwz(self):
        instr = decode(0x817F0028)             # lwz r11,40(r31)
        assert instr.mnemonic == "lwz"
        assert instr.rt == 11 and instr.ra == 31 and instr.imm == 40

    def test_branch_forms(self):
        instr = decode(0x4182FFC4)             # beq -60
        assert instr.mnemonic == "bc"
        assert instr.imm == 0xFFFFFFC4
        blr = decode(0x4E800020)
        assert blr.mnemonic == "bclr"

    def test_sc(self):
        assert decode(0x44000002).mnemonic == "sc"

    def test_illegal_primary(self):
        instr = decode(0x00000000)
        assert instr.execute is exec_illegal
        instr = decode((57 << 26))             # unassigned in subset
        assert instr.execute is exec_illegal

    def test_illegal_extended(self):
        # opcode 31 with a bogus extended opcode
        word = xform(31, 1, 2, 3, 999)
        assert decode(word).execute is exec_illegal


class TestDensity:
    def test_sparse_opcode_space(self):
        """Unlike the P4's byte opcodes, a random 32-bit word is
        usually an undefined encoding — the G4's Illegal-Instruction
        story."""
        import random
        rng = random.Random(42)
        illegal = sum(
            1 for _ in range(2000)
            if decode(rng.randrange(1 << 32)).execute is exec_illegal)
        assert illegal >= 800, f"only {illegal}/2000 illegal"

    def test_bitflip_of_valid_often_illegal(self):
        """Flip every bit of a valid instruction: a healthy share of
        results must be undefined encodings (paper Section 5.3)."""
        base = dform(32, 11, 31, 40)           # lwz r11,40(r31)
        illegal = sum(
            1 for bit in range(32)
            if decode(base ^ (1 << bit)).execute is exec_illegal)
        assert illegal >= 2

    @given(u32)
    def test_never_raises(self, word):
        instr = decode(word)
        assert instr.cycles >= 1
