"""Taint engine: lattice properties, synthetic-CFG fixpoints, micro
verdicts, and the dynamic soundness / distance-latency gates.

The hypothesis suites exercise :func:`repro.static.taint.transfer` and
:class:`repro.static.taint.TaintEngine` on randomly generated
single-function CFGs built from synthetic instructions (plain objects,
so the sink taxonomy takes its generic fallback paths).  The dynamic
gates re-run the deterministic campaigns: taint-pruned bits must never
manifest, and static distance-to-sink bounds must rank-agree with
trace-measured propagation distances.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.validate_static import (
    distance_latency_probe, validate_propagation, validate_prune,
)
from repro.static.cfg import (
    BasicBlock, FunctionCFG, InsnNode, KernelCFG,
)
from repro.static.effects import (
    EFLAGS, InsnEffects, KIND_BRANCH, KIND_FALL, KIND_JUMP, KIND_RET,
)
from repro.static.sinks import (
    SINK_CONTROL, SINK_KINDS, SINK_MEM_ADDR, sink_triggers,
)
from repro.static.taint import (
    TaintEngine, VERDICT_DEAD, VERDICT_SINK, VERDICTS, transfer,
)

#: register pool for synthetic CFGs — real x86 names so the engine's
#: exit-live / return-register tables resolve
REGS = ("eax", "ebx", "ecx", "edx", "esi", "edi")

regsets = st.frozensets(st.sampled_from(REGS), max_size=4)


def effects(uses=frozenset(), defs=frozenset(), kind=KIND_FALL,
            target=None, reads_mem=False, writes_mem=False):
    return InsnEffects(uses=frozenset(uses), defs=frozenset(defs),
                       reads_mem=reads_mem, writes_mem=writes_mem,
                       kind=kind, target=target)


effects_st = st.builds(
    effects, uses=regsets, defs=regsets,
    reads_mem=st.booleans(), writes_mem=st.booleans())


class TestTransfer:
    """Pure-function lattice properties of the per-insn transfer."""

    @given(eff=effects_st, taint=regsets, extra=regsets)
    def test_monotone(self, eff, taint, extra):
        """taint1 ⊆ taint2 ⇒ transfer(taint1) ⊆ transfer(taint2)."""
        assert transfer(eff, taint) <= transfer(eff, taint | extra)

    @given(eff=effects_st, taint=regsets)
    def test_gen_kill_semantics(self, eff, taint):
        out = transfer(eff, taint)
        if taint & eff.uses:
            assert eff.defs <= out          # gen: defs become tainted
            assert taint <= out
        else:
            assert not (out & eff.defs)     # kill: defs overwritten
        # frame: transfer never invents taint outside taint ∪ defs
        # and never kills taint outside defs
        assert out <= taint | eff.defs
        assert taint - eff.defs <= out

    @given(eff=effects_st)
    def test_bottom_is_fixed(self, eff):
        assert transfer(eff, frozenset()) == frozenset()


# -- synthetic CFGs for engine properties --------------------------------

BASE = 0x1000
STRIDE = 0x100
ILEN = 4


def _build_cfg(blocks_spec):
    """Assemble a synthetic single-function KernelCFG.

    ``blocks_spec`` is a list of (insn_effects_list, term_kind,
    term_target_index) tuples; targets index into the block list.
    """
    n = len(blocks_spec)
    starts = [BASE + i * STRIDE for i in range(n)]
    blocks = {}
    insn_map = {}
    for i, (effs, term_kind, term_target) in enumerate(blocks_spec):
        start = starts[i]
        insns = []
        for j, eff in enumerate(effs):
            insns.append(InsnNode(addr=start + j * ILEN, length=ILEN,
                                  insn=object(), effects=eff))
        succs = []
        taddr = starts[term_target] if term_target is not None else None
        if term_kind == KIND_JUMP:
            succs = [taddr]
        elif term_kind == KIND_BRANCH:
            succs = [taddr] + ([starts[i + 1]] if i + 1 < n else [])
        elif term_kind == KIND_FALL and i + 1 < n:
            succs = [starts[i + 1]]
        term = insns[-1]
        insns[-1] = InsnNode(
            addr=term.addr, length=term.length, insn=term.insn,
            effects=InsnEffects(
                uses=term.effects.uses, defs=term.effects.defs,
                reads_mem=term.effects.reads_mem,
                writes_mem=term.effects.writes_mem,
                kind=term_kind, target=taddr))
        blocks[start] = BasicBlock(start=start, insns=insns,
                                   succs=succs)
        for node in insns:
            insn_map[node.addr] = ("synth", start)
    # reachability: BFS over succs from the entry
    seen, work = set(), [starts[0]]
    while work:
        cur = work.pop()
        if cur in seen:
            continue
        seen.add(cur)
        work.extend(blocks[cur].succs)
    fcfg = FunctionCFG(name="synth", entry=starts[0], blocks=blocks,
                       reachable=frozenset(seen),
                       call_targets=frozenset(),
                       has_indirect_jump=False)
    return KernelCFG(arch="x86", image=None,
                     functions={"synth": fcfg}, insn_map=insn_map)


TERM_KINDS = (KIND_FALL, KIND_JUMP, KIND_BRANCH, KIND_RET)


@st.composite
def synthetic_cfgs(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    spec = []
    for i in range(n):
        count = draw(st.integers(min_value=1, max_value=4))
        effs = [draw(effects_st) for _ in range(count)]
        kind = draw(st.sampled_from(TERM_KINDS))
        target = None
        if kind in (KIND_JUMP, KIND_BRANCH):
            target = draw(st.integers(min_value=0, max_value=n - 1))
        spec.append((effs, kind, target))
    return _build_cfg(spec)


@st.composite
def cfg_seed_points(draw):
    cfg = draw(synthetic_cfgs())
    addrs = sorted(cfg.insn_map)
    addr = draw(st.sampled_from(addrs))
    seed = draw(st.frozensets(st.sampled_from(REGS), min_size=1,
                              max_size=3))
    return cfg, addr, seed


class TestEngineProperties:
    @settings(max_examples=60, deadline=None)
    @given(point=cfg_seed_points())
    def test_fixpoint_converges_and_is_deterministic(self, point):
        """propagate() terminates on arbitrary CFGs (loops included)
        and a fresh engine reproduces the verdict exactly."""
        cfg, addr, seed = point
        verdict = TaintEngine(cfg).propagate(addr, seed)
        assert verdict.verdict in VERDICTS
        assert "fixpoint-budget" not in verdict.escapes, \
            "monotone join must converge without the budget backstop"
        again = TaintEngine(cfg).propagate(addr, seed)
        assert again == verdict

    @settings(max_examples=60, deadline=None)
    @given(point=cfg_seed_points())
    def test_verdict_shape_invariants(self, point):
        cfg, addr, seed = point
        v = TaintEngine(cfg).propagate(addr, seed)
        if v.reached_sink:
            assert v.sinks and v.distance == v.sinks[0].distance
            assert all(h.kind in SINK_KINDS for h in v.sinks)
            # sinks sorted ascending by distance; path anchored at
            # the corruption site and ending at the first sink
            dists = [h.distance for h in v.sinks]
            assert dists == sorted(dists)
            assert v.path[0] == addr
            assert v.path[-1] == v.sinks[0].addr
        else:
            assert not v.sinks and v.distance is None and not v.path
        if v.provably_dead:
            assert not v.escapes

    @settings(max_examples=60, deadline=None)
    @given(point=cfg_seed_points(),
           extra=st.frozensets(st.sampled_from(REGS), min_size=1,
                               max_size=2))
    def test_seed_subset_implies_verdict_monotone(self, point, extra):
        """A larger corruption seed can only reach more: sub-seed
        sinks stay sinks (at a distance no larger), and super-seed
        death proofs cover every sub-seed."""
        cfg, addr, seed = point
        engine = TaintEngine(cfg)
        small = engine.propagate(addr, seed)
        big = engine.propagate(addr, seed | extra)
        if small.reached_sink:
            assert big.reached_sink
            assert big.distance <= small.distance
        if big.provably_dead:
            assert small.provably_dead


class TestMicroVerdicts:
    """Hand-built CFGs with known ground truth."""

    def test_store_address_is_a_sink(self):
        cfg = _build_cfg([(
            [effects(defs={"eax"}),
             effects(uses={"eax"}, writes_mem=True),
             effects()],
            KIND_RET, None)])
        v = TaintEngine(cfg).propagate(BASE, frozenset({"eax"}))
        assert v.verdict == VERDICT_SINK
        assert v.sink == SINK_MEM_ADDR
        assert v.distance == 1                 # one insn seed → store
        assert v.path == (BASE, BASE + ILEN)

    def test_overwritten_taint_is_dead(self):
        # eax is clobbered before the return; nothing live escapes
        cfg = _build_cfg([(
            [effects(defs={"eax"}),
             effects(defs={"eax"}),              # clean overwrite
             effects()],
            KIND_RET, None)])
        v = TaintEngine(cfg).propagate(BASE, frozenset({"eax"}))
        assert v.verdict == VERDICT_DEAD
        assert not v.sinks and not v.escapes

    def test_tainted_branch_is_a_control_sink(self):
        cfg = _build_cfg([
            ([effects(defs={"ebx"}),
              effects(uses={"ebx"}, defs={EFLAGS}),
              effects(uses={EFLAGS})], KIND_BRANCH, 1),
            ([effects()], KIND_RET, None),
        ])
        v = TaintEngine(cfg).propagate(BASE, frozenset({"ebx"}))
        assert v.reached_sink
        assert v.sink == SINK_CONTROL

    def test_return_value_taint_is_an_output_sink(self):
        # eax is the x86 ABI result register: taint surviving to the
        # ret is the caller's wrong answer
        cfg = _build_cfg([(
            [effects(defs={"eax"}), effects()], KIND_RET, None)])
        v = TaintEngine(cfg).propagate(BASE, frozenset({"eax"}))
        assert v.reached_sink
        assert v.sink == "workload-output"

    def test_empty_seed_escapes(self):
        cfg = _build_cfg([([effects()], KIND_RET, None)])
        v = TaintEngine(cfg).propagate(BASE, frozenset())
        assert v.verdict == "escape"
        assert v.escapes == ("empty-seed",)

    def test_loop_terminates_with_kill(self):
        # a 2-block loop whose body overwrites the seed register
        cfg = _build_cfg([
            ([effects(defs={"ecx"}), effects(defs={"ecx"})],
             KIND_BRANCH, 0),
            ([effects()], KIND_RET, None),
        ])
        v = TaintEngine(cfg).propagate(BASE, frozenset({"ecx"}))
        assert v.verdict in VERDICTS   # termination is the assertion

    def test_generic_sink_triggers_for_synthetic_insns(self):
        node = InsnNode(addr=0, length=4, insn=object(),
                        effects=effects(uses={"eax", EFLAGS},
                                        writes_mem=True))
        kinds = {k for k, _ in sink_triggers(node, "x86")}
        assert SINK_MEM_ADDR in kinds
        # the flags unit never feeds an address computation
        for kind, res in sink_triggers(node, "x86"):
            if kind == SINK_MEM_ADDR:
                assert EFLAGS not in res


class TestDynamicGates:
    """The engine's claims checked against the real machines."""

    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_taint_pruned_bits_never_manifest(self, arch):
        """Soundness battery: every sampled taint-pruned bit must
        stay masked when actually injected (the full sweep is the
        release check; sampling is evenly strided)."""
        validation = validate_prune(arch, seed=0, ops=36, limit=48,
                                    policy="taint")
        assert validation.policy == "taint"
        assert validation.prunable_bits > 0
        assert validation.injected == min(48, validation.prunable_bits)
        assert validation.ok, validation.render()

    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_distance_bounds_rank_agree_with_traces(self, arch):
        """Static distance-to-sink must rank-agree with the
        trace-measured dynamic distance (first divergent non-register
        event in the faulty-vs-twin diff)."""
        probe = distance_latency_probe(arch, seed=0, ops=36,
                                       per_distance=2, max_distance=8)
        assert probe.comparable >= 4, probe.render()
        assert probe.agreement is not None
        assert probe.agreement > 0.5, probe.render()

    def test_evidence_chains_are_executed(self):
        """The static evidence chain of a sink verdict should lie on
        the faulty run's actual fetch path."""
        validation = validate_propagation("x86", seed=0, ops=36,
                                          count=60, sample=2)
        assert validation.joins, "no sink-verdict experiments joined"
        coverage = validation.mean_chain_coverage
        if coverage is not None:      # at least one trace diverged
            assert coverage >= 0.5, validation.render()


class TestEngineCaches:
    def test_clear_cache_resets_memos(self):
        cfg = _build_cfg([(
            [effects(defs={"eax"}), effects()], KIND_RET, None)])
        engine = TaintEngine(cfg)
        v1 = engine.propagate(BASE, frozenset({"eax"}))
        assert engine._verdicts
        engine.clear_cache()
        assert not engine._verdicts
        assert engine.propagate(BASE, frozenset({"eax"})) == v1

    def test_predictor_caches_clear(self):
        from repro.static.predictor import clear_caches, dead_code_bits
        dead_code_bits("ppc")
        assert dead_code_bits.cache_info().currsize > 0
        clear_caches()
        assert dead_code_bits.cache_info().currsize == 0
