"""Execution-semantics tests for the P4-like core."""

import pytest

from repro.isa.memory import Region
from repro.x86.assembler import Mem, X86Assembler
from repro.x86.cpu import X86CPU
from repro.x86.exceptions import X86Fault, X86Vector
from repro.x86.registers import (
    CR0_PG, FLAG_CF, FLAG_NT, FLAG_ZF, EAX, EBX, ECX, EDX, ESP,
)

TEXT = 0xC0100000
DATA = 0xC0300000
STACK = 0xC0500000


def make_cpu() -> X86CPU:
    cpu = X86CPU()
    cpu.aspace.map_region(Region(TEXT, 0x1000, "rx", "text"))
    cpu.aspace.map_region(Region(DATA, 0x1000, "rwx", "data"))
    cpu.aspace.map_region(Region(STACK, 0x2000, "rw", "stack"))
    cpu.regs[ESP] = STACK + 0x2000 - 16
    cpu.eip = TEXT
    return cpu


def run(asm: X86Assembler, steps: int = None, cpu: X86CPU = None
        ) -> X86CPU:
    if cpu is None:
        cpu = make_cpu()
    code = asm.finish()
    cpu.mem.write(TEXT, code)
    count = steps if steps is not None else len(asm.insn_offsets)
    for _ in range(count):
        cpu.step()
    return cpu


class TestArithmetic:
    def test_add_and_flags(self):
        asm = X86Assembler()
        asm.mov_r_imm(EAX, 0xFFFFFFFF)
        asm.mov_r_imm(ECX, 1)
        asm.alu_r_rm("add", EAX, ECX)
        cpu = run(asm)
        assert cpu.regs[EAX] == 0
        assert cpu.eflags & FLAG_CF
        assert cpu.eflags & FLAG_ZF

    def test_sub_borrow(self):
        asm = X86Assembler()
        asm.mov_r_imm(EAX, 1)
        asm.mov_r_imm(ECX, 2)
        asm.alu_r_rm("sub", EAX, ECX)
        cpu = run(asm)
        assert cpu.regs[EAX] == 0xFFFFFFFF
        assert cpu.eflags & FLAG_CF

    def test_imul(self):
        asm = X86Assembler()
        asm.mov_r_imm(EAX, 0xFFFFFFFF)        # -1
        asm.mov_r_imm(ECX, 5)
        asm.imul_r_rm(EAX, ECX)
        cpu = run(asm)
        assert cpu.regs[EAX] == 0xFFFFFFFB    # -5

    def test_imul_with_imm(self):
        asm = X86Assembler()
        asm.mov_r_imm(ECX, 7)
        asm.imul_r_rm_imm(EAX, ECX, 20)
        cpu = run(asm)
        assert cpu.regs[EAX] == 140

    def test_div(self):
        asm = X86Assembler()
        asm.mov_r_imm(EAX, 100)
        asm.mov_r_imm(EDX, 0)
        asm.mov_r_imm(ECX, 7)
        asm.div_rm(ECX)
        cpu = run(asm)
        assert cpu.regs[EAX] == 14
        assert cpu.regs[EDX] == 2

    def test_divide_error(self):
        asm = X86Assembler()
        asm.mov_r_imm(EAX, 100)
        asm.mov_r_imm(EDX, 0)
        asm.mov_r_imm(ECX, 0)
        asm.div_rm(ECX)
        with pytest.raises(X86Fault) as exc:
            run(asm)
        assert exc.value.vector == X86Vector.DIVIDE_ERROR

    def test_shifts(self):
        asm = X86Assembler()
        asm.mov_r_imm(EAX, 0x80000001)
        asm.shift_rm_imm("shr", EAX, 4)
        cpu = run(asm)
        assert cpu.regs[EAX] == 0x08000000

    def test_shift_by_cl(self):
        asm = X86Assembler()
        asm.mov_r_imm(EAX, 1)
        asm.mov_r_imm(ECX, 8)
        asm.shift_rm_cl("shl", EAX)
        cpu = run(asm)
        assert cpu.regs[EAX] == 256


class TestMemoryAccess:
    def test_widths(self):
        asm = X86Assembler()
        asm.mov_r_imm(EAX, 0xAABBCCDD)
        asm.mov_rm_r(Mem(disp=DATA), EAX)
        asm.mov_r_imm(EBX, 0)
        asm.movzx(EBX, Mem(disp=DATA), 1)
        asm.movzx(ECX, Mem(disp=DATA), 2)
        cpu = run(asm)
        assert cpu.regs[EBX] == 0xDD
        assert cpu.regs[ECX] == 0xCCDD

    def test_byte_store_preserves_neighbours(self):
        asm = X86Assembler()
        asm.mov_r_imm(EAX, 0x11223344)
        asm.mov_rm_r(Mem(disp=DATA), EAX)
        asm.mov_r_imm(ECX, 0xFF)
        asm.mov_rm_r(Mem(disp=DATA + 1), ECX, width=1)
        cpu = run(asm)
        assert cpu.mem.read_u32(DATA, True) == 0x1122FF44

    def test_unmapped_read_is_page_fault(self):
        asm = X86Assembler()
        asm.mov_r_rm(EAX, Mem(disp=0x170FC2A5))
        with pytest.raises(X86Fault) as exc:
            run(asm)
        assert exc.value.vector == X86Vector.PAGE_FAULT
        assert exc.value.address == 0x170FC2A5

    def test_write_to_text_is_gp(self):
        asm = X86Assembler()
        asm.mov_r_imm(EAX, 1)
        asm.mov_rm_r(Mem(disp=TEXT), EAX)
        with pytest.raises(X86Fault) as exc:
            run(asm)
        assert exc.value.vector == X86Vector.GENERAL_PROTECTION

    def test_null_dereference(self):
        asm = X86Assembler()
        asm.mov_r_imm(EDX, 0)
        asm.mov_r_rm(ECX, Mem(base=EDX, disp=8))   # paper figure 8
        with pytest.raises(X86Fault) as exc:
            run(asm)
        assert exc.value.vector == X86Vector.PAGE_FAULT
        assert exc.value.address == 8


class TestStack:
    def test_push_pop(self):
        asm = X86Assembler()
        asm.mov_r_imm(EAX, 0x1234)
        asm.push_r(EAX)
        asm.pop_r(EBX)
        cpu = run(asm)
        assert cpu.regs[EBX] == 0x1234

    def test_corrupted_esp_faults_only_at_use(self):
        """No stack-overflow exception on the P4: a wild ESP is only
        caught when a push touches unmapped memory."""
        asm = X86Assembler()
        asm.mov_r_imm(ESP, 0x170FC2A5)      # wild stack pointer
        asm.mov_r_imm(EAX, 1)               # survives
        asm.push_r(EAX)                     # faults here
        cpu = make_cpu()
        code = asm.finish()
        cpu.mem.write(TEXT, code)
        cpu.step()
        cpu.step()
        with pytest.raises(X86Fault) as exc:
            cpu.step()
        assert exc.value.vector == X86Vector.PAGE_FAULT


class TestControlFlow:
    def test_call_ret(self):
        asm = X86Assembler()
        asm.call_sym("f")                    # becomes rel32 via label?
        # use jmp-based flow instead: call needs linker; test jcc/jmp
        asm2 = X86Assembler()
        asm2.mov_r_imm(EAX, 1)
        asm2.alu_rm_imm("cmp", EAX, 1)
        asm2.jcc_label("e", "yes")
        asm2.mov_r_imm(EBX, 0)
        asm2.jmp_label("end")
        asm2.label("yes")
        asm2.mov_r_imm(EBX, 42)
        asm2.label("end")
        asm2.nop()
        cpu = run(asm2, steps=5)
        assert cpu.regs[EBX] == 42

    def test_grp5_indirect_jump(self):
        asm = X86Assembler()
        asm.mov_r_imm(EAX, TEXT + 0x20)
        asm.call_rm(EAX)
        cpu = make_cpu()
        cpu.mem.write(TEXT, asm.finish())
        cpu.mem.write(TEXT + 0x20, b"\x90\xc3")     # nop; ret
        for _ in range(4):
            cpu.step()
        assert cpu.eip == TEXT + 7          # back after call


class TestSystem:
    def test_iret_with_nt_is_invalid_tss(self):
        asm = X86Assembler()
        asm.emit(0xCF)                      # iret
        cpu = make_cpu()
        cpu.eflags |= FLAG_NT
        cpu.mem.write(TEXT, bytes(asm.code))
        with pytest.raises(X86Fault) as exc:
            cpu.step()
        assert exc.value.vector == X86Vector.INVALID_TSS

    def test_bound_trap(self):
        cpu = make_cpu()
        cpu.mem.write_u32(DATA, 10, True)          # lower
        cpu.mem.write_u32(DATA + 4, 20, True)      # upper
        asm = X86Assembler()
        asm.mov_r_imm(EAX, 50)
        asm.emit(0x62, 0x05)                        # bound eax, [disp32]
        asm.emit32(DATA)
        cpu.mem.write(TEXT, bytes(asm.code))
        cpu.step()
        with pytest.raises(X86Fault) as exc:
            cpu.step()
        assert exc.value.vector == X86Vector.BOUNDS

    def test_invalid_selector_load_is_gp(self):
        cpu = make_cpu()
        with pytest.raises(X86Fault) as exc:
            cpu.load_sreg(4, 0x1234)
        assert exc.value.vector == X86Vector.GENERAL_PROTECTION

    def test_fs_use_with_null_selector_is_gp(self):
        asm = X86Assembler()
        asm.mov_r_rm(EAX, Mem(disp=DATA, seg=4))   # %fs:DATA
        with pytest.raises(X86Fault) as exc:
            run(asm)
        assert exc.value.vector == X86Vector.GENERAL_PROTECTION

    def test_cr0_pg_clear_kills_translation(self):
        cpu = make_cpu()
        cpu.set_cr(0, cpu.cr0 & ~CR0_PG)
        assert not cpu.aspace.translation_on

    def test_cr3_corruption_kills_translation(self):
        cpu = make_cpu()
        cpu.set_cr(3, cpu.cr3 ^ 0x1000)
        assert not cpu.aspace.translation_on

    def test_privileged_in_user_mode(self):
        asm = X86Assembler()
        asm.hlt()
        cpu = make_cpu()
        cpu.user_mode = True
        cpu.mem.write(TEXT, bytes(asm.code))
        with pytest.raises(X86Fault) as exc:
            cpu.step()
        assert exc.value.vector == X86Vector.GENERAL_PROTECTION

    def test_partial_register_aliasing(self):
        cpu = make_cpu()
        cpu.regs[EAX] = 0x11223344
        assert cpu.get_reg(EAX, 1) == 0x44
        assert cpu.get_reg(4, 1) == 0x33          # AH
        cpu.set_reg(4, 1, 0xAB)                   # AH = 0xAB
        assert cpu.regs[EAX] == 0x1122AB44

    def test_icache_flush_after_code_write(self):
        cpu = make_cpu()
        cpu.mem.write(TEXT, b"\x90\x90\x90")       # nops
        cpu.step()
        cpu.eip = TEXT
        # rewrite first instruction behind the decode cache's back
        cpu.mem.write(TEXT, b"\xb8\x2a\x00\x00\x00")  # mov eax,42
        cpu.step()
        assert cpu.regs[EAX] == 0                  # stale decode
        cpu.flush_icache()
        cpu.eip = TEXT
        cpu.step()
        assert cpu.regs[EAX] == 42                 # fresh decode
