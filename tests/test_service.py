"""Campaign service: queue semantics, protocol validation, HTTP
end-to-end digests, concurrency, cancellation, and restart-resume.

The in-process tests run a real daemon (real sockets, real scheduler,
real campaigns through the store) on a background thread; the restart
matrix runs ``repro serve`` as a subprocess and SIGKILLs it
mid-campaign.  Campaign configs reuse the session contexts
(``ops=36``), so the engine-side work is shared with the rest of the
suite.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.outcomes import CampaignKind
from repro.service import CampaignService, ServiceClient, ServiceError
from repro.service.jobs import FairQueue, Job, JobState
from repro.service.protocol import (
    ValidationError, campaign_config_from_payload, config_to_payload,
    study_configs_from_payload,
)
from repro.store.codec import results_digest
from repro.store.manifest import JOURNAL_NAME, CampaignManifest

DIGESTS = json.loads(
    (Path(__file__).parent / "data"
     / "campaign_digests.json").read_text())


# -- queue semantics (pure, no asyncio) -------------------------------------

def _job(job_id, tenant="t", priority=0, workers=1, seq=None,
         campaign="c"):
    return Job(id=job_id, tenant=tenant, priority=priority,
               workers=workers, config=None, campaign_id=campaign,
               seq=seq if seq is not None else int(job_id))


class TestFairQueue:
    def test_fifo_within_tenant(self):
        queue = FairQueue()
        for seq in range(3):
            queue.push(_job(str(seq), campaign=f"c{seq}"))
        order = [queue.pop_next(8, set()).id for _ in range(3)]
        assert order == ["0", "1", "2"]

    def test_priority_beats_fifo(self):
        queue = FairQueue()
        queue.push(_job("0", priority=0, campaign="a"))
        queue.push(_job("1", priority=5, campaign="b"))
        queue.push(_job("2", priority=5, campaign="c"))
        order = [queue.pop_next(8, set()).id for _ in range(3)]
        assert order == ["1", "2", "0"]

    def test_round_robin_across_tenants(self):
        queue = FairQueue()
        for seq in range(4):
            queue.push(_job(str(seq), tenant="hog",
                            campaign=f"h{seq}"))
        queue.push(_job("9", tenant="small", seq=9, campaign="s"))
        order = [queue.pop_next(8, set()).id for _ in range(5)]
        # the single-job tenant is served second, not fifth
        assert order.index("9") == 1

    def test_slot_admission_skips_not_blocks(self):
        queue = FairQueue()
        queue.push(_job("0", workers=4, campaign="a"))
        queue.push(_job("1", workers=1, seq=1, campaign="b"))
        picked = queue.pop_next(2, set())
        assert picked.id == "1"        # the 4-slot head doesn't block
        assert queue.pop_next(2, set()) is None
        assert queue.pop_next(4, set()).id == "0"

    def test_busy_campaign_skips(self):
        queue = FairQueue()
        queue.push(_job("0", campaign="same"))
        queue.push(_job("1", seq=1, campaign="other"))
        picked = queue.pop_next(8, {"same"})
        assert picked.id == "1"
        assert queue.pop_next(8, {"same"}) is None
        assert queue.pop_next(8, set()).id == "0"

    def test_remove_cancels_queued(self):
        queue = FairQueue()
        job = _job("0")
        queue.push(job)
        assert queue.remove(job) is True
        assert queue.remove(job) is False
        assert len(queue) == 0


# -- protocol validation ----------------------------------------------------

class TestProtocol:
    def test_round_trip(self):
        config = campaign_config_from_payload(
            {"arch": "ppc", "kind": "stack", "count": 7, "seed": 3,
             "ops": 36})
        assert config.arch == "ppc"
        assert config.kind is CampaignKind.STACK
        assert config.count == 7
        again = campaign_config_from_payload(config_to_payload(config))
        assert again == config

    @pytest.mark.parametrize("payload,fragment", [
        ({"kind": "stack", "count": 5}, "arch"),
        ({"arch": "x86", "count": 5}, "kind"),
        ({"arch": "x86", "kind": "stack"}, "count"),
        ({"arch": "arm", "kind": "stack", "count": 5}, "arch"),
        ({"arch": "x86", "kind": "heap", "count": 5}, "kind"),
        ({"arch": "x86", "kind": "stack", "count": 0}, "count"),
        ({"arch": "x86", "kind": "stack", "count": "5"}, "count"),
        ({"arch": "x86", "kind": "stack", "count": 5,
          "bogus": 1}, "bogus"),
        ({"arch": "x86", "kind": "stack", "count": 5,
          "prune": "dead"}, "prune"),
        ({"arch": "x86", "kind": "stack", "count": 5,
          "dump_loss_probability": 2.0}, "dump_loss_probability"),
        ("not a dict", "object"),
    ])
    def test_rejections(self, payload, fragment):
        with pytest.raises(ValidationError) as excinfo:
            campaign_config_from_payload(payload)
        assert fragment in str(excinfo.value)

    def test_study_expands_to_eight(self):
        configs = study_configs_from_payload(
            {"scale": 0.0, "min_campaign": 1, "ops": 36})
        assert len(configs) == 8
        assert {config.arch for config in configs} == {"x86", "ppc"}
        assert all(config.count == 1 for config in configs)
        # pruning stays off everywhere unless asked; exec defaults
        assert all(config.prune == "none" for config in configs)

    def test_study_rejects_unknown(self):
        with pytest.raises(ValidationError):
            study_configs_from_payload({"scales": 0.5})


# -- a real daemon on a background thread -----------------------------------

class DaemonThread:
    """A CampaignService in this process, on its own event loop."""

    def __init__(self, store_dir, workers=2):
        self.service = None
        self.port = None
        self.loop = None
        self._started = threading.Event()
        self._stop_event = None
        self._thread = threading.Thread(
            target=self._run, args=(str(store_dir), workers),
            daemon=True)
        self._thread.start()
        assert self._started.wait(30), "daemon failed to start"

    def _run(self, store_dir, workers):
        async def main():
            self.loop = asyncio.get_running_loop()
            self.service = CampaignService(store_dir, workers=workers,
                                           port=0)
            self.port = await self.service.start()
            self._stop_event = asyncio.Event()
            self._started.set()
            await self._stop_event.wait()
            await self.service.stop()
        asyncio.run(main())

    def client(self, timeout=180.0) -> ServiceClient:
        return ServiceClient(f"http://127.0.0.1:{self.port}",
                             timeout=timeout)

    def begin_drain(self):
        """Flip the drain flag from the loop thread (as SIGTERM would)."""
        done = threading.Event()

        def flip():
            self.service.scheduler.draining = True
            done.set()
        self.loop.call_soon_threadsafe(flip)
        assert done.wait(10)

    def shutdown(self):
        if self.loop is not None and self._stop_event is not None:
            self.loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(120)
        assert not self._thread.is_alive(), "daemon failed to stop"


@pytest.fixture()
def daemon(tmp_path):
    handle = DaemonThread(tmp_path / "store", workers=2)
    yield handle
    handle.shutdown()


def _register_x86(count=10):
    return {"arch": "x86", "kind": "register", "count": count,
            "seed": 0, "ops": 36}


def _journal_sha(store_root, campaign_id) -> str:
    path = Path(store_root) / campaign_id / JOURNAL_NAME
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestServiceEndToEnd:
    def test_http_submission_matches_direct_run(self, daemon,
                                                tmp_path,
                                                x86_context):
        """The acceptance bar: same campaign via HTTP and via
        ``Campaign.run(store=)`` — identical result digests AND
        bit-identical journal files."""
        client = daemon.client()
        out = client.submit(_register_x86(), workers=1)
        assert out["deduped"] is False
        job = client.wait(out["job"]["id"], timeout=600)
        assert job["state"] == "done"
        # pinned digest (same config as tests/data recordings)
        assert job["digest"] == DIGESTS["x86/register"]["sha256"]

        config = campaign_config_from_payload(_register_x86())
        direct_store = tmp_path / "direct"
        direct = Campaign(config, x86_context).run(store=direct_store)
        assert results_digest(direct.results) == job["digest"]
        assert (_journal_sha(daemon.service.store.root,
                             job["campaign_id"])
                == _journal_sha(direct_store, job["campaign_id"]))

    def test_duplicate_submission_dedupes(self, daemon, x86_context):
        client = daemon.client()
        first = client.submit(_register_x86(), workers=1)
        second = client.submit(_register_x86(), workers=1)
        assert second["deduped"] is True
        assert second["job"]["id"] == first["job"]["id"]
        job = client.wait(first["job"]["id"], timeout=600)
        # deduping after completion returns the finished job
        third = client.submit(_register_x86(), workers=1)
        assert third["deduped"] is True
        assert third["job"]["digest"] == job["digest"]

    def test_event_stream_and_read_endpoints(self, daemon,
                                             x86_context):
        client = daemon.client()
        payload = {"arch": "x86", "kind": "stack", "count": 12,
                   "seed": 0, "ops": 36}
        job_id = client.submit(payload)["job"]["id"]
        seen_progress = []
        terminal = None
        for event in client.stream(job_id):
            if event["event"] == "progress":
                seen_progress.append(event["done"])
            if (event["event"] == "state"
                    and event["state"] in ("done", "failed")):
                terminal = event
                break
        assert terminal is not None and terminal["state"] == "done"
        assert seen_progress == sorted(seen_progress)
        assert terminal["digest"] == DIGESTS["x86/stack"]["sha256"]

        view = client.job(job_id)
        campaign_id = view["campaign_id"]
        assert any(row["campaign_id"] == campaign_id
                   for row in client.campaigns())
        records = client.results(campaign_id)
        assert [record["index"] for record in records] == list(range(12))
        assert client.results(campaign_id, limit=3)[-1]["index"] == 2
        summary = client.summary(campaign_id)
        assert summary["done"] == 12
        assert summary["digest"] == view["digest"]
        assert sum(summary["outcomes"].values()) == 12
        assert "Stack" in summary["table"]

    def test_cancel_frees_slots_then_resume_completes(self, daemon,
                                                      x86_context):
        client = daemon.client()
        payload = {"arch": "x86", "kind": "data", "count": 48,
                   "seed": 0, "ops": 36}
        job_id = client.submit(payload)["job"]["id"]
        for event in client.stream(job_id):
            if (event["event"] == "progress"
                    and event["done"] >= 2):
                break
        cancelled = client.cancel(job_id)
        assert cancelled["cancel_requested"] is True \
            or cancelled["state"] == "cancelled"
        final = client.wait(job_id, timeout=120)
        assert final["state"] == "cancelled"
        assert 0 < final["done"] < 48
        health = client.health()
        assert health["free_slots"] == health["total_slots"]

        # resubmitting resumes from the journal to the full digest
        resumed_id = client.submit(payload)["job"]["id"]
        assert resumed_id != job_id    # cancelled jobs don't dedupe
        resumed = client.wait(resumed_id, timeout=600)
        assert resumed["state"] == "done"
        assert resumed["digest"] == _direct_digest(payload,
                                                   x86_context)

    def test_cancel_queued_job_is_immediate(self, daemon,
                                            x86_context):
        client = daemon.client()
        # saturate both slots, then queue one more and cancel it
        blockers = [client.submit(
            {"arch": "x86", "kind": "data", "count": 30, "seed": 0,
             "ops": 36, "dump_loss_probability": 0.08 + index * 1e-6},
            workers=1)["job"]["id"] for index in range(2)]
        queued = client.submit(
            {"arch": "x86", "kind": "data", "count": 30, "seed": 0,
             "ops": 36, "dump_loss_probability": 0.09})["job"]["id"]
        view = client.cancel(queued)
        assert view["state"] in ("cancelled", "queued")
        final = client.wait(queued, timeout=60)
        assert final["state"] == "cancelled"
        assert final["done"] == 0      # never started
        for blocker in blockers:
            assert client.wait(blocker,
                               timeout=600)["state"] == "done"

    def test_draining_daemon_returns_503(self, daemon, x86_context):
        client = daemon.client()
        daemon.begin_drain()
        assert client.health()["status"] == "draining"
        with pytest.raises(ServiceError) as excinfo:
            client.submit(_register_x86())
        assert excinfo.value.status == 503

    def test_http_error_paths(self, daemon):
        client = daemon.client()
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"arch": "x86", "kind": "stack"})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("DELETE", "/v1/jobs")
        assert excinfo.value.status == 405
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/nonsense")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.summary("no-such-campaign")
        assert excinfo.value.status == 404


def _direct_digest(payload, context) -> str:
    config = campaign_config_from_payload(payload)
    return results_digest(
        Campaign(config, context).run().results)


class TestServiceConcurrency:
    def test_eight_mixed_clients_no_starvation(self, daemon,
                                               x86_context):
        """≥8 simultaneous clients: mixed submit/status/stream/read,
        two tenants, everything completes, nothing is lost."""
        client = daemon.client()
        errors = []
        submitted = {}
        lock = threading.Lock()
        stop = threading.Event()

        def submit_worker(tenant, offset):
            try:
                payload = {"arch": "x86", "kind": "register",
                           "count": 8, "seed": 0, "ops": 36,
                           "dump_loss_probability":
                               0.08 + offset * 1e-6}
                out = daemon.client().submit(payload, tenant=tenant)
                with lock:
                    submitted[out["job"]["id"]] = tenant
                final = daemon.client().wait(out["job"]["id"],
                                             timeout=600)
                assert final["state"] == "done", final
            except Exception as exc:   # noqa: BLE001 — collected
                errors.append(exc)

        def poll_worker():
            try:
                while not stop.is_set():
                    daemon.client(timeout=30).health()
                    daemon.client(timeout=30).jobs()
                    time.sleep(0.05)
            except Exception as exc:   # noqa: BLE001
                errors.append(exc)

        def stream_worker():
            try:
                deadline = time.monotonic() + 120
                while not stop.is_set():
                    with lock:
                        job_ids = list(submitted)
                    if job_ids:
                        for event in daemon.client().stream(
                                job_ids[0]):
                            if (event.get("event") == "state"
                                    and event.get("state")
                                    in ("done", "failed",
                                        "cancelled")):
                                return
                            if stop.is_set():
                                return
                    if time.monotonic() > deadline:
                        return
                    time.sleep(0.05)
            except Exception as exc:   # noqa: BLE001
                errors.append(exc)

        def read_worker():
            try:
                while not stop.is_set():
                    for row in daemon.client(timeout=30).campaigns():
                        if "error" not in row:
                            daemon.client(timeout=30).results(
                                row["campaign_id"], limit=5)
                    time.sleep(0.05)
            except Exception as exc:   # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=submit_worker,
                             args=("tenant-a", 0)),
            threading.Thread(target=submit_worker,
                             args=("tenant-a", 1)),
            threading.Thread(target=submit_worker,
                             args=("tenant-b", 2)),
            threading.Thread(target=submit_worker,
                             args=("tenant-b", 3)),
            threading.Thread(target=poll_worker),
            threading.Thread(target=poll_worker),
            threading.Thread(target=stream_worker),
            threading.Thread(target=read_worker),
        ]
        for thread in threads:
            thread.start()
        for thread in threads[:4]:     # the submitters finish
            thread.join(600)
            assert not thread.is_alive(), "submit worker hung"
        stop.set()
        for thread in threads[4:]:
            thread.join(60)
            assert not thread.is_alive(), "auxiliary worker hung"
        assert not errors, errors
        assert len(submitted) == 4
        views = client.jobs()
        done = [view for view in views if view["state"] == "done"]
        assert len(done) >= 4
        assert {view["tenant"] for view in done
                if view["id"] in submitted} == {"tenant-a",
                                                "tenant-b"}

    def test_tenant_fairness_under_contention(self, tmp_path,
                                              x86_context):
        """One slot, tenant A floods the queue, tenant B submits one
        job: B runs before A's backlog drains."""
        handle = DaemonThread(tmp_path / "store", workers=1)
        try:
            client = handle.client()
            blocker = client.submit(
                {"arch": "x86", "kind": "data", "count": 24,
                 "seed": 0, "ops": 36},
                tenant="z")["job"]["id"]
            hogs = [client.submit(
                {"arch": "x86", "kind": "register", "count": 4,
                 "seed": 0, "ops": 36,
                 "dump_loss_probability": 0.08 + index * 1e-6},
                tenant="hog")["job"]["id"] for index in range(3)]
            small = client.submit(
                {"arch": "x86", "kind": "register", "count": 4,
                 "seed": 0, "ops": 36,
                 "dump_loss_probability": 0.09},
                tenant="small")["job"]["id"]
            for job_id in [blocker] + hogs + [small]:
                assert client.wait(job_id,
                                   timeout=600)["state"] == "done"
            finished = {view["id"]: view["finished_at"]
                        for view in client.jobs()}
            # round-robin: the small tenant is not behind the whole
            # hog backlog — it beats at least one hog job
            assert finished[small] < max(finished[job_id]
                                         for job_id in hogs)
        finally:
            handle.shutdown()


@pytest.mark.slow
class TestServiceRestart:
    """Kill -9 the daemon mid-campaign; the restart resumes to the
    same digest — the journal + job index make it bit-identical."""

    def _spawn(self, store, port):
        env = dict(os.environ)
        root = Path(__file__).resolve().parents[1]
        env["PYTHONPATH"] = str(root / "src") + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--store", str(store), "--workers", "1",
             "--port", str(port)],
            env=env, cwd=root, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)

    def test_sigkill_restart_resumes_to_same_digest(self, tmp_path,
                                                    x86_context):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        store = tmp_path / "store"
        payload = {"arch": "x86", "kind": "data", "count": 60,
                   "seed": 0, "ops": 36}
        expected = _direct_digest(payload, x86_context)

        daemon = self._spawn(store, port)
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}",
                                   timeout=300)
            client.wait_ready(timeout=120)
            job_id = client.submit(payload)["job"]["id"]
            for event in client.stream(job_id):
                if (event.get("event") == "progress"
                        and event["done"] >= 2):
                    break
            daemon.kill()              # SIGKILL: no drain, no journal
            daemon.wait(30)

            daemon = self._spawn(store, port)
            client.wait_ready(timeout=120)
            view = client.job(job_id)  # survived via the job index
            assert view["state"] in ("queued", "running", "done")
            final = client.wait(job_id, timeout=600)
            assert final["state"] == "done"
            assert final["digest"] == expected

            # graceful shutdown exits 0
            daemon.send_signal(signal.SIGTERM)
            assert daemon.wait(60) == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(30)
