"""Static analyzer: CFG, effects, liveness, corruption, predictions.

Structural invariants run over *both* real kernel images (the session
fixtures build each CFG/liveness/report once); targeted cases pin the
per-ISA details the predictor leans on.
"""

from __future__ import annotations

import pytest

from repro.static.cfg import decode_at
from repro.static.corruption import (
    CorruptionClass, classify_flip, flip_decode,
)
from repro.static.effects import (
    KIND_BRANCH, KIND_CALL, KIND_FALL, KIND_JUMP, KIND_RET,
    insn_effects, resources_for,
)
from repro.static.report import PredictedOutcome

STATICS = ["x86_static", "ppc_static"]


@pytest.fixture(params=STATICS)
def triple(request):
    return request.param.split("_")[0], request.getfixturevalue(
        request.param)


class TestCFG:
    def test_every_function_has_a_cfg(self, triple):
        _arch, (cfg, _live, _report) = triple
        assert set(cfg.functions) == set(cfg.image.functions)

    def test_blocks_partition_instructions(self, triple):
        """Every linked instruction lands in exactly one block."""
        _arch, (cfg, _live, _report) = triple
        for name, fcfg in cfg.functions.items():
            linked = list(cfg.image.functions[name].insn_addrs)
            in_blocks = [node.addr
                         for start in sorted(fcfg.blocks)
                         for node in fcfg.blocks[start].insns]
            assert sorted(in_blocks) == sorted(linked)
            assert len(set(in_blocks)) == len(in_blocks)

    def test_successors_are_block_starts(self, triple):
        _arch, (cfg, _live, _report) = triple
        for fcfg in cfg.functions.values():
            for block in fcfg.blocks.values():
                for succ in block.succs:
                    assert succ in fcfg.blocks

    def test_entries_reachable(self, triple):
        _arch, (cfg, _live, _report) = triple
        for fcfg in cfg.functions.values():
            assert fcfg.entry in fcfg.reachable

    def test_only_terminators_end_blocks(self, triple):
        """Non-final instructions never terminate; a block ends at a
        terminator or immediately before another leader."""
        _arch, (cfg, _live, _report) = triple
        for fcfg in cfg.functions.values():
            for block in fcfg.blocks.values():
                for node in block.insns[:-1]:
                    assert not node.effects.is_terminator

    def test_call_targets_are_function_entries(self, triple):
        _arch, (cfg, _live, _report) = triple
        entries = {info.addr for info in cfg.image.functions.values()}
        for fcfg in cfg.functions.values():
            assert fcfg.call_targets <= entries

    def test_insn_map_covers_text(self, triple):
        _arch, (cfg, _live, _report) = triple
        total = sum(len(info.insn_addrs)
                    for info in cfg.image.functions.values())
        assert len(cfg.insn_map) == total

    def test_x86_decoded_lengths_match_linker(self, x86_static):
        cfg, _live, _report = x86_static
        for fcfg in cfg.functions.values():
            for block in fcfg.blocks.values():
                for node in block.insns:
                    assert node.insn.length == node.length


class TestEffects:
    def test_every_kernel_insn_has_effects(self, triple):
        """The effect tables cover both images completely, and defs/
        uses stay inside the declared resource set."""
        arch, (cfg, _live, _report) = triple
        resources = set(resources_for(arch))
        for fcfg in cfg.functions.values():
            for block in fcfg.blocks.values():
                for node in block.insns:
                    eff = node.effects    # built without raising
                    assert eff.defs <= resources
                    assert eff.uses <= resources

    def test_x86_ret_and_call(self, x86_image):
        # c3 = ret; e8 rel32 = call
        ret = decode_at("x86", x86_image,
                        next(a for a, i in _decodes("x86", x86_image)
                             if i.mnemonic == "ret"))
        assert insn_effects(ret, 0).kind == KIND_RET
        addr, call = next((a, i) for a, i in _decodes("x86", x86_image)
                          if i.mnemonic == "call")
        eff = insn_effects(call, addr)
        assert eff.kind == KIND_CALL
        assert eff.target is not None
        assert "esp" in eff.defs

    def test_ppc_branch_conditionality(self, ppc_image):
        saw_branch = False
        for addr, insn in _decodes("ppc", ppc_image):
            eff = insn_effects(insn, addr)
            if insn.mnemonic == "bc":
                bo = insn.rt
                if bo & 0x4 and bo & 0x10:
                    assert eff.kind == KIND_JUMP
                else:
                    assert eff.kind == KIND_BRANCH
                    # conditional on a CR field or the CTR decrement
                    assert eff.uses, insn
                    saw_branch = True
        assert saw_branch

    def test_fall_through_is_default(self, triple):
        arch, (cfg, _live, _report) = triple
        kinds = set()
        for fcfg in cfg.functions.values():
            for block in fcfg.blocks.values():
                kinds.update(n.effects.kind for n in block.insns)
        assert KIND_FALL in kinds


class TestLiveness:
    def test_live_out_total(self, triple):
        """Every instruction gets a live-out set over the arch's
        resource alphabet."""
        arch, (cfg, live, _report) = triple
        resources = set(resources_for(arch))
        assert set(live.live_out) == set(cfg.insn_map)
        for out in live.live_out.values():
            assert out <= resources

    def test_entry_live_per_function(self, triple):
        _arch, (cfg, live, _report) = triple
        assert set(live.entry_live) == set(cfg.functions)

    def test_stack_pointer_live_somewhere(self, triple):
        arch, (_cfg, live, _report) = triple
        sp = "esp" if arch == "x86" else "r1"
        assert any(sp in out for out in live.live_out.values())

    def test_dead_defs_subset(self, triple):
        _arch, (cfg, live, _report) = triple
        for fcfg in cfg.functions.values():
            for block in fcfg.blocks.values():
                for node in block.insns:
                    dead = live.dead_defs(node.addr, node.effects)
                    assert dead <= node.effects.defs


class TestCorruption:
    def test_classes_match_decode_comparison(self, triple):
        """Per-class invariants on a deterministic sample of flips."""
        arch, (cfg, _live, _report) = triple
        image = cfg.image
        sample = sorted(cfg.insn_map)[::17]
        for addr in sample:
            original = decode_at(arch, image, addr)
            width = original.length * 8 if arch == "x86" else 32
            for bit in (b for b in (0, 5, 13) if b < width):
                cls, flipped = classify_flip(arch, image, addr, bit)
                if cls is CorruptionClass.NO_CHANGE:
                    assert flipped.mnemonic == original.mnemonic
                elif cls is CorruptionClass.LENGTH_CHANGE:
                    assert arch == "x86"
                    assert flipped.length != original.length
                elif cls is CorruptionClass.OPERAND_SUB:
                    assert flipped.mnemonic == original.mnemonic
                assert cls is not CorruptionClass.DEAD_WRITE

    def test_flip_decode_changes_exactly_one_bit(self, triple):
        arch, (cfg, _live, _report) = triple
        image = cfg.image
        addr = sorted(cfg.insn_map)[3]
        flipped = flip_decode(arch, image, addr, 2)
        original = decode_at(arch, image, addr)
        if arch == "ppc":
            assert bin(flipped.word ^ original.word).count("1") == 1

    def test_ppc_no_length_changes(self, ppc_static):
        _cfg, _live, report = ppc_static
        assert report.class_counts["length-change"] == 0


class TestPredictions:
    def test_report_covers_every_text_bit(self, triple):
        _arch, (cfg, _live, report) = triple
        expected = 0
        for fcfg in cfg.functions.values():
            for block in fcfg.blocks.values():
                expected += sum(8 * n.length for n in block.insns)
        assert report.bit_count == expected

    def test_x86_predicts_more_manifestation_than_ppc(
            self, x86_static, ppc_static):
        """The paper's headline shape: the dense variable-length ISA
        is the more error-sensitive one."""
        x86_rate = x86_static[2].predicted_manifestation_rate
        ppc_rate = ppc_static[2].predicted_manifestation_rate
        assert x86_rate > ppc_rate

    def test_length_changes_always_manifest(self, x86_static):
        _cfg, _live, report = x86_static
        for pred in report.predictions.values():
            if pred.corruption is CorruptionClass.LENGTH_CHANGE:
                assert pred.outcome is PredictedOutcome.MANIFESTED

    def test_prunable_bits_are_provable_only(self, triple):
        """Prunable = decode-identical or unreachable; never the
        heuristic dead-write promotion."""
        _arch, (_cfg, _live, report) = triple
        for key in report.dead_bits:
            pred = report.lookup(*key)
            assert (pred.corruption is CorruptionClass.NO_CHANGE
                    or pred.outcome is PredictedOutcome.NOT_ACTIVATED)
            assert pred.corruption is not CorruptionClass.DEAD_WRITE

    def test_render_mentions_headline_numbers(self, triple):
        arch, (_cfg, _live, report) = triple
        text = report.render()
        assert f"static sensitivity: {arch}" in text
        assert str(report.bit_count) in text


def _decodes(arch, image):
    for info in image.functions.values():
        for addr in info.insn_addrs:
            yield addr, decode_at(arch, image, addr)
