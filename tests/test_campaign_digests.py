"""Campaign outcomes pinned against pre-COW recorded digests.

``tests/data/campaign_digests.json`` was recorded by running every
campaign kind on both arches *before* copy-on-write forking and warm
decode caches landed, hashing the full serialized result list (the PR 2
store codec's canonical encoding, so every field the store round-trips
is covered — outcome, cause, cycle counts, target details).

These tests re-run the same campaigns — serially and through the
parallel engine — and require the digests to match bit-for-bit.  Any
change to fork semantics, decode caching, RNG seeding, or result
encoding that shifts even one cycle count fails here.  CI runs a fast
smoke subset (one kind per arch at ``workers=2``); the full matrix runs
with the regular suite.

Re-recorded once when the codec gained ``activation_instret`` /
``crash_instret`` (store format 3): every pre-change field of every
result was verified bit-identical against a snapshot of the old
payloads before the new hashes were written, so the recording still
pins the pre-COW behavior — the digests changed only because the
serialization grew two fields.

The two ``code`` digests were re-recorded once more when the
activation screen tightened to window-only first fetches (the
checkpoint-ladder PR): two code targets per arch land in functions
executed only during boot, which the old screen let run to a full
NOT_ACTIVATED simulation and the new screen proves inert up front.
Before re-recording, the old screen was re-applied under the new code
and reproduced every old digest, and a field-by-field diff confirmed
the only change on any result is ``screened: false -> true`` with the
outcome staying NOT_ACTIVATED — the behavior pin is intact.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.outcomes import CampaignKind
from repro.store.codec import canonical_json, result_to_dict

DIGEST_PATH = Path(__file__).parent / "data" / "campaign_digests.json"
DIGESTS = json.loads(DIGEST_PATH.read_text())

_KINDS = {kind.value: kind for kind in CampaignKind}


def _digest(result) -> str:
    payload = canonical_json([result_to_dict(r) for r in result.results])
    return hashlib.sha256(payload.encode()).hexdigest()


def _run_and_check(key, workers, exec_mode, x86_context, ppc_context,
                   checkpoints=None):
    arch, kind_name = key.split("/")
    recorded = DIGESTS[key]
    extra = {} if checkpoints is None else {"checkpoints": checkpoints}
    config = CampaignConfig(arch=arch, kind=_KINDS[kind_name],
                            count=recorded["count"],
                            seed=recorded["seed"], ops=recorded["ops"],
                            exec_mode=exec_mode, **extra)
    context = x86_context if arch == "x86" else ppc_context
    result = Campaign(config, context).run(workers=workers)
    assert result.injected == recorded["count"]
    assert not result.failures
    assert _digest(result) == recorded["sha256"], (
        f"{key} (workers={workers}, exec_mode={exec_mode}, "
        f"checkpoints={checkpoints}) diverged from the recording")


@pytest.mark.parametrize(
    "key", sorted(DIGESTS),
    ids=[key.replace("/", "-") for key in sorted(DIGESTS)])
@pytest.mark.parametrize("workers", [1, 2],
                         ids=["serial", "workers2"])
def test_matches_pre_cow_digest(key, workers, x86_context, ppc_context):
    """All eight arch/kind combos under the compiled-block core (the
    default).  The digests were recorded under the single-step core, so
    a match here is also an end-to-end block-vs-step equivalence proof
    across every campaign path (injection hooks, forks, watchpoints,
    crash classification)."""
    _run_and_check(key, workers, "block", x86_context, ppc_context)


@pytest.mark.parametrize(
    "key", sorted(DIGESTS),
    ids=[key.replace("/", "-") for key in sorted(DIGESTS)])
def test_step_mode_still_matches(key, x86_context, ppc_context):
    """The single-step core remains pinned to the same digests, so a
    block-core bug cannot hide behind a matching step-core bug (and
    ``exec_mode`` demonstrably never enters campaign identity)."""
    _run_and_check(key, 1, "step", x86_context, ppc_context)


@pytest.mark.parametrize(
    "key", sorted(DIGESTS),
    ids=[key.replace("/", "-") for key in sorted(DIGESTS)])
def test_checkpoints_disabled_still_matches(key, x86_context,
                                            ppc_context):
    """``checkpoints=0`` (from-boot dispatch) pins to the same digests
    the default checkpointed runs above match — checkpoint dispatch is
    demonstrably invisible to results, and ``checkpoints`` never
    enters campaign identity."""
    _run_and_check(key, 1, "block", x86_context, ppc_context,
                   checkpoints=0)
