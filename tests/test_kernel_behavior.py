"""Behavioral tests of the miniature kernel itself (via the machine)."""

import pytest

from repro.kernel.abi import Syscall, SPINLOCK_MAGIC
from repro.machine.events import KernelCrash


@pytest.mark.parametrize("fixture", ["fresh_x86", "fresh_ppc"])
class TestBufferCache:
    def test_cache_hit_counting(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        machine._switch_to(3)
        task = machine.tasks[3]
        machine.write_user(task, 0, b"z" * 100)
        fd = machine.syscall(Syscall.OPEN, 2)
        machine.syscall(Syscall.WRITE, fd, task.user_buf, 100)
        misses = machine.read_global("buffer_misses")
        machine.syscall(Syscall.LSEEK, fd, 0)
        machine.syscall(Syscall.READ, fd, task.user_buf + 0x800, 100)
        assert machine.read_global("buffer_hits") >= 1
        assert machine.read_global("buffer_misses") == misses

    def test_dirty_tracking_and_sync(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        machine._switch_to(3)
        task = machine.tasks[3]
        machine.write_user(task, 0, b"q" * 64)
        fd = machine.syscall(Syscall.OPEN, 3)
        machine.syscall(Syscall.WRITE, fd, task.user_buf, 64)
        assert machine.read_global("dirty_count") >= 1
        machine.syscall(Syscall.FSYNC, fd)
        assert machine.read_global("dirty_count") == 0
        # data actually reached the "disk"
        ramdisk = machine.image.globals["ramdisk"]
        block = 3 * 4 * 256                # ino 3, first block
        assert machine.cpu.mem.read(ramdisk.addr + block, 4) == b"qqqq"

    def test_lru_eviction_under_pressure(self, fixture, request):
        """Touch more blocks than there are buffers: must still work."""
        machine = request.getfixturevalue(fixture)
        machine._switch_to(3)
        task = machine.tasks[3]
        machine.write_user(task, 0, b"e" * 16)
        for ino in range(6):
            fd = machine.syscall(Syscall.OPEN, ino)
            for pos in (0, 256, 512, 768):
                machine.syscall(Syscall.LSEEK, fd, pos)
                machine.syscall(Syscall.READ, fd,
                                task.user_buf + 0x800, 16)
            machine.syscall(Syscall.CLOSE, fd)
        assert machine.read_global("buffer_misses") >= 16


@pytest.mark.parametrize("fixture", ["fresh_x86", "fresh_ppc"])
class TestJournal:
    def test_commit_after_expiry(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        commits = machine.read_global("the_journal", 0)
        for _ in range(8):                 # advance past t_expires
            machine.deliver_timer()
        machine.run_kthread(2)
        journal = machine.image.globals["the_journal"]
        field = machine.image.field("journal_s", "j_commits")
        little = machine.image.little_endian
        value = machine.cpu.mem.read_u32(journal.addr + field.offset,
                                         little)
        assert value >= 1


@pytest.mark.parametrize("fixture", ["fresh_x86", "fresh_ppc"])
class TestSpinlockChecks:
    def test_magic_intact_after_boot(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        for lock_name in ("runqueue_lock", "buffer_lock", "pages_lock",
                          "net_lock", "pipe_lock"):
            lock = machine.image.globals[lock_name]
            field = machine.image.field("spinlock_t", "magic")
            little = machine.image.little_endian
            value = machine.cpu.mem.read_u32(
                lock.addr + field.offset, little)
            assert value == SPINLOCK_MAGIC, lock_name

    def test_corrupted_magic_bugchecks(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        lock = machine.image.globals["buffer_lock"]
        field = machine.image.field("spinlock_t", "magic")
        little = machine.image.little_endian
        machine.cpu.mem.write_u32(lock.addr + field.offset,
                                  SPINLOCK_MAGIC ^ 0x400000, little)
        machine._switch_to(3)
        task = machine.tasks[3]
        machine.write_user(task, 0, b"x" * 32)
        fd = machine.syscall(Syscall.OPEN, 1)
        with pytest.raises(KernelCrash) as exc:
            machine.syscall(Syscall.WRITE, fd, task.user_buf, 32)
        assert exc.value.report.function in ("spin_lock", "spin_unlock")


@pytest.mark.parametrize("fixture", ["fresh_x86", "fresh_ppc"])
class TestSchedulerBehavior:
    def test_yield_rotates_tasks(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        seen = set()
        for _ in range(20):
            machine.syscall(Syscall.SCHED_YIELD)
            machine.deliver_timer()
            seen.add(machine.current_pid)
        assert len(seen) >= 3

    def test_counters_recharge(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        for _ in range(30):                # exhaust every slice
            machine.syscall(Syscall.SCHED_YIELD)
            machine.deliver_timer()
        # the system is still scheduling (no wedge): counters recharged
        pid = machine.syscall(Syscall.GETPID)
        assert pid == machine.current_pid


@pytest.mark.parametrize("fixture", ["fresh_x86", "fresh_ppc"])
class TestAllocator:
    def test_brk_roundtrip(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        free_before = machine.read_global("page_free_count")
        assert machine.syscall(Syscall.BRK) != 0
        assert machine.read_global("page_free_count") == free_before

    def test_net_skb_lifecycle(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        machine._switch_to(4)
        task = machine.tasks[4]
        machine.write_user(task, 0, b"frame-data-1234")
        allocated_before = machine.read_global("km_alloc_count")
        machine.syscall(Syscall.SEND, task.user_buf, 15)
        machine.syscall(Syscall.RECV, task.user_buf + 0x800, 64)
        assert machine.read_global("km_alloc_count") > allocated_before
        assert machine.read_global("packets_rx") >= 1
        assert machine.read_user(task, 0x800, 15) == b"frame-data-1234"
