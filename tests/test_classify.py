"""Crash-cause classification tests (Tables 3 and 4)."""


from repro.analysis.classify import classify_crash
from repro.injection.outcomes import CrashCauseG4, CrashCauseP4
from repro.machine.events import CrashReport
from repro.ppc.exceptions import DSISR_PROTECTION, PPCVector
from repro.x86.exceptions import X86Vector


def x86_report(vector, address=None, panic=False, registers=None,
               stack_oor=False):
    return CrashReport(arch="x86", vector=vector, address=address,
                       detail="", pc=0xC0100000, cycles_at_crash=1,
                       instret_at_crash=1, registers=registers or {},
                       panic=panic, stack_out_of_range=stack_oor)


def g4_report(vector, address=None, panic=False, registers=None,
              stack_oor=False):
    return CrashReport(arch="ppc", vector=vector, address=address,
                       detail="", pc=0xC0100000, cycles_at_crash=1,
                       instret_at_crash=1, registers=registers or {},
                       panic=panic, stack_out_of_range=stack_oor)


class TestP4Classification:
    def test_null_pointer(self):
        report = x86_report(X86Vector.PAGE_FAULT, address=0x8)
        assert classify_crash(report) is CrashCauseP4.NULL_POINTER

    def test_bad_paging(self):
        report = x86_report(X86Vector.PAGE_FAULT, address=0x170FC2A5)
        assert classify_crash(report) is CrashCauseP4.BAD_PAGING

    def test_null_boundary(self):
        assert classify_crash(
            x86_report(X86Vector.PAGE_FAULT, address=0xFFF)) is \
            CrashCauseP4.NULL_POINTER
        assert classify_crash(
            x86_report(X86Vector.PAGE_FAULT, address=0x1000)) is \
            CrashCauseP4.BAD_PAGING

    def test_invalid_instruction(self):
        assert classify_crash(x86_report(X86Vector.INVALID_OPCODE)) is \
            CrashCauseP4.INVALID_INSTRUCTION

    def test_gp_tss_de_br(self):
        assert classify_crash(
            x86_report(X86Vector.GENERAL_PROTECTION)) is \
            CrashCauseP4.GENERAL_PROTECTION
        assert classify_crash(x86_report(X86Vector.INVALID_TSS)) is \
            CrashCauseP4.INVALID_TSS
        assert classify_crash(x86_report(X86Vector.DIVIDE_ERROR)) is \
            CrashCauseP4.DIVIDE_ERROR
        assert classify_crash(x86_report(X86Vector.BOUNDS)) is \
            CrashCauseP4.BOUNDS_TRAP

    def test_panic_overrides_vector(self):
        """__panic sets panic_code then traps; the classifier must
        report Kernel Panic, not Invalid Instruction."""
        report = x86_report(X86Vector.INVALID_OPCODE, panic=True)
        assert classify_crash(report) is CrashCauseP4.KERNEL_PANIC

    def test_bug_without_panic_is_invalid_instruction(self):
        """Figure 13: spinlock-magic BUG checks surface as Invalid
        Instruction (ud2a), masking the data-error origin."""
        report = x86_report(X86Vector.INVALID_OPCODE, panic=False)
        assert classify_crash(report) is \
            CrashCauseP4.INVALID_INSTRUCTION


class TestG4Classification:
    def test_bad_area(self):
        report = g4_report(PPCVector.DSI, address=0x4D)
        assert classify_crash(report) is CrashCauseG4.BAD_AREA

    def test_bus_error_is_protection_dsi(self):
        report = g4_report(PPCVector.DSI, address=0xC0100000,
                           registers={"dsisr": DSISR_PROTECTION})
        assert classify_crash(report) is CrashCauseG4.BUS_ERROR

    def test_isi_is_bad_area(self):
        """Linux/PPC oopses ISI through do_page_fault: 'kernel access
        of bad area'."""
        report = g4_report(PPCVector.ISI, address=0xDEAD0000)
        assert classify_crash(report) is CrashCauseG4.BAD_AREA

    def test_program_is_illegal_instruction(self):
        assert classify_crash(g4_report(PPCVector.PROGRAM)) is \
            CrashCauseG4.ILLEGAL_INSTRUCTION

    def test_stack_overflow_wrapper_takes_precedence(self):
        """The exception-entry wrapper fires before the handler: even a
        DSI becomes Stack Overflow when r1 is out of range."""
        report = g4_report(PPCVector.DSI, address=0x4D, stack_oor=True)
        assert classify_crash(report) is CrashCauseG4.STACK_OVERFLOW

    def test_machine_check_and_alignment(self):
        assert classify_crash(g4_report(PPCVector.MACHINE_CHECK)) is \
            CrashCauseG4.MACHINE_CHECK
        assert classify_crash(g4_report(PPCVector.ALIGNMENT)) is \
            CrashCauseG4.ALIGNMENT

    def test_panic(self):
        report = g4_report(PPCVector.PROGRAM, panic=True)
        assert classify_crash(report) is CrashCauseG4.PANIC

    def test_unknown_vector_is_bad_trap(self):
        report = g4_report(PPCVector.DECREMENTER)
        assert classify_crash(report) is CrashCauseG4.BAD_TRAP
