"""Execution-semantics tests for the G4-like core."""

import pytest

from repro.isa.memory import Region
from repro.ppc.assembler import PPCAssembler
from repro.ppc.cpu import PPCCPU
from repro.ppc.exceptions import PPCFault, PPCVector, ProgramReason
from repro.ppc.registers import MSR_DR, MSR_IR, SPR_SDR1, SPR_SPRG2

TEXT = 0xC0100000
DATA = 0xC0300000
STACK = 0xC0500000


def make_cpu() -> PPCCPU:
    cpu = PPCCPU()
    cpu.aspace.map_region(Region(TEXT, 0x1000, "rx", "text"))
    cpu.aspace.map_region(Region(DATA, 0x1000, "rwx", "data"))
    cpu.aspace.map_region(Region(STACK, 0x2000, "rw", "stack"))
    cpu.gpr[1] = STACK + 0x2000 - 64
    cpu.pc = TEXT
    return cpu


def run(asm: PPCAssembler, steps: int = None, cpu: PPCCPU = None
        ) -> PPCCPU:
    if cpu is None:
        cpu = make_cpu()
    cpu.mem.write(TEXT, asm.finish())
    count = steps if steps is not None else len(asm.words)
    for _ in range(count):
        cpu.step()
    return cpu


class TestArithmetic:
    def test_add_chain(self):
        asm = PPCAssembler()
        asm.li(3, 7)
        asm.li(4, 5)
        asm.add(3, 3, 4)
        asm.mulli(5, 3, 10)
        cpu = run(asm)
        assert cpu.gpr[3] == 12
        assert cpu.gpr[5] == 120

    def test_subf_order(self):
        asm = PPCAssembler()
        asm.li(3, 5)
        asm.li(4, 30)
        asm.subf(5, 3, 4)                      # r5 = r4 - r3
        cpu = run(asm)
        assert cpu.gpr[5] == 25

    def test_divw_by_zero_is_silent(self):
        """No divide-error exception on PowerPC (Table 4 has no Divide
        Error category)."""
        asm = PPCAssembler()
        asm.li(3, 100)
        asm.li(4, 0)
        asm.divw(5, 3, 4)
        cpu = run(asm)
        assert cpu.gpr[5] == 0                 # boundedly undefined

    def test_rlwinm_mask(self):
        asm = PPCAssembler()
        asm.load_imm32(3, 0xDEADBEEF)
        asm.rlwinm(4, 3, 0, 24, 31)            # low byte
        asm.rlwinm(5, 3, 0, 16, 31)            # low halfword
        cpu = run(asm)
        assert cpu.gpr[4] == 0xEF
        assert cpu.gpr[5] == 0xBEEF

    def test_srawi_sign(self):
        asm = PPCAssembler()
        asm.load_imm32(3, 0x80000000)
        asm.srawi(4, 3, 4)
        cpu = run(asm)
        assert cpu.gpr[4] == 0xF8000000


class TestMemory:
    def test_word_roundtrip_bigendian(self):
        asm = PPCAssembler()
        asm.load_imm32(3, 0x11223344)
        asm.load_imm32(4, DATA)
        asm.stw(3, 0, 4)
        asm.lwz(5, 0, 4)
        cpu = run(asm)
        assert cpu.gpr[5] == 0x11223344
        assert cpu.mem.read(DATA, 4) == b"\x11\x22\x33\x44"

    def test_unaligned_lwz_completes(self):
        """Ordinary misaligned loads complete in hardware on the 7450
        family (the paper's Figure 9 reads from 0x4d with no alignment
        interrupt)."""
        asm = PPCAssembler()
        asm.load_imm32(3, 0xAABBCCDD)
        asm.load_imm32(4, DATA)
        asm.stw(3, 0, 4)
        asm.lwz(5, 2, 4)                       # misaligned: no trap
        cpu = run(asm)
        assert cpu.gpr[5] == 0xCCDD0000

    def test_lmw_alignment_exception(self):
        asm = PPCAssembler()
        asm.load_imm32(4, DATA + 2)
        asm.lmw(29, 1, 4)                      # DATA+3: unaligned
        with pytest.raises(PPCFault) as exc:
            run(asm)
        assert exc.value.vector == PPCVector.ALIGNMENT

    def test_stmw_lmw_roundtrip(self):
        asm = PPCAssembler()
        asm.li(29, 11)
        asm.li(30, 22)
        asm.li(31, 33)
        asm.load_imm32(4, DATA)
        asm.stmw(29, 0, 4)
        asm.li(29, 0)
        asm.li(30, 0)
        asm.li(31, 0)
        asm.lmw(29, 0, 4)
        cpu = run(asm)
        assert (cpu.gpr[29], cpu.gpr[30], cpu.gpr[31]) == (11, 22, 33)

    def test_bad_area_dsi(self):
        asm = PPCAssembler()
        asm.li(11, 1)
        asm.lwz(9, 76, 11)                     # paper figure 9: 0x4d
        with pytest.raises(PPCFault) as exc:
            run(asm)
        assert exc.value.vector == PPCVector.DSI
        assert exc.value.address == 77

    def test_write_to_text_is_protection_dsi(self):
        asm = PPCAssembler()
        asm.load_imm32(4, TEXT)
        asm.li(3, 1)
        asm.stw(3, 0, 4)
        with pytest.raises(PPCFault) as exc:
            run(asm)
        assert exc.value.vector == PPCVector.DSI
        assert exc.value.dsisr & 0x08000000    # protection bit


class TestBranches:
    def test_bl_blr(self):
        asm = PPCAssembler()
        asm.li(3, 0)
        asm.b_label("over")
        asm.label("target")
        asm.li(3, 42)
        asm.blr()
        asm.label("over")
        asm.load_imm32(5, TEXT + 8)            # address of 'target'
        asm.mtlr(5)
        asm.mtctr(5)
        asm.bctr()
        cpu = run(asm, 9)
        assert cpu.gpr[3] == 42

    def test_ctr_loop(self):
        asm = PPCAssembler()
        asm.li(3, 0)
        asm.li(4, 5)
        asm.mtctr(4)
        asm.label("loop")
        asm.addi(3, 3, 1)
        # bdnz: BO=16 (decrement, branch if CTR!=0)
        asm.bc_label(16, 0, "loop")
        cpu = run(asm, 3 + 5 * 2)
        assert cpu.gpr[3] == 5


class TestSystem:
    def test_msr_dr_clear_machine_checks(self):
        cpu = make_cpu()
        cpu.set_msr(cpu.msr & ~MSR_DR)
        with pytest.raises(PPCFault) as exc:
            cpu.load(DATA, 4)
        assert exc.value.vector == PPCVector.MACHINE_CHECK
        # low addresses unaffected
        cpu.aspace.map_region(Region(0x8000, 0x1000, "rw", "low"))
        cpu.load(0x8000, 4)

    def test_msr_ir_clear_machine_checks_fetch(self):
        cpu = make_cpu()
        cpu.mem.write(TEXT, b"\x60\x00\x00\x00")   # nop
        cpu.step()
        cpu.set_msr(cpu.msr & ~MSR_IR)
        cpu.flush_icache()
        cpu.pc = TEXT
        with pytest.raises(PPCFault) as exc:
            cpu.step()
        assert exc.value.vector == PPCVector.MACHINE_CHECK

    def test_spr_write_hook(self):
        cpu = make_cpu()
        seen = []
        cpu.on_spr_write = lambda spr, old, new: seen.append(
            (spr, old, new))
        cpu.set_spr(SPR_SPRG2, 0x1234)
        assert seen == [(SPR_SPRG2, 0, 0x1234)]

    def test_lr_ctr_via_spr_interface(self):
        cpu = make_cpu()
        cpu.set_spr(8, 0xAABB)
        assert cpu.lr == 0xAABB
        cpu.set_spr(9, 7)
        assert cpu.ctr == 7
        assert cpu.get_spr(9) == 7

    def test_privileged_spr_in_user_mode(self):
        cpu = make_cpu()
        cpu.user_mode = True
        with pytest.raises(PPCFault) as exc:
            cpu.check_supervisor_spr(SPR_SDR1)
        assert exc.value.program_reason is ProgramReason.PRIVILEGED

    def test_btic_poison_faults_on_next_taken_branch(self):
        cpu = make_cpu()
        cpu.btic_poisoned = True
        with pytest.raises(PPCFault) as exc:
            cpu.branch(TEXT + 0x100)
        assert exc.value.vector == PPCVector.PROGRAM
        assert not cpu.btic_poisoned           # one-shot

    def test_trap_instruction(self):
        asm = PPCAssembler()
        asm.trap()
        with pytest.raises(PPCFault) as exc:
            run(asm, 1)
        assert exc.value.program_reason is ProgramReason.TRAP

    def test_pc_low_bits_masked(self):
        """Flips in PC bits 0-1 are architecturally invisible."""
        cpu = make_cpu()
        cpu.mem.write(TEXT, b"\x38\x60\x00\x07")   # li r3,7
        cpu.pc = TEXT + 2                          # corrupted low bits
        cpu.step()
        assert cpu.gpr[3] == 7

    def test_high_data_fault_dsi_mode(self):
        cpu = make_cpu()
        cpu._high_data_fault = "dsi"               # SDR1 corrupted
        with pytest.raises(PPCFault) as exc:
            cpu.load(DATA, 4)
        assert exc.value.vector == PPCVector.DSI
