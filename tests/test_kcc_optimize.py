"""Constant-folding pass tests (semantics preserved, code shrinks)."""

import pytest

from repro.kcc import analyze, build_image, parse
from repro.kcc.ast import Binary, Num
from repro.kcc.optimize import fold_expr, optimize_program


def parse_expr(text: str):
    program = analyze(parse(f"fn f(a: u32, b: u32) -> u32 "
                            f"{{ return {text}; }}"))
    return program.functions[0].body[0].value


class TestFolding:
    @pytest.mark.parametrize("source,value", [
        ("2 + 3 * 4", 14),
        ("(10 - 3) * (1 << 4)", 112),
        ("100 / 7", 14),
        ("100 % 7", 2),
        ("0xFF & 0x0F0F", 0x0F),
        ("1 | 2 | 4", 7),
        ("5 ^ 5", 0),
        ("~0", 0xFFFFFFFF),
        ("-1", 0xFFFFFFFF),
        ("!0", 1),
        ("!7", 0),
        ("3 < 4", 1),
        ("4 <= 3", 0),
        ("0xFFFFFFFF + 1", 0),                 # wraparound
    ])
    def test_constants_fold(self, source, value):
        folded = fold_expr(parse_expr(source))
        assert isinstance(folded, Num)
        assert folded.value == value

    @pytest.mark.parametrize("source", [
        "a + 0", "0 + a", "a - 0", "a * 1", "1 * a", "a << 0",
        "a >> 0", "a | 0", "0 | a",
    ])
    def test_identities_remove_op(self, source):
        folded = fold_expr(parse_expr(source))
        assert not isinstance(folded, Binary), source

    @pytest.mark.parametrize("source", [
        "10 / 0", "10 % 0",                     # keep the runtime trap
        "1 << 32", "1 >> 40",                   # arch-divergent
        "a + b",                                # not constant
    ])
    def test_unfoldable_stays(self, source):
        folded = fold_expr(parse_expr(source))
        assert not isinstance(folded, Num)

    def test_nested_partial_fold(self):
        folded = fold_expr(parse_expr("a + (2 * 8)"))
        assert isinstance(folded, Binary)
        assert isinstance(folded.right, Num)
        assert folded.right.value == 16


class TestDeadCode:
    def test_while_zero_removed(self):
        program = analyze(parse("""
            fn f() -> u32 {
                while (1 == 2) { __bug(); }
                return 7;
            }
        """))
        optimize_program(program)
        kinds = [type(s).__name__ for s in program.functions[0].body]
        assert "While" not in kinds

    def test_if_with_locals_kept(self):
        """Dead branches that declare locals must survive (slot
        indices are fixed at sema time)."""
        program = analyze(parse("""
            fn f() -> u32 {
                var total: u32 = 0;
                if (0) { var x: u32 = 3; total = x; }
                return total;
            }
        """))
        optimize_program(program)
        kinds = [type(s).__name__ for s in program.functions[0].body]
        assert "If" in kinds


class TestCodeShrinksAndAgrees:
    SOURCE = """
        const BLOCK = 64;
        global out: u32[4];
        fn f(i: u32) -> u32 {
            var offset: u32 = i * BLOCK + (BLOCK / 2) - 0;
            out[0] = 2 + 3 * 4;
            out[1] = offset * 1;
            while (1 == 0) { out[2] = 9; }
            return offset + (0 | 0);
        }
    """

    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_optimized_code_is_smaller(self, arch):
        plain = build_image(analyze(parse(self.SOURCE)), arch,
                            optimize=False)
        tight = build_image(analyze(parse(self.SOURCE)), arch,
                            optimize=True)
        assert len(tight.text_bytes) < len(plain.text_bytes)

    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_semantics_preserved(self, arch):
        from tests.test_kcc_backends import run_compiled
        results = {}
        for optimize in (False, True):
            image = build_image(analyze(parse(self.SOURCE)), arch,
                                optimize=optimize)
            value, data = run_compiled(image, "f", [5])
            results[optimize] = (value, data)
        assert results[False] == results[True]
