"""Disassembler formatting tests for both architectures."""

import pytest

from repro.x86.disasm import disassemble, disassemble_range
from repro.ppc.disasm import disassemble_word, disassemble_range as \
    ppc_range


class TestX86Format:
    @pytest.mark.parametrize("raw,expected", [
        (b"\x55", "push %ebp"),
        (b"\x89\xe5", "mov %esp,%ebp"),
        (b"\x8b\x45\xe0", "mov -0x20(%ebp),%eax"),
        (b"\x89\x45\xfc", "mov %eax,-0x4(%ebp)"),
        (b"\x8d\x65\xf4", "lea -0xc(%ebp),%esp"),
        (b"\xc3", "ret"),
        (b"\x0f\x0b", "ud2a"),
        (b"\xcd\x80", "int $0x80"),
        (b"\x85\xc0", "test %eax,%eax"),
        (b"\x31\xd2", "xor %edx,%edx"),
        (b"\xf7\xf1", "div %ecx"),
        (b"\x90", "nop"),
        (b"\xb8\x2a\x00\x00\x00", "mov $0x2a,%eax"),
        (b"\x66\x8b\x45\xe0", "mov -0x20(%ebp),%ax"),
        (b"\x8a\x45\xe0", "mov -0x20(%ebp),%al"),
        (b"\x8b\x8a\xe0\x7a\x43\xc0", "mov 0xc0437ae0(%edx),%ecx"),
        (b"\xff\xd0", "call *%eax"),
        (b"\x0f\xaf\xc1", "imul %ecx,%eax"),
        (b"\xcf", "iret"),
    ])
    def test_att_rendering(self, raw, expected):
        _, text = disassemble(raw)
        assert text == expected

    def test_jump_targets_absolute(self):
        _, text = disassemble(b"\x74\x27", addr=0xC02ABF25)
        assert text == "je 0xc02abf4e"         # paper figure 7

    def test_range_includes_hex_bytes(self):
        lines = disassemble_range(b"\x55\x89\xe5", 0xC0100000, 4)
        assert lines[0].startswith("c0100000: 55")
        assert len(lines) == 2

    def test_bad_bytes_render(self):
        _, text = disassemble(b"\xd8\x00")
        assert "bad" in text


class TestPPCFormat:
    @pytest.mark.parametrize("word,expected", [
        (0x9421FFE0, "stwu r1,-32(r1)"),
        (0x7C0802A6, "mflr r0"),
        (0x7C0803A6, "mtlr r0"),
        (0x817F0028, "lwz r11,40(r31)"),
        (0x2C0B0000, "cmpwi r11,0"),
        (0x38600007, "li r3,7"),
        (0x3C60C030, "lis r3,-16336"),
        (0x4E800020, "blr"),
        (0x44000002, "sc"),
        (0x7C631A14, "add r3,r3,r3"),
        (0x60000000, "nop"),
        (0x7C0902A6, "mfctr r0"),
    ])
    def test_rendering(self, word, expected):
        _, text = disassemble_word(word)
        assert text == expected

    def test_illegal_rendering(self):
        _, text = disassemble_word(0x00000000)
        assert "illegal" in text

    def test_range(self):
        raw = (0x9421FFE0).to_bytes(4, "big") + \
            (0x7C0802A6).to_bytes(4, "big")
        lines = ppc_range(raw, 0xC0048FAC, 4)
        assert len(lines) == 2
        assert "stwu" in lines[0]
        assert lines[0].startswith("c0048fac: 94 21 ff e0")
