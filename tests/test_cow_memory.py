"""Copy-on-write memory forking and warm decode-cache invalidation.

Three guarantees from the COW fork redesign:

* **Isolation** — a randomized property test: after ``fork()``, writes
  on either side (every access width, base→clone and clone→base) are
  never visible to the other side, and reads on both sides agree with
  an eagerly copied reference byte-for-byte.
* **Equivalence** — ``fork()`` (COW + warm cache) and
  ``fork(eager=True)`` (the pre-COW deep copy with a cold CPU) produce
  bit-identical machines: same architectural snapshot, same cycle
  counts, same memory, after running real kernel work.
* **Precision** — flipping one text byte evicts only the decodes that
  byte can corrupt; every other cached decode survives (demoted to the
  warm tier, where its next fetch re-runs the permission checks).
"""

from __future__ import annotations

import random

import pytest

from repro.isa.memory import PAGE_SIZE, PhysicalMemory
from repro.machine.machine import Machine

ARCHES = ["x86", "ppc"]


def _machine(arch, booted_x86, booted_ppc) -> Machine:
    return booted_x86 if arch == "x86" else booted_ppc


# ---------------------------------------------------------------------------
# randomized fork isolation


class TestForkIsolation:
    """Writes after fork never leak across the fork boundary."""

    SPAN = 8 * PAGE_SIZE

    @staticmethod
    def _apply(mem: PhysicalMemory, mirror: bytearray, rng: random.Random,
               addr: int) -> None:
        """One random-width write, applied identically to the memory
        under test and to an independent flat-bytearray model."""
        width = rng.choice(("raw", "u8", "u16", "u32"))
        if width == "raw":
            data = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 64)))
            mem.write(addr, data)
            mirror[addr:addr + len(data)] = data
        elif width == "u8":
            value = rng.randrange(256)
            mem.write_u8(addr, value)
            mirror[addr] = value
        elif width == "u16":
            value = rng.randrange(1 << 16)
            little = bool(rng.randrange(2))
            mem.write_u16(addr, value, little_endian=little)
            mirror[addr:addr + 2] = value.to_bytes(
                2, "little" if little else "big")
        else:
            value = rng.randrange(1 << 32)
            little = bool(rng.randrange(2))
            mem.write_u32(addr, value, little_endian=little)
            mirror[addr:addr + 4] = value.to_bytes(
                4, "little" if little else "big")

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_isolation(self, seed):
        rng = random.Random(seed)
        base = PhysicalMemory()
        initial = bytes(rng.randrange(256) for _ in range(self.SPAN))
        base.write(0, initial)
        clone = base.fork()
        # independent flat models of what each side must contain
        mirrors = {id(base): bytearray(initial),
                   id(clone): bytearray(initial)}

        for _ in range(200):
            # keep the largest write inside the span; straddling page
            # boundaries is still exercised constantly
            addr = rng.randrange(self.SPAN - 64)
            target = base if rng.randrange(2) else clone
            self._apply(target, mirrors[id(target)], rng, addr)

        for mem in (base, clone):
            assert mem.read(0, self.SPAN) == bytes(mirrors[id(mem)])

    @pytest.mark.parametrize("direction", ["base_writes", "clone_writes"])
    @pytest.mark.parametrize("width", ["raw", "u8", "u16", "u32"])
    def test_single_write_invisible_across_fork(self, direction, width):
        base = PhysicalMemory()
        base.write(0x1000, bytes(range(256)))
        clone = base.fork()
        writer, reader = ((base, clone) if direction == "base_writes"
                          else (clone, base))
        before = reader.read(0x1000, 256)
        addr = 0x1010
        if width == "raw":
            writer.write(addr, b"\xAA" * 8)
        elif width == "u8":
            writer.write_u8(addr, 0xAA)
        elif width == "u16":
            writer.write_u16(addr, 0xAAAA, little_endian=True)
        else:
            writer.write_u32(addr, 0xAABBCCDD, little_endian=False)
        assert reader.read(0x1000, 256) == before
        assert writer.read(addr, 1) == b"\xAA"
        assert writer.cow_page_copies == 1

    def test_page_boundary_straddle(self):
        base = PhysicalMemory()
        base.write(0, bytes(2 * PAGE_SIZE))
        clone = base.fork()
        clone.write(PAGE_SIZE - 2, b"\x11\x22\x33\x44")
        assert base.read(PAGE_SIZE - 2, 4) == b"\x00\x00\x00\x00"
        assert clone.read(PAGE_SIZE - 2, 4) == b"\x11\x22\x33\x44"
        assert clone.cow_page_copies == 2   # both straddled pages

    def test_sibling_forks_are_isolated(self):
        base = PhysicalMemory()
        base.write(0x2000, b"seed")
        a = base.fork()
        b = base.fork()
        a.write(0x2000, b"aaaa")
        b.write(0x2000, b"bbbb")
        assert base.read(0x2000, 4) == b"seed"
        assert a.read(0x2000, 4) == b"aaaa"
        assert b.read(0x2000, 4) == b"bbbb"


# ---------------------------------------------------------------------------
# COW + warm cache vs the eager pre-COW baseline


class TestCowEagerEquivalence:
    @pytest.mark.parametrize("arch", ARCHES)
    def test_identical_after_kernel_work(self, arch, booted_x86,
                                         booted_ppc):
        base = _machine(arch, booted_x86, booted_ppc)
        cow, eager = base.fork(), base.fork(eager=True)
        for machine in (cow, eager):
            for nr in (1, 2, 3, 1, 4, 2):
                machine.syscall(nr)
            machine.deliver_timer()
        assert cow.cpu.snapshot() == eager.cpu.snapshot()
        assert cow.cpu.cycles == eager.cpu.cycles
        # memory contents identical page-for-page
        pages = set(cow.cpu.mem._pages) | set(eager.cpu.mem._pages)
        for index in pages:
            assert cow.cpu.mem.read(index * PAGE_SIZE, PAGE_SIZE) == \
                eager.cpu.mem.read(index * PAGE_SIZE, PAGE_SIZE), \
                f"page {index:#x} diverged"

    @pytest.mark.parametrize("arch", ARCHES)
    def test_fork_copies_no_pages_up_front(self, arch, booted_x86,
                                           booted_ppc):
        base = _machine(arch, booted_x86, booted_ppc)
        clone = base.fork()
        assert clone.cpu.mem.cow_page_copies == 0
        assert clone.cpu.mem.shared_pages() == len(clone.cpu.mem._pages)


# ---------------------------------------------------------------------------
# per-address icache invalidation


class TestIcacheInvalidation:
    @pytest.mark.parametrize("arch", ARCHES)
    def test_text_flip_evicts_only_affected_decodes(
            self, arch, booted_x86, booted_ppc):
        base = _machine(arch, booted_x86, booted_ppc)
        clone = base.fork()
        clone.syscall(1)                       # warm the validated tier
        cpu = clone.cpu
        cached = dict(cpu._icache)
        assert cached, "syscall should have populated the icache"
        victim = sorted(cached)[len(cached) // 2]
        clone.flip_memory_bit(victim, 0)
        # the victim's decode is gone from both tiers ...
        assert victim not in cpu._icache
        assert victim not in cpu._icache_warm
        # ... survivors were demoted to warm, not discarded ...
        from repro.x86 import decoder as x86_decoder
        window = x86_decoder.MAX_INSN_LEN if arch == "x86" else 4
        survivors = {a: i for a, i in cached.items()
                     if not (victim - window < a <= victim)}
        for addr, instr in survivors.items():
            assert cpu._icache_warm.get(addr) is instr, \
                f"decode at {addr:#x} should have survived the flip"
        # ... and a subsequent fetch re-decodes the flipped word only
        assert cpu._icache == {}

    @pytest.mark.parametrize("arch", ARCHES)
    def test_clone_inherits_parent_decodes_as_warm(
            self, arch, booted_x86, booted_ppc):
        base = _machine(arch, booted_x86, booted_ppc)
        first = base.fork()
        first.syscall(1)
        # fork a sibling from the (still pristine) base: it inherits
        # whatever the base decoded during boot, all in the warm tier
        sibling = base.fork()
        assert sibling.cpu._icache == {}
        assert set(sibling.cpu._icache_warm) >= set(base.cpu._icache)
