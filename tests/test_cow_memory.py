"""Copy-on-write memory forking and warm decode-cache invalidation.

Three guarantees from the COW fork redesign:

* **Isolation** — a randomized property test: after ``fork()``, writes
  on either side (every access width, base→clone and clone→base) are
  never visible to the other side, and reads on both sides agree with
  an eagerly copied reference byte-for-byte.
* **Equivalence** — ``fork()`` (COW + warm cache) and
  ``fork(eager=True)`` (the pre-COW deep copy with a cold CPU) produce
  bit-identical machines: same architectural snapshot, same cycle
  counts, same memory, after running real kernel work.
* **Precision** — flipping one text byte evicts only the decodes that
  byte can corrupt; every other cached decode survives (demoted to the
  warm tier, where its next fetch re-runs the permission checks).
"""

from __future__ import annotations

import random

import pytest

from repro.isa.memory import PAGE_SIZE, PhysicalMemory
from repro.machine.machine import Machine

ARCHES = ["x86", "ppc"]


def _machine(arch, booted_x86, booted_ppc) -> Machine:
    return booted_x86 if arch == "x86" else booted_ppc


# ---------------------------------------------------------------------------
# randomized fork isolation


class TestForkIsolation:
    """Writes after fork never leak across the fork boundary."""

    SPAN = 8 * PAGE_SIZE

    @staticmethod
    def _apply(mem: PhysicalMemory, mirror: bytearray, rng: random.Random,
               addr: int) -> None:
        """One random-width write, applied identically to the memory
        under test and to an independent flat-bytearray model."""
        width = rng.choice(("raw", "u8", "u16", "u32"))
        if width == "raw":
            data = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 64)))
            mem.write(addr, data)
            mirror[addr:addr + len(data)] = data
        elif width == "u8":
            value = rng.randrange(256)
            mem.write_u8(addr, value)
            mirror[addr] = value
        elif width == "u16":
            value = rng.randrange(1 << 16)
            little = bool(rng.randrange(2))
            mem.write_u16(addr, value, little_endian=little)
            mirror[addr:addr + 2] = value.to_bytes(
                2, "little" if little else "big")
        else:
            value = rng.randrange(1 << 32)
            little = bool(rng.randrange(2))
            mem.write_u32(addr, value, little_endian=little)
            mirror[addr:addr + 4] = value.to_bytes(
                4, "little" if little else "big")

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_isolation(self, seed):
        rng = random.Random(seed)
        base = PhysicalMemory()
        initial = bytes(rng.randrange(256) for _ in range(self.SPAN))
        base.write(0, initial)
        clone = base.fork()
        # independent flat models of what each side must contain
        mirrors = {id(base): bytearray(initial),
                   id(clone): bytearray(initial)}

        for _ in range(200):
            # keep the largest write inside the span; straddling page
            # boundaries is still exercised constantly
            addr = rng.randrange(self.SPAN - 64)
            target = base if rng.randrange(2) else clone
            self._apply(target, mirrors[id(target)], rng, addr)

        for mem in (base, clone):
            assert mem.read(0, self.SPAN) == bytes(mirrors[id(mem)])

    @pytest.mark.parametrize("direction", ["base_writes", "clone_writes"])
    @pytest.mark.parametrize("width", ["raw", "u8", "u16", "u32"])
    def test_single_write_invisible_across_fork(self, direction, width):
        base = PhysicalMemory()
        base.write(0x1000, bytes(range(256)))
        clone = base.fork()
        writer, reader = ((base, clone) if direction == "base_writes"
                          else (clone, base))
        before = reader.read(0x1000, 256)
        addr = 0x1010
        if width == "raw":
            writer.write(addr, b"\xAA" * 8)
        elif width == "u8":
            writer.write_u8(addr, 0xAA)
        elif width == "u16":
            writer.write_u16(addr, 0xAAAA, little_endian=True)
        else:
            writer.write_u32(addr, 0xAABBCCDD, little_endian=False)
        assert reader.read(0x1000, 256) == before
        assert writer.read(addr, 1) == b"\xAA"
        assert writer.cow_page_copies == 1

    def test_page_boundary_straddle(self):
        base = PhysicalMemory()
        base.write(0, bytes(2 * PAGE_SIZE))
        clone = base.fork()
        clone.write(PAGE_SIZE - 2, b"\x11\x22\x33\x44")
        assert base.read(PAGE_SIZE - 2, 4) == b"\x00\x00\x00\x00"
        assert clone.read(PAGE_SIZE - 2, 4) == b"\x11\x22\x33\x44"
        assert clone.cow_page_copies == 2   # both straddled pages

    def test_sibling_forks_are_isolated(self):
        base = PhysicalMemory()
        base.write(0x2000, b"seed")
        a = base.fork()
        b = base.fork()
        a.write(0x2000, b"aaaa")
        b.write(0x2000, b"bbbb")
        assert base.read(0x2000, 4) == b"seed"
        assert a.read(0x2000, 4) == b"aaaa"
        assert b.read(0x2000, 4) == b"bbbb"


# ---------------------------------------------------------------------------
# COW + warm cache vs the eager pre-COW baseline


class TestCowEagerEquivalence:
    @pytest.mark.parametrize("arch", ARCHES)
    def test_identical_after_kernel_work(self, arch, booted_x86,
                                         booted_ppc):
        base = _machine(arch, booted_x86, booted_ppc)
        cow, eager = base.fork(), base.fork(eager=True)
        for machine in (cow, eager):
            for nr in (1, 2, 3, 1, 4, 2):
                machine.syscall(nr)
            machine.deliver_timer()
        assert cow.cpu.snapshot() == eager.cpu.snapshot()
        assert cow.cpu.cycles == eager.cpu.cycles
        # memory contents identical page-for-page
        pages = set(cow.cpu.mem._pages) | set(eager.cpu.mem._pages)
        for index in pages:
            assert cow.cpu.mem.read(index * PAGE_SIZE, PAGE_SIZE) == \
                eager.cpu.mem.read(index * PAGE_SIZE, PAGE_SIZE), \
                f"page {index:#x} diverged"

    @pytest.mark.parametrize("arch", ARCHES)
    def test_fork_copies_no_pages_up_front(self, arch, booted_x86,
                                           booted_ppc):
        base = _machine(arch, booted_x86, booted_ppc)
        clone = base.fork()
        assert clone.cpu.mem.cow_page_copies == 0
        assert clone.cpu.mem.shared_pages() == len(clone.cpu.mem._pages)


# ---------------------------------------------------------------------------
# per-address icache invalidation


class TestIcacheInvalidation:
    @pytest.mark.parametrize("arch", ARCHES)
    def test_text_flip_evicts_only_affected_decodes(
            self, arch, booted_x86, booted_ppc):
        base = _machine(arch, booted_x86, booted_ppc)
        clone = base.fork()
        clone.syscall(1)                       # warm the validated tier
        cpu = clone.cpu
        cached = dict(cpu._icache)
        assert cached, "syscall should have populated the icache"
        victim = sorted(cached)[len(cached) // 2]
        clone.flip_memory_bit(victim, 0)
        # the victim's decode is gone from both tiers ...
        assert victim not in cpu._icache
        assert victim not in cpu._icache_warm
        # ... survivors were demoted to warm, not discarded ...
        from repro.x86 import decoder as x86_decoder
        window = x86_decoder.MAX_INSN_LEN if arch == "x86" else 4
        survivors = {a: i for a, i in cached.items()
                     if not (victim - window < a <= victim)}
        for addr, instr in survivors.items():
            assert cpu._icache_warm.get(addr) is instr, \
                f"decode at {addr:#x} should have survived the flip"
        # ... and a subsequent fetch re-decodes the flipped word only
        assert cpu._icache == {}

    @pytest.mark.parametrize("arch", ARCHES)
    def test_clone_inherits_parent_decodes_as_warm(
            self, arch, booted_x86, booted_ppc):
        base = _machine(arch, booted_x86, booted_ppc)
        first = base.fork()
        first.syscall(1)
        # fork a sibling from the (still pristine) base: it inherits
        # whatever the base decoded during boot, all in the warm tier
        sibling = base.fork()
        assert sibling.cpu._icache == {}
        assert set(sibling.cpu._icache_warm) >= set(base.cpu._icache)


# ---------------------------------------------------------------------------
# self-modifying code vs the compiled-block cache


TEXT = 0xC0100000
DATA = 0xC0300000


def _bare_cpu(arch):
    from repro.isa.memory import Region
    if arch == "x86":
        from repro.x86.cpu import X86CPU
        cpu = X86CPU()
        cpu.eip = TEXT
    else:
        from repro.ppc.cpu import PPCCPU
        cpu = PPCCPU()
        cpu.pc = TEXT
    cpu.aspace.map_region(Region(TEXT, 0x1000, "rx", "text"))
    cpu.aspace.map_region(Region(DATA, 0x1000, "rwx", "data"))
    return cpu


def _dispatch(cpu, cache, arch):
    """One machine-dispatch iteration: hot hit or lookup, then run."""
    from repro.compile import lookup_block
    addr = cpu.eip if arch == "x86" else cpu.pc & 0xFFFFFFFC
    blk = cache.hot.get(addr)
    if blk is None:
        blk = lookup_block(cpu, cache, addr, arch, None)
    assert blk is not None and blk.fn is not None
    blk.fn(cpu)
    return blk


class TestBlockCacheSMC:
    """Text writes must evict exactly the compiled blocks they can
    corrupt — and execution after the write must follow the new bytes,
    never a stale compiled closure."""

    @pytest.mark.parametrize("arch", ARCHES)
    def test_write_inside_compiled_block_reexecutes(self, arch):
        """Patch a non-leader instruction of an already-compiled (and
        already-executed) block; the next dispatch must recompile and
        produce the patched result."""
        from repro.compile import BlockCache
        cpu = _bare_cpu(arch)
        cache = BlockCache()
        cpu._block_cache = cache
        if arch == "x86":
            from repro.x86.assembler import X86Assembler
            asm = X86Assembler()
            asm.mov_r_imm(0, 1)
            asm.mov_r_imm(1, 2)                # patch target
            asm.alu_r_rm("add", 0, 1)
            asm.hlt()
            cpu.mem.write(TEXT, asm.finish())
            patch_at = TEXT + asm.insn_offsets[1] + 1   # B9 imm32
            blk = _dispatch(cpu, cache, arch)
            assert cpu.regs[0] == 3 and blk.n == 4
            cpu.mem.write_u8(patch_at, 40)
            cpu.invalidate_icache(patch_at, 1)
        else:
            from repro.ppc.assembler import PPCAssembler
            asm = PPCAssembler()
            asm.li(3, 1)
            asm.li(4, 2)                       # patch target
            asm.add(5, 3, 4)
            spin = asm.new_label("spin")
            asm.label(spin)
            asm.b_label(spin)
            cpu.mem.write(TEXT, asm.finish())
            patch_at = TEXT + 4
            blk = _dispatch(cpu, cache, arch)
            assert cpu.gpr[5] == 3 and blk.n == 4
            word = cpu.mem.read_u32(patch_at, False)
            cpu.mem.write_u32(patch_at, (word & 0xFFFF0000) | 40, False)
            cpu.invalidate_icache(patch_at, 4)
        # the block overlapping the write is gone from both tiers
        assert TEXT not in cache.hot and TEXT not in cache.warm
        if arch == "x86":
            cpu.eip = TEXT
            cpu.regs[0] = cpu.regs[1] = 0
            cpu.halted = False
            _dispatch(cpu, cache, arch)
            assert cpu.regs[0] == 41
        else:
            cpu.pc = TEXT
            cpu.gpr[3] = cpu.gpr[4] = cpu.gpr[5] = 0
            _dispatch(cpu, cache, arch)
            assert cpu.gpr[5] == 41

    @pytest.mark.parametrize("arch", ARCHES)
    def test_write_at_block_leader_reexecutes(self, arch):
        """Patch the first instruction (the block's cache key address)."""
        from repro.compile import BlockCache
        cpu = _bare_cpu(arch)
        cache = BlockCache()
        cpu._block_cache = cache
        if arch == "x86":
            from repro.x86.assembler import X86Assembler
            asm = X86Assembler()
            asm.mov_r_imm(2, 7)                # patch target (leader)
            asm.inc_r(2)
            asm.hlt()
            cpu.mem.write(TEXT, asm.finish())
            _dispatch(cpu, cache, arch)
            assert cpu.regs[2] == 8
            cpu.mem.write_u8(TEXT + 1, 90)     # BA imm32 low byte
            cpu.invalidate_icache(TEXT + 1, 1)
            assert TEXT not in cache.hot and TEXT not in cache.warm
            cpu.eip = TEXT
            cpu.regs[2] = 0
            cpu.halted = False
            _dispatch(cpu, cache, arch)
            assert cpu.regs[2] == 91
        else:
            from repro.ppc.assembler import PPCAssembler
            asm = PPCAssembler()
            asm.li(6, 7)                       # patch target (leader)
            asm.addi(6, 6, 1)
            spin = asm.new_label("spin")
            asm.label(spin)
            asm.b_label(spin)
            cpu.mem.write(TEXT, asm.finish())
            _dispatch(cpu, cache, arch)
            assert cpu.gpr[6] == 8
            word = cpu.mem.read_u32(TEXT, False)
            cpu.mem.write_u32(TEXT, (word & 0xFFFF0000) | 90, False)
            cpu.invalidate_icache(TEXT, 4)
            assert TEXT not in cache.hot and TEXT not in cache.warm
            cpu.pc = TEXT
            cpu.gpr[6] = 0
            _dispatch(cpu, cache, arch)
            assert cpu.gpr[6] == 91

    def test_write_across_block_boundary_evicts_both_x86(self):
        """A multi-byte write straddling the end of one block and the
        start of the next (an x86 instruction can span the boundary)
        must evict both."""
        from repro.compile import BlockCache
        from repro.x86.assembler import X86Assembler
        cpu = _bare_cpu("x86")
        cache = BlockCache()
        cpu._block_cache = cache
        asm = X86Assembler()
        asm.mov_r_imm(0, 1)
        second = asm.new_label("second")
        asm.jmp_label(second)                  # terminator: ends block A
        asm.label(second)
        asm.mov_r_imm(1, 2)
        asm.hlt()
        cpu.mem.write(TEXT, asm.finish())
        blk_a = _dispatch(cpu, cache, "x86")
        blk_b = _dispatch(cpu, cache, "x86")
        assert blk_a.end == blk_b.start, "blocks should be adjacent"
        boundary = blk_a.end
        # 2-byte write covering [boundary-1, boundary+1)
        cpu.invalidate_icache(boundary - 1, 2)
        for addr in (blk_a.start, blk_b.start):
            assert addr not in cache.hot and addr not in cache.warm

    def test_write_across_block_boundary_evicts_both_ppc(self):
        """Word-granular PPC case: a 4-byte-aligned store overlapping
        the last word of block A and (conceptually) the first of B."""
        from repro.compile import BlockCache
        from repro.ppc.assembler import PPCAssembler
        cpu = _bare_cpu("ppc")
        cache = BlockCache()
        cpu._block_cache = cache
        asm = PPCAssembler()
        asm.li(3, 1)
        second = asm.new_label("second")
        asm.b_label(second)                    # terminator: ends block A
        asm.label(second)
        asm.li(4, 2)
        spin = asm.new_label("spin")
        asm.label(spin)
        asm.b_label(spin)
        cpu.mem.write(TEXT, asm.finish())
        blk_a = _dispatch(cpu, cache, "ppc")
        blk_b = _dispatch(cpu, cache, "ppc")
        assert blk_a.end == blk_b.start
        # an 8-byte write covering A's last word and B's first word
        cpu.invalidate_icache(blk_a.end - 4, 8)
        for addr in (blk_a.start, blk_b.start):
            assert addr not in cache.hot and addr not in cache.warm

    @pytest.mark.parametrize("arch", ARCHES)
    def test_write_past_block_end_demotes_but_keeps_it(self, arch):
        """A write just past a block's extent cannot corrupt any of its
        instructions: the block survives (demoted to warm, like the
        icache's survivors) and is re-promoted with the same compiled
        function on the next dispatch."""
        from repro.compile import BlockCache
        cpu = _bare_cpu(arch)
        cache = BlockCache()
        cpu._block_cache = cache
        if arch == "x86":
            from repro.x86.assembler import X86Assembler
            asm = X86Assembler()
            asm.mov_r_imm(0, 3)
            asm.hlt()
        else:
            from repro.ppc.assembler import PPCAssembler
            asm = PPCAssembler()
            asm.li(3, 3)
            spin = asm.new_label("spin")
            asm.label(spin)
            asm.b_label(spin)
        cpu.mem.write(TEXT, asm.finish())
        blk = _dispatch(cpu, cache, arch)
        cpu.invalidate_icache(blk.end, 1)
        assert blk.start not in cache.hot
        assert cache.warm.get(blk.start) is blk
        if arch == "x86":
            cpu.eip = TEXT
            cpu.halted = False
        else:
            cpu.pc = TEXT
        assert _dispatch(cpu, cache, arch) is blk

    @pytest.mark.parametrize("arch", ARCHES)
    def test_machine_flip_reaches_block_cache(self, arch, booted_x86,
                                              booted_ppc):
        """The injector's text-flip path (``flip_memory_bit`` →
        ``invalidate_icache``) must reach the block cache of a forked
        machine: the overlapped block vanishes, every other hot block
        is demoted to warm (mirroring the icache demotion that just
        invalidated their hot-tier guarantee)."""
        base = _machine(arch, booted_x86, booted_ppc)
        clone = base.fork()
        clone.syscall(1)
        cache = clone.cpu._block_cache
        assert cache is not None and cache.hot, \
            "syscall should have populated the block cache"
        victim = max(cache.hot.values(), key=lambda b: b.n)
        mid = victim.spans[victim.n // 2][0]
        survivors = {a: b for a, b in cache.hot.items()
                     if not (b.start <= mid < b.end)}
        clone.flip_memory_bit(mid, 0)
        assert victim.start not in cache.hot
        assert victim.start not in cache.warm
        assert not cache.hot
        for addr, block in survivors.items():
            assert cache.warm.get(addr) is block
