"""Static-vs-dynamic validation: matrix math, end-to-end, pruning."""

from __future__ import annotations

import pytest

from repro.analysis.validate_static import (
    ConfusionMatrix, dynamic_label, validate_code_campaign,
    validate_prune,
)
from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.outcomes import (
    CampaignKind, InjectionResult, Outcome,
)
from repro.injection.targets import CodeTarget


class TestConfusionMatrix:
    def _matrix(self):
        m = ConfusionMatrix()
        m.add("manifested", "manifested", 6)
        m.add("manifested", "not-manifested", 2)
        m.add("not-manifested", "manifested", 1)
        m.add("not-manifested", "not-manifested", 3)
        m.add("manifested", "not-activated", 4)
        m.add("not-activated", "not-activated", 5)
        return m

    def test_totals(self):
        m = self._matrix()
        assert m.total == 21
        assert m.activated_total == 12

    def test_manifestation_accuracy(self):
        # correct among activated: 6 + 3 of 12
        assert self._matrix().manifestation_accuracy == \
            pytest.approx(9 / 12)

    def test_not_activated_prediction_counts_as_mask(self):
        m = ConfusionMatrix()
        m.add("not-activated", "manifested", 1)   # serious miss
        m.add("not-activated", "not-manifested", 1)
        assert m.manifestation_accuracy == pytest.approx(0.5)

    def test_activation_accuracy(self):
        # agreement on activation: 6+2+1+3 correct-activated + 5 = 17
        assert self._matrix().activation_accuracy == \
            pytest.approx(17 / 21)

    def test_rejects_unknown_labels(self):
        with pytest.raises(ValueError):
            ConfusionMatrix().add("crashed", "manifested")

    def test_render_rows(self):
        text = self._matrix().render()
        assert "manifested" in text and "not-activated" in text
        assert len(text.splitlines()) == 4


class TestDynamicLabel:
    def _result(self, outcome):
        target = CodeTarget("fn", 0xC0000000, 4, 0)
        return InjectionResult(arch="x86", kind=CampaignKind.CODE,
                               target=target, outcome=outcome)

    def test_mapping(self):
        assert dynamic_label(
            self._result(Outcome.NOT_ACTIVATED)) == "not-activated"
        assert dynamic_label(
            self._result(Outcome.NOT_MANIFESTED)) == "not-manifested"
        for outcome in Outcome:
            label = dynamic_label(self._result(outcome))
            if outcome.manifested:
                assert label == "manifested"


class TestEndToEnd:
    """The acceptance gate: join real campaigns with the real report.

    Everything here is deterministic (fixed seed, fixed ops), so the
    accuracy assertions are exact regression pins, not statistics.
    """

    COUNT = 60

    def _campaign(self, arch, context, workers=1, prune="none"):
        config = CampaignConfig(arch=arch, kind=CampaignKind.CODE,
                                count=self.COUNT, seed=0, ops=36,
                                prune=prune)
        return Campaign(config, context).run(workers=workers)

    @pytest.mark.parametrize("fixture,ctx", [
        ("x86_static", "x86_context"), ("ppc_static", "ppc_context")])
    def test_accuracy_meets_floor(self, fixture, ctx, request):
        _cfg, _live, report = request.getfixturevalue(fixture)
        context = request.getfixturevalue(ctx)
        outcome = self._campaign(report.arch, context)
        validation = validate_code_campaign(outcome.results, report)
        assert validation.matrix.total == self.COUNT
        assert validation.manifestation_accuracy >= 0.70
        # render is exercised on real data
        assert report.arch in validation.render()

    def test_serial_and_parallel_validate_identically(
            self, ppc_static, ppc_context):
        _cfg, _live, report = ppc_static
        serial = self._campaign("ppc", ppc_context)
        parallel = self._campaign("ppc", ppc_context, workers=2)
        v1 = validate_code_campaign(serial.results, report)
        v2 = validate_code_campaign(parallel.results, report)
        assert v1.matrix.counts == v2.matrix.counts
        assert v1.manifestation_accuracy == v2.manifestation_accuracy

    def test_wrong_arch_report_rejected(self, x86_static, ppc_context):
        _cfg, _live, report = x86_static
        outcome = self._campaign("ppc", ppc_context)
        with pytest.raises(ValueError):
            validate_code_campaign(outcome.results, report)

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            validate_code_campaign([])


class TestPrune:
    def test_pruned_campaign_avoids_dead_bits(self, ppc_static,
                                              ppc_context):
        _cfg, _live, report = ppc_static
        config = CampaignConfig(arch="ppc", kind=CampaignKind.CODE,
                                count=120, seed=0, ops=36,
                                prune="dead")
        campaign = Campaign(config, ppc_context)
        targets = campaign.generate_targets()
        dead = report.dead_bits
        assert not any((t.addr, t.bit) in dead for t in targets)
        # deterministic: regenerating reproduces targets and counter
        again = Campaign(config, ppc_context)
        assert again.generate_targets() == targets
        assert again.pruned_draws == campaign.pruned_draws

    def test_x86_prune_is_noop(self, x86_static, x86_context):
        """x86 has no prunable bits (dense encoding: every flip
        decodes differently), so pruning must not disturb the
        stream."""
        _cfg, _live, report = x86_static
        assert not report.dead_bits
        base = CampaignConfig(arch="x86", kind=CampaignKind.CODE,
                              count=50, seed=0, ops=36)
        pruned = CampaignConfig(arch="x86", kind=CampaignKind.CODE,
                                count=50, seed=0, ops=36, prune="dead")
        assert Campaign(pruned, x86_context).generate_targets() == \
            Campaign(base, x86_context).generate_targets()

    def test_pruned_bits_never_manifest(self, ppc_context):
        """The soundness check: injecting a sample of prunable bits
        classifies zero disagreements."""
        validation = validate_prune("ppc", seed=0, ops=36, limit=30)
        assert validation.injected == 30
        assert validation.prunable_bits > 0
        assert validation.ok, [r.target for r in
                               validation.disagreements]

    def test_prune_rejected_for_non_code(self):
        with pytest.raises(ValueError):
            CampaignConfig(arch="x86", kind=CampaignKind.STACK,
                           count=5, prune="dead")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(arch="x86", kind=CampaignKind.CODE,
                           count=5, prune="live")
