"""CLI (python -m repro) tests."""

import subprocess
import sys

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_args(self):
        args = build_parser().parse_args(
            ["campaign", "--kind", "stack", "-n", "25",
             "--arch", "ppc", "--seed", "3"])
        assert args.kind == "stack"
        assert args.count == 25
        assert args.arch == "ppc"

    def test_bad_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--kind", "bogus"])

    def test_workers_flag_parsed(self):
        args = build_parser().parse_args(
            ["campaign", "--kind", "data", "--workers", "3"])
        assert args.workers == 3
        args = build_parser().parse_args(["study", "--workers", "2"])
        assert args.workers == 2

    def test_workers_defaults_to_serial(self):
        assert build_parser().parse_args(
            ["campaign", "--kind", "data"]).workers == 1
        assert build_parser().parse_args(["study"]).workers == 1

    @pytest.mark.parametrize("bad", ["0", "-2", "1.5", "many"])
    def test_workers_rejects_non_positive(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "--kind", "data", "--workers", bad])


class TestCommands:
    def test_disasm(self, capsys):
        assert main(["disasm", "kupdate", "--arch", "ppc"]) == 0
        out = capsys.readouterr().out
        assert "kupdate [fs]" in out
        assert "stwu r1," in out

    def test_disasm_unknown_function(self, capsys):
        assert main(["disasm", "not_a_fn"]) == 1

    def test_profile(self, capsys):
        assert main(["profile", "--arch", "ppc", "--ops", "8"]) == 0
        out = capsys.readouterr().out
        assert "memcpy" in out

    def test_campaign_with_json(self, tmp_path, capsys):
        out_path = str(tmp_path / "r.jsonl")
        assert main(["campaign", "--kind", "data", "-n", "30",
                     "--arch", "ppc", "--ops", "36",
                     "--json", out_path]) == 0
        out = capsys.readouterr().out
        assert "Data" in out
        from repro.analysis.export import load_results
        assert len(load_results(out_path)) == 30

    def test_campaign_workers_smoke(self, capsys):
        assert main(["campaign", "--kind", "data", "-n", "16",
                     "--arch", "x86", "--ops", "36",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Data" in out

    def test_subprocess_entry(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0
        assert "study" in proc.stdout
