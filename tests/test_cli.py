"""CLI (python -m repro) tests."""

import subprocess
import sys

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_args(self):
        args = build_parser().parse_args(
            ["campaign", "--kind", "stack", "-n", "25",
             "--arch", "ppc", "--seed", "3"])
        assert args.kind == "stack"
        assert args.count == 25
        assert args.arch == "ppc"

    def test_bad_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--kind", "bogus"])

    def test_workers_flag_parsed(self):
        args = build_parser().parse_args(
            ["campaign", "--kind", "data", "--workers", "3"])
        assert args.workers == 3
        args = build_parser().parse_args(["study", "--workers", "2"])
        assert args.workers == 2

    def test_workers_defaults_to_serial(self):
        assert build_parser().parse_args(
            ["campaign", "--kind", "data"]).workers == 1
        assert build_parser().parse_args(["study"]).workers == 1

    @pytest.mark.parametrize("bad", ["0", "-2", "1.5", "many"])
    def test_workers_rejects_non_positive(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "--kind", "data", "--workers", bad])

    @pytest.mark.parametrize("command",
                             [["campaign", "--kind", "data"], ["study"]])
    def test_store_flags_parsed(self, command):
        args = build_parser().parse_args(
            command + ["--store", "/tmp/s", "--resume", "--progress"])
        assert args.store == "/tmp/s"
        assert args.resume and args.progress
        defaults = build_parser().parse_args(command)
        assert defaults.store is None
        assert not defaults.resume and not defaults.progress

    def test_resume_requires_store(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--kind", "data", "--resume"])

    def test_prune_dead_flag_parsed(self):
        args = build_parser().parse_args(
            ["campaign", "--kind", "code", "--prune-dead"])
        assert args.prune_dead
        assert not build_parser().parse_args(
            ["campaign", "--kind", "code"]).prune_dead
        assert build_parser().parse_args(
            ["study", "--prune-dead"]).prune_dead

    def test_prune_dead_requires_code_kind(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--kind", "stack", "--prune-dead"])

    def test_static_subcommand_parsed(self):
        args = build_parser().parse_args(["static"])
        assert args.arch == "both" and args.validate is None
        args = build_parser().parse_args(
            ["static", "--arch", "ppc", "--validate", "25",
             "--workers", "2"])
        assert args.arch == "ppc"
        assert args.validate == 25
        assert args.workers == 2

    def test_store_subcommand_parsed(self):
        args = build_parser().parse_args(["store", "ls", "/tmp/s"])
        assert args.dir == "/tmp/s"
        args = build_parser().parse_args(
            ["store", "verify", "/tmp/s", "--campaign", "abc"])
        assert args.campaign == "abc"
        args = build_parser().parse_args(
            ["store", "export", "/tmp/s", "abc", "out.jsonl"])
        assert args.output == "out.jsonl"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])


class TestCommands:
    def test_disasm(self, capsys):
        assert main(["disasm", "kupdate", "--arch", "ppc"]) == 0
        out = capsys.readouterr().out
        assert "kupdate [fs]" in out
        assert "stwu r1," in out

    def test_disasm_unknown_function(self, capsys):
        assert main(["disasm", "not_a_fn"]) == 1

    def test_profile(self, capsys):
        assert main(["profile", "--arch", "ppc", "--ops", "8"]) == 0
        out = capsys.readouterr().out
        assert "memcpy" in out

    def test_campaign_with_json(self, tmp_path, capsys):
        out_path = str(tmp_path / "r.jsonl")
        assert main(["campaign", "--kind", "data", "-n", "30",
                     "--arch", "ppc", "--ops", "36",
                     "--json", out_path]) == 0
        out = capsys.readouterr().out
        assert "Data" in out
        from repro.analysis.export import load_results
        assert len(load_results(out_path)) == 30

    def test_campaign_store_roundtrip(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["campaign", "--kind", "data", "-n", "20",
                     "--arch", "x86", "--ops", "36", "--progress",
                     "--store", store_dir]) == 0
        err = capsys.readouterr().err
        assert "/20 injected" in err
        # ls shows the campaign, verify is clean
        assert main(["store", "ls", store_dir]) == 0
        out = capsys.readouterr().out
        assert "data" in out and "x86" in out
        assert main(["store", "verify", store_dir]) == 0
        assert "ok (20 records)" in capsys.readouterr().out
        # resume of the complete campaign is a no-op replay
        assert main(["campaign", "--kind", "data", "-n", "20",
                     "--arch", "x86", "--ops", "36",
                     "--store", store_dir, "--resume"]) == 0
        capsys.readouterr()
        # export round-trips through the shared codec
        out_path = str(tmp_path / "out.jsonl")
        from repro.store import CampaignStore
        campaign_id = CampaignStore(store_dir).campaign_ids()[0]
        assert main(["store", "export", store_dir, campaign_id,
                     out_path]) == 0
        from repro.analysis.export import load_results
        assert len(load_results(out_path)) == 20

    def test_campaign_workers_smoke(self, capsys):
        assert main(["campaign", "--kind", "data", "-n", "16",
                     "--arch", "x86", "--ops", "36",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Data" in out

    def test_subprocess_entry(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0
        assert "study" in proc.stdout


class TestServiceParser:
    def test_serve_args(self):
        args = build_parser().parse_args(["serve", "--store", "/tmp/s"])
        assert args.store == "/tmp/s"
        assert args.workers == 2
        assert args.host == "127.0.0.1"
        assert args.port == 8321
        args = build_parser().parse_args(
            ["serve", "--store", "/tmp/s", "--workers", "4",
             "--host", "0.0.0.0", "--port", "0"])
        assert args.workers == 4 and args.port == 0

    def test_serve_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_submit_args(self):
        args = build_parser().parse_args(
            ["submit", "--kind", "register", "--arch", "ppc",
             "-n", "10", "--tenant", "team-a", "--priority", "3",
             "--workers", "2", "--wait", "--timeout", "60",
             "--url", "http://127.0.0.1:9999"])
        assert args.kind == "register" and args.count == 10
        assert args.tenant == "team-a" and args.priority == 3
        assert args.wait and args.timeout == 60.0
        assert args.url == "http://127.0.0.1:9999"
        defaults = build_parser().parse_args(
            ["submit", "--kind", "stack"])
        assert defaults.tenant == "default"
        assert defaults.priority == 0
        assert not defaults.wait

    def test_jobs_and_cancel_args(self):
        args = build_parser().parse_args(
            ["jobs", "--tenant", "t", "--state", "done"])
        assert args.tenant == "t" and args.state == "done"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs", "--state", "bogus"])
        args = build_parser().parse_args(["cancel", "job-000001"])
        assert args.job == "job-000001"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cancel"])

    def test_submit_prune_dead_requires_code(self):
        with pytest.raises(SystemExit):
            main(["submit", "--kind", "stack", "--prune-dead"])


class TestStoreErrorPaths:
    """Satellite: store subcommands fail cleanly — exit 1 and a
    one-line stderr message, never a traceback."""

    def test_ls_missing_store(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main(["store", "ls", missing]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no store directory" in err

    def test_export_missing_store(self, tmp_path, capsys):
        assert main(["store", "export", str(tmp_path / "nope"),
                     "some-campaign", str(tmp_path / "o.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_export_unknown_campaign(self, tmp_path, capsys):
        from repro.store import CampaignStore
        CampaignStore(tmp_path / "s")      # create an empty store
        assert main(["store", "export", str(tmp_path / "s"),
                     "no-such-campaign", str(tmp_path / "o.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_ls_corrupt_manifest(self, tmp_path, capsys):
        import json as json_mod
        from repro.store import CampaignStore
        from repro.injection.campaign import CampaignConfig
        from repro.injection.outcomes import CampaignKind
        store = CampaignStore(tmp_path / "s")
        opened = store.open(CampaignConfig(
            arch="x86", kind=CampaignKind.DATA, count=4, seed=0,
            ops=36))
        opened.close()
        manifest_path = (store.campaign_dir(opened.manifest.campaign_id)
                         / "manifest.json")
        payload = json_mod.loads(manifest_path.read_text())
        payload["count"] = 999             # breaks the manifest hash
        manifest_path.write_text(json_mod.dumps(payload))
        assert main(["store", "ls", str(tmp_path / "s")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "hash mismatch" in err

    def test_ls_missing_store_subprocess_no_traceback(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "store", "ls",
             str(tmp_path / "nope")],
            capture_output=True, text=True, timeout=60)
        assert proc.returncode == 1
        assert "Traceback" not in proc.stderr
        assert proc.stderr.startswith("error:")


class TestServiceCommands:
    def test_client_commands_against_dead_daemon(self, capsys):
        import socket
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        url = f"http://127.0.0.1:{port}"    # nothing listens here
        assert main(["submit", "--kind", "stack", "-n", "5",
                     "--url", url]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["jobs", "--url", url]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["cancel", "job-000000", "--url", url]) == 1
        assert "error:" in capsys.readouterr().err

    def test_serve_missing_parent_is_created(self, tmp_path):
        # `repro serve --store` on a fresh dir must not fail before
        # binding: run_daemon validates by creating the store
        from repro.store import CampaignStore
        CampaignStore(tmp_path / "fresh")
        assert (tmp_path / "fresh").is_dir()
