"""CLI (python -m repro) tests."""

import subprocess
import sys

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_args(self):
        args = build_parser().parse_args(
            ["campaign", "--kind", "stack", "-n", "25",
             "--arch", "ppc", "--seed", "3"])
        assert args.kind == "stack"
        assert args.count == 25
        assert args.arch == "ppc"

    def test_bad_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--kind", "bogus"])

    def test_workers_flag_parsed(self):
        args = build_parser().parse_args(
            ["campaign", "--kind", "data", "--workers", "3"])
        assert args.workers == 3
        args = build_parser().parse_args(["study", "--workers", "2"])
        assert args.workers == 2

    def test_workers_defaults_to_serial(self):
        assert build_parser().parse_args(
            ["campaign", "--kind", "data"]).workers == 1
        assert build_parser().parse_args(["study"]).workers == 1

    @pytest.mark.parametrize("bad", ["0", "-2", "1.5", "many"])
    def test_workers_rejects_non_positive(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "--kind", "data", "--workers", bad])

    @pytest.mark.parametrize("command",
                             [["campaign", "--kind", "data"], ["study"]])
    def test_store_flags_parsed(self, command):
        args = build_parser().parse_args(
            command + ["--store", "/tmp/s", "--resume", "--progress"])
        assert args.store == "/tmp/s"
        assert args.resume and args.progress
        defaults = build_parser().parse_args(command)
        assert defaults.store is None
        assert not defaults.resume and not defaults.progress

    def test_resume_requires_store(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--kind", "data", "--resume"])

    def test_prune_dead_flag_parsed(self):
        args = build_parser().parse_args(
            ["campaign", "--kind", "code", "--prune-dead"])
        assert args.prune_dead
        assert not build_parser().parse_args(
            ["campaign", "--kind", "code"]).prune_dead
        assert build_parser().parse_args(
            ["study", "--prune-dead"]).prune_dead

    def test_prune_dead_requires_code_kind(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--kind", "stack", "--prune-dead"])

    def test_static_subcommand_parsed(self):
        args = build_parser().parse_args(["static"])
        assert args.arch == "both" and args.validate is None
        args = build_parser().parse_args(
            ["static", "--arch", "ppc", "--validate", "25",
             "--workers", "2"])
        assert args.arch == "ppc"
        assert args.validate == 25
        assert args.workers == 2

    def test_store_subcommand_parsed(self):
        args = build_parser().parse_args(["store", "ls", "/tmp/s"])
        assert args.dir == "/tmp/s"
        args = build_parser().parse_args(
            ["store", "verify", "/tmp/s", "--campaign", "abc"])
        assert args.campaign == "abc"
        args = build_parser().parse_args(
            ["store", "export", "/tmp/s", "abc", "out.jsonl"])
        assert args.output == "out.jsonl"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])


class TestCommands:
    def test_disasm(self, capsys):
        assert main(["disasm", "kupdate", "--arch", "ppc"]) == 0
        out = capsys.readouterr().out
        assert "kupdate [fs]" in out
        assert "stwu r1," in out

    def test_disasm_unknown_function(self, capsys):
        assert main(["disasm", "not_a_fn"]) == 1

    def test_profile(self, capsys):
        assert main(["profile", "--arch", "ppc", "--ops", "8"]) == 0
        out = capsys.readouterr().out
        assert "memcpy" in out

    def test_campaign_with_json(self, tmp_path, capsys):
        out_path = str(tmp_path / "r.jsonl")
        assert main(["campaign", "--kind", "data", "-n", "30",
                     "--arch", "ppc", "--ops", "36",
                     "--json", out_path]) == 0
        out = capsys.readouterr().out
        assert "Data" in out
        from repro.analysis.export import load_results
        assert len(load_results(out_path)) == 30

    def test_campaign_store_roundtrip(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["campaign", "--kind", "data", "-n", "20",
                     "--arch", "x86", "--ops", "36", "--progress",
                     "--store", store_dir]) == 0
        err = capsys.readouterr().err
        assert "/20 injected" in err
        # ls shows the campaign, verify is clean
        assert main(["store", "ls", store_dir]) == 0
        out = capsys.readouterr().out
        assert "data" in out and "x86" in out
        assert main(["store", "verify", store_dir]) == 0
        assert "ok (20 records)" in capsys.readouterr().out
        # resume of the complete campaign is a no-op replay
        assert main(["campaign", "--kind", "data", "-n", "20",
                     "--arch", "x86", "--ops", "36",
                     "--store", store_dir, "--resume"]) == 0
        capsys.readouterr()
        # export round-trips through the shared codec
        out_path = str(tmp_path / "out.jsonl")
        from repro.store import CampaignStore
        campaign_id = CampaignStore(store_dir).campaign_ids()[0]
        assert main(["store", "export", store_dir, campaign_id,
                     out_path]) == 0
        from repro.analysis.export import load_results
        assert len(load_results(out_path)) == 20

    def test_campaign_workers_smoke(self, capsys):
        assert main(["campaign", "--kind", "data", "-n", "16",
                     "--arch", "x86", "--ops", "36",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Data" in out

    def test_subprocess_entry(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0
        assert "study" in proc.stdout
