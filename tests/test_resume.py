"""Kill/resume equivalence for the durable campaign store.

The store's contract (`repro.store.resume`): a campaign killed at any
point and resumed from its journal produces a ``CampaignResult``
bit-identical to an uninterrupted run — same results, same order —
at any worker count, and raising ``count`` reuses every journaled
result, injecting only the new tail.  These tests kill campaigns at
~30% (serial) and ~70% (workers=2) for every campaign kind on both
arches and compare against the uninterrupted serial baseline, plus
cross-mode resumes, top-up, and resume-through-a-torn-tail.
"""

from __future__ import annotations

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.outcomes import CampaignKind
from repro.store import CampaignStore
from repro.store.resume import resume_plan

#: small but non-trivial campaign sizes (register runs are the most
#: expensive per injection; screened kinds are cheap)
COUNTS = {
    CampaignKind.REGISTER: 10,
    CampaignKind.STACK: 12,
    CampaignKind.DATA: 12,
    CampaignKind.CODE: 8,
}

#: uninterrupted serial baselines, shared across the kill matrix
_baseline_cache: dict = {}


class Killed(RuntimeError):
    """Raised by the progress callback to simulate a harness crash."""


def kill_after(threshold: int):
    def callback(done: int, total: int) -> None:
        if done >= threshold:
            raise Killed(f"killed at {done}/{total}")
    return callback


def _config(arch: str, kind: CampaignKind,
            count: int = None) -> CampaignConfig:
    return CampaignConfig(arch=arch, kind=kind,
                          count=count or COUNTS[kind], seed=0, ops=36)


def _baseline(arch: str, kind: CampaignKind, context):
    key = (arch, kind)
    if key not in _baseline_cache:
        _baseline_cache[key] = Campaign(_config(arch, kind),
                                        context).run()
    return _baseline_cache[key]


def _context_for(arch, x86_context, ppc_context):
    return x86_context if arch == "x86" else ppc_context


class TestKillResumeEquivalence:
    @pytest.mark.parametrize("fraction,workers", [
        pytest.param(0.3, 1, id="kill30-serial"),
        pytest.param(0.7, 2, id="kill70-workers2"),
    ])
    @pytest.mark.parametrize("kind", list(CampaignKind),
                             ids=[k.value for k in CampaignKind])
    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_bit_identical_after_kill(self, arch, kind, fraction,
                                      workers, tmp_path,
                                      x86_context, ppc_context):
        context = _context_for(arch, x86_context, ppc_context)
        config = _config(arch, kind)
        baseline = _baseline(arch, kind, context)
        store = CampaignStore(tmp_path / "store")

        threshold = max(1, int(config.count * fraction))
        with pytest.raises(Killed):
            Campaign(config, context).run(
                store=store, workers=workers,
                progress=kill_after(threshold))

        # the kill left a genuinely partial journal...
        plan = resume_plan(store, config)
        assert 0 < plan["journaled"] < config.count
        assert len(plan["pending"]) == config.count - plan["journaled"]

        # ...and the resume completes it bit-identically
        resumed = Campaign(config, context).run(
            store=store, resume=True, workers=workers)
        assert resumed.results == baseline.results
        assert resumed.failures == []
        # the journal now holds the complete campaign
        assert store.load(config).results == baseline.results

    def test_cross_mode_kill_parallel_resume_serial(
            self, tmp_path, x86_context):
        config = _config("x86", CampaignKind.DATA)
        baseline = _baseline("x86", CampaignKind.DATA, x86_context)
        store = CampaignStore(tmp_path / "store")
        with pytest.raises(Killed):
            Campaign(config, x86_context).run(
                store=store, workers=2, progress=kill_after(4))
        resumed = Campaign(config, x86_context).run(store=store,
                                                    resume=True)
        assert resumed.results == baseline.results

    def test_double_kill_then_resume(self, tmp_path, x86_context):
        """Two crashes at different points still converge."""
        config = _config("x86", CampaignKind.STACK)
        baseline = _baseline("x86", CampaignKind.STACK, x86_context)
        store = CampaignStore(tmp_path / "store")
        with pytest.raises(Killed):
            Campaign(config, x86_context).run(
                store=store, progress=kill_after(3))
        with pytest.raises(Killed):
            Campaign(config, x86_context).run(
                store=store, resume=True, progress=kill_after(8))
        resumed = Campaign(config, x86_context).run(store=store,
                                                    resume=True)
        assert resumed.results == baseline.results


class TestResumeReusesWork:
    def _counting(self, monkeypatch):
        calls = []
        original = Campaign.run_target

        def counting(self, index, target):
            calls.append(index)
            return original(self, index, target)

        monkeypatch.setattr(Campaign, "run_target", counting)
        return calls

    def test_resume_of_complete_campaign_injects_nothing(
            self, tmp_path, x86_context, monkeypatch):
        config = _config("x86", CampaignKind.DATA)
        store = CampaignStore(tmp_path / "store")
        complete = Campaign(config, x86_context).run(store=store)
        calls = self._counting(monkeypatch)
        again = Campaign(config, x86_context).run(store=store,
                                                  resume=True)
        assert calls == []                 # pure journal replay
        assert again.results == complete.results

    def test_topup_injects_only_the_new_tail(self, tmp_path,
                                             x86_context, monkeypatch):
        kind = CampaignKind.DATA
        small = _config("x86", kind, count=8)
        large = _config("x86", kind, count=14)
        fresh_large = Campaign(large, x86_context).run()

        store = CampaignStore(tmp_path / "store")
        Campaign(small, x86_context).run(store=store)
        calls = self._counting(monkeypatch)
        topped = Campaign(large, x86_context).run(store=store,
                                                  resume=True)
        # only the tail was injected — the global-index seed
        # derivation makes targets 0..7 of count=14 exactly the
        # count=8 campaign's targets
        assert sorted(calls) == list(range(8, 14))
        assert topped.results == fresh_large.results

    def test_resume_through_torn_tail(self, tmp_path, x86_context):
        """A crash mid-append (torn record) resumes bit-identically."""
        from repro.store.manifest import CampaignManifest, JOURNAL_NAME
        config = _config("x86", CampaignKind.DATA)
        baseline = _baseline("x86", CampaignKind.DATA, x86_context)
        store = CampaignStore(tmp_path / "store")
        with pytest.raises(Killed):
            Campaign(config, x86_context).run(
                store=store, progress=kill_after(5))
        manifest = CampaignManifest.from_config(config)
        journal_path = store.campaign_dir(
            manifest.campaign_id) / JOURNAL_NAME
        with open(journal_path, "ab") as handle:
            handle.write(b'{"v":1,"index":5,"crc":"dead')  # torn append
        resumed = Campaign(config, x86_context).run(store=store,
                                                    resume=True)
        assert resumed.results == baseline.results
