"""JSON export/import round-trip tests."""

from repro.analysis.export import (
    dump_results, load_results, result_from_dict, result_to_dict,
)
from repro.injection.outcomes import (
    CampaignKind, CrashCauseG4, CrashCauseP4, InjectionResult, Outcome,
)
from repro.injection.targets import DataTarget


def sample_results():
    return [
        InjectionResult(
            arch="x86", kind=CampaignKind.DATA,
            target=DataTarget(addr=0xC0300010, bit=3, at_instret=1000,
                              initialized=True),
            outcome=Outcome.CRASH_KNOWN,
            cause=CrashCauseP4.NULL_POINTER,
            activation_cycles=123, crash_cycles=456,
            detail="x", function="getblk", subsystem="fs"),
        InjectionResult(
            arch="ppc", kind=CampaignKind.STACK, target=None,
            outcome=Outcome.NOT_ACTIVATED, screened=True),
        InjectionResult(
            arch="ppc", kind=CampaignKind.CODE, target=None,
            outcome=Outcome.CRASH_KNOWN,
            cause=CrashCauseG4.STACK_OVERFLOW,
            activation_cycles=0, crash_cycles=2_000),
    ]


class TestRoundTrip:
    def test_dict_roundtrip(self):
        for original in sample_results():
            restored = result_from_dict(result_to_dict(original))
            assert restored.arch == original.arch
            assert restored.kind is original.kind
            assert restored.outcome is original.outcome
            assert restored.cause is original.cause
            assert restored.latency == original.latency
            assert restored.screened == original.screened

    def test_roundtrip_is_full_equality(self):
        """The codec is lossless by type (regression: targets used to
        come back as bare dicts, breaking result equality)."""
        for original in sample_results():
            assert result_from_dict(result_to_dict(original)) == original

    def test_target_restored_as_dataclass(self):
        original = sample_results()[0]
        restored = result_from_dict(result_to_dict(original))
        assert isinstance(restored.target, DataTarget)
        assert restored.target == original.target

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        originals = sample_results()
        assert dump_results(originals, path) == 3
        restored = load_results(path)
        assert len(restored) == 3
        assert restored[0].cause is CrashCauseP4.NULL_POINTER
        assert restored[2].cause is CrashCauseG4.STACK_OVERFLOW
        assert restored[1].outcome is Outcome.NOT_ACTIVATED

    def test_target_payload_preserved(self):
        payload = result_to_dict(sample_results()[0])
        assert payload["target"]["type"] == "DataTarget"
        assert payload["target"]["addr"] == 0xC0300010

    def test_cause_arch_tagged(self):
        payloads = [result_to_dict(r) for r in sample_results()]
        assert payloads[0]["cause_arch"] == "x86"
        assert payloads[2]["cause_arch"] == "ppc"
        assert payloads[1]["cause_arch"] is None
