"""Public-API tests: StudyConfig and Study orchestration."""

import dataclasses

import pytest

from repro.core import CampaignKind, Study, StudyConfig
from repro.core.config import EXPERIMENT_SETUP, PAPER_CAMPAIGN_SIZES


class TestConfig:
    def test_paper_sizes_sum_to_paper_totals(self):
        assert sum(PAPER_CAMPAIGN_SIZES["x86"].values()) == 61_799
        assert sum(PAPER_CAMPAIGN_SIZES["ppc"].values()) == 55_172
        total = sum(PAPER_CAMPAIGN_SIZES["x86"].values()) + \
            sum(PAPER_CAMPAIGN_SIZES["ppc"].values())
        assert total > 115_000            # "over 115,000 faults/errors"

    def test_scaling(self):
        config = StudyConfig(scale=0.01, min_campaign=10)
        assert config.campaign_count("x86", CampaignKind.DATA) == 460
        assert config.campaign_count("x86", CampaignKind.CODE) == 18

    def test_min_campaign_floor(self):
        config = StudyConfig(scale=0.0001, min_campaign=40)
        assert config.campaign_count("ppc", CampaignKind.CODE) == 40

    def test_overrides_win(self):
        config = StudyConfig(overrides={
            "ppc": {CampaignKind.STACK: 7}})
        assert config.campaign_count("ppc", CampaignKind.STACK) == 7
        assert config.campaign_count("x86", CampaignKind.STACK) != 7

    def test_workers_defaults_to_serial(self):
        assert StudyConfig().workers == 1

    def test_workers_round_trips(self):
        config = StudyConfig(seed=3, workers=4, overrides={
            "ppc": {CampaignKind.STACK: 7}})
        clone = StudyConfig(**dataclasses.asdict(config))
        assert clone == config
        assert clone.workers == 4

    def test_experiment_setup_matches_paper_table1(self):
        assert EXPERIMENT_SETUP["x86"]["cpu_clock_ghz"] == 1.5
        assert EXPERIMENT_SETUP["ppc"]["cpu_clock_ghz"] == 1.0
        assert EXPERIMENT_SETUP["x86"]["linux_kernel"] == "2.4.22"
        assert EXPERIMENT_SETUP["ppc"]["compiler"] == "GCC 3.2.2"


class TestStudySmall:
    @pytest.fixture(scope="class")
    def tiny_study(self):
        config = StudyConfig(seed=8, ops=36, overrides={
            arch: {CampaignKind.DATA: 40, CampaignKind.STACK: 30}
            for arch in ("x86", "ppc")})
        study = Study(config)
        for arch in ("x86", "ppc"):
            study.run_campaign(arch, CampaignKind.DATA)
            study.run_campaign(arch, CampaignKind.STACK)
        return study

    def test_results_accumulate(self, tiny_study):
        assert len(tiny_study.results_for("x86",
                                          CampaignKind.DATA)) == 40
        assert len(tiny_study.results_for("x86")) == 70

    def test_render_table(self, tiny_study):
        text = tiny_study.render_table("x86")
        assert "Stack" in text
        assert "Table 5" in text

    def test_render_figures(self, tiny_study):
        text = tiny_study.render_figure(6)
        assert "Stack Injection" in text
        latency = tiny_study.render_latency_figure()
        assert "Figure 16(A)" in latency
        assert "PPC" in latency and "Pentium" in latency

    def test_config_workers_wired_through(self, tiny_study):
        """A workers=2 study reproduces the serial study's results."""
        config = dataclasses.replace(tiny_study.config, workers=2)
        parallel_study = Study(config)
        parallel_study.run_campaign("x86", CampaignKind.DATA)
        serial = tiny_study.results_for("x86", CampaignKind.DATA)
        parallel = parallel_study.results_for("x86", CampaignKind.DATA)
        assert [(r.target, r.outcome, r.cause) for r in parallel] == \
            [(r.target, r.outcome, r.cause) for r in serial]
