"""Assembler <-> decoder round-trip tests for both architectures."""

from hypothesis import given, strategies as st

from repro.ppc import decoder as ppc_decoder
from repro.ppc.assembler import PPCAssembler
from repro.ppc.disasm import disassemble_word
from repro.x86 import decoder as x86_decoder
from repro.x86.assembler import Mem, X86Assembler
from repro.x86.disasm import disassemble_range

reg = st.integers(min_value=0, max_value=7)
ppc_reg = st.integers(min_value=0, max_value=31)
imm16s = st.integers(min_value=-0x8000, max_value=0x7FFF)


class TestX86Roundtrip:
    def _decode_all(self, asm: X86Assembler):
        code = asm.finish()
        offsets = list(asm.insn_offsets)
        decoded = []
        pos = 0
        while pos < len(code):
            instr = x86_decoder.decode(
                code[pos:] + b"\x00" * x86_decoder.MAX_INSN_LEN, pos)
            decoded.append((pos, instr))
            pos += instr.length
        assert [p for p, _ in decoded] == offsets, \
            "decoded boundaries disagree with emitted boundaries"
        return decoded

    def test_every_assembler_form_roundtrips(self):
        asm = X86Assembler()
        asm.push_r(5)
        asm.mov_rm_r(5, 4)
        asm.alu_rm_imm("sub", 4, 0x10)
        asm.alu_rm_imm("add", 4, 0x12345)
        asm.mov_r_imm(0, 0xDEADBEEF)
        asm.mov_r_rm(1, Mem(base=5, disp=-8))
        asm.mov_rm_r(Mem(base=5, disp=-0x123), 1)
        asm.mov_r_rm(2, Mem(disp=0xC0300000))
        asm.mov_rm_r(Mem(index=1, scale=4, disp=0xC0300000), 0)
        asm.movzx(3, Mem(base=0), 1)
        asm.movsx(3, Mem(base=0), 2)
        asm.lea(4, Mem(base=5, disp=-12))
        asm.test_rm_r(0, 0)
        asm.imul_r_rm(0, 1)
        asm.imul_r_rm_imm(1, 1, 28)
        asm.div_rm(1)
        asm.neg_rm(0)
        asm.not_rm(0)
        asm.shift_rm_imm("shl", 0, 4)
        asm.shift_rm_imm("shr", 0, 1)
        asm.shift_rm_cl("sar", 0)
        asm.inc_r(6)
        asm.dec_r(7)
        asm.cdq()
        asm.push_imm(5)
        asm.push_imm(0x1234)
        asm.push_rm(Mem(base=5, disp=8))
        asm.pop_r(3)
        asm.xchg_r_rm(0, 3)
        asm.nop()
        asm.ud2a()
        asm.int_n(0x80)
        asm.hlt()
        asm.ret()
        self._decode_all(asm)

    def test_mov16_prefix(self):
        asm = X86Assembler()
        asm.mov_rm_r(Mem(base=5, disp=-32), 0, width=2)
        asm.mov_r_rm(0, Mem(base=5, disp=-32), width=2)
        decoded = self._decode_all(asm)
        assert all(instr.width == 2 for _, instr in decoded)

    def test_byte_width(self):
        asm = X86Assembler()
        asm.mov_rm_r(Mem(base=3), 1, width=1)
        decoded = self._decode_all(asm)
        assert decoded[0][1].width == 1

    @given(reg, reg, st.integers(min_value=-0x1000, max_value=0x1000))
    def test_mov_mem_forms(self, dst, base, disp):
        if base == 4:
            return                        # ESP base needs SIB; skip
        asm = X86Assembler()
        asm.mov_r_rm(dst, Mem(base=base, disp=disp))
        code = asm.finish()
        instr = x86_decoder.decode(
            code + b"\x00" * x86_decoder.MAX_INSN_LEN, 0)
        assert instr.mnemonic == "mov"
        assert instr.reg == dst
        assert instr.base == base
        assert instr.disp & 0xFFFFFFFF == disp & 0xFFFFFFFF
        assert instr.length == len(code)

    def test_disassembly_smoke(self):
        asm = X86Assembler()
        asm.push_r(5)
        asm.mov_rm_r(5, 4)
        asm.lea(4, Mem(base=5, disp=-12))
        lines = disassemble_range(asm.finish(), 0xC013EC60, 10)
        assert "push %ebp" in lines[0]
        assert "lea -0xc(%ebp),%esp" in lines[2]


class TestPPCRoundtrip:
    def _roundtrip(self, asm: PPCAssembler):
        code = asm.finish()
        out = []
        for index in range(len(code) // 4):
            word = int.from_bytes(code[index * 4:index * 4 + 4], "big")
            instr = ppc_decoder.decode(word)
            assert instr.execute is not ppc_decoder.exec_illegal, \
                f"word {index} ({word:#010x}) decodes illegal"
            out.append(instr)
        return out

    def test_every_assembler_form_roundtrips(self):
        asm = PPCAssembler()
        asm.addi(3, 1, -32)
        asm.addis(4, 0, 0x1234)
        asm.mulli(5, 3, 100)
        asm.add(3, 4, 5)
        asm.subf(3, 4, 5)
        asm.neg(3, 4)
        asm.mullw(3, 4, 5)
        asm.divw(3, 4, 5)
        asm.divwu(3, 4, 5)
        asm.and_(3, 4, 5)
        asm.or_(3, 4, 5)
        asm.mr(3, 4)
        asm.xor_(3, 4, 5)
        asm.nor(3, 4, 5)
        asm.slw(3, 4, 5)
        asm.srw(3, 4, 5)
        asm.sraw(3, 4, 5)
        asm.srawi(3, 4, 7)
        asm.ori(3, 4, 0xFFFF)
        asm.xori(3, 4, 1)
        asm.andi_dot(3, 4, 0xFF)
        asm.rlwinm(3, 4, 2, 0, 29)
        asm.cmpwi(3, -1)
        asm.cmplwi(3, 10)
        asm.cmpw(3, 4)
        asm.cmplw(3, 4)
        asm.lwz(11, 40, 31)
        asm.lwzu(11, 4, 31)
        asm.lbz(3, 0, 4)
        asm.lhz(3, 2, 4)
        asm.lha(3, 2, 4)
        asm.stw(3, 0, 1)
        asm.stwu(1, -32, 1)
        asm.stb(3, 1, 4)
        asm.sth(3, 2, 4)
        asm.lmw(29, 8, 1)
        asm.stmw(29, 8, 1)
        asm.lwzx(3, 4, 5)
        asm.stwx(3, 4, 5)
        asm.lhzx(3, 4, 5)
        asm.sthx(3, 4, 5)
        asm.lbzx(3, 4, 5)
        asm.stbx(3, 4, 5)
        asm.mflr(0)
        asm.mtlr(0)
        asm.mfctr(9)
        asm.mtctr(9)
        asm.mfspr(3, 274)
        asm.mtspr(274, 3)
        asm.mfmsr(3)
        asm.mtmsr(3)
        asm.sc()
        asm.twi(31, 0, 0)
        asm.trap()
        asm.isync()
        asm.sync()
        asm.blr()
        asm.bctr()
        asm.nop()
        self._roundtrip(asm)

    @given(ppc_reg, ppc_reg, imm16s)
    def test_dform_fields(self, rt, ra, imm):
        asm = PPCAssembler()
        asm.lwz(rt, imm, ra)
        word = asm.words[0]
        instr = ppc_decoder.decode(word)
        assert instr.rt == rt
        assert instr.ra == ra
        assert instr.imm == imm & 0xFFFFFFFF

    @given(st.integers(min_value=0, max_value=1023))
    def test_spr_field_swap(self, spr):
        asm = PPCAssembler()
        asm.mfspr(5, spr)
        instr = ppc_decoder.decode(asm.words[0])
        assert instr.imm == spr

    def test_disassembly_matches_paper(self):
        _, text = disassemble_word(0x9421FFE0)
        assert text == "stwu r1,-32(r1)"
        _, text = disassemble_word(0x7C0802A6)
        assert text == "mflr r0"
        _, text = disassemble_word(0x817F0028)
        assert text == "lwz r11,40(r31)"
        _, text = disassemble_word(0x2C0B0000)
        assert text == "cmpwi r11,0"
