"""Disassembly round-trip coverage over the full kernel texts.

Every decodable instruction in both kernel images — clean *and* under
any single-bit corruption — must decode and render without raising:
the static analyzer classifies every flip of every text bit, and the
crash-dump path renders whatever the corrupted machine refetched.

The exhaustive clean sweep runs every linked instruction; the
hypothesis property samples random (instruction, bit) corruptions.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.static.cfg import decode_at
from repro.static.corruption import classify_flip, flip_decode

ARCH_FIXTURES = {"x86": "x86_image", "ppc": "ppc_image"}


def _format(arch, insn, addr):
    if arch == "x86":
        from repro.x86.disasm import format_instr
    else:
        from repro.ppc.disasm import format_instr
    return format_instr(insn, addr)


def _insn_table(image):
    """(addr, byte length) of every linked instruction."""
    table = []
    for info in image.functions.values():
        addrs = list(info.insn_addrs)
        end = info.addr + info.size
        for pos, addr in enumerate(addrs):
            nxt = addrs[pos + 1] if pos + 1 < len(addrs) else end
            table.append((addr, max(1, nxt - addr)))
    return sorted(table)


@pytest.mark.parametrize("arch", sorted(ARCH_FIXTURES))
def test_every_kernel_insn_renders(arch, request):
    image = request.getfixturevalue(ARCH_FIXTURES[arch])
    for addr, _length in _insn_table(image):
        insn = decode_at(arch, image, addr)
        text = _format(arch, insn, addr)
        assert isinstance(text, str) and text


@pytest.mark.parametrize("arch", sorted(ARCH_FIXTURES))
@settings(max_examples=300, deadline=None)
@given(data=st.data())
def test_corrupted_insn_decodes_and_renders(arch, request, data):
    """Any single-bit corruption of any instruction still yields a
    decodable, renderable instruction and a corruption class."""
    image = request.getfixturevalue(ARCH_FIXTURES[arch])
    table = _insn_table(image)
    addr, length = table[data.draw(
        st.integers(min_value=0, max_value=len(table) - 1),
        label="insn")]
    width = length * 8 if arch == "x86" else 32
    bit = data.draw(st.integers(min_value=0, max_value=width - 1),
                    label="bit")
    flipped = flip_decode(arch, image, addr, bit)
    text = _format(arch, flipped, addr)
    assert isinstance(text, str) and text
    cls, classified = classify_flip(arch, image, addr, bit)
    assert cls is not None
    assert _format(arch, classified, addr) == text
