"""Dentry cache / path lookup tests."""

import pytest

from repro.kernel.abi import EINVAL, Syscall
from repro.machine.events import KernelCrash


def open_path(machine, task, name: bytes) -> int:
    machine.write_user(task, 0x600, name)
    return machine.syscall(Syscall.OPEN_PATH, task.user_buf + 0x600,
                           len(name))


@pytest.mark.parametrize("fixture", ["fresh_x86", "fresh_ppc"])
class TestPathLookup:
    def test_same_name_same_inode(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        machine._switch_to(3)
        task = machine.tasks[3]
        fd1 = open_path(machine, task, b"etc/passwd")
        ino_field = machine.image.field("file_struct", "f_ino")
        files = machine.image.globals["files"]
        little = machine.image.little_endian
        ino1 = machine.cpu.mem.read_u32(
            files.addr + fd1 * files.elem_size + ino_field.offset,
            little)
        machine.syscall(Syscall.CLOSE, fd1)
        fd2 = open_path(machine, task, b"etc/passwd")
        ino2 = machine.cpu.mem.read_u32(
            files.addr + fd2 * files.elem_size + ino_field.offset,
            little)
        assert ino1 == ino2

    def test_cache_hit_on_reopen(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        machine._switch_to(3)
        task = machine.tasks[3]
        fd = open_path(machine, task, b"var/log.txt")
        machine.syscall(Syscall.CLOSE, fd)
        misses = machine.read_global("dcache_misses")
        fd = open_path(machine, task, b"var/log.txt")
        machine.syscall(Syscall.CLOSE, fd)
        assert machine.read_global("dcache_misses") == misses
        assert machine.read_global("dcache_hits") >= 1

    def test_different_names_can_differ(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        machine._switch_to(3)
        task = machine.tasks[3]
        for name in (b"a", b"bb", b"ccc", b"dddd"):
            fd = open_path(machine, task, name)
            assert fd < 0x80000000
            machine.syscall(Syscall.CLOSE, fd)
        assert machine.read_global("dentries_used") >= 4

    def test_invalid_lengths(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        machine._switch_to(3)
        task = machine.tasks[3]
        machine.write_user(task, 0x600, b"x" * 16)
        assert machine.syscall(Syscall.OPEN_PATH,
                               task.user_buf + 0x600, 0) == EINVAL
        assert machine.syscall(Syscall.OPEN_PATH,
                               task.user_buf + 0x600, 16) == EINVAL

    def test_corrupted_chain_pointer_crashes(self, fixture, request):
        """The paper's data-error mechanism on a dcache chain: flip a
        high bit of a d_next pointer and the walk dereferences junk."""
        machine = request.getfixturevalue(fixture)
        machine._switch_to(3)
        task = machine.tasks[3]
        # populate one bucket with two entries so the chain is walked
        fd = open_path(machine, task, b"etc/passwd")
        machine.syscall(Syscall.CLOSE, fd)
        pool = machine.image.globals["dentry_pool"]
        next_field = machine.image.field("dentry", "d_next")
        little = machine.image.little_endian
        addr = pool.addr + next_field.offset
        machine.cpu.mem.write_u32(addr, 0x00000030, little)  # junk ptr
        # also corrupt the hash so the first entry does not match and
        # the walk follows d_next
        hash_field = machine.image.field("dentry", "d_hash")
        machine.cpu.mem.write_u32(pool.addr + hash_field.offset,
                                  1, little)
        with pytest.raises(KernelCrash):
            open_path(machine, task, b"etc/passwd")
