"""Unit + property tests for repro.isa.bits."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.bits import (
    MASK32, bit_flip, byte_of, extract_bits, mask_for_width, rotl32,
    sign_extend, to_signed, to_unsigned,
)

u32 = st.integers(min_value=0, max_value=MASK32)


class TestBitFlip:
    def test_flips_named_bit(self):
        assert bit_flip(0, 0) == 1
        assert bit_flip(0, 31) == 0x80000000
        assert bit_flip(0xFF, 3) == 0xF7

    def test_width_bound(self):
        with pytest.raises(ValueError):
            bit_flip(0, 32)
        with pytest.raises(ValueError):
            bit_flip(0, -1)
        assert bit_flip(0, 15, width_bits=16) == 0x8000

    @given(u32, st.integers(min_value=0, max_value=31))
    def test_involution(self, value, bit):
        assert bit_flip(bit_flip(value, bit), bit) == value

    @given(u32, st.integers(min_value=0, max_value=31))
    def test_changes_exactly_one_bit(self, value, bit):
        flipped = bit_flip(value, bit)
        assert bin(flipped ^ value).count("1") == 1


class TestSignExtend:
    def test_positive(self):
        assert sign_extend(0x7F, 8) == 0x7F
        assert sign_extend(0x7FFF, 16) == 0x7FFF

    def test_negative(self):
        assert sign_extend(0x80, 8) == 0xFFFFFF80
        assert sign_extend(0xFFFF, 16) == MASK32

    @given(u32)
    def test_idempotent_at_32(self, value):
        assert sign_extend(value, 32) == value

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_roundtrip_via_signed(self, value):
        extended = sign_extend(value, 16)
        assert to_signed(extended) == to_signed(value, 16)


class TestSignedConversions:
    @given(u32)
    def test_roundtrip(self, value):
        assert to_unsigned(to_signed(value)) == value

    def test_boundaries(self):
        assert to_signed(0x80000000) == -(1 << 31)
        assert to_signed(0x7FFFFFFF) == (1 << 31) - 1
        assert to_unsigned(-1) == MASK32


class TestMisc:
    def test_mask_for_width(self):
        assert mask_for_width(1) == 0xFF
        assert mask_for_width(2) == 0xFFFF
        assert mask_for_width(4) == MASK32
        with pytest.raises(ValueError):
            mask_for_width(3)

    @given(u32, st.integers(min_value=0, max_value=63))
    def test_rotl_preserves_popcount(self, value, amount):
        assert bin(rotl32(value, amount)).count("1") == \
            bin(value).count("1")

    def test_rotl_known(self):
        assert rotl32(0x80000001, 1) == 0x00000003

    def test_extract_bits(self):
        assert extract_bits(0xDEADBEEF, 31, 24) == 0xDE
        assert extract_bits(0xDEADBEEF, 7, 0) == 0xEF
        with pytest.raises(ValueError):
            extract_bits(0, 0, 1)

    def test_byte_of(self):
        assert byte_of(0x12345678, 0) == 0x78
        assert byte_of(0x12345678, 3) == 0x12
