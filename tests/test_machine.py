"""Machine-layer tests: boot, syscalls, crash machinery, forking."""

import pytest

from repro.kernel.abi import Syscall
from repro.machine.events import HangDetected, KernelCrash
from repro.machine.machine import Machine, MachineConfig, SPRG2_VALUE
from repro.ppc.exceptions import PPCVector
from repro.ppc.registers import SPR_SPRG2
from repro.x86.exceptions import X86Vector
from repro.x86.registers import FLAG_NT


class TestBootAndSyscalls:
    @pytest.mark.parametrize("fixture", ["fresh_x86", "fresh_ppc"])
    def test_getpid_tracks_current(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        machine._switch_to(3)
        assert machine.syscall(Syscall.GETPID) == 3
        machine._switch_to(4)
        assert machine.syscall(Syscall.GETPID) == 4

    @pytest.mark.parametrize("fixture", ["fresh_x86", "fresh_ppc"])
    def test_file_roundtrip(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        machine._switch_to(3)
        task = machine.tasks[3]
        payload = bytes(range(200))
        machine.write_user(task, 0, payload)
        fd = machine.syscall(Syscall.OPEN, 2)
        assert machine.syscall(Syscall.WRITE, fd, task.user_buf,
                               200) == 200
        machine.syscall(Syscall.LSEEK, fd, 0)
        assert machine.syscall(Syscall.READ, fd, task.user_buf + 0x800,
                               200) == 200
        assert machine.read_user(task, 0x800, 200) == payload
        assert machine.syscall(Syscall.CLOSE, fd) == 0

    @pytest.mark.parametrize("fixture", ["fresh_x86", "fresh_ppc"])
    def test_bad_fd_returns_error(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        from repro.kernel import abi
        assert machine.syscall(Syscall.READ, 99, 0, 10) == abi.EBADF

    @pytest.mark.parametrize("fixture", ["fresh_x86", "fresh_ppc"])
    def test_unknown_syscall_is_enosys(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        from repro.kernel import abi
        assert machine.syscall(15) == abi.ENOSYS
        assert machine.syscall(200) == abi.ENOSYS

    @pytest.mark.parametrize("fixture", ["fresh_x86", "fresh_ppc"])
    def test_kthreads_run(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        machine.run_kthread(1)                     # kupdate
        machine.run_kthread(2)                     # kjournald
        assert machine.read_global("bdflush_runs") >= 1

    @pytest.mark.parametrize("fixture", ["fresh_x86", "fresh_ppc"])
    def test_timer_advances_jiffies(self, fixture, request):
        machine = request.getfixturevalue(fixture)
        before = machine.read_global("jiffies")
        for _ in range(3):
            machine.deliver_timer()
        assert machine.read_global("jiffies") == before + 3

    def test_quantum_padding(self, fresh_x86):
        machine = fresh_x86
        start = machine.cpu.cycles
        machine.deliver_timer()
        assert machine.cpu.cycles - start >= machine.tick_cycles


class TestFork:
    def test_fork_is_independent(self, booted_x86):
        one = booted_x86.fork()
        two = booted_x86.fork()
        one._switch_to(3)
        one.syscall(Syscall.BRK)
        assert two.read_global("syscall_count") == \
            booted_x86.read_global("syscall_count")
        assert one.read_global("syscall_count") != \
            two.read_global("syscall_count")

    def test_fork_requires_boot(self):
        machine = Machine("ppc")
        with pytest.raises(RuntimeError):
            machine.fork()

    def test_fork_preserves_cpu_state(self, booted_ppc):
        clone = booted_ppc.fork()
        assert clone.cpu.instret == booted_ppc.cpu.instret
        assert clone.cpu.gpr == booted_ppc.cpu.gpr
        assert clone.cpu.spr[SPR_SPRG2] == SPRG2_VALUE

    def test_fork_determinism(self, booted_x86):
        results = []
        for _ in range(2):
            machine = booted_x86.fork(
                config=MachineConfig(seed=5))
            machine._switch_to(3)
            machine.syscall(Syscall.BRK)
            results.append((machine.cpu.instret, machine.cpu.cycles))
        assert results[0] == results[1]


class TestCrashMachinery:
    def _crash_x86(self, machine):
        """Corrupt the syscall table to force a wild indirect call."""
        machine.write_global("sys_call_table", 0x00000008, index=0)
        with pytest.raises(KernelCrash) as exc:
            machine.syscall(Syscall.GETPID)
        return exc.value.report

    def test_null_pointer_crash_report(self, fresh_x86):
        report = self._crash_x86(fresh_x86)
        assert report.arch == "x86"
        assert report.vector == X86Vector.PAGE_FAULT
        assert report.cycles_at_crash > 0
        # wild jump to the null page: pc is outside kernel text, so
        # the dump cannot attribute a function
        assert report.pc == 8
        assert report.function == ""

    def test_stage_costs_accounted(self, fresh_x86):
        machine = fresh_x86
        machine.write_global("sys_call_table", 0x00000008, index=0)
        before = machine.cpu.cycles
        with pytest.raises(KernelCrash) as exc:
            machine.syscall(Syscall.GETPID)
        report = exc.value.report
        # stage 2 (>1000) + stage 3 (~150-200 instructions)
        assert report.cycles_at_crash - before > 1100

    def test_g4_stack_wrapper_flags_out_of_range(self, fresh_ppc):
        machine = fresh_ppc
        machine.write_global("sys_call_table", 0x00000008, index=0)

        # also wreck r1 so the wrapper sees an out-of-range stack
        def action():
            machine.cpu.gpr[1] = 0xDEAD0000

        machine.schedule_action(machine.cpu.instret + 10, action)
        with pytest.raises(KernelCrash) as exc:
            machine.syscall(Syscall.GETPID)
        assert exc.value.report.stack_out_of_range

    def test_x86_unusable_esp_means_no_dump(self, fresh_x86):
        machine = fresh_x86
        machine.write_global("sys_call_table", 0x00000008, index=0)

        def action():
            machine.cpu.regs[4] = 0x00000010       # wild ESP

        machine.schedule_action(machine.cpu.instret + 10, action)
        with pytest.raises(KernelCrash) as exc:
            machine.syscall(Syscall.GETPID)
        report = exc.value.report
        assert report.dump_failed
        assert not report.dump_delivered

    def test_nt_flag_invalid_tss_at_timer(self, fresh_x86):
        machine = fresh_x86
        machine.cpu.eflags |= FLAG_NT
        with pytest.raises(KernelCrash) as exc:
            machine.deliver_timer()
        assert exc.value.report.vector == X86Vector.INVALID_TSS

    def test_sprg2_corruption_fires_at_next_entry(self, fresh_ppc):
        machine = fresh_ppc
        machine.cpu.spr[SPR_SPRG2] = SPRG2_VALUE ^ 0x4000
        with pytest.raises(KernelCrash) as exc:
            machine.syscall(Syscall.GETPID)
        assert exc.value.report.vector == PPCVector.PROGRAM

    def test_hang_on_kernel_loop(self, fresh_ppc):
        """Corrupting a spinlock to 'held' deadlocks spin_lock."""
        machine = fresh_ppc
        machine.write_global("runqueue_lock")  \
            if False else None
        info = machine.image.globals["pipe_lock"]
        machine.cpu.mem.write_u32(info.addr, 1, False)   # lock=1
        task = machine.tasks[3]
        machine._switch_to(3)
        with pytest.raises(HangDetected):
            machine.syscall(Syscall.PIPE_WRITE, task.user_buf, 4)

    def test_crash_packet_reaches_collector(self, booted_ppc):
        from repro.injection.collector import CrashDataCollector
        collector = CrashDataCollector()
        machine = booted_ppc.fork(
            config=MachineConfig(seed=1, dump_loss_probability=0.0),
            collector=collector.receive)
        machine.write_global("sys_call_table", 0x00000008, index=0)
        with pytest.raises(KernelCrash) as exc:
            machine.syscall(Syscall.GETPID)
        assert exc.value.report.dump_delivered
        assert collector.count == 1
        record = collector.last()
        assert record.arch == "ppc"
        assert record.pc == exc.value.report.pc
