"""Analysis tests: tables, latency buckets, figures, comparisons."""

import pytest

from repro.analysis.compare import (
    PAPER_TABLE5_P4, PAPER_TABLE6_G4, paper_table,
    render_figure_comparison, render_table_comparison,
)
from repro.analysis.figures import (
    crash_cause_distribution, crash_cause_percentages,
    render_distribution,
)
from repro.analysis.latency import (
    bucket_of, cumulative_percent_below, latency_histogram, latency_percentages,
)
from repro.analysis.tables import build_row, build_table, render_table
from repro.injection.outcomes import (
    CampaignKind, CrashCauseG4, CrashCauseP4, InjectionResult, Outcome,
)


def make_result(outcome, cause=None, activation=None, crash=None,
                kind=CampaignKind.STACK, arch="x86"):
    return InjectionResult(arch=arch, kind=kind, target=None,
                           outcome=outcome, cause=cause,
                           activation_cycles=activation,
                           crash_cycles=crash)


class TestLatencyBuckets:
    def test_bucket_boundaries(self):
        assert bucket_of(0) == "3k"
        assert bucket_of(3_000) == "3k"
        assert bucket_of(3_001) == "10k"
        assert bucket_of(99_999) == "100k"
        assert bucket_of(10 ** 9) == "1G"
        assert bucket_of(10 ** 9 + 1) == ">1G"

    def test_histogram_counts_only_crashes(self):
        results = [
            make_result(Outcome.CRASH_KNOWN, activation=0, crash=100),
            make_result(Outcome.CRASH_UNKNOWN, activation=0,
                        crash=50_000),
            make_result(Outcome.NOT_MANIFESTED, activation=0),
            make_result(Outcome.HANG, activation=0),
        ]
        histogram = latency_histogram(results)
        assert histogram["3k"] == 1
        assert histogram["100k"] == 1
        assert sum(histogram.values()) == 2

    def test_percentages_sum_to_100(self):
        results = [make_result(Outcome.CRASH_KNOWN, activation=0,
                               crash=10 ** k) for k in range(2, 9)]
        percentages = latency_percentages(results)
        assert abs(sum(percentages.values()) - 100.0) < 1e-9

    def test_cumulative(self):
        results = [make_result(Outcome.CRASH_KNOWN, activation=0,
                               crash=c) for c in (100, 2000, 50_000)]
        assert cumulative_percent_below(results, 3000) == \
            pytest.approx(66.666, abs=0.01)

    def test_latency_clamps_negative(self):
        result = make_result(Outcome.CRASH_KNOWN, activation=500,
                             crash=100)
        assert result.latency == 0


class TestTableBuilder:
    def _results(self):
        return [
            make_result(Outcome.NOT_ACTIVATED),
            make_result(Outcome.NOT_ACTIVATED),
            make_result(Outcome.NOT_MANIFESTED),
            make_result(Outcome.FAIL_SILENCE_VIOLATION),
            make_result(Outcome.CRASH_KNOWN,
                        cause=CrashCauseP4.BAD_PAGING),
            make_result(Outcome.CRASH_UNKNOWN),
            make_result(Outcome.HANG),
            make_result(Outcome.NOT_MANIFESTED),
        ]

    def test_row_counts(self):
        row = build_row(CampaignKind.STACK, self._results())
        assert row.injected == 8
        assert row.activated == 6
        assert row.not_manifested == 2
        assert row.fsv == 1
        assert row.crash_known == 1
        assert row.hang_unknown == 2      # hang + unknown crash

    def test_percentages_relative_to_activated(self):
        row = build_row(CampaignKind.STACK, self._results())
        assert row.activation_pct == pytest.approx(75.0)
        assert row.pct(row.crash_known) == pytest.approx(100 / 6)
        assert row.manifested_pct == pytest.approx(400 / 6)

    def test_register_rows_use_injected_denominator(self):
        row = build_row(CampaignKind.REGISTER, self._results())
        assert row.activated is None
        assert row.denominator == 8
        assert row.activation_pct is None

    def test_table_order_and_render(self):
        table = build_table({
            CampaignKind.CODE: self._results(),
            CampaignKind.STACK: self._results(),
            CampaignKind.REGISTER: self._results(),
            CampaignKind.DATA: self._results(),
        })
        assert [row.kind for row in table] == [
            CampaignKind.STACK, CampaignKind.REGISTER,
            CampaignKind.DATA, CampaignKind.CODE]
        text = render_table(table, "Pentium 4")
        assert "Stack" in text and "System Registers" in text
        assert "N/A" in text              # register activation


class TestFigures:
    def test_distribution_counts_known_only(self):
        results = [
            make_result(Outcome.CRASH_KNOWN,
                        cause=CrashCauseG4.BAD_AREA, arch="ppc"),
            make_result(Outcome.CRASH_KNOWN,
                        cause=CrashCauseG4.BAD_AREA, arch="ppc"),
            make_result(Outcome.CRASH_KNOWN,
                        cause=CrashCauseG4.STACK_OVERFLOW, arch="ppc"),
            make_result(Outcome.CRASH_UNKNOWN, arch="ppc"),
        ]
        counts = crash_cause_distribution(results)
        assert counts[CrashCauseG4.BAD_AREA] == 2
        percentages = crash_cause_percentages(results)
        assert percentages[CrashCauseG4.BAD_AREA] == pytest.approx(
            200 / 3)
        text = render_distribution(results, "test", "ppc")
        assert "Bad Area" in text
        assert "(Total 3)" in text

    def test_empty_distribution(self):
        assert crash_cause_percentages([]) == {}
        assert "(no known crashes)" in render_distribution([], "t",
                                                           "x86")


class TestPaperReference:
    def test_tables_complete(self):
        for table in (PAPER_TABLE5_P4, PAPER_TABLE6_G4):
            assert set(table) == {
                CampaignKind.STACK, CampaignKind.REGISTER,
                CampaignKind.DATA, CampaignKind.CODE}

    def test_headline_numbers(self):
        assert PAPER_TABLE5_P4[CampaignKind.STACK].manifested_pct == \
            pytest.approx(56.1)
        assert PAPER_TABLE6_G4[CampaignKind.STACK].manifested_pct == \
            pytest.approx(21.3)
        assert PAPER_TABLE5_P4[CampaignKind.DATA].activation_pct == 0.5
        assert PAPER_TABLE6_G4[CampaignKind.DATA].activation_pct == 1.5

    def test_paper_table_lookup(self):
        assert paper_table("x86") is PAPER_TABLE5_P4
        assert paper_table("ppc") is PAPER_TABLE6_G4

    def test_render_comparisons(self):
        rows = [build_row(CampaignKind.STACK, [
            make_result(Outcome.CRASH_KNOWN,
                        cause=CrashCauseP4.BAD_PAGING, activation=0,
                        crash=100)])]
        text = render_table_comparison(rows, "x86")
        assert "paper" in text and "measured" in text
        figure_text = render_figure_comparison(
            [make_result(Outcome.CRASH_KNOWN,
                         cause=CrashCauseP4.BAD_PAGING)],
            6, "x86", "stack")
        assert "Bad Paging" in figure_text
