"""Reference-interpreter-specific tests."""

import pytest

from repro.isa.memory import PhysicalMemory
from repro.kcc import analyze, build_image, parse
from repro.kcc.interp import Interp, InterpError, InterpTrap


def make_interp(source: str, arch: str = "ppc", **kwargs):
    program = analyze(parse(source))
    image = build_image(program, arch)
    memory = PhysicalMemory()
    memory.write(image.data_base, image.data_bytes)
    return Interp(image, memory, **kwargs), image, memory


class TestControlFlow:
    def test_return_value(self):
        interp, _, _ = make_interp(
            "fn f(x: u32) -> u32 { return x * 2; }")
        assert interp.call("f", [21]) == 42

    def test_void_function_returns_zero(self):
        interp, _, _ = make_interp("global g: u32; fn f() { g = 7; }")
        assert interp.call("f") == 0

    def test_arity_check(self):
        interp, _, _ = make_interp("fn f(x: u32) -> u32 { return x; }")
        with pytest.raises(InterpError):
            interp.call("f", [1, 2])

    def test_step_budget(self):
        interp, _, _ = make_interp(
            "fn f() -> u32 { while (1) { } return 0; }",
            max_steps=1000)
        with pytest.raises(InterpError):
            interp.call("f")


class TestTraps:
    def test_bug(self):
        interp, _, _ = make_interp("fn f() { __bug(); }")
        with pytest.raises(InterpTrap) as exc:
            interp.call("f")
        assert exc.value.kind == "bug"

    def test_panic_records_code(self):
        interp, image, memory = make_interp("""
            global panic_code: u32;
            fn f() { __panic(42); }
        """)
        with pytest.raises(InterpTrap) as exc:
            interp.call("f")
        assert exc.value.code == 42
        info = image.globals["panic_code"]
        assert memory.read_u32(info.addr, False) == 42

    def test_divide_by_zero(self):
        interp, _, _ = make_interp(
            "fn f(a: u32) -> u32 { return 10 / a; }")
        with pytest.raises(InterpTrap):
            interp.call("f", [0])

    def test_wild_indirect_call(self):
        interp, _, _ = make_interp(
            "fn f() -> u32 { return __icall0(0xDEAD); }")
        with pytest.raises(InterpError):
            interp.call("f")


class TestArchSensitivity:
    SOURCE = """
        struct s { b: u8; h: u16; w: u32; }
        global item: s;
        fn poke() -> u32 {
            var p: *s = &item;
            p.b = 0xAB;
            p.h = 0x1234;
            p.w = 0x11223344;
            return p.b + p.w;
        }
    """

    def test_field_semantics_equal_across_arch(self):
        values = {}
        for arch in ("x86", "ppc"):
            interp, _, _ = make_interp(self.SOURCE, arch)
            values[arch] = interp.call("poke")
        assert values["x86"] == values["ppc"]

    def test_memory_layout_differs(self):
        layouts = {}
        for arch in ("x86", "ppc"):
            interp, image, memory = make_interp(self.SOURCE, arch)
            interp.call("poke")
            info = image.globals["item"]
            layouts[arch] = (image.sizeof("s"),
                             memory.read(info.addr, info.size))
        assert layouts["x86"][0] < layouts["ppc"][0]

    def test_ppc_subword_field_masks_high_bits(self):
        """A flipped high bit in a u8 field's word is invisible on the
        PPC layout — the paper's masking mechanism, testable at the
        interpreter level."""
        interp, image, memory = make_interp(self.SOURCE, "ppc")
        interp.call("poke")
        info = image.globals["item"]
        field = image.field("s", "b")
        # flip bit 17 of the field's word (an unused bit)
        addr = info.addr + field.offset
        word = memory.read_u32(addr, False)
        memory.write_u32(addr, word ^ (1 << 17), False)
        reread = Interp(image, memory)
        assert reread.call("poke") & 0xFF != 0  # still behaves
        # direct load of the field masks the corruption away
        program = image.program
        probe = analyze(parse(self.SOURCE + """
            fn peek() -> u32 { var p: *s = &item; return p.b; }
        """))
        probe_image = build_image(probe, "ppc")
        # same layout; reuse memory contents at same base
        probe_interp = Interp(probe_image, memory)
        assert probe_interp.call("peek") == 0xAB

    def test_x86_subword_field_has_no_slack(self):
        """On the packed x86 layout every bit of the byte matters."""
        interp, image, memory = make_interp(self.SOURCE, "x86")
        interp.call("poke")
        info = image.globals["item"]
        field = image.field("s", "b")
        addr = info.addr + field.offset
        memory.write_u8(addr, memory.read_u8(addr) ^ (1 << 6))
        probe = analyze(parse(self.SOURCE + """
            fn peek() -> u32 { var p: *s = &item; return p.b; }
        """))
        probe_image = build_image(probe, "x86")
        probe_interp = Interp(probe_image, memory)
        assert probe_interp.call("peek") != 0xAB
