"""Register-corruption semantics tests (paper Section 5.2)."""

import pytest

from repro.kernel.abi import Syscall
from repro.machine.events import KernelCrash
from repro.machine.register_semantics import (
    apply_ppc_spr_effect, apply_x86_register_flip,
)
from repro.ppc.exceptions import PPCVector
from repro.ppc.registers import HID0_BTIC, SPR_HID0, SPR_SDR1
from repro.x86.exceptions import X86Vector


class TestPPCSprEffects:
    def test_sdr1_change_poisons_data_path(self, fresh_ppc):
        machine = fresh_ppc
        apply_ppc_spr_effect(machine, SPR_SDR1,
                             old=0, new=0x00400000)
        with pytest.raises(KernelCrash) as exc:
            machine.syscall(Syscall.GETPID)
        assert exc.value.report.vector in (PPCVector.DSI,
                                           PPCVector.PROGRAM)

    def test_dbat_change_poisons_data_path(self, fresh_ppc):
        machine = fresh_ppc
        apply_ppc_spr_effect(machine, 536, old=0, new=4)
        assert machine.cpu._high_data_fault == "dsi"

    def test_ibat_change_poisons_fetch_path(self, fresh_ppc):
        machine = fresh_ppc
        apply_ppc_spr_effect(machine, 528, old=0, new=4)
        assert machine.cpu._high_fetch_fault == "isi"
        with pytest.raises(KernelCrash) as exc:
            machine.syscall(Syscall.GETPID)
        assert exc.value.report.vector == PPCVector.ISI

    def test_hid0_btic_enable_poisons_branches(self, fresh_ppc):
        machine = fresh_ppc
        apply_ppc_spr_effect(machine, SPR_HID0, old=0, new=HID0_BTIC)
        assert machine.cpu.btic_poisoned
        with pytest.raises(KernelCrash) as exc:
            machine.syscall(Syscall.GETPID)
        assert exc.value.report.vector == PPCVector.PROGRAM

    def test_hid0_btic_disable_is_benign(self, fresh_ppc):
        machine = fresh_ppc
        apply_ppc_spr_effect(machine, SPR_HID0, old=HID0_BTIC, new=0)
        assert not machine.cpu.btic_poisoned
        machine.syscall(Syscall.GETPID)

    def test_unchanged_value_is_noop(self, fresh_ppc):
        apply_ppc_spr_effect(fresh_ppc, SPR_SDR1, old=5, new=5)
        assert fresh_ppc.cpu._high_data_fault is None

    def test_benign_sprs_absorb_writes(self, fresh_ppc):
        machine = fresh_ppc
        for spr in (953, 1020, 272, 4096):     # PMC1, THRM1, SPRG0, SR0
            apply_ppc_spr_effect(machine, spr, old=0, new=0xFFFF)
        machine.syscall(Syscall.GETPID)

    def test_mtspr_from_kernel_code_triggers_hook(self, fresh_ppc):
        """The same semantics apply when (corrupted) kernel code
        executes mtspr."""
        machine = fresh_ppc
        machine.cpu.set_spr(SPR_SDR1, 0x12345678)
        assert machine.cpu._high_data_fault == "dsi"


class TestX86RegisterFlips:
    def test_cr0_goes_through_set_cr(self, fresh_x86):
        machine = fresh_x86
        apply_x86_register_flip(machine, "cr0",
                                machine.cpu.cr0 & ~0x80000000)
        assert not machine.cpu.aspace.translation_on

    def test_cr3_flip_breaks_translation(self, fresh_x86):
        machine = fresh_x86
        apply_x86_register_flip(machine, "cr3",
                                machine.cpu.cr3 ^ 0x1000)
        with pytest.raises(KernelCrash) as exc:
            machine.syscall(Syscall.GETPID)
        assert exc.value.report.vector in (
            X86Vector.PAGE_FAULT, X86Vector.GENERAL_PROTECTION,
            X86Vector.DOUBLE_FAULT)

    def test_plain_attribute_flip(self, fresh_x86):
        machine = fresh_x86
        apply_x86_register_flip(machine, "dr3", 0xDEAD)
        assert machine.cpu.dr3 == 0xDEAD
        machine.syscall(Syscall.GETPID)        # benign

    def test_esp_alias_flip(self, fresh_x86):
        machine = fresh_x86
        apply_x86_register_flip(machine, "esp_alias", 0x00001000)
        assert machine.cpu.regs[4] == 0x00001000

    def test_eip_flip_crashes_quickly(self, fresh_x86):
        machine = fresh_x86

        def action():
            apply_x86_register_flip(machine, "eip",
                                    machine.cpu.eip ^ 0x00800000)

        machine.schedule_action(machine.cpu.instret + 20, action)
        with pytest.raises(KernelCrash):
            machine.syscall(Syscall.GETPID)

    def test_idtr_base_flip_is_silent_until_next_interrupt(
            self, fresh_x86):
        machine = fresh_x86
        apply_x86_register_flip(machine, "idtr_base",
                                machine.cpu.idtr_base ^ 0x100)
        machine.syscall(Syscall.GETPID)        # still fine
        with pytest.raises(KernelCrash) as exc:
            machine.deliver_timer()            # vectoring fails
        assert exc.value.report.dump_failed    # triple-fault-like
