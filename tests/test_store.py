"""Durable campaign store: codec, manifest, journal, store API.

The cheap half of the store test battery — everything here runs on
synthetic records or a tiny shared campaign context.  The expensive
kill/resume equivalence matrix lives in ``tests/test_resume.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.outcomes import (
    CampaignKind, CrashCauseG4, CrashCauseP4, InjectionResult, Outcome,
)
from repro.injection.targets import (
    CodeTarget, DataTarget, RegisterTarget, StackTarget,
)
from repro.machine.events import CrashReport
from repro.store import (
    CampaignExistsError, CampaignStore, JournalCorruption, ManifestError,
    StoreMismatchError,
)
from repro.store.codec import (
    report_from_dict, report_to_dict, result_from_dict, result_to_dict,
)
from repro.store.journal import Journal, encode_record, replay
from repro.store.manifest import CampaignManifest


def _result(index: int = 0) -> InjectionResult:
    """A synthetic but fully-populated record."""
    targets = [
        DataTarget(addr=0xC0300010 + index, bit=3, at_instret=1000,
                   initialized=True),
        StackTarget(pid=4, addr=0xC0200000 + index, bit=1,
                    at_instret=900),
        CodeTarget(function="getblk", addr=0xC0100000 + index,
                   insn_len=4, bit=17),
        RegisterTarget(name="cr0", bit=5, at_instret=700, attr="cr0"),
    ]
    causes = [CrashCauseP4.NULL_POINTER, CrashCauseG4.BAD_AREA, None,
              None]
    outcomes = [Outcome.CRASH_KNOWN, Outcome.CRASH_KNOWN,
                Outcome.NOT_ACTIVATED, Outcome.HANG]
    pick = index % 4
    return InjectionResult(
        arch="x86" if pick != 1 else "ppc",
        kind=CampaignKind.DATA,
        target=targets[pick],
        outcome=outcomes[pick],
        cause=causes[pick],
        activation_cycles=100 + index,
        crash_cycles=500 + index if pick < 2 else None,
        detail=f"detail {index}", function="getblk", subsystem="fs",
        screened=(pick == 2))


def _config(count: int = 6, arch: str = "x86",
            kind: CampaignKind = CampaignKind.DATA) -> CampaignConfig:
    return CampaignConfig(arch=arch, kind=kind, count=count, seed=0,
                          ops=36)


class TestCodec:
    @pytest.mark.parametrize("index", range(4))
    def test_result_roundtrip_is_equality(self, index):
        original = _result(index)
        restored = result_from_dict(
            json.loads(json.dumps(result_to_dict(original))))
        assert restored == original            # full dataclass equality
        assert type(restored.target) is type(original.target)

    def test_target_comes_back_as_dataclass(self):
        restored = result_from_dict(result_to_dict(_result(0)))
        assert isinstance(restored.target, DataTarget)
        assert restored.target.addr == 0xC0300010

    def test_unknown_target_type_kept_raw(self):
        payload = result_to_dict(_result(0))
        payload["target"]["type"] = "FutureTarget"
        restored = result_from_dict(payload)
        assert restored.target["addr"] == 0xC0300010

    def test_crash_report_tuple_fields_roundtrip(self):
        from repro.x86.exceptions import X86Vector
        report = CrashReport(
            arch="x86", vector=X86Vector.PAGE_FAULT, address=0x10,
            detail="d", pc=0xC0100000, cycles_at_crash=5,
            instret_at_crash=3, registers={"cr2": 0x10},
            frame_pointers=(0xC02FF000, 0xC02FF100),
            dump_delivered=True)
        restored = report_from_dict(
            json.loads(json.dumps(report_to_dict(report))))
        assert restored == report
        assert isinstance(restored.frame_pointers, tuple)
        assert restored.vector is X86Vector.PAGE_FAULT

    def test_crash_report_ppc_vector_and_reason(self):
        from repro.ppc.exceptions import PPCVector, ProgramReason
        report = CrashReport(
            arch="ppc", vector=PPCVector.PROGRAM, address=None,
            detail="", pc=0xC0100004, cycles_at_crash=9,
            instret_at_crash=7,
            program_reason=ProgramReason.ILLEGAL)
        restored = report_from_dict(report_to_dict(report))
        assert restored == report
        assert restored.program_reason is ProgramReason.ILLEGAL


class TestManifest:
    def test_identity_excludes_count(self):
        small = CampaignManifest.from_config(_config(count=6))
        large = CampaignManifest.from_config(_config(count=60))
        assert small.campaign_id == large.campaign_id
        assert small.manifest_hash != large.manifest_hash

    def test_identity_covers_config_fields(self):
        base = CampaignManifest.from_config(_config())
        for other in (_config(arch="ppc"),
                      _config(kind=CampaignKind.CODE),
                      CampaignConfig(arch="x86", kind=CampaignKind.DATA,
                                     count=6, seed=1, ops=36),
                      CampaignConfig(arch="x86", kind=CampaignKind.DATA,
                                     count=6, seed=0, ops=40)):
            assert CampaignManifest.from_config(other).campaign_id != \
                base.campaign_id

    def test_save_load_roundtrip(self, tmp_path):
        manifest = CampaignManifest.from_config(_config())
        manifest.save(tmp_path)
        assert CampaignManifest.load(tmp_path) == manifest

    def test_tampered_manifest_detected(self, tmp_path):
        manifest = CampaignManifest.from_config(_config())
        manifest.save(tmp_path)
        path = tmp_path / "manifest.json"
        payload = json.loads(path.read_text())
        payload["count"] = 999                # drift without rehashing
        path.write_text(json.dumps(payload))
        with pytest.raises(ManifestError, match="hash mismatch"):
            CampaignManifest.load(tmp_path)

    def test_prune_changes_identity(self):
        base = CampaignConfig(arch="ppc", kind=CampaignKind.CODE,
                              count=6, seed=0, ops=36)
        pruned = CampaignConfig(arch="ppc", kind=CampaignKind.CODE,
                                count=6, seed=0, ops=36, prune="dead")
        assert CampaignManifest.from_config(base).campaign_id != \
            CampaignManifest.from_config(pruned).campaign_id

    def test_legacy_manifest_without_prune_rejected(self, tmp_path):
        """Pre-format-2 manifests never recorded a prune policy;
        loading one must fail loudly, not guess."""
        manifest = CampaignManifest.from_config(_config())
        manifest.save(tmp_path)
        path = tmp_path / "manifest.json"
        payload = json.loads(path.read_text())
        del payload["prune"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ManifestError, match="legacy manifest"):
            CampaignManifest.load(tmp_path)


class TestJournal:
    def _write(self, path, count: int) -> list:
        results = [(index, _result(index)) for index in range(count)]
        with Journal(path) as journal:
            for index, result in results:
                journal.append(index, result)
        return results

    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        results = self._write(path, 8)
        report = replay(path)
        assert report.truncated_bytes == 0
        assert report.records == results

    def test_missing_file_is_empty(self, tmp_path):
        assert replay(tmp_path / "nope.jsonl").records == []

    def test_torn_tail_truncated_and_repaired(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        results = self._write(path, 5)
        intact = path.read_bytes()
        # simulate a crash mid-append: half of a sixth record
        torn = encode_record(5, _result(5))[:25].encode()
        path.write_bytes(intact + torn)
        report = replay(path)
        assert report.records == results
        assert report.truncated_bytes == len(torn)
        # the file was physically repaired: a second replay is clean
        assert path.read_bytes() == intact
        assert replay(path).truncated_bytes == 0

    def test_bad_checksum_on_tail_is_torn(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        results = self._write(path, 4)
        record = json.loads(encode_record(4, _result(4)))
        record["crc"] = "0" * 16
        with open(path, "a") as handle:
            handle.write(json.dumps(record) + "\n")
        report = replay(path)
        assert report.records == results
        assert report.truncated_bytes > 0
        assert "checksum" in report.torn_detail

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self._write(path, 5)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"v":1,"index":1,"crc":"beef","result":{}}\n'
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorruption, match="followed by valid"):
            replay(path)

    def test_duplicate_index_first_write_wins(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        first, second = _result(0), _result(4)
        with Journal(path) as journal:
            journal.append(0, first)
            journal.append(0, second)
        report = replay(path)
        assert report.records == [(0, first)]


class TestStoreAPI:
    def test_open_refuses_existing_without_resume(self, tmp_path):
        store = CampaignStore(tmp_path)
        opened = store.open(_config())
        opened.record(0, _result(0))
        opened.close()
        with pytest.raises(CampaignExistsError, match="--resume"):
            store.open(_config())
        reopened = store.open(_config(), resume=True)
        assert list(reopened.done) == [0]
        reopened.close()

    def test_open_refuses_shrinking_count(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.open(_config(count=10)).close()
        with pytest.raises(StoreMismatchError, match="shrinks"):
            store.open(_config(count=4), resume=True)

    def test_open_refuses_stray_indices(self, tmp_path):
        store = CampaignStore(tmp_path)
        opened = store.open(_config(count=10))
        opened.record(9, _result(9))
        opened.close()
        # same identity, smaller count than the journaled index — but
        # shrinking is caught by the manifest first; force the journal
        # check by rewriting the manifest to the small count
        manifest = CampaignManifest.from_config(_config(count=4))
        manifest.save(store.campaign_dir(manifest.campaign_id))
        with pytest.raises(StoreMismatchError, match="beyond count"):
            store.open(_config(count=4), resume=True)

    def test_results_sorted_by_global_index(self, tmp_path):
        store = CampaignStore(tmp_path)
        opened = store.open(_config())
        for index in (3, 0, 2, 1):         # completion order != index
            opened.record(index, _result(index))
        opened.close()
        manifest = CampaignManifest.from_config(_config())
        results = store.results(manifest.campaign_id)
        assert results == [_result(index) for index in range(4)]

    def test_load_requires_completeness(self, tmp_path):
        from repro.store.store import StoreError
        store = CampaignStore(tmp_path)
        opened = store.open(_config(count=3))
        opened.record(0, _result(0))
        opened.close()
        with pytest.raises(StoreError, match="incomplete"):
            store.load(_config(count=3))

    def test_verify_flags_incomplete_and_ok(self, tmp_path):
        store = CampaignStore(tmp_path)
        opened = store.open(_config(count=3))
        campaign_id = opened.manifest.campaign_id
        opened.record(0, _result(0))
        opened.close()
        report = store.verify(campaign_id)
        assert not report.ok
        assert any("incomplete" in problem
                   for problem in report.problems)
        opened = store.open(_config(count=3), resume=True)
        opened.record(1, _result(1))
        opened.record(2, _result(2))
        opened.close()
        report = store.verify(campaign_id)
        assert report.ok and report.records == 3

    def test_export_matches_plain_dump(self, tmp_path):
        from repro.analysis.export import load_results
        store = CampaignStore(tmp_path / "store")
        opened = store.open(_config(count=4))
        for index in range(4):
            opened.record(index, _result(index))
        opened.close()
        out = tmp_path / "out.jsonl"
        assert store.export(opened.manifest.campaign_id, out) == 4
        assert load_results(str(out)) == [_result(index)
                                          for index in range(4)]

    def test_ls_lists_many_campaigns(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.open(_config()).close()
        store.open(_config(kind=CampaignKind.CODE)).close()
        store.open(_config(arch="ppc")).close()
        assert len(store.campaign_ids()) == 3
        kinds = {manifest.kind for manifest in store.campaigns()}
        assert kinds == {"data", "code"}


class TestStudyFromStore:
    def test_study_loads_and_renders_off_disk(self, tmp_path,
                                              x86_context, ppc_context):
        from repro.core import Study, StudyConfig
        config = StudyConfig(seed=0, ops=36, store=str(tmp_path / "s"),
                             overrides={
                                 arch: {CampaignKind.DATA: 10,
                                        CampaignKind.STACK: 10}
                                 for arch in ("x86", "ppc")})
        study = Study(config)
        for arch in ("x86", "ppc"):
            study.run_campaign(arch, CampaignKind.DATA)
            study.run_campaign(arch, CampaignKind.STACK)
        # a fresh Study streams the journals back and renders the
        # same tables/figures — no injection, bit-identical results
        loaded = Study(config).load(
            kinds=(CampaignKind.DATA, CampaignKind.STACK))
        assert loaded.results == study.results
        assert loaded.render_table("x86") == study.render_table("x86")
        assert loaded.render_figure(6) == study.render_figure(6)

    def test_load_without_store_is_an_error(self):
        from repro.core import Study, StudyConfig
        with pytest.raises(ValueError, match="no store"):
            Study(StudyConfig()).load_campaign("x86", CampaignKind.DATA)


class TestCollectorReset:
    """Regression: collector state must not leak between campaigns."""

    def test_consecutive_campaigns_do_not_accumulate(self, x86_context):
        config = _config(count=12)
        first = Campaign(config, x86_context).run()
        after_first = x86_context.collector.count
        second = Campaign(config, x86_context).run()
        # same config, same context: identical records, not 2x
        assert x86_context.collector.count == after_first
        assert second.results == first.results
        # and the aggregate covers every delivered crash dump
        known = sum(1 for result in second.results
                    if result.outcome is Outcome.CRASH_KNOWN)
        assert x86_context.collector.count >= known

    def test_study_campaigns_reset_per_campaign(self, x86_context):
        from repro.core import Study, StudyConfig
        stack_config = _config(count=10, kind=CampaignKind.STACK)
        Campaign(stack_config, x86_context).run()
        standalone_count = x86_context.collector.count
        study = Study(StudyConfig(seed=0, ops=36, overrides={
            "x86": {CampaignKind.DATA: 10, CampaignKind.STACK: 10}}))
        study.run_campaign("x86", CampaignKind.DATA)
        study.run_campaign("x86", CampaignKind.STACK)
        # the stack campaign reset the shared context's collector, so
        # the aggregate equals a standalone stack campaign's — the
        # data campaign's records did not leak in
        assert x86_context.collector.count == standalone_count


class TestConcurrentReaders:
    """One writer appending, many readers replaying: every read is a
    consistent prefix.  ``replay(truncate=False)`` is the service's
    read path — it must tolerate (and never repair) a half-written
    tail while the writer still owns the file."""

    def test_reader_sees_prefix_past_inflight_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        results = [(index, _result(index)) for index in range(5)]
        with Journal(path) as journal:
            for index, result in results:
                journal.append(index, result)
        intact = path.read_bytes()
        # a writer mid-append: half of a sixth record on disk
        torn = encode_record(5, _result(5))[:30].encode()
        path.write_bytes(intact + torn)
        report = replay(path, truncate=False)
        assert report.records == results
        assert report.truncated_bytes == len(torn)
        # the reader did NOT truncate the writer's in-flight bytes
        assert path.read_bytes() == intact + torn

    def test_store_results_while_appending(self, tmp_path):
        import threading

        store = CampaignStore(tmp_path)
        config = _config(count=120)
        campaign_id = CampaignManifest.from_config(config).campaign_id
        opened = store.open(config)
        expected = [_result(index) for index in range(120)]
        errors = []
        observed_lengths = []
        writer_done = threading.Event()

        def reader():
            try:
                last = 0
                while not writer_done.is_set() or last < 120:
                    seen = store.results(campaign_id)
                    # consistent prefix: index order, no holes, no
                    # record ever differs from what was written
                    assert seen == expected[:len(seen)]
                    assert len(seen) >= last       # monotone growth
                    last = len(seen)
                    observed_lengths.append(last)
                    if last == 120:
                        break
            except Exception as exc:   # noqa: BLE001 — re-raised below
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        for index, result in enumerate(expected):
            opened.record(index, result)
        writer_done.set()
        opened.close()
        for thread in readers:
            thread.join(60)
            assert not thread.is_alive()
        assert not errors, errors
        # the readers genuinely raced the writer (some saw partials)
        assert max(observed_lengths) == 120

    def test_open_create_false_missing_store(self, tmp_path):
        from repro.store.store import StoreError
        missing = tmp_path / "never-created"
        with pytest.raises(StoreError, match="no store directory"):
            CampaignStore(missing, create=False)
        assert not missing.exists()    # create=False really is no-op

    def test_results_digest_is_order_and_content_bound(self):
        from repro.store.codec import results_digest
        results = [_result(index) for index in range(6)]
        digest = results_digest(results)
        assert digest == results_digest(list(results))   # deterministic
        assert digest != results_digest(results[::-1])   # order matters
        assert digest != results_digest(results[:-1])    # content matters
