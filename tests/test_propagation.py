"""Cross-subsystem propagation analysis tests (paper Figure 7)."""

import pytest

from repro.analysis.propagation import (
    PropagationEdge, code_propagation, propagation_rate,
    render_propagation,
)
from repro.injection.campaign import run_campaign
from repro.injection.outcomes import CampaignKind, InjectionResult, Outcome
from repro.injection.targets import CodeTarget


class TestEdgeMath:
    def test_rate(self):
        edges = [PropagationEdge("mm", "mm", 6, 100),
                 PropagationEdge("mm", "net", 2, 13_116_444)]
        assert propagation_rate(edges) == pytest.approx(25.0)
        assert propagation_rate([]) == 0.0

    def test_render_marks_crossings(self):
        text = render_propagation([
            PropagationEdge("mm", "net", 1, 13_116_444)])
        assert "propagated" in text
        assert "13116444" in text


class TestSynthetic:
    def test_builds_edges_from_results(self, x86_image):
        info = x86_image.functions["free_pages_ok"]
        target = CodeTarget("free_pages_ok", info.insn_addrs[0], 2, 1)
        results = [InjectionResult(
            arch="x86", kind=CampaignKind.CODE, target=target,
            outcome=Outcome.CRASH_KNOWN, activation_cycles=0,
            crash_cycles=13_116_444, function="alloc_skb",
            subsystem="net")]
        edges = code_propagation(results, x86_image)
        assert edges == [PropagationEdge("mm", "net", 1, 13_116_444)]
        assert propagation_rate(edges) == 100.0


class TestMeasured:
    def test_code_campaign_produces_edges(self, x86_context):
        outcome = run_campaign("x86", CampaignKind.CODE, count=40,
                               seed=17, ops=36)
        edges = code_propagation(outcome.results,
                                 x86_context.base_machine.image)
        assert edges, "expected at least one crash edge"
        text = render_propagation(edges)
        assert "injected in" in text
