"""Static analysis pinned against recorded digests.

``tests/data/static_digests.json`` (format 2) records, for each arch,
the full histogram (text size, instruction/function/block counts,
unreachable blocks, corruption-class counts, predicted-outcome
counts, taint verdict/sink counts, taint-prunable count), its sha256,
and the prediction-accuracy floor on the deterministic gate campaign
— the static counterpart of ``campaign_digests.json``.  Any decoder,
CFG, liveness, predictor, or taint-engine change that moves a single
bit's classification fails here and forces a deliberate re-pin
(``scripts/regen_static_digests.py``, which refuses to pin an
accuracy regression).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

DIGEST_PATH = Path(__file__).parent / "data" / "static_digests.json"
DIGESTS = json.loads(DIGEST_PATH.read_text())


@pytest.mark.parametrize("fixture", ["x86_static", "ppc_static"])
def test_matches_recorded_digest(fixture, request):
    _cfg, _live, report = request.getfixturevalue(fixture)
    recorded = DIGESTS[report.arch]
    assert report.histogram() == recorded["histogram"]
    assert report.digest() == recorded["sha256"]


@pytest.mark.parametrize("fixture", ["x86_static", "ppc_static"])
def test_no_unreachable_block_regression(fixture, request):
    """kcc emits no dead blocks today; a CFG change that suddenly
    reports unreachable code is a reachability bug, not dead code."""
    _cfg, _live, report = request.getfixturevalue(fixture)
    pinned = DIGESTS[report.arch]["histogram"]["unreachable_block_count"]
    assert report.unreachable_block_count <= pinned


def test_format_and_floors_recorded():
    assert DIGESTS["version"] == 2
    for arch in ("x86", "ppc"):
        entry = DIGESTS[arch]
        assert entry["histogram"]["taint_masked"] >= 0
        assert set(entry["histogram"]["verdict_counts"]) == \
            {"sink", "dead", "escape", "none"}
        assert 0.0 < entry["accuracy_floor"] < 1.0


@pytest.mark.parametrize("fixture,ctx", [
    ("x86_static", "x86_context"), ("ppc_static", "ppc_context")])
def test_accuracy_beats_pinned_floor(fixture, ctx, request):
    """The taint-aware predictor must stay *strictly better* than the
    calibrated-rule baseline it replaced, on the exact deterministic
    campaign the floor was pinned against.  Deterministic end to end,
    so this is a regression pin, not a statistic."""
    from repro.analysis.validate_static import validate_code_campaign
    from repro.injection.campaign import Campaign, CampaignConfig
    from repro.injection.outcomes import CampaignKind

    _cfg, _live, report = request.getfixturevalue(fixture)
    context = request.getfixturevalue(ctx)
    gate = DIGESTS["gate_campaign"]
    config = CampaignConfig(arch=report.arch, kind=CampaignKind.CODE,
                            count=gate["count"], seed=gate["seed"],
                            ops=gate["ops"])
    outcome = Campaign(config, context).run()
    validation = validate_code_campaign(outcome.results, report)
    floor = DIGESTS[report.arch]["accuracy_floor"]
    assert validation.manifestation_accuracy is not None
    assert validation.manifestation_accuracy > floor, \
        validation.render()
