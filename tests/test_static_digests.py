"""Static analysis pinned against recorded digests.

``tests/data/static_digests.json`` records, for each arch, the full
histogram (text size, instruction/function/block counts, unreachable
blocks, corruption-class counts, predicted-outcome counts) and its
sha256 — the static counterpart of ``campaign_digests.json``.  Any
decoder, CFG, liveness, or predictor change that moves a single bit's
classification fails here and forces a deliberate re-pin.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

DIGEST_PATH = Path(__file__).parent / "data" / "static_digests.json"
DIGESTS = json.loads(DIGEST_PATH.read_text())


@pytest.mark.parametrize("fixture", ["x86_static", "ppc_static"])
def test_matches_recorded_digest(fixture, request):
    _cfg, _live, report = request.getfixturevalue(fixture)
    recorded = DIGESTS[report.arch]
    assert report.histogram() == recorded["histogram"]
    assert report.digest() == recorded["sha256"]


@pytest.mark.parametrize("fixture", ["x86_static", "ppc_static"])
def test_no_unreachable_block_regression(fixture, request):
    """kcc emits no dead blocks today; a CFG change that suddenly
    reports unreachable code is a reachability bug, not dead code."""
    _cfg, _live, report = request.getfixturevalue(fixture)
    pinned = DIGESTS[report.arch]["histogram"]["unreachable_block_count"]
    assert report.unreachable_block_count <= pinned
