"""Unit + property tests for the sparse memory and address space."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.faults import AccessKind, MemoryFault
from repro.isa.memory import (
    AddressSpace, MemoryError_, PAGE_SIZE, PhysicalMemory, Region,
)

addr32 = st.integers(min_value=0, max_value=0xFFFFFFF0)


class TestPhysicalMemory:
    def test_zero_filled(self):
        mem = PhysicalMemory()
        assert mem.read(0x1234, 8) == bytes(8)
        assert mem.read_u32(0xDEAD0000, True) == 0

    def test_write_read_roundtrip(self):
        mem = PhysicalMemory()
        mem.write(0x1000, b"hello world")
        assert mem.read(0x1000, 11) == b"hello world"

    def test_cross_page_write(self):
        mem = PhysicalMemory()
        addr = PAGE_SIZE - 3
        mem.write(addr, b"abcdef")
        assert mem.read(addr, 6) == b"abcdef"

    def test_cross_page_u32(self):
        mem = PhysicalMemory()
        addr = PAGE_SIZE - 2
        mem.write_u32(addr, 0x11223344, True)
        assert mem.read_u32(addr, True) == 0x11223344
        mem.write_u32(addr, 0xAABBCCDD, False)
        assert mem.read_u32(addr, False) == 0xAABBCCDD

    def test_endianness(self):
        mem = PhysicalMemory()
        mem.write_u32(0, 0x12345678, True)
        assert mem.read(0, 4) == b"\x78\x56\x34\x12"
        mem.write_u32(0, 0x12345678, False)
        assert mem.read(0, 4) == b"\x12\x34\x56\x78"
        mem.write_u16(8, 0xBEEF, False)
        assert mem.read(8, 2) == b"\xbe\xef"

    @given(addr32, st.integers(min_value=0, max_value=0xFFFFFFFF),
           st.booleans())
    def test_u32_roundtrip(self, addr, value, little):
        mem = PhysicalMemory()
        mem.write_u32(addr, value, little)
        assert mem.read_u32(addr, little) == value

    @given(addr32, st.integers(min_value=0, max_value=0xFFFF),
           st.booleans())
    def test_u16_roundtrip(self, addr, value, little):
        mem = PhysicalMemory()
        mem.write_u16(addr, value, little)
        assert mem.read_u16(addr, little) == value

    @given(addr32, st.binary(min_size=1, max_size=64))
    def test_raw_roundtrip(self, addr, data):
        mem = PhysicalMemory()
        mem.write(addr, data)
        assert mem.read(addr, len(data)) == data

    def test_resident_accounting(self):
        mem = PhysicalMemory()
        assert mem.resident_bytes() == 0
        mem.write_u8(0, 1)
        mem.write_u8(10 * PAGE_SIZE, 1)
        assert mem.resident_bytes() == 2 * PAGE_SIZE


class TestAddressSpace:
    def _aspace(self):
        mem = PhysicalMemory()
        aspace = AddressSpace(mem)
        aspace.map_region(Region(0x1000, 0x1000, "rx", "text"))
        aspace.map_region(Region(0x4000, 0x2000, "rw", "data"))
        return aspace

    def test_allowed_access(self):
        aspace = self._aspace()
        aspace.check(0x1000, 4, AccessKind.READ)
        aspace.check(0x1FFC, 4, AccessKind.FETCH)
        aspace.check(0x4000, 4, AccessKind.WRITE)

    def test_unmapped_faults(self):
        aspace = self._aspace()
        with pytest.raises(MemoryFault) as exc:
            aspace.check(0x3000, 4, AccessKind.READ)
        assert exc.value.reason is MemoryFault.Reason.UNMAPPED

    def test_end_of_region_overrun(self):
        aspace = self._aspace()
        with pytest.raises(MemoryFault):
            aspace.check(0x1FFE, 4, AccessKind.READ)

    def test_protection_faults(self):
        aspace = self._aspace()
        with pytest.raises(MemoryFault) as exc:
            aspace.check(0x1000, 4, AccessKind.WRITE)
        assert exc.value.reason is MemoryFault.Reason.PROTECTION
        with pytest.raises(MemoryFault) as exc:
            aspace.check(0x4000, 4, AccessKind.FETCH)
        assert exc.value.reason is MemoryFault.Reason.PROTECTION

    def test_last_region_cache_does_not_leak_permissions(self):
        aspace = self._aspace()
        aspace.check(0x4000, 4, AccessKind.WRITE)    # caches "data"
        with pytest.raises(MemoryFault):
            aspace.check(0x1000, 4, AccessKind.WRITE)  # different region

    def test_overlap_rejected(self):
        aspace = self._aspace()
        with pytest.raises(MemoryError_):
            aspace.map_region(Region(0x1800, 0x1000, "rw", "overlap"))
        with pytest.raises(MemoryError_):
            aspace.map_region(Region(0x0F00, 0x200, "rw", "overlap2"))

    def test_unmap(self):
        aspace = self._aspace()
        aspace.unmap_region("data")
        with pytest.raises(MemoryFault):
            aspace.check(0x4000, 4, AccessKind.READ)
        with pytest.raises(MemoryError_):
            aspace.unmap_region("data")

    def test_translation_off(self):
        aspace = self._aspace()
        aspace.map_region(Region(0xC0000000, 0x1000, "rw", "khigh"))
        aspace.check(0xC0000000, 4, AccessKind.READ)
        aspace.translation_on = False
        with pytest.raises(MemoryFault) as exc:
            aspace.check(0xC0000000, 4, AccessKind.READ)
        assert exc.value.reason is MemoryFault.Reason.NO_TRANSLATION
        # low addresses still work
        aspace.check(0x4000, 4, AccessKind.READ)

    def test_find_region(self):
        aspace = self._aspace()
        assert aspace.find_region(0x4100).name == "data"
        assert aspace.find_region(0x9000) is None
        assert aspace.region_by_name("text").start == 0x1000
