"""Statistics helper tests (Wilson intervals, two-proportion z)."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    activation_interval, manifestation_interval, proportions_differ, two_proportion_z, wilson,
)
from repro.analysis.tables import CampaignRow
from repro.injection.outcomes import CampaignKind


class TestWilson:
    def test_known_value(self):
        # classic check: 8/10 -> Wilson 95% ~ [0.490, 0.943]
        interval = wilson(8, 10)
        assert interval.low == pytest.approx(0.490, abs=0.005)
        assert interval.high == pytest.approx(0.943, abs=0.005)

    def test_extremes_stay_in_unit_interval(self):
        assert wilson(0, 10).low == pytest.approx(0.0, abs=1e-12)
        assert wilson(10, 10).high == pytest.approx(1.0, abs=1e-12)
        assert wilson(0, 10).high > 0.0      # never degenerate

    def test_zero_trials(self):
        interval = wilson(0, 0)
        assert (interval.low, interval.high) == (0.0, 1.0)
        assert interval.point == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson(5, 3)
        with pytest.raises(ValueError):
            wilson(-1, 3)

    @given(st.integers(min_value=0, max_value=500),
           st.integers(min_value=1, max_value=500))
    def test_interval_contains_point(self, successes, extra):
        trials = successes + extra
        interval = wilson(successes, trials)
        assert interval.low <= interval.point <= interval.high
        assert 0.0 <= interval.low <= interval.high <= 1.0

    @given(st.integers(min_value=1, max_value=200))
    def test_interval_narrows_with_n(self, n):
        small = wilson(n, 2 * n)
        large = wilson(10 * n, 20 * n)
        assert (large.high - large.low) <= (small.high - small.low)

    def test_str(self):
        assert "[" in str(wilson(8, 10))


class TestTwoProportion:
    def test_clearly_different(self):
        # 56% of 2973 vs 21% of 1203 (the paper's stack manifestation)
        assert proportions_differ(1665, 2973, 253, 1203)

    def test_identical_is_zero(self):
        assert two_proportion_z(10, 100, 10, 100) == 0.0

    def test_small_samples_not_significant(self):
        assert not proportions_differ(3, 10, 2, 10)

    def test_degenerate_inputs(self):
        assert two_proportion_z(0, 0, 5, 10) == 0.0
        assert two_proportion_z(0, 10, 0, 10) == 0.0


class TestRowAdapters:
    def _row(self, activated=50):
        return CampaignRow(kind=CampaignKind.STACK, injected=100,
                           activated=activated, not_manifested=20,
                           fsv=2, crash_known=20, hang_unknown=8)

    def test_manifestation_interval(self):
        interval = manifestation_interval(self._row())
        assert interval.successes == 30
        assert interval.trials == 50
        assert interval.low < 0.6 < interval.high

    def test_activation_interval(self):
        interval, observable = activation_interval(self._row())
        assert observable
        assert interval.point == pytest.approx(0.5)

    def test_register_na(self):
        row = CampaignRow(kind=CampaignKind.REGISTER, injected=100,
                          activated=None, not_manifested=90, fsv=0,
                          crash_known=7, hang_unknown=3)
        _, observable = activation_interval(row)
        assert not observable
