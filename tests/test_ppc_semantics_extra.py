"""Additional PPC instruction semantics: carry chain, count-leading-
zeros, sign extension (all reachable by corrupted code)."""

import pytest

from repro.isa.memory import Region
from repro.ppc.assembler import dform, xform
from repro.ppc.cpu import PPCCPU
from repro.ppc.decoder import decode, exec_illegal

TEXT = 0xC0100000


def run_words(words, setup=None) -> PPCCPU:
    cpu = PPCCPU()
    cpu.aspace.map_region(Region(TEXT, 0x1000, "rx", "text"))
    raw = b"".join(word.to_bytes(4, "big") for word in words)
    cpu.mem.write(TEXT, raw)
    cpu.pc = TEXT
    if setup:
        setup(cpu)
    for _ in range(len(words)):
        cpu.step()
    return cpu


class TestCarryChain:
    def test_addic_sets_carry(self):
        # addic r3, r4, 1 with r4 = 0xFFFFFFFF
        def setup(cpu):
            cpu.gpr[4] = 0xFFFFFFFF
        cpu = run_words([dform(12, 3, 4, 1)], setup)
        assert cpu.gpr[3] == 0
        assert cpu.xer & 0x20000000

    def test_adde_consumes_carry(self):
        # addic r3,r4,1 (carry out) ; adde r5,r6,r7
        def setup(cpu):
            cpu.gpr[4] = 0xFFFFFFFF
            cpu.gpr[6] = 10
            cpu.gpr[7] = 20
        cpu = run_words([dform(12, 3, 4, 1),
                         xform(31, 5, 6, 7, 138)], setup)
        assert cpu.gpr[5] == 31

    def test_addze(self):
        def setup(cpu):
            cpu.gpr[4] = 0xFFFFFFFF
            cpu.gpr[6] = 100
        cpu = run_words([dform(12, 3, 4, 1),
                         xform(31, 5, 6, 0, 202)], setup)
        assert cpu.gpr[5] == 101

    def test_subfic(self):
        # subfic r3, r4, 50 -> 50 - r4
        def setup(cpu):
            cpu.gpr[4] = 20
        cpu = run_words([dform(8, 3, 4, 50)], setup)
        assert cpu.gpr[3] == 30
        assert cpu.xer & 0x20000000       # no borrow


class TestBitOps:
    def test_cntlzw(self):
        def setup(cpu):
            cpu.gpr[3] = 0x00010000
        cpu = run_words([xform(31, 3, 4, 0, 26)], setup)
        assert cpu.gpr[4] == 15

    def test_cntlzw_zero(self):
        cpu = run_words([xform(31, 3, 4, 0, 26)])
        assert cpu.gpr[4] == 32

    def test_extsb(self):
        def setup(cpu):
            cpu.gpr[3] = 0x80
        cpu = run_words([xform(31, 3, 4, 0, 954)], setup)
        assert cpu.gpr[4] == 0xFFFFFF80

    def test_extsh(self):
        def setup(cpu):
            cpu.gpr[3] = 0x00008001
        cpu = run_words([xform(31, 3, 4, 0, 922)], setup)
        assert cpu.gpr[4] == 0xFFFF8001


class TestDecodeCoverage:
    @pytest.mark.parametrize("word,mnemonic", [
        (dform(8, 3, 4, 50), "subfic"),
        (xform(31, 5, 6, 7, 138), "adde"),
        (xform(31, 5, 6, 0, 202), "addze"),
        (xform(31, 3, 4, 0, 26), "cntlzw"),
        (xform(31, 3, 4, 0, 954), "extsb"),
        (xform(31, 3, 4, 0, 922), "extsh"),
    ])
    def test_decodes(self, word, mnemonic):
        instr = decode(word)
        assert instr.execute is not exec_illegal
        assert instr.mnemonic == mnemonic
