"""Workload, probe, and profiler tests."""

import pytest

from repro.machine.machine import KSTACK_SIZE
from repro.workload.driver import UnixBenchDriver, run_clean_workload
from repro.workload.profiler import profile_kernel
from repro.workload.programs import collect_fsv, default_mix


class TestCleanRuns:
    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_clean_run_is_fail_silent(self, arch):
        result = run_clean_workload(arch, seed=3, ops=24)
        assert result.completed_ops == 24
        assert not result.fail_silence_violated
        assert result.syscalls > 24          # ops issue >=1 syscall

    def test_determinism(self):
        a = run_clean_workload("ppc", seed=9, ops=16)
        b = run_clean_workload("ppc", seed=9, ops=16)
        assert a.syscalls == b.syscalls
        assert a.timer_ticks == b.timer_ticks


class TestFSVDetection:
    def test_detects_corrupted_file_data(self, booted_x86):
        machine = booted_x86.fork()
        driver = UnixBenchDriver(machine, seed=0)
        driver.setup()
        # corrupt the buffer cache behind the kernel's back (every
        # buffer slot, so the one caching the test file is hit)
        info = machine.image.globals["buffer_data"]
        for slot in range(16):
            offset = info.addr + slot * 256 + 10
            machine.cpu.mem.write_u8(
                offset, machine.cpu.mem.read_u8(offset) ^ 0xFF)
        result = driver.run(30)
        assert result.fail_silence_violated

    def test_detects_wrong_return_value(self, booted_ppc):
        machine = booted_ppc.fork()
        driver = UnixBenchDriver(machine, seed=0)
        driver.setup()
        # shrink an inode so reads come back short
        machine.write_global("inode_sizes", 8, index=0)
        result = driver.run(12)
        assert result.fail_silence_violated


class TestProbe:
    @pytest.mark.parametrize("context_name",
                             ["x86_context", "ppc_context"])
    def test_probe_matches_base_machine(self, context_name, request):
        context = request.getfixturevalue(context_name)
        assert context.probe.boot_instret == \
            context.base_machine.cpu.instret
        assert not context.probe.fsv_clean
        assert context.probe.total_instret > context.probe.boot_instret

    def test_first_access_after(self, x86_context):
        probe = x86_context.probe
        jiffies = x86_context.base_machine.global_addr("jiffies")
        hit = probe.first_access_after(probe.boot_instret, jiffies, 4)
        assert hit is not None
        # beyond the end of the run: nothing
        assert probe.first_access_after(probe.total_instret + 1,
                                        jiffies, 4) is None

    def test_cold_table_never_accessed(self, x86_context):
        probe = x86_context.probe
        cold = x86_context.base_machine.global_addr("console_font")
        assert probe.first_access_after(0, cold + 100, 1) is None

    def test_stack_depth_ratio_g4_over_p4(self, x86_context,
                                          ppc_context):
        """The G4's runtime stacks are about twice the P4's (paper
        Section 5.1)."""
        def mean_depth(context):
            machine = context.base_machine
            allocations = {
                pid: (task.stack_base, task.stack_base + KSTACK_SIZE)
                for pid, task in machine.tasks.items()}
            depths = context.probe.measured_stack_depth(allocations)
            used = [d for d in depths.values() if d < KSTACK_SIZE]
            return sum(used) / len(used)

        ratio = mean_depth(ppc_context) / mean_depth(x86_context)
        assert 1.4 < ratio < 4.0

    def test_executed_pcs_inside_text(self, ppc_context):
        image = ppc_context.base_machine.image
        inside = [pc for pc in ppc_context.probe.executed_pcs
                  if image.text_base <= pc < image.text_end]
        assert len(inside) > 0.95 * len(ppc_context.probe.executed_pcs)


class TestProfiler:
    @pytest.mark.parametrize("arch", ["x86", "ppc"])
    def test_hot_functions_cover(self, arch):
        profile = profile_kernel(arch, seed=0, ops=16)
        hot = profile.hot_functions(0.95)
        total = sum(profile.counts.values())
        covered = sum(profile.counts[name] for name, _ in hot
                      if name in profile.counts)
        assert covered / total >= 0.95
        assert "memcpy" in dict(hot)          # the workload's hottest

    def test_coverage_parameter(self):
        profile = profile_kernel("ppc", seed=0, ops=12)
        small = profile.hot_functions(0.5)
        large = profile.hot_functions(0.999)
        assert len(large) >= len(small)


class TestPrograms:
    def test_default_mix_shapes(self):
        mix = default_mix(0)
        assert len(mix) == 3
        names = {program.name for program in mix}
        assert "fstime" in names

    def test_fsv_collection_includes_submixes(self, booted_x86):
        machine = booted_x86.fork()
        programs = default_mix(0)
        for program in programs:
            program._fsv("x", "y")
        events = collect_fsv(programs)
        assert len(events) >= 3
