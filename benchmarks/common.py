"""Shared benchmark plumbing: machine-readable result emission.

Every bench that prints a human-readable measurement can also append it
to a JSON Lines trajectory file — one self-describing object per line,
append-only, so script-mode gates and pytest-benchmark suites can share
one file across a CI run without read-modify-write races.

* script-mode benches (``python benchmarks/bench_*.py``) take
  ``--json PATH`` via :func:`add_json_argument`;
* pytest-benchmark suites honor the ``REPRO_BENCH_JSON`` environment
  variable instead, since pytest owns their command line.

Each row carries the bench name, the measured metrics, and enough
host context (timestamp, core count) to chart a performance trajectory
across commits.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

ENV_VAR = "REPRO_BENCH_JSON"


def add_json_argument(parser) -> None:
    """Attach the shared ``--json PATH`` option to a script-mode bench."""
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="append one JSON line per measurement to PATH "
             f"(pytest-mode benches use ${ENV_VAR} instead)")


def env_json_path() -> Optional[Path]:
    """Trajectory path for pytest-mode benches (``None`` = don't emit)."""
    path = os.environ.get(ENV_VAR)
    return Path(path) if path else None


def emit(path: Optional[Path], bench: str, **metrics) -> dict:
    """Record one measurement row; append it to *path* when given.

    Returns the row either way, so callers can also print or assert on
    exactly what was (or would have been) written.
    """
    row = {"bench": bench, "unix_time": round(time.time(), 3),
           "cpus": os.cpu_count(), **metrics}
    if path is not None:
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return row
