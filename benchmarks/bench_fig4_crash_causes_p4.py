"""Figure 4: Overall Distribution of Crash Causes on the P4.

Union of all P4 campaigns; paper vs measured side by side.  The timed
body classifies the accumulated crash reports (the off-line analysis
step the paper runs over its crash dump database).
"""

from repro.analysis.figures import crash_cause_percentages


def test_bench_fig4(benchmark, bench_study):
    results = bench_study.results_for("x86")

    percentages = benchmark(crash_cause_percentages, results)
    assert percentages, "expected some known crashes"

    print()
    print(bench_study.render_figure(4))
