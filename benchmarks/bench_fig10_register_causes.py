"""Figure 10: Crash Causes for System Register Injection."""

from repro.injection.outcomes import CampaignKind
from benchmarks.conftest import run_slice


def test_bench_fig10(benchmark, bench_study, bench_contexts):
    result = benchmark.pedantic(
        run_slice, args=("x86", CampaignKind.REGISTER, 20,
                         bench_contexts["x86"]),
        rounds=1, iterations=1)
    assert result.injected == 20

    print()
    print(bench_study.render_figure(10))
