"""Figure 12: Crash Causes for Kernel Data Injection."""

from repro.injection.outcomes import CampaignKind
from benchmarks.conftest import run_slice


def test_bench_fig12(benchmark, bench_study, bench_contexts):
    result = benchmark.pedantic(
        run_slice, args=("ppc", CampaignKind.DATA, 100,
                         bench_contexts["ppc"]),
        rounds=1, iterations=1)
    assert result.injected == 100

    print()
    print(bench_study.render_figure(12))
