"""Table 1: Experiment Setup Summary.

Prints the paper's setup table alongside this reproduction's simulated
equivalents, and benchmarks what 'setting up a target machine' costs
here: building the kernel image and booting a machine for each
platform.
"""

import pytest

from repro.core.config import EXPERIMENT_SETUP
from repro.kernel.build import build_kernel
from repro.machine.machine import Machine


def _print_table():
    print()
    print("=== Table 1: Experiment Setup Summary ===")
    header = (f"{'Platform':<6} {'Processor':<22} {'GHz':>4} "
              f"{'MB':>4} {'Distribution':<14} {'Kernel':<8} "
              f"{'Compiler':<10}")
    print(header)
    for arch, row in EXPERIMENT_SETUP.items():
        print(f"{arch:<6} {row['processor']:<22} "
              f"{row['cpu_clock_ghz']:>4} {row['memory_mb']:>4} "
              f"{row['distribution']:<14} {row['linux_kernel']:<8} "
              f"{row['compiler']:<10}")
    for arch in ("x86", "ppc"):
        image = build_kernel(arch)
        print(f"  simulated {arch}: text {len(image.text_bytes)} B, "
              f"data {len(image.data_bytes)} B, "
              f"{len(image.functions)} kernel functions")


@pytest.mark.parametrize("arch", ["x86", "ppc"])
def test_bench_machine_boot(benchmark, arch):
    build_kernel(arch)                      # image build outside timing

    def boot():
        machine = Machine(arch)
        machine.boot()
        return machine

    machine = benchmark(boot)
    assert machine.booted
    _print_table()
