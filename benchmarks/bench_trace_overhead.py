"""Trace hook overhead: the disabled hot path must stay within 5 %.

The flight recorder's cost model (``repro.trace.recorder``) promises
that a machine with no recorder attached pays **one flag test per
hot-path call** — nothing else.  This benchmark holds the promise to a
number:

* **disabled vs guard-free baseline** (enforced) — the guard-free
  baseline is manufactured from the real CPU methods by stripping the
  ``tracer`` guard lines from their source and re-compiling, so it is
  always the current code minus exactly the hooks.  An end-to-end
  campaign on the stock (disabled-tracer) CPUs must reach >= 95 % of
  the baseline's injections/sec;
* **armed ring / full modes** (informational) — what tracing costs
  when you actually turn it on.

Scale with ``REPRO_BENCH_SCALE`` like the other benchmarks.
"""

from __future__ import annotations

import inspect
import os
import sys
import textwrap
import time
from contextlib import contextmanager

import pytest

from repro.injection.campaign import (
    Campaign, CampaignConfig, CampaignContext,
)
from repro.injection.injector import InjectionRun
from repro.injection.outcomes import CampaignKind
from repro.ppc.cpu import PPCCPU
from repro.trace.recorder import TraceRecorder
from repro.x86.cpu import X86CPU

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
COUNT = max(16, int(32 * _SCALE))
ROUNDS = 3
MAX_DISABLED_OVERHEAD = 0.05           # the <= 5 % bound

#: per-arch campaign kinds chosen so a good share of experiments
#: survive screening and actually run the CPU hot path
_KINDS = {"x86": CampaignKind.STACK, "ppc": CampaignKind.CODE}

#: the hooked hot-path methods per CPU class
_HOT_METHODS = {
    X86CPU: ("step", "load", "store"),
    PPCCPU: ("step", "load", "store", "set_spr"),
}


def _guard_free(cls, name):
    """Recompile ``cls.<name>`` with every ``tracer`` line removed.

    Every hook site is a two-line ``if self.tracer is not None:`` +
    one-line call, and both lines contain the string ``tracer``, so
    line-stripping the source reproduces the pre-hook method exactly.
    """
    source = textwrap.dedent(inspect.getsource(cls.__dict__[name]))
    kept = [line for line in source.splitlines()
            if "tracer" not in line]
    assert len(kept) < len(source.splitlines()), (
        f"{cls.__name__}.{name} has no tracer guard to strip")
    namespace: dict = {}
    exec(compile("\n".join(kept),
                 f"<guard-free {cls.__name__}.{name}>", "exec"),
         vars(sys.modules[cls.__module__]), namespace)
    return namespace[name]


@contextmanager
def _guard_free_cpus():
    """Temporarily replace the hooked methods with guard-free twins."""
    originals = {(cls, name): cls.__dict__[name]
                 for cls, names in _HOT_METHODS.items()
                 for name in names}
    try:
        for (cls, name) in originals:
            setattr(cls, name, _guard_free(cls, name))
        yield
    finally:
        for (cls, name), method in originals.items():
            setattr(cls, name, method)


def _campaign_time(arch: str, context) -> float:
    config = CampaignConfig(arch=arch, kind=_KINDS[arch],
                            count=COUNT, seed=0, ops=36)
    start = time.perf_counter()
    result = Campaign(config, context).run()
    elapsed = time.perf_counter() - start
    assert result.injected == COUNT
    return elapsed


@pytest.mark.parametrize("arch", ["x86", "ppc"])
def test_bench_disabled_overhead(benchmark, arch):
    context = CampaignContext.get(arch, seed=0, ops=36)
    _campaign_time(arch, context)      # warm the context and caches
    state = {"baseline": [], "disabled": []}

    def run_once():
        # alternate per round so drift hits both variants equally
        for _ in range(ROUNDS):
            with _guard_free_cpus():
                state["baseline"].append(_campaign_time(arch, context))
            state["disabled"].append(_campaign_time(arch, context))

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    baseline = min(state["baseline"])
    disabled = min(state["disabled"])
    overhead = disabled / baseline - 1.0
    print(f"\n[{arch}] {COUNT} injections: guard-free {baseline:.3f}s, "
          f"disabled-tracer {disabled:.3f}s "
          f"({overhead:+.1%} overhead, bound "
          f"{MAX_DISABLED_OVERHEAD:.0%})")
    assert overhead <= MAX_DISABLED_OVERHEAD, (
        f"{arch}: disabled-tracer hot path costs {overhead:.1%} over "
        f"the guard-free baseline (bound {MAX_DISABLED_OVERHEAD:.0%})")


@pytest.mark.parametrize("arch", ["x86", "ppc"])
def test_bench_armed_modes(benchmark, arch):
    """What arming the recorder costs (informational, no bound)."""
    context = CampaignContext.get(arch, seed=0, ops=36)
    config = CampaignConfig(arch=arch, kind=_KINDS[arch],
                            count=COUNT, seed=0, ops=36)
    campaign = Campaign(config, context)
    targets = campaign.generate_targets()
    live = [index for index, target in enumerate(targets)
            if not campaign._screen_not_activated(target)]
    assert live, f"{arch}/{_KINDS[arch].value}: everything screened"

    def run_mode(mode):
        start = time.perf_counter()
        emitted = 0
        for index in live:
            run = InjectionRun(campaign.spec_for(index, targets[index]))
            if mode is not None:
                recorder = TraceRecorder(mode=mode)
                run.machine.attach_tracer(recorder)
            run.execute()
            if mode is not None:
                run.machine.detach_tracer()
                emitted += recorder.total_emitted
        return time.perf_counter() - start, emitted

    state = {}

    def run_once():
        state["off"], _ = run_mode(None)
        state["ring"], state["ring_events"] = run_mode("ring")
        state["full"], state["full_events"] = run_mode("full")

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert state["full_events"] > 0
    print(f"\n[{arch}] {len(live)} live experiments: "
          f"off {state['off']:.3f}s, "
          f"ring {state['ring']:.3f}s "
          f"({state['ring'] / state['off']:.1f}x, "
          f"{state['ring_events']} events), "
          f"full {state['full']:.3f}s "
          f"({state['full'] / state['off']:.1f}x, "
          f"{state['full_events']} events)")
