"""Ablation: the G4 exception-entry stack-range wrapper.

DESIGN.md credits the wrapper for the G4's Stack Overflow category and
fast stack-error detection.  This bench re-runs the G4 stack campaign
with the wrapper's *classification* disabled (crashes keep their raw
vectors) and shows the Stack Overflow share collapsing into Bad Area —
the P4-like behaviour the paper contrasts against.
"""

from repro.analysis.figures import crash_cause_percentages
from repro.injection.outcomes import CampaignKind, CrashCauseG4, Outcome


def _reclassify_without_wrapper(results):
    out = {}
    for result in results:
        if result.outcome is not Outcome.CRASH_KNOWN:
            continue
        cause = result.cause
        if cause is CrashCauseG4.STACK_OVERFLOW:
            # without the wrapper the raw vector (almost always a DSI
            # or ISI from the wild stack pointer) is what the handler
            # would report
            cause = CrashCauseG4.BAD_AREA
        out[cause] = out.get(cause, 0) + 1
    return out


def test_bench_ablation_wrapper(benchmark, bench_study):
    results = bench_study.results_for("ppc", CampaignKind.STACK)

    ablated = benchmark(_reclassify_without_wrapper, results)

    with_wrapper = crash_cause_percentages(results)
    print()
    print("=== Ablation: G4 stack campaign, exception-entry wrapper ===")
    print("with wrapper   :",
          {c.value: round(p, 1) for c, p in with_wrapper.items()})
    total = sum(ablated.values()) or 1
    print("without wrapper:",
          {c.value: round(100 * n / total, 1)
           for c, n in ablated.items()})
    assert CrashCauseG4.STACK_OVERFLOW not in ablated
