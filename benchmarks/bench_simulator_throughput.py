"""Substrate microbenchmarks: simulated instructions per second.

Not a paper figure, but the number every campaign cost scales with:
how fast each simulated processor retires the kernel workload.
"""

import pytest

from repro.machine.machine import Machine
from repro.workload.driver import UnixBenchDriver


@pytest.mark.parametrize("arch", ["x86", "ppc"])
def test_bench_workload_throughput(benchmark, arch):
    machine = Machine(arch)
    machine.boot()
    driver = UnixBenchDriver(machine, seed=0)
    driver.setup()
    base = machine.fork()

    state = {"instret": 0}

    def run_ops():
        clone = base.fork()
        clone_driver = UnixBenchDriver(clone, seed=0)
        import copy
        clone_driver.programs = copy.deepcopy(driver.programs)
        clone_driver.run(10)
        state["instret"] = clone.cpu.instret - base.cpu.instret

    benchmark.pedantic(run_ops, rounds=3, iterations=1)
    print(f"\n{arch}: ~{state['instret']} instructions per 10 ops")
