"""Substrate microbenchmarks: simulated instructions per second.

Not a paper figure, but the number every campaign cost scales with:
how fast each simulated processor retires the kernel workload — and,
since the block compiler landed, how much faster the compiled-block
core is than the single-step interpreter.

Two entry points:

* the pytest-benchmark tests below (``pytest benchmarks/``), which
  time forked-clone workload runs under both exec modes;
* a script mode used as the CI performance gate::

      PYTHONPATH=src python benchmarks/bench_simulator_throughput.py \
          --enforce-min-speedup 3.0

  which measures steady-state syscall throughput (step vs block, both
  arches, best-of-N to ride out host timing noise), prints the speedup
  table, and exits non-zero if either architecture falls below the
  floor.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time

from repro.machine.machine import Machine, MachineConfig
from repro.workload.driver import UnixBenchDriver


def _warm_machine(arch: str, exec_mode: str) -> Machine:
    machine = Machine(arch, config=MachineConfig(exec_mode=exec_mode))
    machine.boot()
    driver = UnixBenchDriver(machine, seed=0)
    driver.setup()
    driver.run(12)                      # warm caches / compile blocks
    return machine


def measure_pair(arch: str, syscalls: int = 400,
                 repeats: int = 5) -> "tuple[float, float]":
    """(step, block) steady-state throughput in retired insn/s.

    Both machines are booted and warmed through a short workload (so
    the decode and block caches are hot — steady state is what
    campaigns run in), then timed over *syscalls* kernel entries per
    repeat with the two modes interleaved, so slow host drift (thermal,
    scheduling) hits both sides alike instead of skewing the ratio.
    Best-of-*repeats* per mode; GC is paused during the timed windows.
    """
    machines = {mode: _warm_machine(arch, mode)
                for mode in ("step", "block")}
    best = {"step": 0.0, "block": 0.0}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for mode in ("step", "block"):
                machine = machines[mode]
                base = machine.cpu.instret
                start = time.perf_counter()
                for index in range(syscalls):
                    machine.syscall(1 + (index % 4))
                elapsed = time.perf_counter() - start
                rate = (machine.cpu.instret - base) / elapsed
                best[mode] = max(best[mode], rate)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best["step"], best["block"]


# ---------------------------------------------------------------------------
# pytest-benchmark entry points


def test_bench_workload_throughput(benchmark, arch, exec_mode):
    machine = Machine(arch, config=MachineConfig(exec_mode=exec_mode))
    machine.boot()
    driver = UnixBenchDriver(machine, seed=0)
    driver.setup()
    base = machine.fork()

    state = {"instret": 0}

    def run_ops():
        clone = base.fork()
        clone_driver = UnixBenchDriver(clone, seed=0)
        import copy
        clone_driver.programs = copy.deepcopy(driver.programs)
        clone_driver.run(10)
        state["instret"] = clone.cpu.instret - base.cpu.instret

    benchmark.pedantic(run_ops, rounds=3, iterations=1)
    print(f"\n{arch}/{exec_mode}: ~{state['instret']} instructions "
          f"per 10 ops")


def pytest_generate_tests(metafunc):
    if "arch" in metafunc.fixturenames:
        metafunc.parametrize("arch", ["x86", "ppc"])
    if "exec_mode" in metafunc.fixturenames:
        metafunc.parametrize("exec_mode", ["step", "block"])


# ---------------------------------------------------------------------------
# script mode: the CI speedup gate


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="step-vs-block interpreter throughput gate")
    parser.add_argument("--enforce-min-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless block/step >= X on "
                             "both architectures")
    parser.add_argument("--syscalls", type=int, default=400,
                        help="timed kernel entries per repeat")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N repeats per mode")
    args = parser.parse_args(argv)

    print(f"{'arch':<6} {'step insn/s':>14} {'block insn/s':>14} "
          f"{'speedup':>9}")
    failures = []
    for arch in ("x86", "ppc"):
        step, block = measure_pair(arch, args.syscalls, args.repeats)
        speedup = block / step
        print(f"{arch:<6} {step:>14,.0f} {block:>14,.0f} "
              f"{speedup:>8.2f}x")
        if args.enforce_min_speedup is not None and \
                speedup < args.enforce_min_speedup:
            failures.append((arch, speedup))
    if failures:
        for arch, speedup in failures:
            print(f"FAIL: {arch} block core is only {speedup:.2f}x the "
                  f"step core (floor {args.enforce_min_speedup:.2f}x)",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
