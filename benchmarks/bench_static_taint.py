"""Taint-engine cost and payoff over both kernel images.

Three numbers the propagation analysis has to justify:

* **Wall time** — the interprocedural fixpoint sweep is the most
  expensive static pass; it runs once per image (memoized by
  ``taint_masked_bits``), so it has to be small next to a campaign,
  not free.  Measured as the delta over the classification-only
  analysis on a shared CFG + liveness.
* **Prune rate** — the fraction of analyzed bits the engine proves
  masked (``prune="taint"``'s bit set) beyond the decode-identical /
  unreachable set ``prune="dead"`` already covers.
* **Verdict histogram** — how the pure-dataflow residue splits into
  sink / dead / escape, the precision headline (escape is where the
  engine falls back to the calibrated rule).

Rows land in the shared JSON Lines trajectory when
``REPRO_BENCH_JSON`` is set, via :mod:`benchmarks.common`.
"""

from __future__ import annotations

import time

import pytest

from repro.kernel.build import build_kernel

try:
    from benchmarks import common
except ImportError:                      # script mode: sys.path[0] is
    import common                        # the benchmarks directory


@pytest.mark.parametrize("arch", ["x86", "ppc"])
def test_bench_taint_analysis(benchmark, arch):
    """Classification-only vs taint-enabled full-image analysis."""
    from repro.static.cfg import build_cfg
    from repro.static.liveness import compute_liveness
    from repro.static.predictor import analyze_image

    image = build_kernel(arch)
    cfg = build_cfg(arch, image)
    liveness = compute_liveness(cfg)
    state = {}

    def run_once():
        t0 = time.perf_counter()
        analyze_image(arch, image, cfg=cfg, liveness=liveness,
                      taint=False)
        t1 = time.perf_counter()
        state["report"] = analyze_image(arch, image, cfg=cfg,
                                        liveness=liveness, taint=True)
        state["base_s"] = t1 - t0
        state["taint_s"] = time.perf_counter() - t1

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    report = state["report"]
    verdicts = report.verdict_counts
    # the prune="taint" bit set is the union: provably-dead flips plus
    # the (disjoint) taint-proven-masked substitutions
    dead = len(report.dead_bits)
    taint_masked = len(report.dead_bits | report.taint_masked_bits)
    prune_rate = taint_masked / report.bit_count
    extra_rate = (taint_masked - dead) / report.bit_count
    row = common.emit(
        common.env_json_path(), f"static_taint_{arch}",
        arch=arch,
        base_seconds=round(state["base_s"], 3),
        taint_seconds=round(state["taint_s"], 3),
        bit_count=report.bit_count,
        taint_masked=taint_masked,
        dead_bits=dead,
        prune_rate=round(prune_rate, 6),
        **{f"verdict_{name}": count
           for name, count in sorted(verdicts.items())})
    print(f"\n[{arch}] taint sweep {row['taint_seconds']:.2f}s "
          f"(+{row['taint_seconds'] - row['base_seconds']:.2f}s over "
          f"classification-only), prune set "
          f"{taint_masked}/{report.bit_count} bits "
          f"({100 * prune_rate:.2f}%; {100 * extra_rate:.2f}% beyond "
          f"prune=dead)")
    print(f"[{arch}] verdicts: " + ", ".join(
        f"{name}={count}" for name, count in sorted(
            verdicts.items(), key=lambda kv: -kv[1])))
    # the engine must never *lose* proofs the dead policy already had
    assert taint_masked >= dead
