"""End-to-end campaign speedup from checkpoint-ladder dispatch.

Every experiment used to replay the clean workload from the fork point
to its trigger instant; the checkpoint ladder (``repro.checkpoint``)
pays that prefix once per context and dispatches each experiment from
the nearest snapshot.  This bench measures what that buys end to end:
the same register campaign (registers are never screened, so every
experiment simulates) with ``checkpoints`` on vs off, everything
included on the "on" side — the ladder capture run is re-paid every
repeat by clearing the context's ladder cache, so the measured ratio
is the worst case of a single campaign, not an amortized best case.

Two entry points:

* the pytest-benchmark test below (``pytest benchmarks/``), which
  prints the per-arch speedup and appends a JSON trajectory row when
  ``REPRO_BENCH_JSON`` is set;
* a script mode used as the CI performance gate::

      PYTHONPATH=src python benchmarks/bench_checkpoint_speedup.py \\
          --enforce-min-speedup 1.5 --json bench.jsonl

  best-of-N with the two sides interleaved (so host drift hits both
  alike) and GC paused; exits non-zero if either architecture falls
  below the floor.
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import time

from repro.injection.campaign import (
    Campaign, CampaignConfig, CampaignContext,
)
from repro.injection.outcomes import CampaignKind

try:
    from benchmarks import common
except ImportError:                      # script mode: sys.path[0] is
    import common                        # the benchmarks directory

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
COUNT = max(24, int(48 * _SCALE))
SEED = 11
OPS = 40


def _run_once(context: CampaignContext, checkpoints: int) -> float:
    """One full campaign (seconds), ladder build included: the on-side
    cache is cleared first, so every repeat pays the capture run."""
    context._ladders.clear()
    config = CampaignConfig(arch=context.arch,
                            kind=CampaignKind.REGISTER,
                            count=COUNT, seed=SEED, ops=OPS,
                            checkpoints=checkpoints)
    start = time.perf_counter()
    result = Campaign(config, context).run()
    elapsed = time.perf_counter() - start
    assert result.injected == COUNT
    assert not result.failures
    return elapsed


def measure_pair(arch: str, repeats: int = 3,
                 checkpoints: int = 8) -> "tuple[float, float]":
    """(off, on) best-of-*repeats* campaign wall time in seconds."""
    context = CampaignContext.get(arch, SEED, OPS)
    best = {"off": float("inf"), "on": float("inf")}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            best["off"] = min(best["off"], _run_once(context, 0))
            best["on"] = min(best["on"],
                             _run_once(context, checkpoints))
    finally:
        if gc_was_enabled:
            gc.enable()
    return best["off"], best["on"]


# ---------------------------------------------------------------------------
# pytest-benchmark entry point


def test_bench_checkpoint_speedup(benchmark, arch):
    state = {}

    def run_once():
        state["pair"] = measure_pair(arch, repeats=1)

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    off, on = state["pair"]
    speedup = off / on
    print(f"\n[{arch}] checkpoints off: {COUNT / off:.1f} inj/s, "
          f"on: {COUNT / on:.1f} inj/s ({speedup:.2f}x)")
    common.emit(common.env_json_path(), "checkpoint_speedup",
                arch=arch, count=COUNT, ops=OPS,
                off_seconds=round(off, 3), on_seconds=round(on, 3),
                speedup=round(speedup, 3))
    assert speedup > 1.0


def pytest_generate_tests(metafunc):
    if "arch" in metafunc.fixturenames:
        metafunc.parametrize("arch", ["x86", "ppc"])


# ---------------------------------------------------------------------------
# script mode: the CI speedup gate


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="checkpoint-dispatch campaign throughput gate")
    parser.add_argument("--enforce-min-speedup", type=float,
                        default=None, metavar="X",
                        help="exit non-zero unless on/off >= X on "
                             "both architectures")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N repeats per side")
    parser.add_argument("--checkpoints", type=int, default=8,
                        help="ladder rungs for the on side")
    common.add_json_argument(parser)
    args = parser.parse_args(argv)

    print(f"{'arch':<6} {'off inj/s':>11} {'on inj/s':>11} "
          f"{'speedup':>9}   ({COUNT} injections, ladder build "
          f"included)")
    failures = []
    for arch in ("x86", "ppc"):
        off, on = measure_pair(arch, args.repeats, args.checkpoints)
        speedup = off / on
        print(f"{arch:<6} {COUNT / off:>11.1f} {COUNT / on:>11.1f} "
              f"{speedup:>8.2f}x")
        common.emit(args.json, "checkpoint_speedup", arch=arch,
                    count=COUNT, ops=OPS,
                    checkpoints=args.checkpoints,
                    off_seconds=round(off, 3),
                    on_seconds=round(on, 3),
                    speedup=round(speedup, 3))
        if args.enforce_min_speedup is not None and \
                speedup < args.enforce_min_speedup:
            failures.append((arch, speedup))
    if failures:
        for arch, speedup in failures:
            print(f"FAIL: {arch} checkpoint dispatch is only "
                  f"{speedup:.2f}x the from-boot path (floor "
                  f"{args.enforce_min_speedup:.2f}x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
