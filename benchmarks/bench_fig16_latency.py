"""Figure 16 A-D: Distribution of Cycles-to-Crash.

Prints the four panels (stack / register / code / data latency
histograms for both platforms, in the paper's 3k..>1G buckets) and
times the histogram computation over all crashes.
"""

from repro.analysis.latency import latency_histogram


def test_bench_fig16(benchmark, bench_study):
    everything = (bench_study.results_for("x86")
                  + bench_study.results_for("ppc"))

    histogram = benchmark(latency_histogram, everything)
    assert sum(histogram.values()) > 0

    print()
    print(bench_study.render_latency_figure())
