"""Table 5: Error Activation and Failure Distribution on the P4.

Regenerates the paper's Table 5 rows (stack / system registers / data /
code) from the benchmark study's P4 campaigns, prints paper vs
measured, and times a representative injection-campaign slice.
"""

from repro.injection.outcomes import CampaignKind
from benchmarks.conftest import run_slice


def test_bench_table5(benchmark, bench_study, bench_contexts):
    result = benchmark.pedantic(
        run_slice, args=("x86", CampaignKind.STACK, 25,
                         bench_contexts["x86"]),
        rounds=1, iterations=1)
    assert result.injected == 25

    print()
    print(bench_study.render_table("x86"))
