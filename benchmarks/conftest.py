"""Shared benchmark fixtures.

The full study (all eight campaigns, both platforms) runs once per
benchmark session at a scaled-down size; each ``bench_*`` file then
regenerates its table or figure from those results and also times a
representative slice of the pipeline that produces it.

Scale with ``REPRO_BENCH_SCALE`` (default 1.0 multiplies the sizes
below; e.g. ``REPRO_BENCH_SCALE=4 pytest benchmarks/`` quadruples every
campaign).
"""

from __future__ import annotations

import os

import pytest

from repro.core import Study, StudyConfig
from repro.injection.outcomes import CampaignKind

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: per-campaign sizes at scale 1.0 (chosen to finish in a few minutes)
BENCH_SIZES = {
    CampaignKind.CODE: 100,
    CampaignKind.STACK: 200,
    CampaignKind.DATA: 600,
    CampaignKind.REGISTER: 120,
}


def _sizes() -> dict:
    return {kind: max(20, int(count * _SCALE))
            for kind, count in BENCH_SIZES.items()}


@pytest.fixture(scope="session")
def bench_study() -> Study:
    sizes = _sizes()
    config = StudyConfig(seed=7, ops=40, overrides={
        "x86": dict(sizes), "ppc": dict(sizes),
    })
    study = Study(config)
    study.run()
    return study


@pytest.fixture(scope="session")
def bench_contexts(bench_study):
    from repro.injection.campaign import CampaignContext
    return {arch: CampaignContext.get(arch, 7, 40)
            for arch in ("x86", "ppc")}


def run_slice(arch: str, kind: CampaignKind, count: int, context):
    """A small representative campaign used as the timed body."""
    from repro.injection.campaign import Campaign, CampaignConfig
    config = CampaignConfig(arch=arch, kind=kind, count=count,
                            seed=1234, ops=40)
    return Campaign(config, context).run()
