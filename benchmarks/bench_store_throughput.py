"""Result-store throughput: journal append, replay, and store-backed
campaigns at 1/2/4 workers.

The journal is the write-ahead hot path — every injection result goes
through one append — so its rate bounds how fast a store-backed
campaign can possibly run; replay rate bounds resume startup.  The
campaign rows measure the end-to-end overhead of running *through*
the store (journaling from the serial loop and from the parallel
shard merge) against the engine's plain throughput.

Scale with ``REPRO_BENCH_SCALE`` like the other benchmarks.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.injection.campaign import (
    Campaign, CampaignConfig, CampaignContext,
)
from repro.injection.outcomes import CampaignKind, InjectionResult, Outcome
from repro.injection.targets import DataTarget
from repro.store import CampaignStore
from repro.store.journal import Journal, replay

try:
    from benchmarks import common
except ImportError:                      # script mode: sys.path[0] is
    import common                        # the benchmarks directory

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
RECORDS = max(1_000, int(5_000 * _SCALE))
COUNT = max(24, int(48 * _SCALE))


def _synthetic(index: int) -> InjectionResult:
    return InjectionResult(
        arch="x86", kind=CampaignKind.DATA,
        target=DataTarget(addr=0xC0300000 + index, bit=index % 8,
                          at_instret=1_000 + index, initialized=True),
        outcome=Outcome.NOT_MANIFESTED, activation_cycles=100 + index,
        detail=f"synthetic {index}")


def test_bench_journal_append(benchmark, tmp_path):
    results = [_synthetic(index) for index in range(RECORDS)]
    state = {}

    def append_all():
        path = tmp_path / f"journal-{len(os.listdir(tmp_path))}.jsonl"
        start = time.perf_counter()
        with Journal(path) as journal:
            for index, result in enumerate(results):
                journal.append(index, result)
        state["elapsed"] = time.perf_counter() - start

    benchmark.pedantic(append_all, rounds=3, iterations=1)
    rate = RECORDS / state["elapsed"]
    print(f"\njournal append: {RECORDS} records in "
          f"{state['elapsed']:.3f}s = {rate:,.0f} rec/s")
    common.emit(common.env_json_path(), "store_journal_append",
                records=RECORDS,
                seconds=round(state["elapsed"], 3),
                records_per_sec=round(rate, 1))


def test_bench_journal_replay(benchmark, tmp_path):
    path = tmp_path / "journal.jsonl"
    with Journal(path) as journal:
        for index in range(RECORDS):
            journal.append(index, _synthetic(index))
    state = {}

    def replay_all():
        start = time.perf_counter()
        state["report"] = replay(path, truncate=False)
        state["elapsed"] = time.perf_counter() - start

    benchmark.pedantic(replay_all, rounds=3, iterations=1)
    assert len(state["report"].records) == RECORDS
    rate = RECORDS / state["elapsed"]
    print(f"\njournal replay: {RECORDS} records in "
          f"{state['elapsed']:.3f}s = {rate:,.0f} rec/s")
    common.emit(common.env_json_path(), "store_journal_replay",
                records=RECORDS,
                seconds=round(state["elapsed"], 3),
                records_per_sec=round(rate, 1))


@pytest.fixture(scope="module")
def store_bench_context() -> CampaignContext:
    return CampaignContext.get("x86", seed=11, ops=40)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bench_store_campaign(benchmark, workers, tmp_path,
                              store_bench_context):
    config = CampaignConfig(arch="x86", kind=CampaignKind.REGISTER,
                            count=COUNT, seed=11, ops=40)
    state = {"round": 0}

    def run_once():
        store = CampaignStore(tmp_path / f"store-{state['round']}")
        state["round"] += 1
        start = time.perf_counter()
        state["result"] = Campaign(config, store_bench_context).run(
            workers=workers, store=store)
        state["elapsed"] = time.perf_counter() - start

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    result = state["result"]
    assert result.injected == COUNT
    assert not result.failures
    throughput = COUNT / state["elapsed"]
    print(f"\nworkers={workers}: {COUNT} journaled injections in "
          f"{state['elapsed']:.2f}s = {throughput:.1f} inj/s "
          f"({os.cpu_count()} cores)")
    common.emit(common.env_json_path(), "store_campaign",
                workers=workers, count=COUNT,
                seconds=round(state["elapsed"], 3),
                injections_per_sec=round(throughput, 2))
