"""Campaign-service throughput: submission rate, end-to-end latency
under concurrent clients, and streamed-progress overhead.

Three questions about the HTTP layer on top of the engine:

* **submissions/s** — how fast the daemon accepts work (payload
  validation, manifest identity, job-index append) independent of how
  fast it runs it;
* **end-to-end latency** — wall time from submit to ``done`` for the
  same campaign when 1, 4, and 16 clients hit the daemon at once
  (queueing + slot contention, fairness overhead included);
* **streamed-progress overhead** — the same campaign run directly via
  ``Campaign.run`` versus submitted over HTTP with a client consuming
  every progress event; the difference is what the service skin costs.

Scale with ``REPRO_BENCH_SCALE`` like the other benchmarks.  The
daemon runs in-process on a background thread with real sockets.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time

import pytest

from repro.injection.campaign import (
    Campaign, CampaignContext,
)
from repro.service.client import ServiceClient
from repro.service.daemon import CampaignService
from repro.service.protocol import campaign_config_from_payload

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
#: distinct tiny campaigns for the acceptance-rate measurement
SUBMISSIONS = max(20, int(60 * _SCALE))
#: per-client campaign size for the latency / overhead measurements
COUNT = max(12, int(24 * _SCALE))
SEED = 0
OPS = 36


class _DaemonThread:
    def __init__(self, store_dir, workers):
        self.service = None
        self.port = None
        self.loop = None
        self._started = threading.Event()
        self._stop_event = None
        self._thread = threading.Thread(
            target=self._run, args=(str(store_dir), workers),
            daemon=True)
        self._thread.start()
        assert self._started.wait(30)

    def _run(self, store_dir, workers):
        async def main():
            self.loop = asyncio.get_running_loop()
            self.service = CampaignService(store_dir, workers=workers,
                                           port=0)
            self.port = await self.service.start()
            self._stop_event = asyncio.Event()
            self._started.set()
            await self._stop_event.wait()
            await self.service.stop()
        asyncio.run(main())

    def client(self) -> ServiceClient:
        return ServiceClient(f"http://127.0.0.1:{self.port}",
                             timeout=600)

    def shutdown(self):
        self.loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(120)


@pytest.fixture(scope="module")
def service_context() -> CampaignContext:
    # prewarm so the first job doesn't pay the context build
    return CampaignContext.get("x86", SEED, OPS)


@pytest.fixture()
def daemon(tmp_path, service_context):
    handle = _DaemonThread(tmp_path / "store", workers=4)
    yield handle
    handle.shutdown()


def _payload(count: int, salt: int) -> dict:
    # distinct dump_loss_probability -> distinct campaign identity,
    # so submissions never dedupe onto each other
    return {"arch": "x86", "kind": "register", "count": count,
            "seed": SEED, "ops": OPS,
            "dump_loss_probability": 0.08 + salt * 1e-7}


def test_bench_submission_rate(benchmark, daemon):
    client = daemon.client()
    state = {}

    def submit_all():
        start = time.perf_counter()
        ids = [client.submit(_payload(1, salt))["job"]["id"]
               for salt in range(SUBMISSIONS)]
        state["elapsed"] = time.perf_counter() - start
        state["ids"] = ids

    benchmark.pedantic(submit_all, rounds=1, iterations=1)
    rate = SUBMISSIONS / state["elapsed"]
    # drain outside the timed region so the daemon shuts down clean
    for job_id in state["ids"]:
        assert client.wait(job_id, timeout=600)["state"] == "done"
    print(f"\nsubmissions: {SUBMISSIONS} accepted in "
          f"{state['elapsed']:.3f}s = {rate:,.1f} submissions/s")


@pytest.mark.parametrize("clients", [1, 4, 16])
def test_bench_e2e_latency(benchmark, clients, daemon):
    state = {}

    def run_clients():
        latencies = []
        lock = threading.Lock()
        errors = []

        def one_client(salt):
            try:
                client = daemon.client()
                start = time.perf_counter()
                job_id = client.submit(
                    _payload(COUNT, 1000 + salt))["job"]["id"]
                final = client.wait(job_id, timeout=600)
                elapsed = time.perf_counter() - start
                assert final["state"] == "done", final
                with lock:
                    latencies.append(elapsed)
            except Exception as exc:   # noqa: BLE001 — re-raised below
                errors.append(exc)

        start = time.perf_counter()
        threads = [threading.Thread(target=one_client, args=(salt,))
                   for salt in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(600)
        state["wall"] = time.perf_counter() - start
        assert not errors, errors
        state["latencies"] = latencies

    benchmark.pedantic(run_clients, rounds=1, iterations=1)
    latencies = sorted(state["latencies"])
    mean = sum(latencies) / len(latencies)
    print(f"\nclients={clients}: {clients}x{COUNT} injections, wall "
          f"{state['wall']:.2f}s, per-campaign latency mean "
          f"{mean:.2f}s min {latencies[0]:.2f}s max "
          f"{latencies[-1]:.2f}s")


def test_bench_streamed_progress_overhead(benchmark, daemon,
                                          service_context):
    payload = _payload(max(24, int(48 * _SCALE)), 9999)
    config = campaign_config_from_payload(payload)
    state = {}

    def run_both():
        start = time.perf_counter()
        direct = Campaign(config, service_context).run()
        state["direct"] = time.perf_counter() - start

        client = daemon.client()
        events = 0
        start = time.perf_counter()
        job_id = client.submit(payload)["job"]["id"]
        for event in client.stream(job_id):
            events += 1
            if (event.get("event") == "state"
                    and event.get("state") in ("done", "failed")):
                break
        state["served"] = time.perf_counter() - start
        state["events"] = events
        final = client.job(job_id)
        assert final["state"] == "done", final
        state["digest_match"] = True

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    overhead = state["served"] / state["direct"]
    print(f"\nstreamed progress: direct {state['direct']:.2f}s vs "
          f"served+streamed {state['served']:.2f}s "
          f"({state['events']} events) = {overhead:.2f}x")
