"""Figure 11: Crash Causes for Code Injection.

The CISC/RISC decode-density contrast: on the P4 a flip resynchronizes
into valid-but-wrong instructions (more invalid memory accesses, fewer
#UD); on the G4 it usually lands in unassigned encoding space (more
Illegal Instruction).
"""

from repro.injection.outcomes import CampaignKind
from benchmarks.conftest import run_slice


def test_bench_fig11(benchmark, bench_study, bench_contexts):
    result = benchmark.pedantic(
        run_slice, args=("x86", CampaignKind.CODE, 20,
                         bench_contexts["x86"]),
        rounds=1, iterations=1)
    assert result.injected == 20

    print()
    print(bench_study.render_figure(11))
