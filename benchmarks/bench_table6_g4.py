"""Table 6: Error Activation and Failure Distribution on the G4.

Regenerates the paper's Table 6 rows from the benchmark study's G4
campaigns, prints paper vs measured, and times a representative
injection-campaign slice.
"""

from repro.injection.outcomes import CampaignKind
from benchmarks.conftest import run_slice


def test_bench_table6(benchmark, bench_study, bench_contexts):
    result = benchmark.pedantic(
        run_slice, args=("ppc", CampaignKind.STACK, 25,
                         bench_contexts["ppc"]),
        rounds=1, iterations=1)
    assert result.injected == 25

    print()
    print(bench_study.render_table("ppc"))
