"""Static analyzer cost and the --prune-dead payoff.

Two questions the static subsystem has to answer for its keep:

* **Analyzer wall time** — the full CFG + liveness + per-bit
  corruption sweep over each kernel image.  This is a one-off cost
  (``dead_code_bits`` memoizes per arch) so it only has to be small
  next to a campaign, not free.
* **Injections/sec with and without pruning** — a code campaign at
  the same count, prune="none" vs prune="dead".  Pruning redraws
  provably-inert targets (decode-identical flips, unreachable code),
  so the pruned campaign spends its budget on experiments that can
  activate; the headline is activated-injections/sec, not raw
  injections/sec.  On x86 the kernel has no prunable bits and the two
  rows must coincide exactly.

Scale with ``REPRO_BENCH_SCALE`` like the other benchmarks.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.injection.campaign import (
    Campaign, CampaignConfig, CampaignContext,
)
from repro.injection.outcomes import CampaignKind
from repro.kernel.build import build_kernel

try:
    from benchmarks import common
except ImportError:                      # script mode: sys.path[0] is
    import common                        # the benchmarks directory

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
COUNT = max(40, int(80 * _SCALE))


@pytest.mark.parametrize("arch", ["x86", "ppc"])
def test_bench_analyzer_wall_time(benchmark, arch):
    """Full static analysis of one image, cold (no memoization)."""
    from repro.static.cfg import build_cfg
    from repro.static.liveness import compute_liveness
    from repro.static.predictor import analyze_image

    image = build_kernel(arch)
    state = {}

    def run_once():
        start = time.perf_counter()
        cfg = build_cfg(arch, image)
        liveness = compute_liveness(cfg)
        state["report"] = analyze_image(arch, image, cfg=cfg,
                                        liveness=liveness)
        state["elapsed"] = time.perf_counter() - start

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    report = state["report"]
    bits_per_sec = report.bit_count / state["elapsed"]
    print(f"\n[{arch}] {report.bit_count} bits analyzed in "
          f"{state['elapsed']:.2f}s = {bits_per_sec:.0f} bits/s, "
          f"{len(report.dead_bits)} prunable")
    common.emit(common.env_json_path(), "static_analyzer_wall_time",
                arch=arch, bits=report.bit_count,
                prunable=len(report.dead_bits),
                seconds=round(state["elapsed"], 3),
                bits_per_sec=round(bits_per_sec, 1))


@pytest.mark.parametrize("arch", ["x86", "ppc"])
def test_bench_prune_throughput(benchmark, arch):
    """Code campaign, prune='none' vs prune='dead', same count."""
    context = CampaignContext.get(arch, seed=11, ops=40)
    # warm the memoized prune set so the timed rows compare campaign
    # cost, not analyzer cost (measured separately above)
    from repro.static.predictor import dead_code_bits
    prunable = len(dead_code_bits(arch))
    state = {}

    def run_policy(prune):
        config = CampaignConfig(arch=arch, kind=CampaignKind.CODE,
                                count=COUNT, seed=11, ops=40,
                                prune=prune)
        start = time.perf_counter()
        result = Campaign(config, context).run()
        elapsed = time.perf_counter() - start
        return result, elapsed

    def run_once():
        state["none"] = run_policy("none")
        state["dead"] = run_policy("dead")

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    print(f"\n[{arch}] {prunable} prunable bits, "
          f"{COUNT} injections per row")
    for policy in ("none", "dead"):
        result, elapsed = state[policy]
        assert result.injected == COUNT
        print(f"  prune={policy:<5} {COUNT / elapsed:7.1f} inj/s, "
              f"{result.activated / elapsed:7.1f} activated inj/s, "
              f"{result.pruned_draws} redraws")
        common.emit(common.env_json_path(), "static_prune_throughput",
                    arch=arch, prune=policy, count=COUNT,
                    seconds=round(elapsed, 3),
                    injections_per_sec=round(COUNT / elapsed, 2),
                    activated_per_sec=round(
                        result.activated / elapsed, 2),
                    redraws=result.pruned_draws)
    if arch == "x86":
        # no prunable bits: pruning must be a bit-identical no-op
        assert prunable == 0
        assert [r.outcome for r in state["none"][0].results] \
            == [r.outcome for r in state["dead"][0].results]
    else:
        assert prunable > 0
        # the pruned campaign never spends an injection on a
        # provably-inert bit
        dead_set = dead_code_bits(arch)
        assert all((r.target.addr, r.target.bit) not in dead_set
                   for r in state["dead"][0].results)
