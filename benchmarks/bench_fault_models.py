"""Fault-model cost and behavior: injections/sec per registered model
plus the manifestation histogram each produces.

The registry's promise is that a non-default model reuses the whole
engine — fork, checkpoint dispatch, block exec, sharding — so its
per-injection cost should track the single-bit baseline (a burst adds
a handful of extra bit flips; an intermittent fault adds a few
scheduled re-flips).  The histogram row is the science: the same
target stream under a harsher model should shift mass from
not-manifested toward crashes.

Scale with ``REPRO_BENCH_SCALE`` like the other benchmarks.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.fault_models import (
    manifestation_histogram, sensitivity_for,
)
from repro.faults import available_models, get_model
from repro.injection.campaign import (
    Campaign, CampaignConfig, CampaignContext,
)
from repro.injection.outcomes import CampaignKind

try:
    from benchmarks import common
except ImportError:                      # script mode: sys.path[0] is
    import common                        # the benchmarks directory

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
COUNT = max(24, int(48 * _SCALE))
OPS = 24
KIND = CampaignKind.DATA                 # every shipped model applies


@pytest.fixture(scope="module")
def fault_bench_context() -> CampaignContext:
    return CampaignContext.get("x86", seed=11, ops=OPS)


@pytest.mark.parametrize("model", list(available_models()))
def test_bench_fault_model_throughput(benchmark, model,
                                      fault_bench_context):
    assert get_model(model).applies_to(KIND.value)
    config = CampaignConfig(arch="x86", kind=KIND, count=COUNT,
                            seed=11, ops=OPS, fault_model=model)
    state = {}

    def run_once():
        start = time.perf_counter()
        state["result"] = Campaign(config, fault_bench_context).run()
        state["elapsed"] = time.perf_counter() - start

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    result = state["result"]
    assert result.injected == COUNT
    throughput = COUNT / state["elapsed"]
    histogram = manifestation_histogram(
        {model: result.results})[model]
    row = sensitivity_for(model, "x86", KIND, result.results)
    print(f"\n[{model}] {COUNT} injections in "
          f"{state['elapsed']:.2f}s = {throughput:.1f} inj/s; "
          f"manifested {row.manifested} "
          f"({row.manifestation_pct:.1f}%): {histogram}")
    common.emit(common.env_json_path(), "fault_model_throughput",
                model=model, kind=KIND.value, count=COUNT, ops=OPS,
                seconds=round(state["elapsed"], 3),
                injections_per_sec=round(throughput, 2),
                manifested=row.manifested,
                histogram=histogram)
