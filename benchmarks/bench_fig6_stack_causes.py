"""Figure 6: Crash Causes for Kernel Stack Injection (both platforms).

The headline split: Stack Overflow + Bad Area dominate the G4 (the
exception-entry wrapper); Bad Paging + NULL Pointer dominate the P4
(no stack-overflow detection, so errors propagate to memory faults).
"""

from repro.injection.outcomes import CampaignKind
from benchmarks.conftest import run_slice


def test_bench_fig6(benchmark, bench_study, bench_contexts):
    result = benchmark.pedantic(
        run_slice, args=("ppc", CampaignKind.STACK, 30,
                         bench_contexts["ppc"]),
        rounds=1, iterations=1)
    assert result.injected == 30

    print()
    print(bench_study.render_figure(6))
