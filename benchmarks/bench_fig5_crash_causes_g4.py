"""Figure 5: Overall Distribution of Crash Causes on the G4."""

from repro.analysis.figures import crash_cause_percentages


def test_bench_fig5(benchmark, bench_study):
    results = bench_study.results_for("ppc")

    percentages = benchmark(crash_cause_percentages, results)
    assert percentages, "expected some known crashes"

    print()
    print(bench_study.render_figure(5))
