"""Serial vs parallel campaign throughput (the sharded engine).

Times the same register campaign — the most expensive kind per
injection, since registers are never screened — at 1, 2, and 4 worker
processes.  The workers=1 row is the unchanged in-process serial loop;
the parallel rows pay one CampaignContext rebuild per worker and then
scale with the shard work, so on a multi-core host 4 workers should
show >= 2x the serial throughput at these sizes (on a single core the
rows mostly measure the engine's overhead).

Scale with ``REPRO_BENCH_SCALE`` like the other benchmarks.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks import common
from repro.injection.campaign import (
    Campaign, CampaignConfig, CampaignContext,
)
from repro.injection.outcomes import CampaignKind

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
COUNT = max(24, int(48 * _SCALE))


@pytest.fixture(scope="module")
def register_context() -> CampaignContext:
    return CampaignContext.get("x86", seed=11, ops=40)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bench_parallel_register_campaign(benchmark, workers,
                                          register_context):
    config = CampaignConfig(arch="x86", kind=CampaignKind.REGISTER,
                            count=COUNT, seed=11, ops=40)
    state = {}

    def run_once():
        start = time.perf_counter()
        state["result"] = Campaign(config, register_context).run(
            workers=workers)
        state["elapsed"] = time.perf_counter() - start

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    result = state["result"]
    assert result.injected == COUNT
    assert not result.failures
    throughput = COUNT / state["elapsed"]
    print(f"\nworkers={workers}: {COUNT} injections in "
          f"{state['elapsed']:.2f}s = {throughput:.1f} inj/s "
          f"({os.cpu_count()} cores)")
    common.emit(common.env_json_path(), "parallel_campaign",
                arch="x86", kind="register", workers=workers,
                count=COUNT, seconds=round(state["elapsed"], 3),
                injections_per_s=round(throughput, 2))


@pytest.mark.parametrize("exec_mode", ["step", "block"])
def test_bench_campaign_exec_mode(benchmark, exec_mode,
                                  register_context):
    """End-to-end campaign cost under each execution core: the same
    register campaign, serial, with only ``exec_mode`` varying — the
    measured ratio is the real-world payoff of the block compiler
    (screening, forking and classification overheads included)."""
    config = CampaignConfig(arch="x86", kind=CampaignKind.REGISTER,
                            count=COUNT, seed=11, ops=40,
                            exec_mode=exec_mode)
    state = {}

    def run_once():
        start = time.perf_counter()
        state["result"] = Campaign(config, register_context).run()
        state["elapsed"] = time.perf_counter() - start

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    result = state["result"]
    assert result.injected == COUNT
    assert not result.failures
    print(f"\nexec_mode={exec_mode}: {COUNT} injections in "
          f"{state['elapsed']:.2f}s = {COUNT / state['elapsed']:.1f} "
          f"inj/s")
    common.emit(common.env_json_path(), "campaign_exec_mode",
                arch="x86", kind="register", exec_mode=exec_mode,
                count=COUNT, seconds=round(state["elapsed"], 3),
                injections_per_s=round(COUNT / state["elapsed"], 2))
