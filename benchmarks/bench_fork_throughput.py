"""Fork throughput: eager page copies vs copy-on-write warm-start.

``Machine.fork()`` is the per-injection cost floor — every experiment
"reboots" by forking the booted base machine.  This benchmark measures

* **forks/sec** for the eager baseline (deep page copy + cold decode
  cache, ``fork(eager=True)``) against the COW path (shared pages +
  inherited warm decode cache) on both arches — the COW path must be
  >= 3x the eager baseline;
* **page-copy counts** for a forked clone that runs a representative
  injection window, so the COW hit rate (pages shared vs privatized)
  stays visible;
* **end-to-end injections/sec** for a data campaign at 1, 2, and 4
  workers, the number the fork speedup actually buys.

Scale with ``REPRO_BENCH_SCALE`` like the other benchmarks.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks import common
from repro.injection.campaign import (
    Campaign, CampaignConfig, CampaignContext,
)
from repro.injection.outcomes import CampaignKind
from repro.machine.machine import Machine

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
FORKS = max(50, int(200 * _SCALE))
COUNT = max(24, int(48 * _SCALE))
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module", params=["x86", "ppc"])
def booted(request) -> Machine:
    machine = Machine(request.param)
    machine.boot()
    return machine


def _forks_per_sec(machine: Machine, eager: bool) -> float:
    start = time.perf_counter()
    for _ in range(FORKS):
        machine.fork(eager=eager)
    return FORKS / (time.perf_counter() - start)


def test_bench_fork_rate(benchmark, booted):
    state = {}

    def run_once():
        state["eager"] = _forks_per_sec(booted, eager=True)
        state["cow"] = _forks_per_sec(booted, eager=False)

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    speedup = state["cow"] / state["eager"]
    print(f"\n[{booted.arch}] eager: {state['eager']:.0f} forks/s, "
          f"COW: {state['cow']:.0f} forks/s ({speedup:.1f}x)")
    common.emit(common.env_json_path(), "fork_rate",
                arch=booted.arch, forks=FORKS,
                eager_per_s=round(state["eager"], 1),
                cow_per_s=round(state["cow"], 1),
                speedup=round(speedup, 3))
    assert speedup >= MIN_SPEEDUP, (
        f"{booted.arch}: COW fork only {speedup:.2f}x eager baseline")


def test_bench_cow_hit_rate(benchmark, booted):
    """How many pages does one injection window actually dirty?"""
    state = {}

    def run_once():
        clone = booted.fork()
        for _ in range(12):
            clone.syscall(1)
        state["clone"] = clone

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    mem = state["clone"].cpu.mem
    total = len(mem._pages)
    copied = mem.cow_page_copies
    print(f"\n[{booted.arch}] pages: {total} resident, "
          f"{copied} privatized by COW, "
          f"{mem.shared_pages()} still shared "
          f"(hit rate {1 - copied / total:.0%})")
    assert copied < total            # forking must not copy everything


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bench_injection_throughput(benchmark, workers):
    context = CampaignContext.get("x86", seed=11, ops=40)
    config = CampaignConfig(arch="x86", kind=CampaignKind.DATA,
                            count=COUNT, seed=11, ops=40)
    state = {}

    def run_once():
        start = time.perf_counter()
        state["result"] = Campaign(config, context).run(workers=workers)
        state["elapsed"] = time.perf_counter() - start

    benchmark.pedantic(run_once, rounds=1, iterations=1)
    result = state["result"]
    assert result.injected == COUNT
    assert not result.failures
    print(f"\nworkers={workers}: {COUNT} injections in "
          f"{state['elapsed']:.2f}s = "
          f"{COUNT / state['elapsed']:.1f} inj/s "
          f"({os.cpu_count()} cores)")
    common.emit(common.env_json_path(), "injection_throughput",
                arch="x86", kind="data", workers=workers, count=COUNT,
                seconds=round(state["elapsed"], 3),
                injections_per_s=round(COUNT / state["elapsed"], 2))
