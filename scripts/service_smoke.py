#!/usr/bin/env python
"""CI smoke for the campaign service (`repro serve`).

Runs the daemon as a real subprocess against a temp store and checks,
in order:

1. a campaign submitted over HTTP completes with the **pinned** digest
   (``tests/data/campaign_digests.json``, x86 registers);
2. cancelling a running campaign stops it at a batch boundary and
   frees every worker slot;
3. SIGKILL mid-campaign, restart on the same store: the job is
   requeued from the durable index and resumes to the same digest a
   direct in-process ``Campaign.run`` produces;
4. SIGTERM drains gracefully (exit 0).

Exit status is 0 only when every check passes.  Local use::

    python scripts/service_smoke.py
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.service.client import ServiceClient  # noqa: E402


def spawn(store: Path, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", str(store),
         "--workers", "1", "--port", str(port)],
        env=env, cwd=ROOT)


def main() -> int:
    pinned = json.loads(
        (ROOT / "tests" / "data" / "campaign_digests.json")
        .read_text())["x86/register"]["sha256"]
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    store = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    daemon = spawn(store, port)
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=300)
    try:
        client.wait_ready(timeout=120)

        # 1. pinned digest over HTTP
        out = client.submit({"arch": "x86", "kind": "register",
                             "count": 10, "seed": 0, "ops": 36})
        job = client.wait(out["job"]["id"], timeout=600)
        assert job["state"] == "done", job
        assert job["digest"] == pinned, (job["digest"], pinned)
        print(f"[1/4] pinned digest over HTTP: ok "
              f"({job['digest'][:16]}...)")

        # 2. cancel stops at a batch boundary and frees the slots
        big = {"arch": "x86", "kind": "data", "count": 60, "seed": 0,
               "ops": 36}
        job_id = client.submit(big)["job"]["id"]
        for event in client.stream(job_id):
            if (event.get("event") == "progress"
                    and event["done"] >= 2):
                break
        client.cancel(job_id)
        final = client.wait(job_id, timeout=120)
        assert final["state"] == "cancelled", final
        assert 0 < final["done"] < 60, final
        health = client.health()
        assert health["free_slots"] == health["total_slots"], health
        print(f"[2/4] cancel: stopped at {final['done']}/60, "
              f"slots freed")

        # 3. SIGKILL mid-campaign; the restart resumes to the digest
        #    a direct in-process run of the same config produces
        resumed = client.submit(big)["job"]["id"]
        for event in client.stream(resumed):
            if (event.get("event") == "progress"
                    and event["done"] > final["done"]):
                break
        daemon.kill()
        daemon.wait(30)
        daemon = spawn(store, port)
        client.wait_ready(timeout=120)
        done_job = client.wait(resumed, timeout=600)
        assert done_job["state"] == "done", done_job

        from repro.injection.campaign import Campaign, CampaignContext
        from repro.service.protocol import campaign_config_from_payload
        from repro.store.codec import results_digest
        config = campaign_config_from_payload(big)
        context = CampaignContext.get("x86", 0, 36)
        expected = results_digest(
            Campaign(config, context).run().results)
        assert done_job["digest"] == expected, (done_job["digest"],
                                                expected)
        print("[3/4] SIGKILL + restart: resumed to the direct-run "
              "digest")

        # 4. graceful drain
        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(60)
        assert code == 0, f"drain exited {code}"
        print("[4/4] SIGTERM drain: exit 0")
        print("service smoke: all checks passed")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(30)


if __name__ == "__main__":
    sys.exit(main())
