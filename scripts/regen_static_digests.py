#!/usr/bin/env python
"""Regenerate ``tests/data/static_digests.json`` (format 2).

Runs the full taint-enabled static analysis on both kernel images,
re-measures prediction accuracy on the deterministic test campaigns
(seed=0, ops=36, count=60 — the exact configuration the regression
gate replays), and rewrites the pinned file: per-arch histogram,
sha256 digest, and the accuracy floor the gate enforces.

The floors are pinned at the PR 4 calibrated-rule accuracies
(x86 26/34, ppc 32/36 on these campaigns): the taint engine must stay
*strictly better* than the bet it replaced.  Run after any deliberate
decoder/CFG/liveness/predictor/taint change and commit the diff.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.validate_static import validate_code_campaign
from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.outcomes import CampaignKind
from repro.static.predictor import analyze_kernel

OUT = Path(__file__).resolve().parent.parent / "tests" / "data" \
    / "static_digests.json"

#: the calibrated-rule baselines the taint engine must beat
ACCURACY_FLOORS = {"x86": 26 / 34, "ppc": 32 / 36}

GATE_CAMPAIGN = {"count": 60, "seed": 0, "ops": 36}


def main() -> int:
    digests = {"version": 2, "gate_campaign": GATE_CAMPAIGN}
    for arch in ("x86", "ppc"):
        print(f"analyzing {arch} (taint on)...", file=sys.stderr)
        report = analyze_kernel(arch, taint=True)
        config = CampaignConfig(arch=arch, kind=CampaignKind.CODE,
                                **GATE_CAMPAIGN)
        outcome = Campaign(config).run()
        validation = validate_code_campaign(outcome.results, report)
        accuracy = validation.manifestation_accuracy
        floor = ACCURACY_FLOORS[arch]
        print(f"  digest {report.digest()[:16]}  "
              f"accuracy {accuracy:.4f} (floor {floor:.4f})",
              file=sys.stderr)
        if accuracy is None or accuracy <= floor:
            print(f"  REFUSING to pin: {arch} accuracy does not beat "
                  f"the calibrated-rule floor", file=sys.stderr)
            return 1
        digests[arch] = {
            "histogram": report.histogram(),
            "sha256": report.digest(),
            "accuracy_floor": floor,
        }
    OUT.write_text(json.dumps(digests, indent=2, sort_keys=True)
                   + "\n")
    print(f"wrote {OUT}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
