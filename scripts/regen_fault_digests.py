#!/usr/bin/env python
"""Regenerate ``tests/data/fault_model_digests.json``.

One deterministic campaign per non-default fault model per
architecture (the single-bit model is already pinned by the eight
``campaign_digests.json`` recordings), hashed with the store codec's
canonical encoding exactly like the campaign digest gate.  Each model
runs on the target kind that exercises its distinctive machinery:
``burst`` on code (multi-bit flips inside one encoding), the
``intermittent`` retrigger chain on stack, and ``targeted`` on data
(the only kind it applies to).

Run after any deliberate change to fault-plan derivation, the
injector's plan execution, or the result codec, and commit the diff —
the gate (``tests/test_fault_digests.py``) replays these campaigns
serially, sharded, and with checkpoint dispatch off.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.outcomes import CampaignKind
from repro.store.codec import canonical_json, result_to_dict

OUT = Path(__file__).resolve().parent.parent / "tests" / "data" \
    / "fault_model_digests.json"

#: model -> the campaign kind its gate campaign runs
GATE_KINDS = {
    "burst": CampaignKind.CODE,
    "intermittent": CampaignKind.STACK,
    "targeted": CampaignKind.DATA,
}

#: seed/ops match the test suite's session campaign contexts
GATE_CAMPAIGN = {"count": 8, "seed": 0, "ops": 36}


def main() -> int:
    digests = {}
    for arch in ("x86", "ppc"):
        for model, kind in sorted(GATE_KINDS.items()):
            config = CampaignConfig(arch=arch, kind=kind,
                                    fault_model=model,
                                    **GATE_CAMPAIGN)
            result = Campaign(config).run()
            payload = canonical_json(
                [result_to_dict(r) for r in result.results])
            digest = hashlib.sha256(payload.encode()).hexdigest()
            print(f"{arch}/{model} ({kind.value}): {digest[:16]}",
                  file=sys.stderr)
            digests[f"{arch}/{model}"] = {
                "kind": kind.value, "sha256": digest,
                **GATE_CAMPAIGN}
    OUT.write_text(json.dumps(digests, indent=2, sort_keys=True)
                   + "\n")
    print(f"wrote {OUT}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
