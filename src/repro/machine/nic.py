"""Network interface + lossy datagram channel for crash-dump delivery.

The paper's crash handler bypasses the (possibly dying) filesystem and
hands crash packets directly to the network card's packet-sending
function, over UDP, to a remote collector.  UDP is best-effort: some
dumps never arrive, and those crashes land in the Hang/Unknown-Crash
column.  :class:`LossyChannel` models that best-effort delivery with a
seeded loss probability.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Callable, List, Optional

CRASH_PACKET_MAGIC = 0x4E465441        # "NFTA"
PACKET_HEADER = struct.Struct(">IIHHIIQ")


@dataclass
class Packet:
    """One UDP-like datagram."""

    payload: bytes
    seq: int


class LossyChannel:
    """Best-effort datagram delivery with seeded loss."""

    def __init__(self, loss_probability: float = 0.08, seed: int = 0):
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss probability must be within [0, 1]")
        self.loss_probability = loss_probability
        self._seed = seed
        # seeded lazily: a channel is built per forked machine but only
        # consulted when a crash dump is actually sent, and
        # ``Random(seed)`` state is a pure function of the seed
        self._rng: Optional[random.Random] = None
        self.sent = 0
        self.lost = 0

    def deliver(self, packet: Packet,
                receiver: Optional[Callable[[Packet], None]]) -> bool:
        self.sent += 1
        if self._rng is None:
            self._rng = random.Random(self._seed)
        if self._rng.random() < self.loss_probability:
            self.lost += 1
            return False
        if receiver is not None:
            receiver(packet)
        return True


class NIC:
    """The target node's network card (packet-sending function only).

    The crash handler calls :meth:`send_raw` directly — no sockets, no
    filesystem, exactly the paper's bypass path.
    """

    def __init__(self, channel: LossyChannel,
                 receiver: Optional[Callable[[Packet], None]] = None):
        self.channel = channel
        self.receiver = receiver
        self._seq = 0
        self.tx_count = 0

    def send_raw(self, payload: bytes) -> bool:
        self._seq += 1
        self.tx_count += 1
        return self.channel.deliver(Packet(payload, self._seq),
                                    self.receiver)


def encode_crash_packet(arch: str, vector_code: int, pc: int,
                        address: int, cycles: int,
                        frame_pointers: List[int],
                        detail: str) -> bytes:
    """Serialize a crash dump the way the kernel handler would."""
    arch_code = 1 if arch == "x86" else 2
    header = PACKET_HEADER.pack(
        CRASH_PACKET_MAGIC, vector_code, arch_code,
        len(frame_pointers), pc, address & 0xFFFFFFFF, cycles)
    body = b"".join(struct.pack(">I", fp & 0xFFFFFFFF)
                    for fp in frame_pointers)
    text = detail.encode("utf-8", "replace")[:128]
    return header + body + struct.pack(">H", len(text)) + text


def decode_crash_packet(payload: bytes) -> dict:
    """Parse a crash packet back into a record (collector side)."""
    magic, vector, arch_code, nframes, pc, address, cycles = \
        PACKET_HEADER.unpack_from(payload, 0)
    if magic != CRASH_PACKET_MAGIC:
        raise ValueError("bad crash packet magic")
    offset = PACKET_HEADER.size
    frames = []
    for _ in range(nframes):
        frames.append(struct.unpack_from(">I", payload, offset)[0])
        offset += 4
    (text_len,) = struct.unpack_from(">H", payload, offset)
    offset += 2
    detail = payload[offset:offset + text_len].decode("utf-8", "replace")
    return {
        "arch": "x86" if arch_code == 1 else "ppc",
        "vector": vector,
        "pc": pc,
        "address": address,
        "cycles": cycles,
        "frame_pointers": frames,
        "detail": detail,
    }
