"""Machine layer: a bootable simulated target node.

A :class:`~repro.machine.machine.Machine` is one target system from the
paper's Figure 1: a CPU core (P4- or G4-flavoured), physical memory
with a Linux-like kernel mapping, a watchdog card for hang detection,
and a network interface through which the kernel-embedded crash handler
ships crash dumps to the remote collector.
"""

from repro.machine.events import (
    CrashReport, HangDetected, KernelCrash, OutcomeEvent,
)
from repro.machine.machine import Machine, MachineConfig
from repro.machine.nic import LossyChannel, NIC
from repro.machine.watchdog import Watchdog

__all__ = [
    "Machine", "MachineConfig",
    "CrashReport", "KernelCrash", "HangDetected", "OutcomeEvent",
    "NIC", "LossyChannel", "Watchdog",
]
