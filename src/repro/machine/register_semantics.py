"""Semantic side effects of supervisor-register corruption.

The paper's register campaigns show that only a handful of the ~20 P4
and 99 G4 system registers ever manifest (Section 5.2).  This module is
the single place where "register X changed from A to B" is translated
into system-level consequences, used both by ``mtspr`` executed from
(possibly corrupted) kernel code and by the register injector.

G4 (Section 5.2):

* **MSR[IR]/MSR[DR]** cleared -> address translation off -> the next
  kernel-high access machine-checks;
* **SDR1** (page table base) corrupted -> translations are garbage ->
  DSI ("kernel access of bad area") on the next data access;
* **BAT0** pairs corrupted -> the kernel lowmem mapping breaks (data
  side: DSI; instruction side: ISI);
* **SPRG2** corrupted -> the exception-entry stack switch jumps through
  garbage at the *next* exception (long latency, Illegal Instruction);
* **HID0[BTIC]** enabled over invalid content -> the next taken branch
  fetches a bogus target (Illegal Instruction);
* everything else (PMCs, THRMx, spare SPRGs/BATs, segment registers in
  our flat model, ...) absorbs flips silently.

P4: CR0/CR3/EFLAGS(NT)/FS/GS/ESP/EIP effects are implemented in the CPU
and machine layers (selector validation at load/use, translation off on
CR3/CR0.PG damage, NT checked at interrupt return, IDT checked at
exception delivery).
"""

from __future__ import annotations

from repro.ppc.registers import HID0_BTIC, SPR_HID0, SPR_SDR1, SPR_SPRG2

#: DBAT0/IBAT0 cover kernel lowmem in our model
_IBAT0 = (528, 529)
_DBAT0 = (536, 537)


def apply_ppc_spr_effect(machine, spr: int, old: int, new: int) -> None:
    """Apply system-level consequences of an SPR value change."""
    if old == new:
        return
    cpu = machine.cpu
    if spr == SPR_SDR1:
        # page-table base garbage: all translated data accesses fault
        cpu._high_data_fault = "dsi"
        cpu._high_fetch_fault = None
    elif spr in _DBAT0:
        cpu._high_data_fault = "dsi"
    elif spr in _IBAT0:
        cpu._high_fetch_fault = "isi"
    elif spr == SPR_HID0:
        if (new & HID0_BTIC) and not (old & HID0_BTIC):
            cpu.btic_poisoned = True
    elif spr == SPR_SPRG2:
        # consumed lazily at the next exception entry; the machine
        # compares against its recorded expected value
        pass
    # all other SPRs: architecturally present, behaviourally inert here


def apply_ppc_msr_flip(machine, new_msr: int) -> None:
    """Install a flipped MSR (register injection path)."""
    machine.cpu.set_msr(new_msr)


def apply_x86_register_flip(machine, attr: str, new_value: int) -> None:
    """Install a flipped x86 system register (injection path).

    Most registers are plain attributes; CR0/CR3 go through
    :meth:`X86CPU.set_cr` so their architectural side effects (paging
    off, page-table garbage) apply.
    """
    cpu = machine.cpu
    if attr == "cr0":
        cpu.set_cr(0, new_value)
    elif attr == "cr3":
        cpu.set_cr(3, new_value)
    elif attr == "cr4":
        cpu.set_cr(4, new_value)
    else:
        setattr(cpu, attr, new_value)
