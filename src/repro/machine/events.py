"""Crash/hang event types produced by the machine layer.

A :class:`CrashReport` is the machine-level truth about a crash; whether
the *experimenter* learns the cause depends on the crash dump surviving
the trip to the remote collector (see :mod:`repro.machine.nic`) — the
paper's Known Crash vs Hang/Unknown Crash distinction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.ppc.exceptions import PPCVector, ProgramReason
from repro.x86.exceptions import X86Vector

#: the exception vector that killed the kernel, in the arch's own enum
CrashVector = Union[X86Vector, PPCVector]


@dataclass
class CrashReport:
    """Everything the embedded crash handler could gather."""

    arch: str
    vector: Optional[CrashVector]
    address: Optional[int]
    detail: str
    pc: int
    cycles_at_crash: int
    instret_at_crash: int
    registers: Dict[str, int] = field(default_factory=dict)
    function: str = ""                 # kernel function containing pc
    subsystem: str = ""
    #: frame-pointer chain walked by the crash handler (the paper logs
    #: frame pointers before and after injection)
    frame_pointers: Tuple[int, ...] = ()
    #: the G4 exception-entry wrapper found the stack pointer outside
    #: the task's 8 KiB stack
    stack_out_of_range: bool = False
    #: the kernel's panic_code global was set (software-detected error)
    panic: bool = False
    panic_code: int = 0
    #: x86 only: the exception handler could not push its frame (ESP
    #: unusable) — double fault, no dump possible
    dump_failed: bool = False
    #: did the crash dump packet reach the remote collector?
    dump_delivered: bool = False
    error_code: int = 0
    program_reason: Optional[ProgramReason] = None


class KernelCrash(Exception):
    """Raised by the machine when the kernel dies."""

    def __init__(self, report: CrashReport):
        self.report = report
        super().__init__(
            f"[{report.arch}] {report.vector} at pc={report.pc:#010x} "
            f"addr={report.address!r} in {report.function or '?'}: "
            f"{report.detail}")


class HangDetected(Exception):
    """Raised when the watchdog (or a call budget) detects no progress."""

    def __init__(self, where: str, cycles: int, detail: str = ""):
        self.where = where
        self.cycles = cycles
        self.detail = detail
        super().__init__(f"hang in {where} after {cycles} cycles {detail}")


@dataclass
class OutcomeEvent:
    """Machine-level outcome of one monitored run (pre-classification)."""

    kind: str                          # "ok" | "crash" | "hang"
    crash: Optional[CrashReport] = None
    hang_where: str = ""
    cycles: int = 0
