"""The simulated target node: CPU + memory + kernel + devices.

A machine boots a :class:`~repro.kcc.linker.KernelImage`, creates the
task population (kernel threads ``kupdate`` and ``kjournald`` plus user
workload tasks, each with its own 8 KiB kernel stack exactly like the
Linux 2.4 task union), and then lets the workload drive syscalls into
fully simulated kernel code.

Exception handling implements the paper's three-stage cycles-to-crash
model (Figure 3):

* stage 1 is the simulator's own cycle accounting up to the faulting
  instruction;
* stage 2 (hardware exception handling, >1000 cycles) is charged when a
  fault is caught here;
* stage 3 (the software exception handler, 150-200 instructions) is
  charged while the crash handler model runs — including the G4
  kernel's **exception-entry wrapper** that checks the stack pointer
  against the task's 8 KiB stack and raises Stack Overflow early, a
  check the P4 kernel famously lacks (paper Sections 5.1 and 6).

Timer interrupts are delivered between workload operations; each timer
quantum is padded to the architecture's 10 ms tick so that errors
parked in rarely-used state (FS/GS, SPRG2, latent data) accumulate the
paper's multi-million-cycle latencies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.compile import BlockCache, lookup_block
from repro.isa.memory import Region
from repro.kcc.linker import KernelImage
from repro.kernel.build import build_kernel
from repro.machine.events import CrashReport, HangDetected, KernelCrash
from repro.machine.nic import LossyChannel, NIC, encode_crash_packet
from repro.machine.watchdog import Watchdog
from repro.ppc.cpu import PPCCPU
from repro.ppc.exceptions import PPCFault, PPCVector, ProgramReason
from repro.ppc.registers import SPR_SPRG2
from repro.x86.cpu import X86CPU
from repro.x86.exceptions import X86Fault, X86Vector
from repro.x86.registers import CR0_PE, FLAG_IF, FLAG_NT, SEG_FS, SEG_GS

KSTACK_AREA = 0xC0500000
KSTACK_STRIDE = 0x4000
KSTACK_SIZE = 0x2000                    # 8 KiB, as in Linux 2.4
USER_XCHG_BASE = 0x08000000
USER_XCHG_SIZE = 0x10000
STOP_SENTINEL = 0xFFFFE000
SPRG2_VALUE = 0xC05FF000                # exception scratch stack (G4)

HZ = 100                                # timer frequency


@dataclass
class MachineConfig:
    """Tunables for one simulated target node."""

    seed: int = 0
    #: stage-2 hardware exception handling base cost (cycles)
    stage2_cycles: int = 1100
    #: stage-3 software handler instruction count range
    handler_instructions: Tuple[int, int] = (150, 200)
    #: effective CPI for the handler model
    handler_cpi: float = 1.5
    #: crash-dump UDP loss probability
    dump_loss_probability: float = 0.08
    #: per-kernel-call step budget (exceeded -> hang)
    call_step_budget: int = 400_000
    #: watchdog timeout in cycles
    watchdog_cycles: int = 600_000_000
    #: pad each timer quantum to the full 10ms tick
    pad_quanta: bool = True
    #: execution core: "block" runs compiled superblocks with a
    #: single-step fallback, "step" is the plain interpreter
    exec_mode: str = "block"


@dataclass
class Task:
    pid: int
    name: str
    kind: str                           # "user" | "kthread"
    stack_base: int
    stack_top: int
    entry: str = ""                     # kthread kernel function
    seg_fs: int = 0x33
    seg_gs: int = 0x3B

    @property
    def user_buf(self) -> int:
        return USER_XCHG_BASE + self.pid * 0x1000


_DEFAULT_TASKS = (
    Task(0, "init", "user", 0, 0),
    Task(1, "kupdate", "kthread", 0, 0, entry="kupdate"),
    Task(2, "kjournald", "kthread", 0, 0, entry="kjournald"),
    Task(3, "bench-a", "user", 0, 0),
    Task(4, "bench-b", "user", 0, 0),
    Task(5, "bench-c", "user", 0, 0),
)


class Machine:
    """One target system (paper Figure 1, right-hand box)."""

    def __init__(self, arch: str, image: Optional[KernelImage] = None,
                 config: Optional[MachineConfig] = None,
                 collector: Optional[Callable] = None):
        self.arch = arch
        self.image = image if image is not None else build_kernel(arch)
        self.config = config if config is not None else MachineConfig()
        self._rng: Optional[random.Random] = None
        self.cpu = X86CPU() if arch == "x86" else PPCCPU()
        self.clock_hz = self.cpu.CLOCK_HZ
        self.tick_cycles = self.clock_hz // HZ

        channel = LossyChannel(self.config.dump_loss_probability,
                               seed=self.config.seed ^ 0x5EED)
        self.nic = NIC(channel, receiver=collector)
        self.watchdog = Watchdog(self.config.watchdog_cycles)

        self.tasks: Dict[int, Task] = {}
        self.current_pid = 0
        self.booted = False
        self.syscalls_completed = 0
        self.timer_ticks = 0
        self._quantum_start_cycles = 0

        # single scheduled action: (instret threshold, callback)
        self._pending_action: Optional[Tuple[int, Callable]] = None

        # expected values of registers with deferred-check semantics
        self._expected: Dict[str, int] = {}

        # flight recorder (repro.trace): None = tracing disabled; set
        # through attach_tracer() only, mirrored into cpu.tracer
        self.trace = None

        if self.config.exec_mode not in ("step", "block"):
            raise ValueError(
                f"exec_mode must be 'step' or 'block', "
                f"got {self.config.exec_mode!r}")
        if self.config.exec_mode == "block":
            self.cpu._block_cache = BlockCache()

        self._map_memory()
        if arch == "ppc":
            self.cpu.on_spr_write = self._on_spr_write

    @property
    def rng(self) -> random.Random:
        """Machine-level RNG, seeded lazily from ``config.seed``.

        Forking is the hot path and ``Random(seed)`` state is a pure
        function of the seed, so construction is deferred to first use.
        """
        if self._rng is None:
            self._rng = random.Random(self.config.seed)
        return self._rng

    # ------------------------------------------------------------------
    # memory map + boot

    def _map_memory(self) -> None:
        image = self.image
        aspace = self.cpu.aspace
        text_size = (len(image.text_bytes) + 4095) & ~4095
        data_size = (len(image.data_bytes) + 4095) & ~4095
        aspace.map_region(Region(image.text_base, text_size, "rx",
                                 "ktext"))
        # no NX bit in 2004-era IA-32 or our PPC BAT model: data and
        # stacks are executable, so wild jumps decode whatever is there
        aspace.map_region(Region(image.data_base, data_size, "rwx",
                                 "kdata"))
        if image.heap_bytes:
            heap_size = (len(image.heap_bytes) + 4095) & ~4095
            aspace.map_region(Region(image.heap_base, heap_size, "rwx",
                                     "kheap"))
            self.cpu.mem.write(image.heap_base, image.heap_bytes)
        aspace.map_region(Region(USER_XCHG_BASE, USER_XCHG_SIZE, "rwx",
                                 "uxchg"))
        self.cpu.mem.write(image.text_base, image.text_bytes)
        self.cpu.mem.write(image.data_base, image.data_bytes)

    def boot(self, extra_tasks: int = 0) -> None:
        """Initialize the kernel and create the task population."""
        specs = list(_DEFAULT_TASKS)
        for index in range(extra_tasks):
            specs.append(Task(6 + index, f"extra-{index}", "user", 0, 0))
        for spec in specs:
            base = KSTACK_AREA + spec.pid * KSTACK_STRIDE
            spec.stack_base = base
            spec.stack_top = base + KSTACK_SIZE
            self.cpu.aspace.map_region(
                Region(base, KSTACK_SIZE, "rwx",
                       f"kstack:{spec.pid}"))
            self.tasks[spec.pid] = spec
        self.current_pid = 0
        self.call_kernel("kernel_init")
        for spec in self.tasks.values():
            result = self.call_kernel(
                "task_create", (spec.pid, spec.stack_base,
                                spec.stack_top))
            if result == 0xFFFFFFFF:
                raise RuntimeError(f"task_create({spec.pid}) failed")
        if self.arch == "ppc":
            self.cpu.spr[SPR_SPRG2] = SPRG2_VALUE
            self._expected["sprg2"] = SPRG2_VALUE
        else:
            self._expected["idtr_base"] = self.cpu.idtr_base
            self._expected["gdtr_base"] = self.cpu.gdtr_base
        self.watchdog.pet(self.cpu.cycles)
        self._quantum_start_cycles = self.cpu.cycles
        self.booted = True

    # ------------------------------------------------------------------
    # forking (campaign speed: boot + workload setup once, clone many)

    def fork(self, config: Optional[MachineConfig] = None,
             collector: Optional[Callable] = None,
             eager: bool = False) -> "Machine":
        """Clone this booted machine into an independent twin.

        The clone shares memory pages copy-on-write with this machine
        (each side privatizes a page on first write, so the fork costs
        O(pages-written-after-fork), not O(pages-touched-at-boot)) and
        starts with this machine's decoded-instruction cache as its
        warm tier — safe because memory is bit-identical at the fork
        instant and both CPUs invalidate decodes on text writes.  CPU
        state and task bookkeeping are copied; the clone gets its own
        debug unit, watchdog, NIC channel, and RNG (seeded from
        *config*), so campaigns can boot and set up the workload once
        and fork a pristine machine per injection.

        *eager* restores the pre-COW deep page copy with a cold CPU —
        the benchmark baseline, bit-identical in results but slower.
        """
        if not self.booted:
            raise RuntimeError("fork() requires a booted machine")
        clone = Machine.__new__(Machine)
        clone.arch = self.arch
        clone.image = self.image
        clone.config = config if config is not None else self.config
        clone._rng = None
        if eager:
            # faithful pre-COW baseline: RNGs were built at construction
            clone._rng = random.Random(clone.config.seed)
            clone.cpu = X86CPU() if self.arch == "x86" else PPCCPU()
        else:
            memory = self.cpu.mem.fork()
            clone.cpu = X86CPU(memory=memory) if self.arch == "x86" \
                else PPCCPU(memory=memory)
            clone.cpu.inherit_icache(self.cpu)
        clone.clock_hz = self.clock_hz
        clone.tick_cycles = self.tick_cycles
        channel = LossyChannel(clone.config.dump_loss_probability,
                               seed=clone.config.seed ^ 0x5EED)
        if eager:
            channel._rng = random.Random(channel._seed)
        clone.nic = NIC(channel, receiver=collector)
        clone.watchdog = Watchdog(clone.config.watchdog_cycles)
        clone.tasks = {pid: Task(task.pid, task.name, task.kind,
                                 task.stack_base, task.stack_top,
                                 task.entry, task.seg_fs, task.seg_gs)
                       for pid, task in self.tasks.items()}
        clone.current_pid = self.current_pid
        clone.booted = True
        clone.syscalls_completed = self.syscalls_completed
        clone.timer_ticks = self.timer_ticks
        clone._quantum_start_cycles = self._quantum_start_cycles
        clone._pending_action = None
        clone._expected = dict(self._expected)
        clone.trace = None               # tracing never inherits

        if clone.config.exec_mode == "block":
            cache = BlockCache()
            if not eager and self.cpu._block_cache is not None:
                cache.inherit(self.cpu._block_cache)
            clone.cpu._block_cache = cache

        # memory: eager baseline copies touched pages and replays the
        # region mapping (COW shares pages above and adopts the
        # already-validated region table wholesale)
        if eager:
            clone.cpu.mem._pages = {
                index: bytearray(page)
                for index, page in self.cpu.mem._pages.items()}
            for region in self.cpu.aspace.regions:
                clone.cpu.aspace.map_region(region)
        else:
            clone.cpu.aspace.clone_layout(self.cpu.aspace)

        # CPU architectural state
        src, dst = self.cpu, clone.cpu
        if self.arch == "x86":
            dst.regs = list(src.regs)
            dst.eip = src.eip
            dst.eflags = src.eflags
            dst.sregs = list(src.sregs)
            dst.cr0, dst.cr2, dst.cr3, dst.cr4 = \
                src.cr0, src.cr2, src.cr3, src.cr4
            dst.gdtr_base, dst.gdtr_limit = src.gdtr_base, src.gdtr_limit
            dst.idtr_base, dst.idtr_limit = src.idtr_base, src.idtr_limit
            dst.ldtr, dst.tr = src.ldtr, src.tr
        else:
            dst.gpr = list(src.gpr)
            dst.pc = src.pc
            dst.lr, dst.ctr, dst.cr, dst.xer = \
                src.lr, src.ctr, src.cr, src.xer
            dst.set_msr(src.msr)
            dst.spr = dict(src.spr)
            dst.on_spr_write = clone._on_spr_write
        dst.cycles = src.cycles
        dst.instret = src.instret
        clone.watchdog.pet(dst.cycles)
        return clone

    # ------------------------------------------------------------------
    # kernel global access (host-side convenience)

    def global_addr(self, name: str) -> int:
        return self.image.globals[name].addr

    def read_global(self, name: str, index: int = 0) -> int:
        info = self.image.globals[name]
        addr = info.addr + index * info.elem_size
        little = self.image.little_endian
        if info.access_width == 4:
            value = self.cpu.mem.read_u32(addr, little)
        elif info.access_width == 2:
            value = self.cpu.mem.read_u16(addr, little)
        else:
            value = self.cpu.mem.read_u8(addr)
        if info.load_mask:
            value &= info.load_mask
        return value

    def write_global(self, name: str, value: int, index: int = 0) -> None:
        info = self.image.globals[name]
        addr = info.addr + index * info.elem_size
        little = self.image.little_endian
        if info.access_width == 4:
            self.cpu.mem.write_u32(addr, value, little)
        elif info.access_width == 2:
            self.cpu.mem.write_u16(addr, value, little)
        else:
            self.cpu.mem.write_u8(addr, value)

    def write_user(self, task: Task, offset: int, data: bytes) -> None:
        self.cpu.mem.write(task.user_buf + offset, data)

    def read_user(self, task: Task, offset: int, size: int) -> bytes:
        return self.cpu.mem.read(task.user_buf + offset, size)

    # ------------------------------------------------------------------
    # tracing (repro.trace flight recorder)

    def attach_tracer(self, recorder) -> None:
        """Arm *recorder* on this machine and its CPU core.

        The recorder observes fetches, loads/stores, register writes,
        exception entry/exit, scheduler switches, and panics.  It only
        ever reads simulated state, so an armed run produces the same
        outcome, cycle counts, and RNG stream as an untraced one.
        """
        self.trace = recorder
        self.cpu.tracer = recorder

    def detach_tracer(self):
        """Disarm tracing; returns the recorder (flushed)."""
        recorder = self.trace
        if recorder is not None:
            recorder.flush(self.cpu)
        self.trace = None
        self.cpu.tracer = None
        return recorder

    # ------------------------------------------------------------------
    # injection support

    def schedule_action(self, at_instret: int, action: Callable) -> None:
        """Run *action* once the CPU has retired *at_instret* instrs."""
        self._pending_action = (at_instret, action)

    def flip_memory_bit(self, addr: int, bit: int) -> int:
        """Flip one bit of one byte in physical memory.

        Returns the new byte value.  When the address lies in kernel
        text (the injector writes through the same path a
        debug-register-driven poke would take), only the decodes the
        written byte can corrupt are evicted — a single injected flip
        no longer throws away the whole warm decode cache.
        """
        byte = self.cpu.mem.read_u8(addr)
        byte ^= 1 << (bit & 7)
        self.cpu.mem.write_u8(addr, byte)
        image = self.image
        if image.text_base <= addr < image.text_end:
            self.cpu.invalidate_icache(addr, 1)
        return byte

    # ------------------------------------------------------------------
    # the execution core

    def call_kernel(self, name: str, args: Tuple[int, ...] = (),
                    budget: Optional[int] = None) -> int:
        """Run one kernel function to completion on the current stack."""
        cpu = self.cpu
        entry = self.image.functions[name].addr
        task = self.tasks.get(self.current_pid)
        stack_top = task.stack_top if task is not None \
            else KSTACK_AREA + KSTACK_SIZE
        budget = budget if budget is not None \
            else self.config.call_step_budget

        if self.arch == "x86":
            cpu.regs[4] = stack_top - 16
            for arg in reversed(args):
                cpu.regs[4] -= 4
                cpu.mem.write_u32(cpu.regs[4], arg & 0xFFFFFFFF, True)
            cpu.regs[4] -= 4
            cpu.mem.write_u32(cpu.regs[4], STOP_SENTINEL, True)
            cpu.eip = entry
        else:
            cpu.gpr[1] = stack_top - 64
            for index, arg in enumerate(args[:8]):
                cpu.gpr[3 + index] = arg & 0xFFFFFFFF
            cpu.lr = STOP_SENTINEL
            cpu.pc = entry

        steps = 0
        is_x86 = self.arch == "x86"
        # Compiled-block fast path.  Tracing observes every fetch and
        # memory access, so an armed recorder (or a CPU-level tracer)
        # forces the step core; block boundaries are otherwise
        # unobservable because dispatch only runs a block when the
        # budget/pending-action/watchdog checks could not fire inside
        # it (the guards below are sufficient, not just heuristics).
        cache = cpu._block_cache
        use_blocks = (cache is not None and self.trace is None
                      and cpu.tracer is None)
        if use_blocks:
            hot = cache.hot
            debug = cpu.debug
            wd = self.watchdog
            arch, image = self.arch, self.image
        while True:
            if is_x86:
                if cpu.eip == STOP_SENTINEL:
                    return cpu.regs[0]
            elif cpu.pc == STOP_SENTINEL:
                return cpu.gpr[3]
            pending = self._pending_action
            if pending is not None and cpu.instret >= pending[0]:
                self._pending_action = None
                pending[1]()
                pending = self._pending_action   # may have rescheduled
            if use_blocks and not cpu.halted and not debug._insn_bps:
                if is_x86:
                    addr = cpu.eip
                    fetch_ok = cpu.aspace.translation_on
                else:
                    addr = cpu.pc & 0xFFFFFFFC
                    fetch_ok = cpu._high_fetch_fault is None
                if fetch_ok:
                    blk = hot.get(addr)
                    if blk is None:
                        blk = lookup_block(cpu, cache, addr, arch, image)
                    if (blk is not None and blk.fn is not None
                            and steps + blk.n <= budget
                            and (pending is None
                                 or pending[0] - cpu.instret >= blk.n)
                            and cpu.cycles + blk.max_cycles
                                - wd._last_pet <= wd.timeout_cycles):
                        base = cpu.instret
                        try:
                            blk.fn(cpu)
                        except (X86Fault, PPCFault) as fault:
                            steps += cpu.instret - base
                            if self._fault_is_benign(fault):
                                continue
                            self._crash(fault)
                        steps += blk.n
                        continue
            try:
                cpu.step()
            except (X86Fault, PPCFault) as fault:
                if self._fault_is_benign(fault):
                    if self.trace is not None:
                        self.trace.on_exc_enter(self, fault, fatal=False)
                        self.trace.on_exc_exit(self, fault)
                    continue
                self._crash(fault)
            steps += 1
            if steps > budget:
                raise HangDetected(name, cpu.cycles,
                                   "kernel call budget exceeded")
            if self.watchdog.expired(cpu.cycles):
                self.watchdog.fire()
                raise HangDetected(name, cpu.cycles, "watchdog fired")

    def syscall(self, nr: int, a: int = 0, b: int = 0, c: int = 0) -> int:
        """Issue one system call on behalf of the current task."""
        if self.arch == "ppc":
            self._check_sprg2()
        value = self.call_kernel("do_syscall", (nr, a, b, c))
        self.syscalls_completed += 1
        self.watchdog.pet(self.cpu.cycles)
        return value

    def run_kthread(self, pid: int) -> int:
        """Give a kernel thread one pass (as schedule() would)."""
        task = self.tasks[pid]
        if task.kind != "kthread":
            raise ValueError(f"task {pid} is not a kernel thread")
        saved = self.current_pid
        self._switch_to(pid)
        try:
            if self.arch == "ppc":
                self._check_sprg2()
            return self.call_kernel(task.entry)
        finally:
            self._switch_to(saved)

    def deliver_timer(self) -> None:
        """One timer interrupt: tick, maybe reschedule, maybe switch.

        The tick fires at the 10 ms quantum boundary, so simulated time
        is advanced to the boundary *first* — anything that crashes
        during tick delivery (IDT vectoring, NT check, segment reloads
        at the context switch) is timestamped there, which is how
        errors parked in rarely-consumed state accumulate the paper's
        multi-million-cycle latencies.
        """
        cpu = self.cpu
        if self.config.pad_quanta:
            target = self._quantum_start_cycles + self.tick_cycles
            if cpu.cycles < target:
                cpu.cycles = target
        if self.arch == "x86":
            if not cpu.eflags & FLAG_IF:
                self._quantum_start_cycles = cpu.cycles
                return                   # interrupts masked
            self._check_exception_delivery_x86()
        else:
            self._check_sprg2()
        self.timer_ticks += 1
        cpu.cycles += 300                # interrupt entry/exit cost
        self.call_kernel("timer_tick")
        if self.read_global("need_resched"):
            self.call_kernel("schedule")
            new_pid = self.read_global("current_pid")
            if new_pid != self.current_pid and new_pid in self.tasks:
                self._switch_to(new_pid)
        if self.arch == "x86" and cpu.eflags & FLAG_NT:
            # iret with NT set: chained return to an invalid task —
            # the paper's only source of Invalid TSS crashes
            self._crash(X86Fault(
                X86Vector.INVALID_TSS,
                detail="iret from timer with NT set"))
        self._quantum_start_cycles = cpu.cycles

    def think(self, cycles: int) -> None:
        """Advance time while 'user space' computes."""
        self.cpu.cycles += cycles

    # ------------------------------------------------------------------
    # context switching

    def _switch_to(self, pid: int) -> None:
        task = self.tasks[pid]
        prev = self.tasks[self.current_pid]
        cpu = self.cpu
        if self.arch == "x86":
            # save raw selectors (no validation on save), reload the
            # next task's (validated load -> #GP on a corrupted value,
            # possibly a context switch *much* later: the paper's
            # longest latencies)
            prev.seg_fs = cpu.sregs[SEG_FS]
            prev.seg_gs = cpu.sregs[SEG_GS]
            try:
                cpu.load_sreg(SEG_FS, task.seg_fs)
                cpu.load_sreg(SEG_GS, task.seg_gs)
            except X86Fault as fault:
                self._crash(fault)
            cpu.cycles += 80             # TSS-ish switch cost
        else:
            cpu.cycles += 60
        if self.trace is not None:
            self.trace.on_sched(self, self.current_pid, pid)
        self.current_pid = pid
        # keep the kernel's current task pointer coherent with the
        # machine-level switch (what switch_to() does in entry.S)
        self.write_global("current_pid", pid)
        tasks_info = self.image.globals["task_table"]
        self.write_global("current",
                          tasks_info.addr + pid * tasks_info.elem_size)

    # ------------------------------------------------------------------
    # deferred register-corruption checks

    def _check_sprg2(self) -> None:
        """G4 exception entry uses SPRG2 for the stack switch."""
        value = self.cpu.spr.get(SPR_SPRG2, 0)
        if value != self._expected.get("sprg2", value):
            self._crash(PPCFault(
                PPCVector.PROGRAM,
                address=value,
                detail="exception stack switch through corrupted SPRG2",
                program_reason=ProgramReason.ILLEGAL))

    def _check_exception_delivery_x86(self) -> None:
        cpu = self.cpu
        if not cpu.cr0 & CR0_PE:
            self._crash(X86Fault(
                X86Vector.GENERAL_PROTECTION,
                detail="exception delivery with CR0.PE clear"))
        if cpu.idtr_base != self._expected.get("idtr_base",
                                               cpu.idtr_base):
            # garbage IDT: vectoring is hopeless -> triple-fault-like
            fault = X86Fault(X86Vector.DOUBLE_FAULT,
                             detail="IDT base corrupted: cannot vector")
            if self.trace is not None:
                self.trace.on_exc_enter(self, fault, fatal=True)
            report = self._build_report(fault)
            report.dump_failed = True
            if self.trace is not None:
                self.trace.on_crash(self, report)
            raise KernelCrash(report)
        if cpu.idtr_limit < 0x100:
            self._crash(X86Fault(
                X86Vector.GENERAL_PROTECTION,
                detail="timer vector beyond IDT limit",
                error_code=0x20 * 8 + 2))

    # ------------------------------------------------------------------
    # crash machinery

    def _fault_is_benign(self, fault) -> bool:
        vector = fault.vector
        if self.arch == "x86":
            return vector == X86Vector.SYSCALL
        return vector == PPCVector.SYSCALL

    def _on_spr_write(self, spr: int, old: int, new: int) -> None:
        from repro.machine.register_semantics import apply_ppc_spr_effect
        apply_ppc_spr_effect(self, spr, old, new)

    def _walk_frames(self) -> Tuple[int, ...]:
        """Crash handler frame-pointer walk (defensive)."""
        cpu = self.cpu
        frames: List[int] = []
        if self.arch == "x86":
            pointer = cpu.regs[5]                 # ebp chain
            for _ in range(8):
                region = cpu.aspace.find_region(pointer)
                if region is None or "w" not in region.perm:
                    break
                ret = cpu.mem.read_u32((pointer + 4) & 0xFFFFFFFF, True)
                frames.append(ret)
                pointer = cpu.mem.read_u32(pointer, True)
        else:
            pointer = cpu.gpr[1]                  # back chain
            for _ in range(8):
                region = cpu.aspace.find_region(pointer)
                if region is None or "w" not in region.perm:
                    break
                nxt = cpu.mem.read_u32(pointer, False)
                lr_save = cpu.mem.read_u32((nxt + 4) & 0xFFFFFFFF, False) \
                    if nxt else 0
                frames.append(lr_save)
                if nxt <= pointer:
                    break
                pointer = nxt
        return tuple(frames)

    def _build_report(self, fault) -> CrashReport:
        cpu = self.cpu
        pc = cpu.current_eip if self.arch == "x86" else cpu.current_pc
        function = self.image.function_at(pc)
        report = CrashReport(
            arch=self.arch,
            vector=fault.vector,
            address=fault.address,
            detail=fault.detail,
            pc=pc,
            cycles_at_crash=cpu.cycles,
            instret_at_crash=cpu.instret,
            registers=cpu.snapshot(),
            function=function.name if function else "",
            subsystem=function.subsystem if function else "",
            error_code=getattr(fault, "error_code", 0),
            program_reason=getattr(fault, "program_reason", None),
        )
        return report

    def _crash(self, fault) -> None:
        """Route a fatal fault through the exception/crash machinery."""
        cpu = self.cpu
        # stage-1 boundary: the kernel has just run into the bad
        # instruction; the hardware takes over here (paper Figure 3)
        if self.trace is not None:
            self.trace.on_exc_enter(self, fault, fatal=True)
        # stage 2: hardware exception handling (>1000 cycles, some
        # address-dependent variance)
        cpu.cycles += self.config.stage2_cycles + \
            ((fault.address or cpu.cycles) & 0x1FF)

        report = self._build_report(fault)
        # stage-2 boundary: vectoring done, the software handler —
        # including the G4's exception-entry wrapper — starts now
        if self.trace is not None:
            self.trace.on_exc_stage3(self)

        task = self.tasks.get(self.current_pid)
        if self.arch == "ppc":
            # The G4 kernel's exception-entry checking wrapper: examine
            # the stack pointer before dispatching the handler.
            sp = cpu.gpr[1]
            if task is not None and not \
                    (task.stack_base <= sp < task.stack_top):
                report.stack_out_of_range = True
            cpu.cycles += 40             # the wrapper itself is cheap
        else:
            # The P4 kernel has no such wrapper; instead, the handler
            # immediately pushes an exception frame on whatever ESP
            # points at.  An unusable ESP means double fault: no dump.
            esp = cpu.regs[4]
            region = cpu.aspace.find_region((esp - 32) & 0xFFFFFFFF)
            if region is None or "w" not in region.perm:
                report.dump_failed = True

        # software-detected panic?
        try:
            code = self.read_global("panic_code")
        except KeyError:                 # pragma: no cover
            code = 0
        if code:
            report.panic = True
            report.panic_code = code
            if self.trace is not None:
                self.trace.on_panic(self, code)

        # stage 3: the software exception handler (150-200 instructions)
        low, high = self.config.handler_instructions
        instructions = low + (report.pc % max(1, high - low))
        cpu.cycles += int(instructions * self.config.handler_cpi)
        report.cycles_at_crash = cpu.cycles
        if self.trace is not None:
            self.trace.on_crash(self, report)

        if not report.dump_failed:
            report.frame_pointers = self._walk_frames()
            vector_code = int(report.vector) if \
                hasattr(report.vector, "__int__") else 0
            payload = encode_crash_packet(
                self.arch, vector_code, report.pc,
                report.address or 0, cpu.cycles,
                list(report.frame_pointers), report.detail)
            report.dump_delivered = self.nic.send_raw(payload)
        raise KernelCrash(report)
