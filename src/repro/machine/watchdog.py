"""Watchdog card: hang detection and automated reboot.

The paper embeds hardware watchdog cards (driven by Linux drivers) in
every target machine so that a hung system reboots without operator
intervention.  Our model is the same contract: the machine *pets* the
watchdog whenever the workload makes forward progress; if too many
cycles elapse between pets, the watchdog fires.
"""

from __future__ import annotations


class Watchdog:
    """Cycle-budget liveness monitor."""

    def __init__(self, timeout_cycles: int = 5_000_000):
        if timeout_cycles <= 0:
            raise ValueError("timeout must be positive")
        self.timeout_cycles = timeout_cycles
        self._last_pet = 0
        self.fired = False
        self.reboots = 0

    def pet(self, now_cycles: int) -> None:
        """Record forward progress."""
        self._last_pet = now_cycles

    def expired(self, now_cycles: int) -> bool:
        return now_cycles - self._last_pet > self.timeout_cycles

    def fire(self) -> None:
        """The card pulls the reset line."""
        self.fired = True
        self.reboots += 1

    def reset(self) -> None:
        self.fired = False
        self._last_pet = 0
