"""Snapshot ladder over the clean workload window.

Every injection experiment replays the clean run from the fork point
(``boot_instret``) up to its trigger instant before anything
campaign-specific happens.  That prefix is **identical across the whole
campaign**, so it is paid for once here: one extra clean run per
:class:`~repro.injection.campaign.CampaignContext` captures K COW
machine forks — plus the driver/program state beside them — at evenly
spaced instret points along the window, and the dispatcher
(:meth:`Campaign.spec_for` + :class:`~repro.injection.injector
.InjectionRun`) starts each experiment from the latest checkpoint at or
before its trigger, fast-forwarding only the residue.

Why the dispatched run is bit-identical to the from-boot run:

* **The pre-trigger window is seed-invariant.**  Per-experiment state
  that depends on ``RunSpec.seed`` is consulted only *after* the
  trigger can have fired: ``Machine.rng`` and the dump-loss channel RNG
  are seeded lazily and drawn from only while a crash dump is being
  delivered, and the benchmark programs carry their own RNGs cloned
  from the *mix* seed (fixed per context), not the experiment seed.
  :func:`build_ladder` **asserts** this after the capture run — a lazy
  RNG that got materialized, or a packet that got transmitted, fails
  the build loudly instead of silently corrupting every dispatched
  experiment.
* **Snapshots sit at scheduling-round boundaries** (the driver's
  ``boundary`` hook), never inside a kernel call, so no Python-level
  call stack needs capturing: machine + driver counters are the whole
  state.  Captures never perturb the capture run — a COW fork only
  reads pages, and program clones resume RNG streams without touching
  the originals.
* **Per-experiment config applies at dispatch.**  The experiment forks
  the checkpoint machine with its own ``MachineConfig`` (seed,
  dump-loss, exec mode), exactly as the from-boot path forks the base
  machine — the checkpoint machine is just further along the same
  deterministic execution.
* **Block/step mode mixing is safe.**  The capture run executes under
  the context's default (block) core; the compiled-block core is
  bit-identical to the single-step core including cycle counts
  (PR 6's differential harness), so a step-mode experiment dispatched
  from a block-captured snapshot sees the same machine state it would
  have stepped to itself.

Selection strictness: stack/data/register triggers (``at_instret``)
require a checkpoint **strictly below** the trigger — the clean run's
pending-action check could fire mid-call before a boundary with the
same instret, so equality is ambiguous.  Code triggers (the probe's
first window fetch of the target address, recorded at pre-retirement
instret f) accept equality: a boundary observing ``instret == f``
necessarily precedes the fetch that retires instruction f+1.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.machine.machine import Machine
from repro.workload.driver import UnixBenchDriver
from repro.workload.programs import BenchProgram, clone_programs

#: default rungs per ladder (``CampaignConfig.checkpoints``); the
#: capture run costs one clean window, so more rungs are nearly free —
#: the ceiling is resident memory for K forked machines
DEFAULT_CHECKPOINTS = 8


class LadderInvariantError(RuntimeError):
    """The capture run violated a seed-invariance precondition."""


@dataclass
class Checkpoint:
    """One rung: a clean machine frozen at a scheduling boundary."""

    #: retired instructions at capture (a driver-round boundary)
    instret: int
    #: clean COW fork, never executed past the boundary; experiments
    #: fork *it* again with their per-experiment config
    machine: Machine
    #: program states at the boundary (cloned again per experiment)
    programs: Dict[int, BenchProgram]
    #: driver counters at the boundary
    completed_ops: int
    ops_since_tick: int
    rounds: int
    #: the capture run's watchdog ``_last_pet`` — ``Machine.fork`` pets
    #: at fork-time cycles, which a dispatched run must undo to keep
    #: hang detection (and the cycle counts in its messages) identical
    last_pet: int


@dataclass
class CheckpointLadder:
    """All rungs for one (arch, seed, ops) context, ascending instret."""

    arch: str
    seed: int
    ops: int
    boot_instret: int
    total_instret: int
    checkpoints: List[Checkpoint]

    def best_for(self, trigger_instret: int,
                 inclusive: bool = False) -> Optional[Checkpoint]:
        """Latest rung usable for a trigger at *trigger_instret*.

        *inclusive* admits a rung exactly at the trigger (sound for
        code triggers, see the module docstring); otherwise the rung
        must lie strictly below.  ``None`` when no rung qualifies —
        the experiment then runs from boot as before.
        """
        keys = [checkpoint.instret for checkpoint in self.checkpoints]
        position = (bisect.bisect_right(keys, trigger_instret)
                    if inclusive
                    else bisect.bisect_left(keys, trigger_instret))
        if position == 0:
            return None
        return self.checkpoints[position - 1]


def build_ladder(context, count: int) -> CheckpointLadder:
    """Capture *count* snapshots along *context*'s clean window.

    Runs the clean workload once more (forked off the context's base
    machine, so boot is not repaid), capturing a COW fork at the first
    scheduling boundary at or past each of *count* evenly spaced
    instret thresholds.  Raises :class:`LadderInvariantError` if the
    capture run consumed any per-machine RNG or transmitted a packet —
    the preconditions for dispatch being bit-identical — or if it
    failed to retrace the clean-run probe exactly.
    """
    if count <= 0:
        raise ValueError(f"checkpoint count must be positive, "
                         f"got {count}")
    probe = context.probe
    boot, total = probe.boot_instret, probe.total_instret
    span = total - boot
    thresholds = [boot + (index * span) // (count + 1)
                  for index in range(1, count + 1)]

    machine = context.base_machine.fork()
    driver = UnixBenchDriver(machine, seed=context.seed,
                             programs=clone_programs(
                                 context.base_programs))
    checkpoints: List[Checkpoint] = []
    cursor = 0

    def capture() -> None:
        nonlocal cursor
        if cursor >= len(thresholds):
            return
        instret = machine.cpu.instret
        if instret < thresholds[cursor]:
            return
        # several thresholds can fall inside one long scheduling round;
        # they collapse onto this single boundary (one rung, not
        # duplicates at the same instret)
        while cursor < len(thresholds) and \
                thresholds[cursor] <= instret:
            cursor += 1
        checkpoints.append(Checkpoint(
            instret=instret,
            machine=machine.fork(),
            programs=clone_programs(driver.programs),
            completed_ops=driver.completed_ops,
            ops_since_tick=driver._ops_since_tick,
            rounds=driver._rounds,
            last_pet=machine.watchdog._last_pet))

    driver.run(context.ops, boundary=capture)

    # seed-invariance postconditions (see module docstring): the clean
    # window must not have consumed per-machine randomness or sent
    # packets, and must have retraced the probe's run exactly
    if machine._rng is not None:
        raise LadderInvariantError(
            "capture run materialized Machine.rng: the pre-trigger "
            "window is not seed-invariant")
    if machine.nic.channel._rng is not None or machine.nic.tx_count:
        raise LadderInvariantError(
            "capture run touched the crash-dump channel: the "
            "pre-trigger window is not seed-invariant")
    if machine.cpu.instret != total:
        raise LadderInvariantError(
            f"capture run retired {machine.cpu.instret} instructions; "
            f"the clean-run probe retired {total}")
    for checkpoint in checkpoints:
        if checkpoint.machine._rng is not None:
            raise LadderInvariantError(
                "captured machine carries a materialized RNG")

    return CheckpointLadder(
        arch=context.arch, seed=context.seed, ops=context.ops,
        boot_instret=boot, total_instret=total,
        checkpoints=checkpoints)
