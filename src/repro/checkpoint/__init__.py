"""Clean-run checkpoint ladder: skip the pre-trigger replay.

See :mod:`repro.checkpoint.ladder` for the placement policy and the
seed-invariance argument that makes checkpoint dispatch bit-identical
to the from-boot path.
"""

from repro.checkpoint.ladder import (
    DEFAULT_CHECKPOINTS, Checkpoint, CheckpointLadder, build_ladder,
)

__all__ = [
    "DEFAULT_CHECKPOINTS", "Checkpoint", "CheckpointLadder",
    "build_ladder",
]
