"""The paper's published numbers, and paper-vs-measured comparison.

Reference values are transcribed from the paper:

* Tables 5 and 6 (activation + failure distribution per campaign);
* Figures 4-6 and 10-12 (crash-cause distributions, in percent of
  known crashes);
* Section 6's cycles-to-crash statements (as checkable shape claims).

The reproduction is *shape-faithful*, not number-exact: the substrate
is a simulator, campaign sizes are scaled, and the kernel is a
miniature.  ``render_comparison`` therefore reports paper vs measured
side by side, and the shape assertions live in
``tests/test_shapes.py`` / ``benchmarks``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.analysis.figures import crash_cause_percentages
from repro.analysis.tables import CampaignRow
from repro.injection.outcomes import (
    CampaignKind, CrashCauseG4, CrashCauseP4,
)

# ---------------------------------------------------------------------------
# Tables 5 / 6 reference (percent values as printed in the paper)


@dataclass(frozen=True)
class PaperRow:
    injected: int
    activation_pct: Optional[float]      # None = N/A
    not_manifested_pct: float
    fsv_pct: float
    crash_known_pct: float
    hang_unknown_pct: float

    @property
    def manifested_pct(self) -> float:
        return self.fsv_pct + self.crash_known_pct + self.hang_unknown_pct


PAPER_TABLE5_P4: Dict[CampaignKind, PaperRow] = {
    CampaignKind.STACK: PaperRow(10_143, 29.3, 43.9, 0.0, 38.2, 17.9),
    CampaignKind.REGISTER: PaperRow(3_866, None, 89.5, 0.0, 7.9, 2.6),
    CampaignKind.DATA: PaperRow(46_000, 0.5, 34.1, 0.0, 42.5, 23.4),
    CampaignKind.CODE: PaperRow(1_790, 54.9, 31.4, 1.3, 46.3, 21.0),
}

PAPER_TABLE6_G4: Dict[CampaignKind, PaperRow] = {
    CampaignKind.STACK: PaperRow(3_017, 39.9, 78.9, 0.0, 14.3, 7.0),
    CampaignKind.REGISTER: PaperRow(3_967, None, 95.1, 0.0, 1.7, 3.1),
    CampaignKind.DATA: PaperRow(46_000, 1.5, 78.3, 1.0, 7.8, 12.9),
    CampaignKind.CODE: PaperRow(2_188, 64.7, 41.0, 2.3, 40.7, 16.0),
}


def paper_table(arch: str) -> Dict[CampaignKind, PaperRow]:
    return PAPER_TABLE5_P4 if arch == "x86" else PAPER_TABLE6_G4


# ---------------------------------------------------------------------------
# Figures 4-6, 10-12 reference (percent of known crashes)

PAPER_FIG4_P4_OVERALL = {
    CrashCauseP4.BAD_PAGING: 43.2,
    CrashCauseP4.NULL_POINTER: 27.5,
    CrashCauseP4.INVALID_INSTRUCTION: 16.0,
    CrashCauseP4.GENERAL_PROTECTION: 12.1,
    CrashCauseP4.INVALID_TSS: 1.0,
    CrashCauseP4.KERNEL_PANIC: 0.1,
    CrashCauseP4.DIVIDE_ERROR: 0.1,
    CrashCauseP4.BOUNDS_TRAP: 0.1,
}

PAPER_FIG5_G4_OVERALL = {
    CrashCauseG4.BAD_AREA: 66.9,
    CrashCauseG4.ILLEGAL_INSTRUCTION: 16.3,
    CrashCauseG4.STACK_OVERFLOW: 12.7,
    CrashCauseG4.ALIGNMENT: 1.6,
    CrashCauseG4.MACHINE_CHECK: 1.4,
    CrashCauseG4.BUS_ERROR: 0.7,
    CrashCauseG4.BAD_TRAP: 0.4,
    CrashCauseG4.PANIC: 0.1,
}

PAPER_FIG6_STACK = {
    "x86": {
        CrashCauseP4.BAD_PAGING: 45.4,
        CrashCauseP4.NULL_POINTER: 31.5,
        CrashCauseP4.INVALID_INSTRUCTION: 15.9,
        CrashCauseP4.GENERAL_PROTECTION: 5.5,
        CrashCauseP4.INVALID_TSS: 1.0,
        CrashCauseP4.KERNEL_PANIC: 0.4,
        CrashCauseP4.DIVIDE_ERROR: 0.2,
    },
    "ppc": {
        CrashCauseG4.BAD_AREA: 53.5,
        CrashCauseG4.STACK_OVERFLOW: 41.9,
        CrashCauseG4.ILLEGAL_INSTRUCTION: 2.9,
        CrashCauseG4.ALIGNMENT: 1.2,
        CrashCauseG4.MACHINE_CHECK: 0.6,
    },
}

PAPER_FIG10_REGISTER = {
    "x86": {
        CrashCauseP4.BAD_PAGING: 37.4,
        CrashCauseP4.GENERAL_PROTECTION: 35.1,
        CrashCauseP4.NULL_POINTER: 18.4,
        CrashCauseP4.INVALID_INSTRUCTION: 6.2,
        CrashCauseP4.INVALID_TSS: 3.0,
    },
    "ppc": {
        CrashCauseG4.BAD_AREA: 75.4,
        CrashCauseG4.ILLEGAL_INSTRUCTION: 11.6,
        CrashCauseG4.STACK_OVERFLOW: 4.3,
        CrashCauseG4.MACHINE_CHECK: 4.3,
        CrashCauseG4.ALIGNMENT: 1.4,
        CrashCauseG4.BUS_ERROR: 1.4,
        CrashCauseG4.BAD_TRAP: 1.4,
    },
}

PAPER_FIG11_CODE = {
    "x86": {
        CrashCauseP4.BAD_PAGING: 38.0,
        CrashCauseP4.NULL_POINTER: 31.9,
        CrashCauseP4.INVALID_INSTRUCTION: 24.2,
        CrashCauseP4.GENERAL_PROTECTION: 5.5,
        CrashCauseP4.DIVIDE_ERROR: 0.2,
    },
    "ppc": {
        CrashCauseG4.BAD_AREA: 49.5,
        CrashCauseG4.ILLEGAL_INSTRUCTION: 41.5,
        CrashCauseG4.STACK_OVERFLOW: 4.7,
        CrashCauseG4.ALIGNMENT: 1.9,
        CrashCauseG4.BUS_ERROR: 1.2,
        CrashCauseG4.MACHINE_CHECK: 0.5,
        CrashCauseG4.PANIC: 0.5,
        CrashCauseG4.BAD_TRAP: 0.2,
    },
}

PAPER_FIG12_DATA = {
    "x86": {
        CrashCauseP4.BAD_PAGING: 52.1,
        CrashCauseP4.NULL_POINTER: 28.1,
        CrashCauseP4.INVALID_INSTRUCTION: 17.7,
        CrashCauseP4.GENERAL_PROTECTION: 2.1,
    },
    "ppc": {
        CrashCauseG4.BAD_AREA: 89.1,
        CrashCauseG4.ILLEGAL_INSTRUCTION: 9.1,
        CrashCauseG4.ALIGNMENT: 1.8,
    },
}

PAPER_FIGURES = {
    4: ("Overall crash causes (P4)", "x86", PAPER_FIG4_P4_OVERALL),
    5: ("Overall crash causes (G4)", "ppc", PAPER_FIG5_G4_OVERALL),
}

PAPER_FIGURES_BY_KIND = {
    (6, "x86"): PAPER_FIG6_STACK["x86"],
    (6, "ppc"): PAPER_FIG6_STACK["ppc"],
    (10, "x86"): PAPER_FIG10_REGISTER["x86"],
    (10, "ppc"): PAPER_FIG10_REGISTER["ppc"],
    (11, "x86"): PAPER_FIG11_CODE["x86"],
    (11, "ppc"): PAPER_FIG11_CODE["ppc"],
    (12, "x86"): PAPER_FIG12_DATA["x86"],
    (12, "ppc"): PAPER_FIG12_DATA["ppc"],
}

FIGURE_OF_KIND = {
    CampaignKind.STACK: 6,
    CampaignKind.REGISTER: 10,
    CampaignKind.CODE: 11,
    CampaignKind.DATA: 12,
}

# Section 6 latency claims, as (campaign, arch, bound-cycles, direction,
# percent) tuples: "80% of G4 stack-error crashes are within 3k cycles".
PAPER_LATENCY_CLAIMS = (
    (CampaignKind.STACK, "ppc", 3_000, "below", 80.0),
    (CampaignKind.STACK, "x86", 3_000, "above", 80.0),
    (CampaignKind.CODE, "x86", 10_000, "below", 70.0),
    (CampaignKind.CODE, "ppc", 10_000, "above", 85.0),
)


# ---------------------------------------------------------------------------
# rendering


def render_table_comparison(rows: Iterable[CampaignRow],
                            arch: str) -> str:
    """Paper vs measured for Table 5/6 percentages.

    The measured column carries a Wilson 95% interval — at scaled
    campaign sizes the sampling error matters, and the interval says
    how much a given run actually supports.
    """
    from repro.analysis.stats import wilson

    reference = paper_table(arch)
    label = "Table 5 (P4)" if arch == "x86" else "Table 6 (G4)"
    lines: List[str] = [
        f"=== {label}: paper vs measured (percent, "
        f"[Wilson 95%]) ===",
        f"{'Campaign':<18} {'metric':<16} {'paper':>8} {'measured':>9} "
        f"{'95% CI':>16}",
    ]
    for row in rows:
        paper = reference[row.kind]
        denominator = row.denominator
        pairs = [
            ("activated", paper.activation_pct, row.activation_pct,
             row.activated, row.injected),
            ("not manifested", paper.not_manifested_pct,
             row.pct(row.not_manifested), row.not_manifested,
             denominator),
            ("fsv", paper.fsv_pct, row.pct(row.fsv), row.fsv,
             denominator),
            ("known crash", paper.crash_known_pct,
             row.pct(row.crash_known), row.crash_known, denominator),
            ("hang/unknown", paper.hang_unknown_pct,
             row.pct(row.hang_unknown), row.hang_unknown, denominator),
            ("manifested", paper.manifested_pct, row.manifested_pct,
             row.fsv + row.crash_known + row.hang_unknown,
             denominator),
        ]
        for metric, expected, measured, successes, trials in pairs:
            expected_text = "N/A" if expected is None \
                else f"{expected:7.1f}%"
            if measured is None or successes is None:
                measured_text = "N/A"
                interval_text = ""
            else:
                measured_text = f"{measured:7.1f}%"
                interval = wilson(successes, max(trials, 1))
                interval_text = (f"[{100 * interval.low:4.1f},"
                                 f"{100 * interval.high:5.1f}]")
            lines.append(f"{row.label:<18} {metric:<16} "
                         f"{expected_text:>8} {measured_text:>9} "
                         f"{interval_text:>16}")
    return "\n".join(lines)


def render_figure_comparison(results, figure: int, arch: str,
                             title: str) -> str:
    """Paper vs measured for one crash-cause figure."""
    if figure in PAPER_FIGURES:
        reference = PAPER_FIGURES[figure][2]
    else:
        reference = PAPER_FIGURES_BY_KIND[(figure, arch)]
    measured = crash_cause_percentages(results)
    lines = [f"=== Figure {figure}: {title} — paper vs measured ===",
             f"{'cause':<26} {'paper':>8} {'measured':>9}"]
    causes = sorted(set(reference) | set(measured),
                    key=lambda c: -(reference.get(c, 0.0)))
    for cause in causes:
        lines.append(
            f"{cause.value:<26} {reference.get(cause, 0.0):7.1f}% "
            f"{measured.get(cause, 0.0):8.1f}%")
    return "\n".join(lines)
