"""Statistical helpers for campaign percentages.

The paper reports point percentages over tens of thousands of
injections; scaled reproductions run hundreds, so the sampling error is
material.  This module provides Wilson score intervals for the
proportions in Tables 5/6 and a two-proportion z-test for the
cross-platform comparisons (e.g. "P4 stack manifestation exceeds
G4's"), so downstream users can state how much their scaled runs
actually support.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

#: z for 95% two-sided
Z95 = 1.959963984540054


@dataclass(frozen=True)
class Proportion:
    """A measured proportion with its Wilson 95% interval."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def point(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    @property
    def point_pct(self) -> float:
        return 100.0 * self.point

    def __str__(self) -> str:
        return (f"{self.point_pct:.1f}% "
                f"[{100 * self.low:.1f}, {100 * self.high:.1f}]")


def wilson(successes: int, trials: int, z: float = Z95) -> Proportion:
    """Wilson score interval — well-behaved at small n and extreme p."""
    if successes < 0 or trials < 0 or successes > trials:
        raise ValueError("need 0 <= successes <= trials")
    if trials == 0:
        return Proportion(0, 0, 0.0, 1.0)
    phat = successes / trials
    denom = 1 + z * z / trials
    centre = phat + z * z / (2 * trials)
    margin = z * math.sqrt(
        (phat * (1 - phat) + z * z / (4 * trials)) / trials)
    low = max(0.0, (centre - margin) / denom)
    high = min(1.0, (centre + margin) / denom)
    # the boundary cases are exact; remove float residue so the
    # interval always contains the point estimate
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return Proportion(successes, trials, low, high)


def two_proportion_z(successes_a: int, trials_a: int,
                     successes_b: int, trials_b: int) -> float:
    """z statistic for H0: p_a == p_b (pooled)."""
    if trials_a == 0 or trials_b == 0:
        return 0.0
    pa = successes_a / trials_a
    pb = successes_b / trials_b
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    if pooled in (0.0, 1.0):
        return 0.0
    se = math.sqrt(pooled * (1 - pooled)
                   * (1 / trials_a + 1 / trials_b))
    return (pa - pb) / se


def proportions_differ(successes_a: int, trials_a: int,
                       successes_b: int, trials_b: int,
                       z: float = Z95) -> bool:
    """True when the two proportions differ at the given z level."""
    return abs(two_proportion_z(successes_a, trials_a,
                                successes_b, trials_b)) > z


def manifestation_interval(row) -> Proportion:
    """Wilson interval for a CampaignRow's manifestation share."""
    manifested = row.fsv + row.crash_known + row.hang_unknown
    return wilson(manifested, row.denominator)


def activation_interval(row) -> Tuple[Proportion, bool]:
    """Wilson interval for activation; second element False for N/A."""
    if row.activated is None:
        return wilson(0, 0), False
    return wilson(row.activated, row.injected), True
