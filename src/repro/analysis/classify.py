"""Crash-cause classification: CrashReport -> Table 3 / Table 4 bucket.

Mirrors how the paper's off-line analysis buckets crash dump data:

P4 (Table 3): page faults split into NULL Pointer (faulting address in
the first page, the classic ``Unable to handle kernel NULL pointer
dereference``) versus Bad Paging; #UD is Invalid Instruction (including
the ud2a executed by kernel BUG checks — the paper's Figure 13 quirk);
#GP, #TS, #DE, #BR map directly; a set ``panic_code`` means the OS
itself detected the error (Kernel Panic).

G4 (Table 4): the exception-entry wrapper's out-of-range stack pointer
becomes Stack Overflow *regardless of the raw vector* (the wrapper runs
before the handler); DSI splits into Bad Area (unmapped) versus Bus
Error (protection); ISI and Program exceptions — including kernel BUG
traps, which Linux surfaces through the same path on both platforms —
are Illegal Instruction; Machine Check and Alignment map directly;
anything unrecognized is a Bad Trap.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.injection.outcomes import CrashCauseG4, CrashCauseP4
from repro.machine.events import CrashReport
from repro.ppc.exceptions import DSISR_PROTECTION, PPCVector
from repro.x86.exceptions import X86Vector

#: faulting addresses below this are NULL-pointer dereferences
NULL_PAGE_LIMIT = 0x1000

CrashCause = Union[CrashCauseP4, CrashCauseG4]


def classify_crash(report: CrashReport) -> CrashCause:
    if report.arch == "x86":
        return _classify_p4(report)
    return _classify_g4(report)


def _classify_p4(report: CrashReport) -> CrashCauseP4:
    if report.panic:
        return CrashCauseP4.KERNEL_PANIC
    vector = report.vector
    if vector == X86Vector.PAGE_FAULT:
        address = report.address or 0
        if address < NULL_PAGE_LIMIT:
            return CrashCauseP4.NULL_POINTER
        return CrashCauseP4.BAD_PAGING
    if vector == X86Vector.INVALID_OPCODE:
        return CrashCauseP4.INVALID_INSTRUCTION
    if vector == X86Vector.GENERAL_PROTECTION:
        return CrashCauseP4.GENERAL_PROTECTION
    if vector == X86Vector.INVALID_TSS:
        return CrashCauseP4.INVALID_TSS
    if vector == X86Vector.DIVIDE_ERROR:
        return CrashCauseP4.DIVIDE_ERROR
    if vector == X86Vector.BOUNDS:
        return CrashCauseP4.BOUNDS_TRAP
    if vector in (X86Vector.SEGMENT_NOT_PRESENT,
                  X86Vector.STACK_SEGMENT_FAULT,
                  X86Vector.OVERFLOW):
        # segmentation-flavoured oddities land in the GP bucket,
        # as the 2.4 kernel's die() messages do
        return CrashCauseP4.GENERAL_PROTECTION
    if vector == X86Vector.DOUBLE_FAULT:
        # a double fault with a surviving dump is still a paging-class
        # failure from the analyst's perspective
        return CrashCauseP4.BAD_PAGING
    return CrashCauseP4.GENERAL_PROTECTION


def _classify_g4(report: CrashReport) -> CrashCauseG4:
    if report.stack_out_of_range:
        # the checking wrapper fires before the handler dispatches
        return CrashCauseG4.STACK_OVERFLOW
    if report.panic:
        return CrashCauseG4.PANIC
    vector = report.vector
    if vector == PPCVector.DSI:
        if report.registers.get("dsisr", 0) & DSISR_PROTECTION:
            return CrashCauseG4.BUS_ERROR
        return CrashCauseG4.BAD_AREA
    if vector == PPCVector.ISI:
        # Linux/PPC routes instruction storage interrupts through
        # do_page_fault: an unmapped fetch oopses as "kernel access of
        # bad area", exactly like a data fault
        return CrashCauseG4.BAD_AREA
    if vector == PPCVector.PROGRAM:
        return CrashCauseG4.ILLEGAL_INSTRUCTION
    if vector == PPCVector.MACHINE_CHECK:
        return CrashCauseG4.MACHINE_CHECK
    if vector == PPCVector.ALIGNMENT:
        return CrashCauseG4.ALIGNMENT
    return CrashCauseG4.BAD_TRAP


def cause_label(cause: Optional[CrashCause]) -> str:
    return cause.value if cause is not None else "(unknown)"
