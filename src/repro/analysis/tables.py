"""Table 5 / Table 6 builders: activation and failure distribution.

Percentage conventions follow the paper exactly: the *Error Activated*
column is relative to all injected errors; every other percentage is
relative to *activated* errors (register campaigns, whose activation is
unobservable, report percentages relative to injected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.injection.outcomes import (
    CampaignKind, InjectionResult, Outcome,
)

_ROW_ORDER = (CampaignKind.STACK, CampaignKind.REGISTER,
              CampaignKind.DATA, CampaignKind.CODE)

_ROW_LABELS = {
    CampaignKind.STACK: "Stack",
    CampaignKind.REGISTER: "System Registers",
    CampaignKind.DATA: "Data",
    CampaignKind.CODE: "Code",
}


@dataclass
class CampaignRow:
    """One row of Table 5 / Table 6."""

    kind: CampaignKind
    injected: int
    activated: Optional[int]             # None = N/A (registers)
    not_manifested: int
    fsv: int
    crash_known: int
    hang_unknown: int

    @property
    def label(self) -> str:
        return _ROW_LABELS[self.kind]

    @property
    def denominator(self) -> int:
        """Base for the distribution percentages (paper convention)."""
        if self.activated is None:
            return self.injected
        return self.activated

    def pct(self, count: int) -> float:
        return 100.0 * count / self.denominator if self.denominator else 0.0

    @property
    def activation_pct(self) -> Optional[float]:
        if self.activated is None or self.injected == 0:
            return None
        return 100.0 * self.activated / self.injected

    @property
    def manifested_pct(self) -> float:
        """Share of activated errors with a visible effect."""
        manifested = self.fsv + self.crash_known + self.hang_unknown
        return self.pct(manifested)


def build_row(kind: CampaignKind,
              results: Sequence[InjectionResult]) -> CampaignRow:
    injected = len(results)
    if kind is CampaignKind.REGISTER:
        activated: Optional[int] = None
    else:
        activated = sum(1 for result in results
                        if result.outcome is not Outcome.NOT_ACTIVATED)
    not_manifested = sum(1 for result in results
                         if result.outcome is Outcome.NOT_MANIFESTED)
    fsv = sum(1 for result in results
              if result.outcome is Outcome.FAIL_SILENCE_VIOLATION)
    crash_known = sum(1 for result in results
                      if result.outcome is Outcome.CRASH_KNOWN)
    hang_unknown = sum(1 for result in results
                       if result.outcome in (Outcome.HANG,
                                             Outcome.CRASH_UNKNOWN))
    return CampaignRow(kind=kind, injected=injected, activated=activated,
                       not_manifested=not_manifested, fsv=fsv,
                       crash_known=crash_known,
                       hang_unknown=hang_unknown)


def build_table(results_by_kind: Dict[CampaignKind,
                                      Sequence[InjectionResult]]
                ) -> List[CampaignRow]:
    """Rows in the paper's order (stack, registers, data, code)."""
    rows: List[CampaignRow] = []
    for kind in _ROW_ORDER:
        if kind in results_by_kind:
            rows.append(build_row(kind, results_by_kind[kind]))
    return rows


def render_table(rows: Iterable[CampaignRow], arch_label: str) -> str:
    """Text rendering in the paper's Table 5/6 layout."""
    header = (f"{'Campaign':<18} {'Injected':>8} {'Activated':>14} "
              f"{'NotManif':>14} {'FSV':>11} {'KnownCrash':>14} "
              f"{'Hang/Unk':>13}")
    lines = [f"--- Error Activation and Failure Distribution "
             f"({arch_label}) ---", header]
    total = 0
    for row in rows:
        total += row.injected
        if row.activated is None:
            activated = "N/A"
        else:
            activated = f"{row.activated}({row.activation_pct:.1f}%)"
        lines.append(
            f"{row.label:<18} {row.injected:>8} {activated:>14} "
            f"{row.not_manifested:>7}({row.pct(row.not_manifested):4.1f}%)"
            f" {row.fsv:>4}({row.pct(row.fsv):4.1f}%)"
            f" {row.crash_known:>7}({row.pct(row.crash_known):4.1f}%)"
            f" {row.hang_unknown:>6}({row.pct(row.hang_unknown):4.1f}%)")
    lines.append(f"{'Total':<18} {total:>8}")
    return "\n".join(lines)
