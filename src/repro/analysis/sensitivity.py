"""Per-subsystem sensitivity breakdown.

The paper attributes crashes to kernel functions/subsystems via crash
dump analysis (its case studies name free_pages_ok in mm/, alloc_skb in
net/, kupdate and kjournald in fs/).  This module aggregates the same
attribution across a whole campaign: which subsystem's code was
executing when the system died, and — for code campaigns — which
subsystem's *injected* errors manifest most often.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.injection.outcomes import (
    CampaignKind, InjectionResult, Outcome,
)


@dataclass
class SubsystemRow:
    subsystem: str
    crashes: int
    injected: int = 0                  # code campaigns only
    manifested: int = 0

    @property
    def manifestation_pct(self) -> float:
        if not self.injected:
            return 0.0
        return 100.0 * self.manifested / self.injected


def crash_site_breakdown(results: Iterable[InjectionResult]
                         ) -> Dict[str, int]:
    """Subsystem whose code was executing at the crash."""
    out: Dict[str, int] = {}
    for result in results:
        if result.outcome is not Outcome.CRASH_KNOWN:
            continue
        site = result.subsystem or "(outside kernel text)"
        out[site] = out.get(site, 0) + 1
    return out


def code_target_sensitivity(results: Iterable[InjectionResult],
                            image) -> List[SubsystemRow]:
    """For code campaigns: manifestation per *injected* subsystem."""
    rows: Dict[str, SubsystemRow] = {}
    for result in results:
        if result.kind is not CampaignKind.CODE:
            continue
        target = result.target
        if target is None or not hasattr(target, "function"):
            continue
        info = image.functions.get(target.function)
        subsystem = info.subsystem if info else "?"
        row = rows.setdefault(subsystem,
                              SubsystemRow(subsystem, 0))
        row.injected += 1
        if result.outcome.manifested:
            row.manifested += 1
        if result.outcome is Outcome.CRASH_KNOWN:
            row.crashes += 1
    return sorted(rows.values(), key=lambda row: -row.injected)


def render_sensitivity(results: Iterable[InjectionResult],
                       image, title: str) -> str:
    results = list(results)
    lines = [f"--- subsystem sensitivity: {title} ---"]
    sites = crash_site_breakdown(results)
    total = sum(sites.values()) or 1
    lines.append("crash sites:")
    for subsystem, count in sorted(sites.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {subsystem:<24} {count:>4} "
                     f"({100 * count / total:.1f}%)")
    rows = code_target_sensitivity(results, image)
    if rows:
        lines.append("code-injection manifestation by subsystem:")
        for row in rows:
            lines.append(f"  {row.subsystem:<24} "
                         f"{row.manifested}/{row.injected} "
                         f"({row.manifestation_pct:.0f}%)")
    return "\n".join(lines)
