"""JSON persistence for campaign results.

Campaigns are cheap to re-run at small scale but expensive at paper
scale; this module round-trips :class:`InjectionResult` lists through
JSON so studies can be accumulated across processes and archived next
to EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Iterable, List, Optional

from repro.injection.outcomes import (
    CampaignKind, CrashCauseG4, CrashCauseP4, InjectionResult, Outcome,
)

_CAUSES = {cause.value: cause
           for cause in list(CrashCauseP4) + list(CrashCauseG4)}


def result_to_dict(result: InjectionResult) -> dict:
    target = result.target
    if target is not None and dataclasses.is_dataclass(target):
        target_payload: Optional[dict] = dict(
            type=type(target).__name__,
            **dataclasses.asdict(target))
    else:
        target_payload = None
    return {
        "arch": result.arch,
        "kind": result.kind.value,
        "outcome": result.outcome.value,
        "cause": result.cause.value if result.cause else None,
        "cause_arch": ("x86" if isinstance(result.cause, CrashCauseP4)
                       else "ppc") if result.cause else None,
        "activation_cycles": result.activation_cycles,
        "crash_cycles": result.crash_cycles,
        "detail": result.detail,
        "function": result.function,
        "subsystem": result.subsystem,
        "screened": result.screened,
        "target": target_payload,
    }


def result_from_dict(payload: dict) -> InjectionResult:
    cause = None
    if payload.get("cause"):
        cause = _CAUSES[payload["cause"]]
    return InjectionResult(
        arch=payload["arch"],
        kind=CampaignKind(payload["kind"]),
        target=payload.get("target"),
        outcome=Outcome(payload["outcome"]),
        cause=cause,
        activation_cycles=payload.get("activation_cycles"),
        crash_cycles=payload.get("crash_cycles"),
        detail=payload.get("detail", ""),
        function=payload.get("function", ""),
        subsystem=payload.get("subsystem", ""),
        screened=payload.get("screened", False),
    )


def dump_results(results: Iterable[InjectionResult], path: str) -> int:
    """Write results as JSON lines; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for result in results:
            handle.write(json.dumps(result_to_dict(result)) + "\n")
            count += 1
    return count


def load_results(path: str) -> List[InjectionResult]:
    out: List[InjectionResult] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(result_from_dict(json.loads(line)))
    return out


def dump_study(study, path_prefix: str) -> Dict[str, int]:
    """Write one JSONL file per (arch, kind); returns counts."""
    written: Dict[str, int] = {}
    for arch, per_kind in study.results.items():
        for kind, results in per_kind.items():
            path = f"{path_prefix}.{arch}.{kind.value}.jsonl"
            written[path] = dump_results(results, path)
    return written
