"""JSON persistence for campaign results.

Campaigns are cheap to re-run at small scale but expensive at paper
scale; this module round-trips :class:`InjectionResult` lists through
JSON so studies can be accumulated across processes and archived next
to EXPERIMENTS.md.

The (de)serialization itself lives in :mod:`repro.store.codec` — the
store journal and this dump format share exactly one codec, so a
record written by either reads back identically (targets as their
original frozen dataclasses, tuple fields as tuples).  These are thin
file-level wrappers kept for API compatibility; durable, resumable
persistence is :mod:`repro.store`.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.injection.outcomes import InjectionResult
from repro.store.codec import result_from_dict, result_to_dict

__all__ = ["result_to_dict", "result_from_dict", "dump_results",
           "load_results", "dump_study"]


def dump_results(results: Iterable[InjectionResult], path: str) -> int:
    """Write results as JSON lines; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for result in results:
            handle.write(json.dumps(result_to_dict(result)) + "\n")
            count += 1
    return count


def load_results(path: str) -> List[InjectionResult]:
    out: List[InjectionResult] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(result_from_dict(json.loads(line)))
    return out


def dump_study(study, path_prefix: str) -> Dict[str, int]:
    """Write one JSONL file per (arch, kind); returns counts."""
    written: Dict[str, int] = {}
    for arch, per_kind in study.results.items():
        for kind, results in per_kind.items():
            path = f"{path_prefix}.{arch}.{kind.value}.jsonl"
            written[path] = dump_results(results, path)
    return written
