"""Cycles-to-crash histograms (the paper's Figure 16 A-D).

Buckets follow the paper's axis: 3k, 10k, 100k, 1M, 10M, 100M, 1G, >1G
— each label is the bucket's inclusive upper bound in CPU cycles.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.injection.outcomes import InjectionResult, Outcome

#: (label, upper bound); the last bucket is open-ended
LATENCY_BUCKETS: Tuple[Tuple[str, Optional[int]], ...] = (
    ("3k", 3_000),
    ("10k", 10_000),
    ("100k", 100_000),
    ("1M", 1_000_000),
    ("10M", 10_000_000),
    ("100M", 100_000_000),
    ("1G", 1_000_000_000),
    (">1G", None),
)

BUCKET_LABELS = tuple(label for label, _bound in LATENCY_BUCKETS)


def bucket_of(latency: int) -> str:
    for label, bound in LATENCY_BUCKETS:
        if bound is None or latency <= bound:
            return label
    return BUCKET_LABELS[-1]            # pragma: no cover


def latency_histogram(results: Iterable[InjectionResult]
                      ) -> Dict[str, int]:
    """Histogram of cycles-to-crash over the crashed results."""
    histogram = {label: 0 for label in BUCKET_LABELS}
    for result in results:
        latency = result.latency
        if latency is None:
            continue
        if result.outcome not in (Outcome.CRASH_KNOWN,
                                  Outcome.CRASH_UNKNOWN):
            continue
        histogram[bucket_of(latency)] += 1
    return histogram


def instruction_latency_histogram(results: Iterable[InjectionResult]
                                  ) -> Dict[str, int]:
    """Histogram of instructions-to-crash (store format 3 results
    carry ``activation_instret``/``crash_instret``; older records
    yield ``latency_instructions is None`` and are skipped)."""
    histogram = {label: 0 for label in BUCKET_LABELS}
    for result in results:
        latency = result.latency_instructions
        if latency is None:
            continue
        if result.outcome not in (Outcome.CRASH_KNOWN,
                                  Outcome.CRASH_UNKNOWN):
            continue
        histogram[bucket_of(latency)] += 1
    return histogram


def latency_percentages(results: Iterable[InjectionResult]
                        ) -> Dict[str, float]:
    histogram = latency_histogram(results)
    total = sum(histogram.values())
    if total == 0:
        return {label: 0.0 for label in BUCKET_LABELS}
    return {label: 100.0 * count / total
            for label, count in histogram.items()}


def cumulative_percent_below(results: Iterable[InjectionResult],
                             cycles: int) -> float:
    """Share of crashes with latency <= *cycles* (for shape checks)."""
    latencies: List[int] = [result.latency for result in results
                            if result.latency is not None
                            and result.outcome in
                            (Outcome.CRASH_KNOWN, Outcome.CRASH_UNKNOWN)]
    if not latencies:
        return 0.0
    below = sum(1 for value in latencies if value <= cycles)
    return 100.0 * below / len(latencies)
