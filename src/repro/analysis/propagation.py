"""Error propagation between kernel subsystems (paper Figure 7).

The paper's most striking case study is a stack error injected in the
mm subsystem (``free_pages_ok``) that crashes 13M cycles later in the
network subsystem (``alloc_skb``).  For code injections we know both
endpoints — the subsystem that received the error and the subsystem
whose code finally crashed — so propagation is directly measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.injection.outcomes import (
    CampaignKind, InjectionResult, Outcome,
)


@dataclass(frozen=True)
class PropagationEdge:
    """Errors injected in ``source`` that crashed in ``sink``."""

    source: str
    sink: str
    count: int
    max_latency: int


def code_propagation(results: Iterable[InjectionResult],
                     image) -> List[PropagationEdge]:
    """Propagation edges for a code campaign.

    ``image`` supplies the subsystem of the *injected* function; the
    crash report supplies the subsystem of the *crashing* one.
    """
    edges: Dict[Tuple[str, str], List[int]] = {}
    for result in results:
        if result.kind is not CampaignKind.CODE:
            continue
        if result.outcome not in (Outcome.CRASH_KNOWN,
                                  Outcome.CRASH_UNKNOWN):
            continue
        target = result.target
        if target is None or not hasattr(target, "function"):
            continue
        info = image.functions.get(target.function)
        source = info.subsystem if info else "?"
        sink = result.subsystem or "(outside kernel text)"
        edges.setdefault((source, sink), []).append(
            result.latency or 0)
    return sorted(
        (PropagationEdge(source, sink, len(latencies), max(latencies))
         for (source, sink), latencies in edges.items()),
        key=lambda edge: -edge.count)


def propagation_rate(edges: Iterable[PropagationEdge]) -> float:
    """Share of crashes whose sink differs from their source."""
    edges = list(edges)
    total = sum(edge.count for edge in edges)
    if total == 0:
        return 0.0
    crossed = sum(edge.count for edge in edges
                  if edge.sink != edge.source)
    return 100.0 * crossed / total


def render_propagation(edges: Iterable[PropagationEdge]) -> str:
    lines = ["--- error propagation between kernel subsystems "
             "(code campaign) ---",
             f"{'injected in':<22} {'crashed in':<22} {'n':>4} "
             f"{'max latency':>12}"]
    for edge in edges:
        marker = "  <- propagated" if edge.sink != edge.source else ""
        lines.append(f"{edge.source:<22} {edge.sink:<22} "
                     f"{edge.count:>4} {edge.max_latency:>12}{marker}")
    return "\n".join(lines)
