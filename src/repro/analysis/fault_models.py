"""Per-fault-model sensitivity tables (MBU vs SBU comparison).

The paper's tables hold the fault model fixed (single-bit, single
shot) and vary the target class; this module holds the target class
fixed and varies the fault model, so a study can ask the modern
question — how much *worse* are multi-bit/burst upsets than the
single-bit model the paper assumes?  (Radiation studies report
MBU-dominated failure modes; a burst that corrupts 2-8 adjacent bits
is strictly more damage than any one of its bits alone, so its
manifestation rate bounds the single-bit rate from above.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.injection.outcomes import (
    CampaignKind, InjectionResult, Outcome,
)

#: outcomes counted as "the error manifested as a failure"
MANIFESTED_OUTCOMES = (
    Outcome.CRASH_KNOWN, Outcome.CRASH_UNKNOWN, Outcome.HANG,
    Outcome.FAIL_SILENCE_VIOLATION,
)


@dataclass(frozen=True)
class ModelSensitivity:
    """One (fault model, arch, kind) row of the comparison table."""

    model: str
    arch: str
    kind: str
    injected: int
    activated: int
    manifested: int
    crashes: int
    hangs: int
    fsv: int

    @property
    def activation_pct(self) -> float:
        if self.injected == 0:
            return 0.0
        return 100.0 * self.activated / self.injected

    @property
    def manifestation_pct(self) -> float:
        """Manifested share of *injected* errors.

        Relative to injected (not activated) so models with different
        activation behavior — e.g. a burst's wider watchpoint span —
        stay comparable on one scale.
        """
        if self.injected == 0:
            return 0.0
        return 100.0 * self.manifested / self.injected


def sensitivity_for(model: str, arch: str, kind: CampaignKind,
                    results: Sequence[InjectionResult]
                    ) -> ModelSensitivity:
    """Fold one campaign's results into a :class:`ModelSensitivity`."""
    manifested = sum(1 for r in results
                     if r.outcome in MANIFESTED_OUTCOMES)
    return ModelSensitivity(
        model=model, arch=arch, kind=kind.value,
        injected=len(results),
        activated=sum(1 for r in results
                      if r.outcome is not Outcome.NOT_ACTIVATED),
        manifested=manifested,
        crashes=sum(1 for r in results
                    if r.outcome in (Outcome.CRASH_KNOWN,
                                     Outcome.CRASH_UNKNOWN)),
        hangs=sum(1 for r in results if r.outcome is Outcome.HANG),
        fsv=sum(1 for r in results
                if r.outcome is Outcome.FAIL_SILENCE_VIOLATION))


def compare_models(arch: str, kind: CampaignKind, count: int,
                   models: Iterable[str] = ("single-bit", "burst"),
                   seed: int = 0, ops: int = 48, workers: int = 1,
                   ) -> List[ModelSensitivity]:
    """Run one campaign per fault model, identical otherwise.

    Same arch, kind, count, seed, and ops — the only degree of freedom
    is the model, so differences in the rows are the model's doing.
    """
    from repro.injection.campaign import run_campaign
    rows = []
    for model in models:
        outcome = run_campaign(arch, kind, count, seed=seed, ops=ops,
                               workers=workers, fault_model=model)
        rows.append(sensitivity_for(model, arch, kind,
                                    outcome.results))
    return rows


def render_model_table(rows: Sequence[ModelSensitivity],
                       title: str = "fault-model sensitivity") -> str:
    """Render rows as a fixed-width comparison table."""
    lines = [title,
             f"{'model':<14} {'arch':<5} {'kind':<9} {'inj':>6} "
             f"{'act%':>7} {'crash':>6} {'hang':>5} {'fsv':>4} "
             f"{'manif%':>7}"]
    for row in rows:
        lines.append(
            f"{row.model:<14} {row.arch:<5} {row.kind:<9} "
            f"{row.injected:>6} {row.activation_pct:>6.1f}% "
            f"{row.crashes:>6} {row.hangs:>5} {row.fsv:>4} "
            f"{row.manifestation_pct:>6.1f}%")
    return "\n".join(lines)


def manifestation_histogram(per_model: Dict[str, Sequence[InjectionResult]]
                            ) -> Dict[str, Dict[str, int]]:
    """model -> outcome value -> count (benchmark/report fodder)."""
    out: Dict[str, Dict[str, int]] = {}
    for model, results in per_model.items():
        histogram: Dict[str, int] = {}
        for result in results:
            histogram[result.outcome.value] = \
                histogram.get(result.outcome.value, 0) + 1
        out[model] = histogram
    return out
