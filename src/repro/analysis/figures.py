"""Crash-cause distributions (the paper's Figures 4-6, 10-12).

Each figure is the distribution of :mod:`repro.analysis.classify`
causes over the *known* crashes of one campaign (or, for Figures 4/5,
the union of all campaigns on one platform).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.injection.outcomes import (
    CrashCauseG4, CrashCauseP4, InjectionResult, Outcome,
)


def crash_cause_distribution(results: Iterable[InjectionResult]
                             ) -> Dict[object, int]:
    """Counts per crash cause over known crashes."""
    counts: Dict[object, int] = {}
    for result in results:
        if result.outcome is not Outcome.CRASH_KNOWN:
            continue
        if result.cause is None:
            continue
        counts[result.cause] = counts.get(result.cause, 0) + 1
    return counts


def crash_cause_percentages(results: Iterable[InjectionResult]
                            ) -> Dict[object, float]:
    counts = crash_cause_distribution(results)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {cause: 100.0 * count / total
            for cause, count in counts.items()}


def all_causes_for(arch: str) -> Tuple[object, ...]:
    if arch == "x86":
        return tuple(CrashCauseP4)
    return tuple(CrashCauseG4)


def render_distribution(results: Iterable[InjectionResult],
                        title: str, arch: str) -> str:
    """Text pie chart: one line per cause, heaviest first."""
    results = list(results)
    counts = crash_cause_distribution(results)
    total = sum(counts.values())
    lines: List[str] = [f"--- {title} (Total {total}) ---"]
    if total == 0:
        lines.append("(no known crashes)")
        return "\n".join(lines)
    for cause in sorted(all_causes_for(arch),
                        key=lambda c: -counts.get(c, 0)):
        count = counts.get(cause, 0)
        if count == 0:
            continue
        percent = 100.0 * count / total
        bar = "#" * int(round(percent / 2))
        lines.append(f"{cause.value:<26} {percent:5.1f}%  ({count:>4})  "
                     f"{bar}")
    return "\n".join(lines)
