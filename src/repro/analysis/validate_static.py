"""Validate static sensitivity predictions against dynamic campaigns.

Two validation modes:

* :func:`validate_code_campaign` joins a dynamic code-campaign result
  with a :class:`StaticSensitivityReport` bit-by-bit (every code
  target is an (instruction address, bit) pair, exactly the report's
  key) and builds a predicted-vs-measured confusion matrix.  The
  headline number is *manifestation accuracy*: among injections the
  workload activated, how often the static predictor called the
  manifest/mask outcome correctly.
* :func:`validate_prune` is the safety check for ``--prune-dead``: it
  *injects* every statically-prunable bit (decode-identical flips and
  unreachable code) and verifies none of them manifests.  Any
  disagreement here is a soundness bug, not a calibration miss.

Both are pure functions of their inputs, so a campaign run serially
and one run with workers (bit-identical by construction) validate to
identical matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.injection.outcomes import InjectionResult
from repro.static.report import StaticSensitivityReport

#: row/column labels, static prediction x dynamic measurement
LABELS = ("manifested", "not-manifested", "not-activated")


def dynamic_label(result: InjectionResult) -> str:
    """Collapse the dynamic outcome taxonomy onto the static one."""
    if not result.outcome.activated:
        return "not-activated"
    return "manifested" if result.outcome.manifested \
        else "not-manifested"


@dataclass
class ConfusionMatrix:
    """Counts of (static prediction, dynamic outcome) pairs."""

    counts: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def add(self, predicted: str, dynamic: str, n: int = 1) -> None:
        if predicted not in LABELS or dynamic not in LABELS:
            raise ValueError(f"unknown label {predicted!r}/{dynamic!r}")
        key = (predicted, dynamic)
        self.counts[key] = self.counts.get(key, 0) + n

    def get(self, predicted: str, dynamic: str) -> int:
        return self.counts.get((predicted, dynamic), 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def activated_total(self) -> int:
        """Experiments the workload actually activated."""
        return sum(n for (_, dyn), n in self.counts.items()
                   if dyn != "not-activated")

    @property
    def manifestation_accuracy(self) -> float:
        """Among dynamically-activated experiments: how often did the
        predictor call manifest vs mask correctly?  A static
        ``not-activated`` counts as predicting "no manifestation" —
        if the workload then crashed, that is a (serious) miss."""
        activated = self.activated_total
        if not activated:
            return 0.0
        correct = 0
        for (pred, dyn), n in self.counts.items():
            if dyn == "not-activated":
                continue
            if (pred == "manifested") == (dyn == "manifested"):
                correct += n
        return correct / activated

    @property
    def activation_accuracy(self) -> float:
        """How often static reachability agreed with dynamic
        activation.  Static reachability is necessary, not
        sufficient: reachable-but-cold paths dynamically screen as
        not-activated, so this is informative, not a gate."""
        if not self.total:
            return 0.0
        correct = sum(n for (pred, dyn), n in self.counts.items()
                      if (pred == "not-activated")
                      == (dyn == "not-activated"))
        return correct / self.total

    def render(self) -> str:
        lines = ["predicted \\ dynamic" + "".join(
            f"{label:>16}" for label in LABELS)]
        for pred in LABELS:
            row = f"{pred:<19}" + "".join(
                f"{self.get(pred, dyn):>16}" for dyn in LABELS)
            lines.append(row)
        return "\n".join(lines)


@dataclass
class StaticValidation:
    """Outcome of joining one dynamic code campaign with the static
    report for the same architecture."""

    arch: str
    matrix: ConfusionMatrix
    #: activated experiments the predictor got wrong, with the
    #: static corruption class for post-mortem
    mismatches: List[Tuple[InjectionResult, str, str]] \
        = field(default_factory=list)

    @property
    def manifestation_accuracy(self) -> float:
        return self.matrix.manifestation_accuracy

    def render(self) -> str:
        lines = [f"static-vs-dynamic validation: {self.arch}",
                 self.matrix.render(),
                 f"activated experiments: "
                 f"{self.matrix.activated_total}/{self.matrix.total}",
                 f"manifestation accuracy: "
                 f"{100.0 * self.manifestation_accuracy:.1f}%",
                 f"activation agreement:   "
                 f"{100.0 * self.matrix.activation_accuracy:.1f}%"]
        return "\n".join(lines)


def validate_code_campaign(
        results: Sequence[InjectionResult],
        report: Optional[StaticSensitivityReport] = None
        ) -> StaticValidation:
    """Join dynamic code-campaign results with static predictions."""
    if not results:
        raise ValueError("no results to validate")
    arch = results[0].arch
    if report is None:
        from repro.static.predictor import analyze_kernel
        report = analyze_kernel(arch)
    if report.arch != arch:
        raise ValueError(f"report is {report.arch}, results are {arch}")

    matrix = ConfusionMatrix()
    mismatches: List[Tuple[InjectionResult, str, str]] = []
    for result in results:
        target = result.target
        prediction = report.lookup(target.addr, target.bit)
        pred, dyn = prediction.outcome.value, dynamic_label(result)
        matrix.add(pred, dyn)
        if dyn != "not-activated" and \
                (pred == "manifested") != (dyn == "manifested"):
            mismatches.append((result, pred,
                               prediction.corruption.value))
    return StaticValidation(arch=arch, matrix=matrix,
                            mismatches=mismatches)


@dataclass
class PruneValidation:
    """Outcome of dynamically injecting every prunable bit."""

    arch: str
    prunable_bits: int
    injected: int
    #: injections on prunable bits that manifested — must be empty
    disagreements: List[InjectionResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def render(self) -> str:
        status = "ok" if self.ok else \
            f"{len(self.disagreements)} DISAGREEMENT(S)"
        return (f"prune validation: {self.arch}: "
                f"{self.injected}/{self.prunable_bits} prunable bits "
                f"injected, {status}")


def validate_prune(arch: str, seed: int = 0, ops: int = 48,
                   limit: Optional[int] = None) -> PruneValidation:
    """Inject every statically-prunable bit and check none manifests.

    ``limit`` caps the number of injections (evenly strided over the
    sorted prunable set) so tests can sample; the full sweep is the
    CI-gate / release check.
    """
    from repro.injection.campaign import (
        Campaign, CampaignConfig, CampaignContext,
    )
    from repro.injection.outcomes import CampaignKind
    from repro.injection.targets import CodeTarget
    from repro.kernel.build import build_kernel
    from repro.static.cfg import build_cfg
    from repro.static.predictor import analyze_image

    image = build_kernel(arch)
    cfg = build_cfg(arch, image)
    report = analyze_image(arch, image, cfg=cfg)
    dead = sorted(report.dead_bits)
    chosen = dead
    if limit is not None and limit < len(dead):
        stride = len(dead) / limit
        chosen = [dead[int(i * stride)] for i in range(limit)]

    targets: List[CodeTarget] = []
    for addr, bit in chosen:
        name, block_start = cfg.insn_map[addr]
        block = cfg.functions[name].blocks[block_start]
        node = next(n for n in block.insns if n.addr == addr)
        targets.append(CodeTarget(function=name, addr=addr,
                                  insn_len=node.length, bit=bit))

    context = CampaignContext.get(arch, seed, ops)
    config = CampaignConfig(arch=arch, kind=CampaignKind.CODE,
                            count=max(1, len(targets)), seed=seed,
                            ops=ops)
    campaign = Campaign(config, context)
    disagreements: List[InjectionResult] = []
    for index, target in enumerate(targets):
        result = campaign.run_target(index, target)
        if result.outcome.manifested:
            disagreements.append(result)
    return PruneValidation(arch=arch, prunable_bits=len(dead),
                           injected=len(targets),
                           disagreements=disagreements)
