"""Validate static sensitivity predictions against dynamic campaigns.

Validation modes:

* :func:`validate_code_campaign` joins a dynamic code-campaign result
  with a :class:`StaticSensitivityReport` bit-by-bit (every code
  target is an (instruction address, bit) pair, exactly the report's
  key) and builds a predicted-vs-measured confusion matrix.  The
  headline number is *manifestation accuracy*: among injections the
  workload activated, how often the static predictor called the
  manifest/mask outcome correctly.  When the report carries taint
  distances, the validation also checks the *monotone agreement*
  between the static distance-to-sink bound and the measured
  instructions-to-crash latency (concordant-pair fraction, see
  :func:`distance_latency_agreement`).
* :func:`validate_prune` is the safety check for ``--prune``: it
  *injects* every statically-prunable bit under the chosen policy
  ("dead": decode-identical flips and unreachable code; "taint":
  additionally every taint-proven-masked bit) and verifies none of
  them manifests.  Any disagreement here is a soundness bug, not a
  calibration miss.
* :func:`validate_propagation` joins static evidence chains against
  the PR 5 trace dissector: it re-runs sampled sink-verdict
  experiments with the flight recorder armed, diffs each against its
  clean twin, and checks the statically-predicted propagation route
  against the dynamically-observed infection.

All are pure functions of their inputs, so a campaign run serially
and one run with workers (bit-identical by construction) validate to
identical matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict, FrozenSet, List, Optional, Sequence, Tuple,
)

from repro.injection.outcomes import InjectionResult
from repro.static.report import StaticSensitivityReport

#: row/column labels, static prediction x dynamic measurement
LABELS = ("manifested", "not-manifested", "not-activated")


def dynamic_label(result: InjectionResult) -> str:
    """Collapse the dynamic outcome taxonomy onto the static one."""
    if not result.outcome.activated:
        return "not-activated"
    return "manifested" if result.outcome.manifested \
        else "not-manifested"


@dataclass
class ConfusionMatrix:
    """Counts of (static prediction, dynamic outcome) pairs."""

    counts: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def add(self, predicted: str, dynamic: str, n: int = 1) -> None:
        if predicted not in LABELS or dynamic not in LABELS:
            raise ValueError(f"unknown label {predicted!r}/{dynamic!r}")
        key = (predicted, dynamic)
        self.counts[key] = self.counts.get(key, 0) + n

    def get(self, predicted: str, dynamic: str) -> int:
        return self.counts.get((predicted, dynamic), 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def activated_total(self) -> int:
        """Experiments the workload actually activated."""
        return sum(n for (_, dyn), n in self.counts.items()
                   if dyn != "not-activated")

    @property
    def manifestation_accuracy(self) -> float:
        """Among dynamically-activated experiments: how often did the
        predictor call manifest vs mask correctly?  A static
        ``not-activated`` counts as predicting "no manifestation" —
        if the workload then crashed, that is a (serious) miss."""
        activated = self.activated_total
        if not activated:
            return 0.0
        correct = 0
        for (pred, dyn), n in self.counts.items():
            if dyn == "not-activated":
                continue
            if (pred == "manifested") == (dyn == "manifested"):
                correct += n
        return correct / activated

    @property
    def activation_accuracy(self) -> float:
        """How often static reachability agreed with dynamic
        activation.  Static reachability is necessary, not
        sufficient: reachable-but-cold paths dynamically screen as
        not-activated, so this is informative, not a gate."""
        if not self.total:
            return 0.0
        correct = sum(n for (pred, dyn), n in self.counts.items()
                      if (pred == "not-activated")
                      == (dyn == "not-activated"))
        return correct / self.total

    def render(self) -> str:
        lines = ["predicted \\ dynamic" + "".join(
            f"{label:>16}" for label in LABELS)]
        for pred in LABELS:
            row = f"{pred:<19}" + "".join(
                f"{self.get(pred, dyn):>16}" for dyn in LABELS)
            lines.append(row)
        return "\n".join(lines)


@dataclass
class LatencyAgreement:
    """Monotone agreement between static distance-to-sink bounds and
    measured instructions-to-crash latencies.

    Over every pair of crashed experiments with distinct static
    distances and distinct measured latencies, a pair is *concordant*
    when the experiment predicted closer to its sink also crashed in
    fewer instructions (Kendall-style; ties in either dimension are
    dropped).  The static distance is a lower bound on a *different*
    dynamic quantity (instructions from corruption to first sink, not
    to the eventual crash), so the gate is rank agreement, not
    equality."""

    #: (static distance bound, measured instructions-to-crash)
    pairs: List[Tuple[int, int]] = field(default_factory=list)
    concordant: int = 0
    discordant: int = 0
    #: experiments whose measured latency undercut the static bound
    #: (the run faulted at or before its predicted first sink — an
    #: at-site decode/fetch effect outside the propagation model);
    #: excluded from the pairs above, disclosed here
    bound_violations: int = 0

    @property
    def comparable(self) -> int:
        return self.concordant + self.discordant

    @property
    def agreement(self) -> Optional[float]:
        """Concordant fraction, or ``None`` with no comparable pairs."""
        if not self.comparable:
            return None
        return self.concordant / self.comparable

    def render(self) -> str:
        note = f" ({self.bound_violations} bound violation(s) " \
               f"excluded)" if self.bound_violations else ""
        if self.agreement is None:
            return (f"distance-vs-latency: {len(self.pairs)} "
                    f"experiment(s), no comparable pairs{note}")
        return (f"distance-vs-latency: {len(self.pairs)} "
                f"experiment(s), {self.comparable} comparable "
                f"pair(s), {100.0 * self.agreement:.0f}% "
                f"concordant{note}")


def _agreement_from_rows(
        rows: Sequence[Tuple[int, int]]) -> LatencyAgreement:
    """Kendall-style concordance over (distance, latency) rows.

    Rows whose latency undercuts the distance bound mean the run
    failed *before* reaching the predicted first sink — the failure
    was not the propagation the distance models (e.g. the corrupted
    instruction itself faulted) — so they are counted as
    ``bound_violations`` and dropped from the ranking."""
    agreement = LatencyAgreement()
    for distance, latency in rows:
        if latency < distance:
            agreement.bound_violations += 1
        else:
            agreement.pairs.append((distance, latency))
    pairs = agreement.pairs
    for i in range(len(pairs)):
        for j in range(i + 1, len(pairs)):
            (d_i, l_i), (d_j, l_j) = pairs[i], pairs[j]
            if d_i == d_j or l_i == l_j:
                continue
            if (d_i < d_j) == (l_i < l_j):
                agreement.concordant += 1
            else:
                agreement.discordant += 1
    return agreement


def distance_latency_agreement(
        results: Sequence[InjectionResult],
        report: StaticSensitivityReport) -> LatencyAgreement:
    """Collect (static distance, measured latency) rows from crashed
    experiments whose prediction carries a distance bound, and count
    concordant vs discordant orderings."""
    rows: List[Tuple[int, int]] = []
    for result in results:
        latency = result.latency_instructions
        if latency is None or not result.outcome.manifested:
            continue
        target = result.target
        prediction = report.lookup(target.addr, target.bit)
        if prediction.distance is None:
            continue
        rows.append((prediction.distance, latency))
    return _agreement_from_rows(rows)


def distance_latency_probe(arch: str, seed: int = 0, ops: int = 48,
                           per_distance: int = 4,
                           max_distance: Optional[int] = None
                           ) -> LatencyAgreement:
    """Targeted monotone-agreement probe: inject sink-verdict bits
    spread across static distances and rank-compare the bounds
    against the trace-measured dynamic distance-to-sink (the
    instructions from activation to the first divergent memory
    access or control transfer in the faulty-vs-twin trace diff).

    That diff instant — not instructions-to-crash, and not even
    stage-1 cycles-to-exception — is the quantity the static bound
    models: a wrong-address access can read mapped-but-wrong memory
    and crash only thousands of instructions later (the ppc Bad Area
    pattern), so any crash-anchored latency is dominated by terms
    uncorrelated with the 1-10 instruction propagation distances.
    The deterministic campaigns surface only a handful of
    pure-dataflow manifestations, too few pairs for a stable rank
    check — this probe instead *selects* activated sink-verdict bits
    per distance bucket (up to *per_distance* each, evenly strided),
    injects exactly those with the flight recorder armed, and diffs
    each against its clean twin."""
    import collections

    from repro.injection.campaign import (
        Campaign, CampaignConfig, CampaignContext,
    )
    from repro.injection.outcomes import CampaignKind
    from repro.injection.targets import CodeTarget
    from repro.kernel.build import build_kernel
    from repro.static.cfg import build_cfg
    from repro.static.predictor import analyze_image
    from repro.static.report import PredictedOutcome
    from repro.static.taint import VERDICT_SINK

    image = build_kernel(arch)
    cfg = build_cfg(arch, image)
    report = analyze_image(arch, image, cfg=cfg)
    context = CampaignContext.get(arch, seed, ops)
    config = CampaignConfig(arch=arch, kind=CampaignKind.CODE,
                            count=1, seed=seed, ops=ops,
                            exec_mode="step", checkpoints=0)
    campaign = Campaign(config, context)

    by_distance: Dict[int, List[CodeTarget]] = \
        collections.defaultdict(list)
    for (addr, bit), prediction in sorted(report.predictions.items()):
        if prediction.verdict != VERDICT_SINK or \
                prediction.distance is None or \
                prediction.outcome is not PredictedOutcome.MANIFESTED:
            continue
        if max_distance is not None and \
                prediction.distance > max_distance:
            continue
        name, block_start = cfg.insn_map[addr]
        block = cfg.functions[name].blocks[block_start]
        node = next(n for n in block.insns if n.addr == addr)
        target = CodeTarget(function=name, addr=addr,
                            insn_len=node.length, bit=bit)
        if not campaign._screen_not_activated(target):
            by_distance[prediction.distance].append(target)

    rows: List[Tuple[int, int]] = []
    index = 0
    for distance, live in sorted(by_distance.items()):
        stride = max(1, len(live) // per_distance)
        for target in live[::stride][:per_distance]:
            joined = _traced_dissection(campaign, index, target, arch)
            index += 1
            if joined.sink_latency is not None:
                rows.append((distance, joined.sink_latency))
    return _agreement_from_rows(rows)


@dataclass
class StaticValidation:
    """Outcome of joining one dynamic code campaign with the static
    report for the same architecture."""

    arch: str
    matrix: ConfusionMatrix
    #: activated experiments the predictor got wrong, with the
    #: static corruption class for post-mortem
    mismatches: List[Tuple[InjectionResult, str, str]] \
        = field(default_factory=list)
    #: distance-vs-latency monotone agreement (None when the report
    #: carries no taint distances, i.e. taint was off)
    latency: Optional[LatencyAgreement] = None

    @property
    def manifestation_accuracy(self) -> float:
        return self.matrix.manifestation_accuracy

    def render(self) -> str:
        lines = [f"static-vs-dynamic validation: {self.arch}",
                 self.matrix.render(),
                 f"activated experiments: "
                 f"{self.matrix.activated_total}/{self.matrix.total}",
                 f"manifestation accuracy: "
                 f"{100.0 * self.manifestation_accuracy:.1f}%",
                 f"activation agreement:   "
                 f"{100.0 * self.matrix.activation_accuracy:.1f}%"]
        if self.latency is not None:
            lines.append(self.latency.render())
        return "\n".join(lines)


def validate_code_campaign(
        results: Sequence[InjectionResult],
        report: Optional[StaticSensitivityReport] = None
        ) -> StaticValidation:
    """Join dynamic code-campaign results with static predictions."""
    if not results:
        raise ValueError("no results to validate")
    arch = results[0].arch
    if report is None:
        from repro.static.predictor import analyze_kernel
        report = analyze_kernel(arch)
    if report.arch != arch:
        raise ValueError(f"report is {report.arch}, results are {arch}")

    matrix = ConfusionMatrix()
    mismatches: List[Tuple[InjectionResult, str, str]] = []
    for result in results:
        target = result.target
        prediction = report.lookup(target.addr, target.bit)
        pred, dyn = prediction.outcome.value, dynamic_label(result)
        matrix.add(pred, dyn)
        if dyn != "not-activated" and \
                (pred == "manifested") != (dyn == "manifested"):
            mismatches.append((result, pred,
                               prediction.corruption.value))
    latency = None
    if any(p.distance is not None for p in report.predictions.values()):
        latency = distance_latency_agreement(results, report)
    return StaticValidation(arch=arch, matrix=matrix,
                            mismatches=mismatches, latency=latency)


@dataclass
class PruneValidation:
    """Outcome of dynamically injecting every prunable bit."""

    arch: str
    prunable_bits: int
    injected: int
    #: injections on prunable bits that manifested — must be empty
    disagreements: List[InjectionResult] = field(default_factory=list)
    #: the prune policy whose bit set was injected
    policy: str = "dead"

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def render(self) -> str:
        status = "ok" if self.ok else \
            f"{len(self.disagreements)} DISAGREEMENT(S)"
        return (f"prune validation ({self.policy}): {self.arch}: "
                f"{self.injected}/{self.prunable_bits} prunable bits "
                f"injected, {status}")


def validate_prune(arch: str, seed: int = 0, ops: int = 48,
                   limit: Optional[int] = None,
                   policy: str = "dead") -> PruneValidation:
    """Inject every statically-prunable bit and check none manifests.

    ``policy`` selects the bit set: "dead" injects the provably-dead
    bits (decode-identical flips, unreachable code); "taint" injects
    that set plus every taint-proven-masked bit.  ``limit`` caps the
    number of injections (evenly strided over the sorted prunable
    set) so tests can sample; the full sweep is the CI-gate /
    release check.
    """
    from repro.injection.campaign import (
        Campaign, CampaignConfig, CampaignContext,
    )
    from repro.injection.outcomes import CampaignKind
    from repro.injection.targets import CodeTarget
    from repro.kernel.build import build_kernel
    from repro.static.cfg import build_cfg
    from repro.static.predictor import analyze_image

    if policy not in ("dead", "taint"):
        raise ValueError(f"unknown prune policy {policy!r}; "
                         f"expected 'dead' or 'taint'")
    image = build_kernel(arch)
    cfg = build_cfg(arch, image)
    report = analyze_image(arch, image, cfg=cfg,
                           taint=policy == "taint")
    bits = report.dead_bits
    if policy == "taint":
        bits = bits | report.taint_masked_bits
    dead = sorted(bits)
    chosen = dead
    if limit is not None and limit < len(dead):
        stride = len(dead) / limit
        chosen = [dead[int(i * stride)] for i in range(limit)]

    targets: List[CodeTarget] = []
    for addr, bit in chosen:
        name, block_start = cfg.insn_map[addr]
        block = cfg.functions[name].blocks[block_start]
        node = next(n for n in block.insns if n.addr == addr)
        targets.append(CodeTarget(function=name, addr=addr,
                                  insn_len=node.length, bit=bit))

    context = CampaignContext.get(arch, seed, ops)
    config = CampaignConfig(arch=arch, kind=CampaignKind.CODE,
                            count=max(1, len(targets)), seed=seed,
                            ops=ops)
    campaign = Campaign(config, context)
    disagreements: List[InjectionResult] = []
    for index, target in enumerate(targets):
        result = campaign.run_target(index, target)
        if result.outcome.manifested:
            disagreements.append(result)
    return PruneValidation(arch=arch, prunable_bits=len(dead),
                           injected=len(targets),
                           disagreements=disagreements,
                           policy=policy)


# -- trace join ---------------------------------------------------------------

@dataclass
class TracedJoin:
    """Everything one traced faulty-vs-twin diff yields for joining."""

    result: InjectionResult
    dissection: object                     # trace.dissect.Dissection
    #: every pc the faulty run fetched
    fetched: FrozenSet[int]
    #: instructions from activation to the first divergent memory
    #: access or control transfer — the dynamic counterpart of the
    #: static distance-to-sink bound (None: no such divergence)
    sink_latency: Optional[int]


def _traced_dissection(campaign, index: int, target,
                       arch: str) -> TracedJoin:
    """Run experiment (*index*, *target*) traced, run its clean twin,
    and diff them (the per-experiment half of the trace join)."""
    from repro.injection.injector import InjectionRun
    from repro.trace.dissect import dissect_traces
    from repro.trace.events import EventKind
    from repro.trace.recorder import TraceRecorder

    def traced(spec, install: bool):
        run = InjectionRun(spec)
        recorder = TraceRecorder(mode="full")
        run.machine.attach_tracer(recorder)
        try:
            result = run.execute(install=install)
        finally:
            run.machine.detach_tracer()
        return result, recorder

    spec = campaign.spec_for(index, target)
    result, recorder = traced(spec, install=True)
    _twin, twin_recorder = traced(spec, install=False)
    dissection = dissect_traces(recorder.events, twin_recorder.events,
                                result=result, arch=arch)
    fetched = frozenset(event.pc for event in recorder.events
                        if event.kind is EventKind.FETCH
                        and event.pc is not None)
    sink_latency = None
    if result.activation_instret is not None:
        for hop in dissection.hops:
            # the first divergent access/transfer is the first time
            # the wrong value became observable *behaviour* — a
            # REG_WRITE divergence is still just a wrong value
            if hop.kind is EventKind.REG_WRITE:
                continue
            sink_latency = max(0, hop.instret
                               - result.activation_instret)
            break
    return TracedJoin(result=result, dissection=dissection,
                      fetched=fetched, sink_latency=sink_latency)


@dataclass
class PropagationJoin:
    """One sink-verdict experiment joined against its dissection."""

    index: int
    addr: int
    bit: int
    #: nearest-sink kind and static distance bound from the report
    sink: Optional[str]
    distance: Optional[int]
    #: static evidence chain (corruption addr, route blocks, sink)
    evidence: Tuple[int, ...]
    #: fraction of the evidence chain the faulty run actually fetched
    chain_coverage: float
    #: the dynamic diff observed architectural infection at all
    infected: bool
    infected_registers: FrozenSet[str] = frozenset()
    #: instructions from activation to the first divergent access or
    #: transfer (the dynamic distance-to-sink; None when the error
    #: never left the register file)
    sink_latency: Optional[int] = None
    #: measured total cycles-to-crash (None when the run survived)
    stage_total: Optional[int] = None


@dataclass
class PropagationValidation:
    """Static evidence chains joined against trace dissections."""

    arch: str
    joins: List[PropagationJoin] = field(default_factory=list)

    @property
    def mean_chain_coverage(self) -> Optional[float]:
        """Mean fetched fraction of the static evidence chains, over
        experiments whose traces diverged (None when none did)."""
        covered = [j.chain_coverage for j in self.joins if j.infected]
        if not covered:
            return None
        return sum(covered) / len(covered)

    def render(self) -> str:
        lines = [f"propagation join: {self.arch}: "
                 f"{len(self.joins)} experiment(s) dissected"]
        for j in self.joins:
            stage = f", crash after {j.stage_total} cycles" \
                if j.stage_total is not None else ""
            measured = f" measured={j.sink_latency}" \
                if j.sink_latency is not None else ""
            lines.append(
                f"  [{j.index}] {j.addr:#010x} bit {j.bit}: "
                f"sink={j.sink} distance={j.distance}{measured} "
                f"chain {100.0 * j.chain_coverage:.0f}% fetched, "
                f"{len(j.infected_registers)} reg(s) infected{stage}")
        coverage = self.mean_chain_coverage
        if coverage is not None:
            lines.append(f"  mean evidence-chain coverage: "
                         f"{100.0 * coverage:.0f}%")
        return "\n".join(lines)


def validate_propagation(arch: str, seed: int = 0, ops: int = 48,
                         count: int = 60,
                         sample: int = 4) -> PropagationValidation:
    """Join static evidence chains against trace dissections.

    Re-runs up to *sample* sink-verdict experiments of the
    deterministic (seed, ops, count) code campaign with the flight
    recorder armed, runs each clean twin, diffs them
    (:func:`repro.trace.dissect.dissect_traces`), and reports how
    much of each static evidence chain the faulty run actually
    executed plus the observed infection and stage latency."""
    from repro.injection.campaign import Campaign, CampaignConfig
    from repro.injection.outcomes import CampaignKind
    from repro.static.predictor import analyze_kernel
    from repro.static.taint import VERDICT_SINK

    config = CampaignConfig(arch=arch, kind=CampaignKind.CODE,
                            count=count, seed=seed, ops=ops,
                            exec_mode="step", checkpoints=0)
    campaign = Campaign(config)
    targets = campaign.generate_targets()
    report = analyze_kernel(arch)

    joins: List[PropagationJoin] = []
    for index, target in enumerate(targets):
        if len(joins) >= sample:
            break
        prediction = report.lookup(target.addr, target.bit)
        if prediction.verdict != VERDICT_SINK or \
                not prediction.evidence:
            continue
        if campaign._screen_not_activated(target):
            continue
        joined = _traced_dissection(campaign, index, target, arch)
        dissection = joined.dissection
        covered = sum(1 for addr in prediction.evidence
                      if addr in joined.fetched)
        joins.append(PropagationJoin(
            index=index, addr=target.addr, bit=target.bit,
            sink=prediction.sink, distance=prediction.distance,
            evidence=prediction.evidence,
            chain_coverage=covered / len(prediction.evidence),
            infected=dissection.infected,
            infected_registers=frozenset(
                dissection.infected_registers),
            sink_latency=joined.sink_latency,
            stage_total=dissection.stages.total
            if dissection.stages is not None else None))
    return PropagationValidation(arch=arch, joins=joins)
