"""Off-line analysis: crash classification, latency, tables, figures,
propagation, and JSON export."""

from repro.analysis.classify import classify_crash
from repro.analysis.export import dump_results, load_results
from repro.analysis.figures import crash_cause_distribution
from repro.analysis.latency import LATENCY_BUCKETS, latency_histogram
from repro.analysis.propagation import code_propagation, propagation_rate
from repro.analysis.tables import CampaignRow, build_table

__all__ = [
    "classify_crash",
    "LATENCY_BUCKETS", "latency_histogram",
    "CampaignRow", "build_table",
    "crash_cause_distribution",
    "code_propagation", "propagation_rate",
    "dump_results", "load_results",
]
