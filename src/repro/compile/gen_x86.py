"""x86 superblock code generator.

``generate`` turns a run of decoded :class:`Instr` objects into the
source of one Python function ``_block(cpu)`` and compiles it.  Hot
instructions (moves, ALU, stack ops, branches) are *inlined*: their
semantics are re-emitted with operands folded to constants, registers
addressed by literal index, and EFLAGS carried in a local.  Everything
else calls the original executor through a pre-bound global (a
*generic* step), bracketed by exact state synchronization.

Equivalence rules (the generated code must be bit-identical to the
step core at every observation point — fault raise, watchpoint
callback, executor call, block exit):

* ``cyc``/``ins``/``ef`` shadow ``cpu.cycles``/``instret``/``eflags``;
  ``cur``/``nxt``/``ri`` track what ``current_eip``/``eip``/retired
  count would be mid-step.  The ``except`` trailer writes them back on
  any raise unless a generic call is in flight (``synced``).
* Static per-instruction cycle costs are batched in a compile-time
  accumulator and flushed before the next fault-capable body, so
  ``cyc`` is step-exact whenever it can be observed.  Dynamic costs
  (+2 per memory access, +2 per taken branch) are emitted at their
  exact step positions.
* Memory accesses replicate ``cpu.load``/``cpu.store`` verbatim for
  the safe segments (ES/CS/SS/DS, whose base is 0): permission check,
  ``_memfault`` translation, access, ``cycles += 2``, watchpoint hook
  with fully synced state.  FS/GS operands and sub-word ALU widths
  fall back to the generic executor.

Inlining is only attempted for instruction *instances* that qualify;
any ineligible instance silently degrades to a generic step, never to
an error.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.isa.faults import AccessKind, MemoryFault
from repro.x86 import decoder as xdec
from repro.x86.registers import SEG_CS, SEG_DS, SEG_ES, SEG_SS

M = 0xFFFFFFFF
MSB = 0x80000000
_SAFE_SEGS = frozenset({SEG_ES, SEG_CS, SEG_SS, SEG_DS})

#: cycle slack per instruction on top of the static cost, covering the
#: dynamic ``cycles += 2`` bumps (memory access, taken branch)
INLINE_SLACK = 8
#: slack for a generic executor call (int's +120 dispatch sequence is
#: the worst bounded case)
GENERIC_SLACK = 150

#: executors whose cycle cost is unbounded (ecx-driven string loops) —
#: never included in a block
UNBOUNDED = frozenset({xdec.exec_movs, xdec.exec_stos})


def insn_length(instr) -> int:
    return instr.length


def decode_raw(cpu, addr: int):
    """Decode from memory bytes without touching fault state."""
    return xdec.decode(cpu.mem.read(addr, xdec.MAX_INSN_LEN), addr)


def fetch(cpu, addr: int):
    """Discovery-time fetch mirroring ``step()``'s tier order; raises
    MemoryFault (not X86Fault) on a failed check so discovery can
    truncate without mutating cr2."""
    instr = cpu._icache.get(addr)
    if instr is None:
        instr = cpu._icache_warm.get(addr)
        if instr is None:
            instr = decode_raw(cpu, addr)
        cpu.aspace.check(addr, instr.length, AccessKind.FETCH)
    return instr


# ---------------------------------------------------------------------------
# emission machinery


class _Gen:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.ns: Dict[str, object] = {
            "__builtins__": {},
            # the skeleton's except clause must resolve this even
            # though the namespace has no builtins
            "BaseException": BaseException,
            "MF": MemoryFault,
            "AKR": AccessKind.READ,
            "AKW": AccessKind.WRITE,
        }
        self.pend = 0               # batched static cycles
        self.max_cycles = 0
        self.eip_done = False       # a final branch already wrote eip
        self.returned = False       # generic-final emitted a return
        self._n = 0

    def w(self, line: str) -> None:
        self.lines.append("        " + line)

    def bind(self, prefix: str, obj) -> str:
        name = f"{prefix}{self._n}"
        self._n += 1
        self.ns[name] = obj
        return name

    def flush(self) -> None:
        if self.pend:
            self.w(f"cyc += {self.pend}")
            self.pend = 0

    def entry(self, a: int, n: int, k: int) -> None:
        """Sync point opening a fault-capable instruction body."""
        self.flush()
        self.w(f"cur = {a}; nxt = {n}; ri = {k}")


def _ea_expr(i) -> str:
    parts = []
    if i.base >= 0:
        parts.append(f"regs[{i.base}]")
    if i.index >= 0:
        parts.append(f"regs[{i.index}] * {i.scale}" if i.scale != 1
                     else f"regs[{i.index}]")
    disp = i.disp & M
    if not parts:
        return str(disp)
    if disp:
        parts.append(str(disp))
    return "(" + " + ".join(parts) + ") & 4294967295"


_READS = {4: "mem.read_u32(a_, True)", 2: "mem.read_u16(a_, True)",
          1: "mem.read_u8(a_)"}


def _wp_sync(g: _Gen, width: int, kind: str) -> None:
    g.w("if debug._watchpoints:")
    g.w("    cpu.cycles = cyc; cpu.instret = ins + ri; cpu.eflags = ef")
    g.w("    cpu.current_eip = cur; cpu.eip = nxt")
    g.w(f"    debug.check_access(a_, {width}, {kind}, cyc)")


def _load(g: _Gen, width: int) -> None:
    """cpu.load() for a safe segment; address in ``a_``, result in ``v_``.

    The fast path inlines ``aspace.check``'s region hit (same
    containment + permission test, no call) against a per-site region
    cell that persists across executions — each access site has
    near-perfect region locality even when a block interleaves stack
    and data traffic.  The cell is keyed on the address-space identity
    and its layout epoch, so unmapping (or running the shared block on
    a forked machine) forces one slow-path refresh.
    ``translation_on`` needs no test here: block dispatch requires it,
    and mid-block it only changes inside system instructions, which
    always end their block.  Any miss falls back to the real
    ``check``/read calls, so faults are attributed identically."""
    cell = g.bind("s", [None, None, -1])
    g.w(f"rg_ = {cell}[0]")
    g.w(f"if {cell}[1] is aspace and {cell}[2] == aspace._epoch and "
        f"rg_.start <= a_ and "
        f"a_ + {width} <= rg_.start + rg_.size and \"r\" in rg_.perm:")
    if width == 4:
        g.w("    o_ = a_ & 4095")
        g.w("    pg_ = pages.get(a_ >> 12)")
        g.w("    if pg_ is not None and o_ < 4093:")
        g.w("        v_ = pg_[o_] | (pg_[o_ + 1] << 8) | "
            "(pg_[o_ + 2] << 16) | (pg_[o_ + 3] << 24)")
        g.w("    else:")
        g.w("        v_ = mem.read_u32(a_, True)")
    elif width == 2:
        g.w("    o_ = a_ & 4095")
        g.w("    pg_ = pages.get(a_ >> 12)")
        g.w("    if pg_ is not None and o_ < 4095:")
        g.w("        v_ = pg_[o_] | (pg_[o_ + 1] << 8)")
        g.w("    else:")
        g.w("        v_ = mem.read_u16(a_, True)")
    else:
        g.w("    pg_ = pages.get(a_ >> 12)")
        g.w("    v_ = pg_[a_ & 4095] if pg_ is not None else 0")
    g.w("else:")
    g.w("    try:")
    g.w(f"        aspace.check(a_, {width}, AKR)")
    g.w("    except MF as mf:")
    g.w("        cpu._memfault(mf)")
    g.w(f"    v_ = {_READS[width]}")
    g.w(f"    {cell}[0] = aspace._last; {cell}[1] = aspace; "
        f"{cell}[2] = aspace._epoch")
    g.w("cyc += 2")
    _wp_sync(g, width, "AKR")


def _store(g: _Gen, width: int, value: str) -> None:
    """Mirror of :func:`_load` for writes; the fast path additionally
    requires the page to be private (COW pages and misses go through
    ``mem.write_*`` which privatizes)."""
    cell = g.bind("s", [None, None, -1])
    g.w(f"rg_ = {cell}[0]")
    g.w(f"if {cell}[1] is aspace and {cell}[2] == aspace._epoch and "
        f"rg_.start <= a_ and "
        f"a_ + {width} <= rg_.start + rg_.size and \"w\" in rg_.perm:")
    g.w("    pi_ = a_ >> 12")
    g.w("    pg_ = pages.get(pi_)")
    if width == 4:
        g.w("    o_ = a_ & 4095")
        g.w("    if pg_ is not None and o_ < 4093 and pi_ not in shared_:")
        g.w(f"        pg_[o_:o_ + 4] = "
            f"(({value}) & 4294967295).to_bytes(4, \"little\")")
        g.w("    else:")
        g.w(f"        mem.write_u32(a_, {value}, True)")
    elif width == 2:
        g.w("    o_ = a_ & 4095")
        g.w("    if pg_ is not None and o_ < 4095 and pi_ not in shared_:")
        g.w(f"        t_ = {value}")
        g.w("        pg_[o_] = t_ & 255")
        g.w("        pg_[o_ + 1] = (t_ >> 8) & 255")
        g.w("    else:")
        g.w(f"        mem.write_u16(a_, {value}, True)")
    else:
        g.w("    if pg_ is not None and pi_ not in shared_:")
        g.w(f"        pg_[a_ & 4095] = ({value}) & 255")
        g.w("    else:")
        g.w(f"        mem.write_u8(a_, {value})")
    g.w("else:")
    g.w("    try:")
    g.w(f"        aspace.check(a_, {width}, AKW)")
    g.w("    except MF as mf:")
    g.w("        cpu._memfault(mf)")
    if width == 4:
        g.w(f"    mem.write_u32(a_, {value}, True)")
    elif width == 2:
        g.w(f"    mem.write_u16(a_, {value}, True)")
    else:
        g.w(f"    mem.write_u8(a_, {value})")
    g.w(f"    {cell}[0] = aspace._last; {cell}[1] = aspace; "
        f"{cell}[2] = aspace._epoch")
    g.w("cyc += 2")
    _wp_sync(g, width, "AKW")


def _push(g: _Gen, value: str) -> None:
    """push32 with the value expression pre-captured by the caller."""
    g.w("regs[4] = (regs[4] - 4) & 4294967295")
    g.w("a_ = regs[4]")
    _store(g, 4, value)


# -- EFLAGS algebra (width-4 only) ------------------------------------------
# _ARITH_FLAGS = CF|PF|AF|ZF|SF|OF = 2261; inc/dec clear ZF|SF|OF = 2240.


def _flags_add(g: _Gen) -> None:
    g.w("t_ = va_ + vb_")
    g.w("r_ = t_ & 4294967295")
    g.w("ef = (ef & -2262) | (64 if r_ == 0 else 0)"
        " | (128 if r_ & 2147483648 else 0)")
    g.w("if t_ > 4294967295:")
    g.w("    ef |= 1")
    g.w("if (va_ ^ vb_ ^ 4294967295) & (va_ ^ r_) & 2147483648:")
    g.w("    ef |= 2048")


def _flags_sub(g: _Gen) -> None:
    g.w("r_ = (va_ - vb_) & 4294967295")
    g.w("ef = (ef & -2262) | (64 if r_ == 0 else 0)"
        " | (128 if r_ & 2147483648 else 0)")
    g.w("if va_ < vb_:")
    g.w("    ef |= 1")
    g.w("if (va_ ^ vb_) & (va_ ^ r_) & 2147483648:")
    g.w("    ef |= 2048")


def _flags_logic(g: _Gen) -> None:
    g.w("ef = (ef & -2262) | (64 if r_ == 0 else 0)"
        " | (128 if r_ & 2147483648 else 0)")


def _alu_body(g: _Gen, op: int) -> bool:
    """Emit the op on locals va_/vb_ into r_; True if r_ writes back."""
    if op == 0:                                     # add
        _flags_add(g)
        return True
    if op == 2:                                     # adc
        g.w("vb_ = (vb_ + (ef & 1)) & 4294967295")
        _flags_add(g)
        return True
    if op == 5:                                     # sub
        _flags_sub(g)
        return True
    if op == 3:                                     # sbb
        g.w("vb_ = (vb_ + (ef & 1)) & 4294967295")
        _flags_sub(g)
        return True
    if op == 7:                                     # cmp
        _flags_sub(g)
        return False
    if op == 4:
        g.w("r_ = va_ & vb_")
    elif op == 1:
        g.w("r_ = va_ | vb_")
    else:                                           # op == 6, xor
        g.w("r_ = va_ ^ vb_")
    _flags_logic(g)
    return True


# ---------------------------------------------------------------------------
# per-executor emitters.  Signature: (g, i, A, N, K) -> bool; A is the
# instruction address, N the fall-through address, K the count of
# instructions retired before this one.  Returning False (before
# emitting anything!) falls back to a generic step.


def _mem_ok(i) -> bool:
    return i.seg in _SAFE_SEGS


def _e_alu_rm_r(g, i, a, n, k) -> bool:
    if i.width != 4:
        return False
    if i.rm_reg >= 0:
        g.w(f"va_ = regs[{i.rm_reg}]")
        g.w(f"vb_ = regs[{i.reg}]")
        if _alu_body(g, i.op2):
            g.w(f"regs[{i.rm_reg}] = r_")
        return True
    if not _mem_ok(i):
        return False
    g.entry(a, n, k)
    g.w(f"a_ = {_ea_expr(i)}")
    _load(g, 4)
    g.w("va_ = v_")
    g.w(f"vb_ = regs[{i.reg}]")
    if _alu_body(g, i.op2):
        _store(g, 4, "r_")
    return True


def _e_alu_r_rm(g, i, a, n, k) -> bool:
    if i.width != 4:
        return False
    if i.rm_reg >= 0:
        g.w(f"vb_ = regs[{i.rm_reg}]")
    else:
        if not _mem_ok(i):
            return False
        g.entry(a, n, k)
        g.w(f"a_ = {_ea_expr(i)}")
        _load(g, 4)
        g.w("vb_ = v_")
    g.w(f"va_ = regs[{i.reg}]")
    if _alu_body(g, i.op2):
        g.w(f"regs[{i.reg}] = r_")
    return True


def _e_alu_a_imm(g, i, a, n, k) -> bool:
    if i.width != 4:
        return False
    g.w("va_ = regs[0]")
    g.w(f"vb_ = {i.imm & M}")
    if _alu_body(g, i.op2):
        g.w("regs[0] = r_")
    return True


def _e_grp1_rm_imm(g, i, a, n, k) -> bool:
    if i.width != 4:
        return False
    if i.rm_reg >= 0:
        g.w(f"va_ = regs[{i.rm_reg}]")
        g.w(f"vb_ = {i.imm & M}")
        if _alu_body(g, i.op2):
            g.w(f"regs[{i.rm_reg}] = r_")
        return True
    if not _mem_ok(i):
        return False
    g.entry(a, n, k)
    g.w(f"a_ = {_ea_expr(i)}")
    _load(g, 4)
    g.w("va_ = v_")
    g.w(f"vb_ = {i.imm & M}")
    if _alu_body(g, i.op2):
        _store(g, 4, "r_")
    return True


def _e_test_rm_r(g, i, a, n, k) -> bool:
    if i.width != 4:
        return False
    if i.rm_reg >= 0:
        g.w(f"r_ = regs[{i.rm_reg}] & regs[{i.reg}]")
    else:
        if not _mem_ok(i):
            return False
        g.entry(a, n, k)
        g.w(f"a_ = {_ea_expr(i)}")
        _load(g, 4)
        g.w(f"r_ = v_ & regs[{i.reg}]")
    _flags_logic(g)
    return True


def _e_test_a_imm(g, i, a, n, k) -> bool:
    if i.width != 4:
        return False
    g.w(f"r_ = regs[0] & {i.imm & M}")
    _flags_logic(g)
    return True


def _e_mov_rm_r(g, i, a, n, k) -> bool:
    if i.width != 4:
        return False
    if i.rm_reg >= 0:
        g.w(f"regs[{i.rm_reg}] = regs[{i.reg}]")
        return True
    if not _mem_ok(i):
        return False
    g.entry(a, n, k)
    g.w(f"a_ = {_ea_expr(i)}")
    _store(g, 4, f"regs[{i.reg}]")
    return True


def _e_mov_r_rm(g, i, a, n, k) -> bool:
    if i.width != 4:
        return False
    if i.rm_reg >= 0:
        g.w(f"regs[{i.reg}] = regs[{i.rm_reg}]")
        return True
    if not _mem_ok(i):
        return False
    g.entry(a, n, k)
    g.w(f"a_ = {_ea_expr(i)}")
    _load(g, 4)
    g.w(f"regs[{i.reg}] = v_")
    return True


def _e_mov_r_imm(g, i, a, n, k) -> bool:
    if i.width != 4:
        return False
    g.w(f"regs[{i.reg}] = {i.imm & M}")
    return True


def _e_mov_rm_imm(g, i, a, n, k) -> bool:
    if i.width != 4:
        return False
    if i.rm_reg >= 0:
        g.w(f"regs[{i.rm_reg}] = {i.imm & M}")
        return True
    if not _mem_ok(i):
        return False
    g.entry(a, n, k)
    g.w(f"a_ = {_ea_expr(i)}")
    _store(g, 4, str(i.imm & M))
    return True


def _partial_read(i, sw: int) -> str:
    if sw == 2:
        return f"regs[{i.rm_reg}] & 65535"
    if i.rm_reg < 4:
        return f"regs[{i.rm_reg}] & 255"
    return f"(regs[{i.rm_reg - 4}] >> 8) & 255"


def _e_movzx(g, i, a, n, k) -> bool:
    sw = i.op2
    if sw not in (1, 2):
        return False
    if i.rm_reg >= 0:
        g.w(f"regs[{i.reg}] = {_partial_read(i, sw)}")
        return True
    if not _mem_ok(i):
        return False
    g.entry(a, n, k)
    g.w(f"a_ = {_ea_expr(i)}")
    _load(g, sw)
    g.w(f"regs[{i.reg}] = v_")
    return True


def _e_movsx(g, i, a, n, k) -> bool:
    sw = i.op2
    if sw not in (1, 2):
        return False
    if i.rm_reg >= 0:
        g.w(f"v_ = {_partial_read(i, sw)}")
    else:
        if not _mem_ok(i):
            return False
        g.entry(a, n, k)
        g.w(f"a_ = {_ea_expr(i)}")
        _load(g, sw)
    if sw == 1:
        g.w(f"regs[{i.reg}] = (v_ | 4294967040) if v_ & 128 else v_")
    else:
        g.w(f"regs[{i.reg}] = (v_ | 4294901760) if v_ & 32768 else v_")
    return True


def _e_lea(g, i, a, n, k) -> bool:
    if i.rm_reg >= 0:
        return False                    # faults #UD — keep generic
    g.w(f"regs[{i.reg}] = {_ea_expr(i)}")
    return True


def _e_xchg_eax_r(g, i, a, n, k) -> bool:
    g.w("v_ = regs[0]")
    g.w(f"regs[0] = regs[{i.reg}]")
    g.w(f"regs[{i.reg}] = v_")
    return True


def _e_cdq(g, i, a, n, k) -> bool:
    g.w("regs[2] = 4294967295 if regs[0] & 2147483648 else 0")
    return True


def _e_cwde(g, i, a, n, k) -> bool:
    g.w("v_ = regs[0] & 65535")
    g.w("regs[0] = (v_ | 4294901760) if v_ & 32768 else v_")
    return True


def _e_nop(g, i, a, n, k) -> bool:
    return True


def _e_clc(g, i, a, n, k) -> bool:
    g.w("ef &= -2")
    return True


def _e_push_r(g, i, a, n, k) -> bool:
    g.entry(a, n, k)
    g.w(f"v_ = regs[{i.reg}]")
    _push(g, "v_")
    return True


def _e_push_imm(g, i, a, n, k) -> bool:
    g.entry(a, n, k)
    _push(g, str(i.imm & M))
    return True


def _e_pushfd(g, i, a, n, k) -> bool:
    g.entry(a, n, k)
    _push(g, "ef")
    return True


def _e_pop_r(g, i, a, n, k) -> bool:
    g.entry(a, n, k)
    g.w("a_ = regs[4]")
    _load(g, 4)
    g.w("regs[4] = (regs[4] + 4) & 4294967295")
    g.w(f"regs[{i.reg}] = v_")
    return True


def _e_leave(g, i, a, n, k) -> bool:
    g.entry(a, n, k)
    g.w("regs[4] = regs[5]")
    g.w("a_ = regs[4]")
    _load(g, 4)
    g.w("regs[4] = (regs[4] + 4) & 4294967295")
    g.w("regs[5] = v_")
    return True


def _e_inc_r(g, i, a, n, k) -> bool:
    g.w(f"r_ = (regs[{i.reg}] + 1) & 4294967295")
    g.w(f"regs[{i.reg}] = r_")
    g.w("ef = (ef & -2241) | (64 if r_ == 0 else 0)"
        " | (128 if r_ & 2147483648 else 0)"
        " | (2048 if r_ == 2147483648 else 0)")
    return True


def _e_dec_r(g, i, a, n, k) -> bool:
    g.w(f"r_ = (regs[{i.reg}] - 1) & 4294967295")
    g.w(f"regs[{i.reg}] = r_")
    g.w("ef = (ef & -2241) | (64 if r_ == 0 else 0)"
        " | (128 if r_ & 2147483648 else 0)"
        " | (2048 if r_ == 2147483647 else 0)")
    return True


# -- block-final branches ----------------------------------------------------

_COND_EXPRS = [
    "ef & 2048",                                           # o
    "not ef & 2048",                                       # no
    "ef & 1",                                              # b
    "not ef & 1",                                          # ae
    "ef & 64",                                             # e
    "not ef & 64",                                         # ne
    "ef & 65",                                             # be
    "not ef & 65",                                         # a
    "ef & 128",                                            # s
    "not ef & 128",                                        # ns
    "ef & 4",                                              # p
    "not ef & 4",                                          # np
    "((ef >> 7) ^ (ef >> 11)) & 1",                        # l
    "not ((ef >> 7) ^ (ef >> 11)) & 1",                    # ge
    "ef & 64 or ((ef >> 7) ^ (ef >> 11)) & 1",             # le
    "not (ef & 64 or ((ef >> 7) ^ (ef >> 11)) & 1)",       # g
]


def _e_jcc(g, i, a, n, k) -> bool:
    target = (n + i.imm) & M
    g.w(f"if {_COND_EXPRS[i.op2]}:")
    g.w(f"    cpu.eip = {target}")
    g.w("    cyc += 2")
    g.w("else:")
    g.w(f"    cpu.eip = {n}")
    g.eip_done = True
    return True


def _e_jmp_rel(g, i, a, n, k) -> bool:
    g.w(f"cpu.eip = {(n + i.imm) & M}")
    g.w("cyc += 2")
    g.eip_done = True
    return True


def _e_call_rel(g, i, a, n, k) -> bool:
    g.entry(a, n, k)
    _push(g, str(n))
    g.w(f"cpu.eip = {(n + i.imm) & M}")
    g.w("cyc += 2")
    g.eip_done = True
    return True


def _e_ret(g, i, a, n, k) -> bool:
    g.entry(a, n, k)
    g.w("a_ = regs[4]")
    _load(g, 4)
    g.w("regs[4] = (regs[4] + 4) & 4294967295")
    g.w("cpu.eip = v_")
    g.w("cyc += 2")
    if i.imm:
        g.w(f"regs[4] = (regs[4] + {i.imm & M}) & 4294967295")
    g.eip_done = True
    return True


_INLINE: Dict[Callable, Callable] = {
    xdec.exec_alu_rm_r: _e_alu_rm_r,
    xdec.exec_alu_r_rm: _e_alu_r_rm,
    xdec.exec_alu_a_imm: _e_alu_a_imm,
    xdec.exec_grp1_rm_imm: _e_grp1_rm_imm,
    xdec.exec_test_rm_r: _e_test_rm_r,
    xdec.exec_test_a_imm: _e_test_a_imm,
    xdec.exec_mov_rm_r: _e_mov_rm_r,
    xdec.exec_mov_r_rm: _e_mov_r_rm,
    xdec.exec_mov_r_imm: _e_mov_r_imm,
    xdec.exec_mov_rm_imm: _e_mov_rm_imm,
    xdec.exec_movzx: _e_movzx,
    xdec.exec_movsx: _e_movsx,
    xdec.exec_lea: _e_lea,
    xdec.exec_xchg_eax_r: _e_xchg_eax_r,
    xdec.exec_cdq: _e_cdq,
    xdec.exec_cwde: _e_cwde,
    xdec.exec_nop: _e_nop,
    xdec.exec_clc: _e_clc,
    xdec.exec_push_r: _e_push_r,
    xdec.exec_push_imm: _e_push_imm,
    xdec.exec_pushfd: _e_pushfd,
    xdec.exec_pop_r: _e_pop_r,
    xdec.exec_leave: _e_leave,
    xdec.exec_inc_r: _e_inc_r,
    xdec.exec_dec_r: _e_dec_r,
}

_INLINE_FINAL: Dict[Callable, Callable] = {
    xdec.exec_jcc: _e_jcc,
    xdec.exec_jmp_rel: _e_jmp_rel,
    xdec.exec_call_rel: _e_call_rel,
    xdec.exec_ret: _e_ret,
}


def _emit_generic(g: _Gen, i, a: int, n: int, k: int, final: bool) -> None:
    g.entry(a, n, k)
    fn = g.bind("f", i.execute)
    obj = g.bind("i", i)
    g.w("cpu.current_eip = cur")
    g.w("cpu.eip = nxt")
    g.w("cpu.cycles = cyc")
    g.w(f"cpu.instret = ins + {k}")
    g.w("cpu.eflags = ef")
    g.w("synced = True")
    g.w(f"{fn}(cpu, {obj})")
    if final:
        g.w(f"cpu.cycles += {i.cycles}")
        g.w(f"cpu.instret = ins + {k + 1}")
        g.w("return")
        g.returned = True
    else:
        g.w(f"cyc = cpu.cycles + {i.cycles}")
        g.w("ef = cpu.eflags")
        g.w("synced = False")
    g.max_cycles += i.cycles + GENERIC_SLACK


# ---------------------------------------------------------------------------


def generate(nodes: List[Tuple[int, object]], ends_hard: bool):
    """Compile ``nodes`` ([(addr, instr), ...]) into (fn, max_cycles).

    ``ends_hard`` marks the last instruction as a terminator/system
    instruction (it controls eip itself or must run generically as the
    final step)."""
    g = _Gen()
    start = nodes[0][0]
    n0 = (start + nodes[0][1].length) & M
    total = len(nodes)
    for k, (a, instr) in enumerate(nodes):
        n = (a + instr.length) & M
        last = k == total - 1
        if last and ends_hard:
            emitter = _INLINE_FINAL.get(instr.execute)
            if emitter is not None and emitter(g, instr, a, n, k):
                g.pend += instr.cycles
                g.max_cycles += instr.cycles + INLINE_SLACK
            else:
                _emit_generic(g, instr, a, n, k, final=True)
        else:
            emitter = _INLINE.get(instr.execute)
            if emitter is not None and emitter(g, instr, a, n, k):
                g.pend += instr.cycles
                g.max_cycles += instr.cycles + INLINE_SLACK
            else:
                _emit_generic(g, instr, a, n, k, final=False)
    last_a, last_i = nodes[-1]
    if not g.returned:
        g.flush()
        g.w("cpu.cycles = cyc")
        g.w(f"cpu.instret = ins + {total}")
        g.w("cpu.eflags = ef")
        g.w(f"cpu.current_eip = {last_a}")
        if not g.eip_done:
            g.w(f"cpu.eip = {(last_a + last_i.length) & M}")
    src = "\n".join([
        "def _block(cpu):",
        "    regs = cpu.regs",
        "    mem = cpu.mem",
        "    pages = mem._pages",
        "    shared_ = mem._shared",
        "    aspace = cpu.aspace",
        "    debug = cpu.debug",
        "    cyc = cpu.cycles",
        "    ins = cpu.instret",
        "    ef = cpu.eflags",
        f"    cur = {start}",
        f"    nxt = {n0}",
        "    ri = 0",
        "    synced = False",
        "    try:",
    ] + g.lines + [
        "        pass",
        "    except BaseException:",
        "        if not synced:",
        "            cpu.cycles = cyc",
        "            cpu.instret = ins + ri",
        "            cpu.eflags = ef",
        "            cpu.current_eip = cur",
        "            cpu.eip = nxt",
        "        raise",
    ])
    code = compile(src, f"<x86-block@{start:#x}>", "exec")
    exec(code, g.ns)
    return g.ns["_block"], g.max_cycles
