"""PowerPC superblock code generator.

Same contract as :mod:`repro.compile.gen_x86`, with the G4-specific
observation points replicated exactly:

* ``cr`` is carried in a local (the PPC analogue of EFLAGS); ``lr``,
  ``ctr`` and ``xer`` stay on the CPU object — they are touched by few
  instructions and always via plain attribute access.
* Loads add the +2 misalignment penalty *before* the permission check;
  misaligned stores raise ALIGNMENT before checking, exactly like
  ``cpu.store``.
* The MSR[DR]-clear trap (``_high_data_fault``) is hoisted into a
  local: only system instructions can change it and they always end a
  block.
* Every taken branch goes through the BTIC-poisoning check; the
  poisoned path delegates to ``cpu.branch`` so the PROGRAM fault is
  raised with identical attribution.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.isa.faults import AccessKind, MemoryFault
from repro.ppc import decoder as pdec
from repro.ppc.exceptions import PPCFault, PPCVector

M = 0xFFFFFFFF

INLINE_SLACK = 8
GENERIC_SLACK = 150

#: register-count-driven loops; cycle cost unbounded per instruction
UNBOUNDED = frozenset()

_NAMED_SPRS = {8: "lr", 9: "ctr", 1: "xer"}


def insn_length(instr) -> int:
    return 4


def decode_raw(cpu, addr: int):
    return pdec.decode(cpu.mem.read_u32(addr, False), addr)


def fetch(cpu, addr: int):
    """Discovery-time fetch; raises MemoryFault on a failed check so
    discovery can truncate without touching DAR/DSISR."""
    instr = cpu._icache.get(addr)
    if instr is None:
        cpu.aspace.check(addr, 4, AccessKind.FETCH)
        instr = cpu._icache_warm.get(addr)
        if instr is None:
            instr = decode_raw(cpu, addr)
    return instr


# ---------------------------------------------------------------------------


class _Gen:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.ns: Dict[str, object] = {
            "__builtins__": {},
            # the skeleton's except clause must resolve this even
            # though the namespace has no builtins
            "BaseException": BaseException,
            "MF": MemoryFault,
            "AKR": AccessKind.READ,
            "AKW": AccessKind.WRITE,
            "PF": PPCFault,
            "ALV": PPCVector.ALIGNMENT,
        }
        self.pend = 0
        self.max_cycles = 0
        self.pc_done = False
        self.returned = False
        self._n = 0

    def w(self, line: str) -> None:
        self.lines.append("        " + line)

    def bind(self, prefix: str, obj) -> str:
        name = f"{prefix}{self._n}"
        self._n += 1
        self.ns[name] = obj
        return name

    def flush(self) -> None:
        if self.pend:
            self.w(f"cyc += {self.pend}")
            self.pend = 0

    def entry(self, a: int, n: int, k: int) -> None:
        self.flush()
        self.w(f"cur = {a}; nxt = {n}; ri = {k}")


def _wp_sync(g: _Gen, width: int, kind: str) -> None:
    g.w("if debug._watchpoints:")
    g.w("    cpu.cycles = cyc; cpu.instret = ins + ri; cpu.cr = cr")
    g.w("    cpu.current_pc = cur; cpu.pc = nxt")
    g.w(f"    debug.check_access(a_, {width}, {kind}, cyc)")


_READS = {4: "mem.read_u32(a_, False)", 2: "mem.read_u16(a_, False)",
          1: "mem.read_u8(a_)"}


def _load(g: _Gen, width: int, known_aligned: bool = False) -> None:
    """cpu.load(); address in ``a_``, result in ``v_``.

    The fast path inlines ``aspace.check``'s last-region hit (the same
    containment + permission test, without the call) and the
    single-page big-endian read; the G4 core never turns
    ``translation_on`` off (high-address faults go through the ``hdf``
    guard above instead).  Misses fall back to the real calls so
    faults are attributed identically.  ``known_aligned`` skips the
    misalignment cycle penalty when the emitter has already proven
    word alignment (lmw)."""
    g.w("if hdf is not None and a_ >= 2147483648:")
    g.w("    cpu._high_data_trap(a_)")
    if width > 1 and not known_aligned:
        g.w(f"if a_ & {width - 1}:")
        g.w("    cyc += 2")
    cell = g.bind("s", [None, None, -1])
    g.w(f"rg_ = {cell}[0]")
    g.w(f"if {cell}[1] is aspace and {cell}[2] == aspace._epoch and "
        f"rg_.start <= a_ and "
        f"a_ + {width} <= rg_.start + rg_.size and \"r\" in rg_.perm:")
    if width == 4:
        g.w("    o_ = a_ & 4095")
        g.w("    pg_ = pages.get(a_ >> 12)")
        g.w("    if pg_ is not None and o_ < 4093:")
        g.w("        v_ = (pg_[o_] << 24) | (pg_[o_ + 1] << 16) | "
            "(pg_[o_ + 2] << 8) | pg_[o_ + 3]")
        g.w("    else:")
        g.w("        v_ = mem.read_u32(a_, False)")
    elif width == 2:
        g.w("    o_ = a_ & 4095")
        g.w("    pg_ = pages.get(a_ >> 12)")
        g.w("    if pg_ is not None and o_ < 4095:")
        g.w("        v_ = (pg_[o_] << 8) | pg_[o_ + 1]")
        g.w("    else:")
        g.w("        v_ = mem.read_u16(a_, False)")
    else:
        g.w("    pg_ = pages.get(a_ >> 12)")
        g.w("    v_ = pg_[a_ & 4095] if pg_ is not None else 0")
    g.w("else:")
    g.w("    try:")
    g.w(f"        aspace.check(a_, {width}, AKR)")
    g.w("    except MF as mf:")
    g.w("        cpu._memfault(mf)")
    g.w(f"    v_ = {_READS[width]}")
    g.w(f"    {cell}[0] = aspace._last; {cell}[1] = aspace; "
        f"{cell}[2] = aspace._epoch")
    g.w("cyc += 2")
    _wp_sync(g, width, "AKR")


def _store(g: _Gen, width: int, value: str,
           known_aligned: bool = False) -> None:
    """Mirror of :func:`_load` for writes; the fast path additionally
    requires the page to be private (COW pages and misses go through
    ``mem.write_*`` which privatizes)."""
    g.w("if hdf is not None and a_ >= 2147483648:")
    g.w("    cpu._high_data_trap(a_)")
    if width > 1 and not known_aligned:
        g.w(f"if a_ & {width - 1}:")
        g.w(f'    raise PF(ALV, a_, "unaligned {width}-byte store")')
    cell = g.bind("s", [None, None, -1])
    g.w(f"rg_ = {cell}[0]")
    g.w(f"if {cell}[1] is aspace and {cell}[2] == aspace._epoch and "
        f"rg_.start <= a_ and "
        f"a_ + {width} <= rg_.start + rg_.size and \"w\" in rg_.perm:")
    g.w("    pi_ = a_ >> 12")
    g.w("    pg_ = pages.get(pi_)")
    if width == 4:
        g.w("    o_ = a_ & 4095")
        g.w("    if pg_ is not None and o_ < 4093 and pi_ not in shared_:")
        g.w(f"        pg_[o_:o_ + 4] = "
            f"(({value}) & 4294967295).to_bytes(4, \"big\")")
        g.w("    else:")
        g.w(f"        mem.write_u32(a_, {value}, False)")
    elif width == 2:
        g.w("    o_ = a_ & 4095")
        g.w("    if pg_ is not None and o_ < 4095 and pi_ not in shared_:")
        g.w(f"        t_ = {value}")
        g.w("        pg_[o_] = (t_ >> 8) & 255")
        g.w("        pg_[o_ + 1] = t_ & 255")
        g.w("    else:")
        g.w(f"        mem.write_u16(a_, {value}, False)")
    else:
        g.w("    if pg_ is not None and pi_ not in shared_:")
        g.w(f"        pg_[a_ & 4095] = ({value}) & 255")
        g.w("    else:")
        g.w(f"        mem.write_u8(a_, {value})")
    g.w("else:")
    g.w("    try:")
    g.w(f"        aspace.check(a_, {width}, AKW)")
    g.w("    except MF as mf:")
    g.w("        cpu._memfault(mf)")
    if width == 4:
        g.w(f"    mem.write_u32(a_, {value}, False)")
    elif width == 2:
        g.w(f"    mem.write_u16(a_, {value}, False)")
    else:
        g.w(f"    mem.write_u8(a_, {value})")
    g.w(f"    {cell}[0] = aspace._last; {cell}[1] = aspace; "
        f"{cell}[2] = aspace._epoch")
    g.w("cyc += 2")
    _wp_sync(g, width, "AKW")


def _signed(g: _Gen, var: str) -> None:
    g.w(f"{var} = {var} - 4294967296 if {var} & 2147483648 else {var}")


def _set_cr0(g: _Gen, result: str) -> None:
    """set_cr0_signed: LT if negative, EQ if zero, else GT, into field 0."""
    g.w(f"cr = (cr & 268435455) | (2147483648 if {result} & 2147483648"
        f" else (536870912 if {result} == 0 else 1073741824))")


def _crf(g: _Gen, field: int, a: str, b: str) -> None:
    shift = 28 - 4 * field
    clear = (~(0xF << shift)) & M
    g.w(f"cr = (cr & {clear}) | "
        f"((8 if {a} < {b} else (4 if {a} > {b} else 2)) << {shift})")


# ---------------------------------------------------------------------------
# emitters


def _e_addi(g, i, a, n, k) -> bool:
    if i.ra:
        g.w(f"gpr[{i.rt}] = (gpr[{i.ra}] + {i.imm}) & 4294967295")
    else:
        g.w(f"gpr[{i.rt}] = {i.imm & M}")
    return True


def _e_addis(g, i, a, n, k) -> bool:
    hi = i.imm << 16
    if i.ra:
        g.w(f"gpr[{i.rt}] = (gpr[{i.ra}] + {hi}) & 4294967295")
    else:
        g.w(f"gpr[{i.rt}] = {hi & M}")
    return True


def _e_addic(g, i, a, n, k) -> bool:
    g.w(f"t_ = gpr[{i.ra}] + {i.imm}")
    g.w("cpu.xer = (cpu.xer & -536870913)"
        " | (536870912 if t_ > 4294967295 else 0)")
    g.w(f"gpr[{i.rt}] = t_ & 4294967295")
    return True


def _e_subfic(g, i, a, n, k) -> bool:
    g.w(f"v_ = gpr[{i.ra}]")
    g.w(f"cpu.xer = (cpu.xer & -536870913)"
        f" | (536870912 if v_ <= {i.imm & M} else 0)")
    g.w(f"gpr[{i.rt}] = ({i.imm} - v_) & 4294967295")
    return True


def _e_adde(g, i, a, n, k) -> bool:
    g.w(f"t_ = gpr[{i.ra}] + gpr[{i.rb}]"
        " + (1 if cpu.xer & 536870912 else 0)")
    g.w("cpu.xer = (cpu.xer & -536870913)"
        " | (536870912 if t_ > 4294967295 else 0)")
    g.w(f"gpr[{i.rt}] = t_ & 4294967295")
    return True


def _e_addze(g, i, a, n, k) -> bool:
    g.w(f"t_ = gpr[{i.ra}] + (1 if cpu.xer & 536870912 else 0)")
    g.w("cpu.xer = (cpu.xer & -536870913)"
        " | (536870912 if t_ > 4294967295 else 0)")
    g.w(f"gpr[{i.rt}] = t_ & 4294967295")
    return True


def _e_mulli(g, i, a, n, k) -> bool:
    g.w(f"v_ = gpr[{i.ra}]")
    _signed(g, "v_")
    g.w(f"gpr[{i.rt}] = (v_ * {i.imm}) & 4294967295")
    g.pend += 3
    return True


def _e_mullw(g, i, a, n, k) -> bool:
    g.w(f"v_ = gpr[{i.ra}]")
    _signed(g, "v_")
    g.w(f"t_ = gpr[{i.rb}]")
    _signed(g, "t_")
    g.w(f"gpr[{i.rt}] = (v_ * t_) & 4294967295")
    g.pend += 3
    return True


def _e_add(g, i, a, n, k) -> bool:
    g.w(f"gpr[{i.rt}] = (gpr[{i.ra}] + gpr[{i.rb}]) & 4294967295")
    return True


def _e_subf(g, i, a, n, k) -> bool:
    g.w(f"gpr[{i.rt}] = (gpr[{i.rb}] - gpr[{i.ra}]) & 4294967295")
    return True


def _e_neg(g, i, a, n, k) -> bool:
    g.w(f"gpr[{i.rt}] = (-gpr[{i.ra}]) & 4294967295")
    return True


def _e_and(g, i, a, n, k) -> bool:
    g.w(f"gpr[{i.ra}] = gpr[{i.rt}] & gpr[{i.rb}]")
    return True


def _e_or(g, i, a, n, k) -> bool:
    g.w(f"gpr[{i.ra}] = gpr[{i.rt}] | gpr[{i.rb}]")
    return True


def _e_xor(g, i, a, n, k) -> bool:
    g.w(f"gpr[{i.ra}] = gpr[{i.rt}] ^ gpr[{i.rb}]")
    return True


def _e_nand(g, i, a, n, k) -> bool:
    g.w(f"gpr[{i.ra}] = (gpr[{i.rt}] & gpr[{i.rb}]) ^ 4294967295")
    return True


def _e_nor(g, i, a, n, k) -> bool:
    g.w(f"gpr[{i.ra}] = (gpr[{i.rt}] | gpr[{i.rb}]) ^ 4294967295")
    return True


def _e_slw(g, i, a, n, k) -> bool:
    g.w(f"s_ = gpr[{i.rb}] & 63")
    g.w(f"gpr[{i.ra}] = (gpr[{i.rt}] << s_) & 4294967295"
        " if s_ < 32 else 0")
    return True


def _e_srw(g, i, a, n, k) -> bool:
    g.w(f"s_ = gpr[{i.rb}] & 63")
    g.w(f"gpr[{i.ra}] = (gpr[{i.rt}] >> s_) if s_ < 32 else 0")
    return True


def _e_sraw(g, i, a, n, k) -> bool:
    g.w(f"s_ = gpr[{i.rb}] & 63")
    g.w(f"v_ = gpr[{i.rt}]")
    _signed(g, "v_")
    g.w("gpr[%d] = (v_ >> (s_ if s_ < 31 else 31)) & 4294967295" % i.ra)
    return True


def _e_srawi(g, i, a, n, k) -> bool:
    sh = i.rb
    g.w(f"v_ = gpr[{i.rt}]")
    g.w(f"gpr[{i.ra}] = ((v_ - 4294967296) >> {sh}) & 4294967295"
        f" if v_ & 2147483648 else v_ >> {sh}")
    return True


def _e_ori(g, i, a, n, k) -> bool:
    g.w(f"gpr[{i.ra}] = gpr[{i.rt}] | {i.imm}")
    return True


def _e_oris(g, i, a, n, k) -> bool:
    g.w(f"gpr[{i.ra}] = gpr[{i.rt}] | {i.imm << 16}")
    return True


def _e_xori(g, i, a, n, k) -> bool:
    g.w(f"gpr[{i.ra}] = gpr[{i.rt}] ^ {i.imm}")
    return True


def _e_xoris(g, i, a, n, k) -> bool:
    g.w(f"gpr[{i.ra}] = gpr[{i.rt}] ^ {i.imm << 16}")
    return True


def _e_andi_dot(g, i, a, n, k) -> bool:
    g.w(f"r_ = gpr[{i.rt}] & {i.imm}")
    g.w(f"gpr[{i.ra}] = r_")
    _set_cr0(g, "r_")
    return True


def _e_andis_dot(g, i, a, n, k) -> bool:
    g.w(f"r_ = gpr[{i.rt}] & {i.imm << 16}")
    g.w(f"gpr[{i.ra}] = r_")
    _set_cr0(g, "r_")
    return True


def _e_rlwinm(g, i, a, n, k) -> bool:
    sh, mb, me = i.rb, i.imm, i.op2
    if mb <= me:
        mask = ((1 << (me - mb + 1)) - 1) << (31 - me)
    else:
        mask = M ^ (((1 << (mb - me - 1)) - 1) << (31 - mb + 1))
    g.w(f"v_ = gpr[{i.rt}]")
    if sh:
        g.w(f"gpr[{i.ra}] = ((v_ << {sh}) | (v_ >> {32 - sh})) & {mask}")
    else:
        g.w(f"gpr[{i.ra}] = v_ & {mask}")
    return True


def _e_cntlzw(g, i, a, n, k) -> bool:
    g.w(f"v_ = gpr[{i.rt}]")
    g.w(f"gpr[{i.ra}] = 32 - v_.bit_length() if v_ else 32")
    return True


def _e_extsb(g, i, a, n, k) -> bool:
    g.w(f"v_ = gpr[{i.rt}] & 255")
    g.w(f"gpr[{i.ra}] = (v_ | 4294967040) if v_ & 128 else v_")
    return True


def _e_extsh(g, i, a, n, k) -> bool:
    g.w(f"v_ = gpr[{i.rt}] & 65535")
    g.w(f"gpr[{i.ra}] = (v_ | 4294901760) if v_ & 32768 else v_")
    return True


def _e_cmpwi(g, i, a, n, k) -> bool:
    g.w(f"va_ = gpr[{i.ra}]")
    _signed(g, "va_")
    _crf(g, i.op2, "va_", str(i.imm))
    return True


def _e_cmplwi(g, i, a, n, k) -> bool:
    _crf(g, i.op2, f"gpr[{i.ra}]", str(i.imm))
    return True


def _e_cmpw(g, i, a, n, k) -> bool:
    g.w(f"va_ = gpr[{i.ra}]")
    _signed(g, "va_")
    g.w(f"vb_ = gpr[{i.rb}]")
    _signed(g, "vb_")
    _crf(g, i.op2, "va_", "vb_")
    return True


def _e_cmplw(g, i, a, n, k) -> bool:
    g.w(f"va_ = gpr[{i.ra}]")
    g.w(f"vb_ = gpr[{i.rb}]")
    _crf(g, i.op2, "va_", "vb_")
    return True


def _e_mfcr(g, i, a, n, k) -> bool:
    g.w(f"gpr[{i.rt}] = cr")
    return True


def _e_mfspr(g, i, a, n, k) -> bool:
    attr = _NAMED_SPRS.get(i.imm)
    if attr is None:
        return False
    g.w(f"gpr[{i.rt}] = cpu.{attr}")
    return True


def _e_mtspr(g, i, a, n, k) -> bool:
    attr = _NAMED_SPRS.get(i.imm)
    if attr is None:
        return False
    g.w(f"cpu.{attr} = gpr[{i.rt}] & 4294967295")
    return True


def _e_nopish(g, i, a, n, k) -> bool:
    g.pend += 2
    return True


# -- memory -----------------------------------------------------------------


def _d_addr(i) -> str:
    if i.ra:
        return f"(gpr[{i.ra}] + {i.imm}) & 4294967295"
    return str(i.imm & M)


def _x_addr(i) -> str:
    if i.ra:
        return f"(gpr[{i.ra}] + gpr[{i.rb}]) & 4294967295"
    return f"gpr[{i.rb}]"


def _mk_load(addr_fn, width, sign=False, update=False):
    def emit(g, i, a, n, k) -> bool:
        g.entry(a, n, k)
        g.w(f"a_ = {addr_fn(i)}")
        _load(g, width)
        if sign:
            g.w(f"gpr[{i.rt}] = (v_ | 4294901760) if v_ & 32768 else v_")
        else:
            g.w(f"gpr[{i.rt}] = v_")
        if update:
            g.w(f"gpr[{i.ra}] = a_")
        return True
    return emit


def _mk_store(addr_fn, width, update=False):
    def emit(g, i, a, n, k) -> bool:
        g.entry(a, n, k)
        g.w(f"a_ = {addr_fn(i)}")
        _store(g, width, f"gpr[{i.rt}]")
        if update:
            g.w(f"gpr[{i.ra}] = a_")
        return True
    return emit


def _u_addr(i) -> str:
    # lwzu/stwu: no ra==0 folding — the executor always reads gpr[ra]
    return f"(gpr[{i.ra}] + {i.imm}) & 4294967295"


def _e_lmw(g, i, a, n, k) -> bool:
    """Unrolled load-multiple: rt..r31, word count known at decode time
    so the cycle cost is bounded (2 per word after the alignment
    check, exactly like the per-word cpu.load calls)."""
    g.entry(a, n, k)
    g.w(f"a_ = {_d_addr(i)}")
    g.w("if a_ & 3:")
    g.w('    raise PF(ALV, a_, "lmw operand not aligned")')
    for reg in range(i.rt, 32):
        _load(g, 4, known_aligned=True)
        g.w(f"gpr[{reg}] = v_")
        if reg != 31:
            g.w("a_ = (a_ + 4) & 4294967295")
    g.max_cycles += (32 - i.rt) * 2
    return True


def _e_stmw(g, i, a, n, k) -> bool:
    g.entry(a, n, k)
    g.w(f"a_ = {_d_addr(i)}")
    g.w("if a_ & 3:")
    g.w('    raise PF(ALV, a_, "stmw operand not aligned")')
    for reg in range(i.rt, 32):
        _store(g, 4, f"gpr[{reg}]", known_aligned=True)
        if reg != 31:
            g.w("a_ = (a_ + 4) & 4294967295")
    g.max_cycles += (32 - i.rt) * 2
    return True


# -- branches (block-final) --------------------------------------------------


def _taken_branch(g: _Gen, target: str) -> None:
    """Emit the taken path: BTIC check (cpu.branch raises the PROGRAM
    fault itself when poisoned), then the pc update + 2 cycles."""
    g.w("    if cpu.btic_poisoned:")
    g.w("        cpu.branch(0)")
    g.w(f"    cpu.pc = {target}")
    g.w("    cyc += 2")


def _e_b(g, i, a, n, k) -> bool:
    g.entry(a, n, k)
    if i.op2 & 1:
        g.w(f"cpu.lr = {n}")
    target = i.imm if i.op2 & 2 else (a + i.imm) & M
    g.w("if cpu.btic_poisoned:")
    g.w("    cpu.branch(0)")
    g.w(f"cpu.pc = {target & 0xFFFFFFFC}")
    g.w("cyc += 2")
    g.pc_done = True
    return True


def _bc_cond(g: _Gen, bo: int, bi: int) -> str:
    """Decompose _bc_taken for constant bo/bi; emits the CTR decrement
    and returns the taken expression ('True' when unconditional)."""
    conds = []
    if not bo & 0x4:
        g.w("cpu.ctr = (cpu.ctr - 1) & 4294967295")
        conds.append("cpu.ctr == 0" if bo & 0x2 else "cpu.ctr != 0")
    if not bo & 0x10:
        bit = f"(cr >> {31 - (bi & 31)}) & 1"
        conds.append(bit if bo & 0x8 else f"not {bit}")
    return " and ".join(conds) if conds else "True"


def _e_bc(g, i, a, n, k) -> bool:
    g.entry(a, n, k)
    if i.op2 & 1:
        g.w(f"cpu.lr = {n}")
    cond = _bc_cond(g, i.rt, i.ra)
    target = i.imm if i.op2 & 2 else (a + i.imm) & M
    g.w(f"if {cond}:")
    _taken_branch(g, str(target & 0xFFFFFFFC))
    if cond != "True":
        g.w("else:")
        g.w(f"    cpu.pc = {n}")
    g.pc_done = True
    return True


def _e_bclr(g, i, a, n, k) -> bool:
    g.entry(a, n, k)
    cond = _bc_cond(g, i.rt, i.ra)
    g.w(f"tk_ = {cond}")
    g.w("t_ = cpu.lr & 4294967292")
    if i.op2 & 1:
        g.w(f"cpu.lr = {n}")
    g.w("if tk_:")
    _taken_branch(g, "t_")
    g.w("else:")
    g.w(f"    cpu.pc = {n}")
    g.pc_done = True
    return True


def _e_bcctr(g, i, a, n, k) -> bool:
    g.entry(a, n, k)
    cond = _bc_cond(g, i.rt | 0x4, i.ra)    # bcctr never decrements CTR
    g.w(f"if {cond}:")
    if i.op2 & 1:
        g.w(f"    cpu.lr = {n}")
    g.w("    if cpu.btic_poisoned:")
    g.w("        cpu.branch(0)")
    g.w("    cpu.pc = cpu.ctr & 4294967292")
    g.w("    cyc += 2")
    if cond != "True":
        g.w("else:")
        g.w(f"    cpu.pc = {n}")
    g.pc_done = True
    return True


_INLINE: Dict[Callable, Callable] = {
    pdec.exec_addi: _e_addi,
    pdec.exec_addis: _e_addis,
    pdec.exec_addic: _e_addic,
    pdec.exec_subfic: _e_subfic,
    pdec.exec_adde: _e_adde,
    pdec.exec_addze: _e_addze,
    pdec.exec_mulli: _e_mulli,
    pdec.exec_mullw: _e_mullw,
    pdec.exec_add: _e_add,
    pdec.exec_subf: _e_subf,
    pdec.exec_neg: _e_neg,
    pdec.exec_and: _e_and,
    pdec.exec_or: _e_or,
    pdec.exec_xor: _e_xor,
    pdec.exec_nand: _e_nand,
    pdec.exec_nor: _e_nor,
    pdec.exec_slw: _e_slw,
    pdec.exec_srw: _e_srw,
    pdec.exec_sraw: _e_sraw,
    pdec.exec_srawi: _e_srawi,
    pdec.exec_ori: _e_ori,
    pdec.exec_oris: _e_oris,
    pdec.exec_xori: _e_xori,
    pdec.exec_xoris: _e_xoris,
    pdec.exec_andi_dot: _e_andi_dot,
    pdec.exec_andis_dot: _e_andis_dot,
    pdec.exec_rlwinm: _e_rlwinm,
    pdec.exec_cntlzw: _e_cntlzw,
    pdec.exec_extsb: _e_extsb,
    pdec.exec_extsh: _e_extsh,
    pdec.exec_cmpwi: _e_cmpwi,
    pdec.exec_cmplwi: _e_cmplwi,
    pdec.exec_cmpw: _e_cmpw,
    pdec.exec_cmplw: _e_cmplw,
    pdec.exec_mfcr: _e_mfcr,
    pdec.exec_mfspr: _e_mfspr,
    pdec.exec_mtspr: _e_mtspr,
    pdec.exec_nopish: _e_nopish,
    pdec.exec_lwz: _mk_load(_d_addr, 4),
    pdec.exec_lbz: _mk_load(_d_addr, 1),
    pdec.exec_lhz: _mk_load(_d_addr, 2),
    pdec.exec_lha: _mk_load(_d_addr, 2, sign=True),
    pdec.exec_lwzx: _mk_load(_x_addr, 4),
    pdec.exec_lbzx: _mk_load(_x_addr, 1),
    pdec.exec_lhzx: _mk_load(_x_addr, 2),
    pdec.exec_lhax: _mk_load(_x_addr, 2, sign=True),
    pdec.exec_lwzu: _mk_load(_u_addr, 4, update=True),
    pdec.exec_stw: _mk_store(_d_addr, 4),
    pdec.exec_stb: _mk_store(_d_addr, 1),
    pdec.exec_sth: _mk_store(_d_addr, 2),
    pdec.exec_stwx: _mk_store(_x_addr, 4),
    pdec.exec_stbx: _mk_store(_x_addr, 1),
    pdec.exec_sthx: _mk_store(_x_addr, 2),
    pdec.exec_stwu: _mk_store(_u_addr, 4, update=True),
    pdec.exec_lmw: _e_lmw,
    pdec.exec_stmw: _e_stmw,
}

_INLINE_FINAL: Dict[Callable, Callable] = {
    pdec.exec_b: _e_b,
    pdec.exec_bc: _e_bc,
    pdec.exec_bclr: _e_bclr,
    pdec.exec_bcctr: _e_bcctr,
}


def _emit_generic(g: _Gen, i, a: int, n: int, k: int, final: bool) -> None:
    g.entry(a, n, k)
    fn = g.bind("f", i.execute)
    obj = g.bind("i", i)
    g.w("cpu.current_pc = cur")
    g.w("cpu.pc = nxt")
    g.w("cpu.cycles = cyc")
    g.w(f"cpu.instret = ins + {k}")
    g.w("cpu.cr = cr")
    g.w("synced = True")
    g.w(f"{fn}(cpu, {obj})")
    if final:
        g.w(f"cpu.cycles += {i.cycles}")
        g.w(f"cpu.instret = ins + {k + 1}")
        g.w("return")
        g.returned = True
    else:
        g.w(f"cyc = cpu.cycles + {i.cycles}")
        g.w("cr = cpu.cr")
        g.w("synced = False")
    g.max_cycles += i.cycles + GENERIC_SLACK


def generate(nodes: List[Tuple[int, object]], ends_hard: bool):
    g = _Gen()
    start = nodes[0][0]
    n0 = (start + 4) & M
    total = len(nodes)
    for k, (a, instr) in enumerate(nodes):
        n = (a + 4) & M
        last = k == total - 1
        if last and ends_hard:
            emitter = _INLINE_FINAL.get(instr.execute)
            if emitter is not None and emitter(g, instr, a, n, k):
                g.pend += instr.cycles
                g.max_cycles += instr.cycles + INLINE_SLACK
            else:
                _emit_generic(g, instr, a, n, k, final=True)
        else:
            emitter = _INLINE.get(instr.execute)
            if emitter is not None and emitter(g, instr, a, n, k):
                g.pend += instr.cycles
                g.max_cycles += instr.cycles + INLINE_SLACK
            else:
                _emit_generic(g, instr, a, n, k, final=False)
    last_a = nodes[-1][0]
    if not g.returned:
        g.flush()
        g.w("cpu.cycles = cyc")
        g.w(f"cpu.instret = ins + {total}")
        g.w("cpu.cr = cr")
        g.w(f"cpu.current_pc = {last_a}")
        if not g.pc_done:
            g.w(f"cpu.pc = {(last_a + 4) & M}")
    src = "\n".join([
        "def _block(cpu):",
        "    gpr = cpu.gpr",
        "    mem = cpu.mem",
        "    pages = mem._pages",
        "    shared_ = mem._shared",
        "    aspace = cpu.aspace",
        "    debug = cpu.debug",
        "    cyc = cpu.cycles",
        "    ins = cpu.instret",
        "    cr = cpu.cr",
        "    hdf = cpu._high_data_fault",
        f"    cur = {start}",
        f"    nxt = {n0}",
        "    ri = 0",
        "    synced = False",
        "    try:",
    ] + g.lines + [
        "        pass",
        "    except BaseException:",
        "        if not synced:",
        "            cpu.cycles = cyc",
        "            cpu.instret = ins + ri",
        "            cpu.cr = cr",
        "            cpu.current_pc = cur",
        "            cpu.pc = nxt",
        "        raise",
    ])
    code = compile(src, f"<ppc-block@{start:#x}>", "exec")
    exec(code, g.ns)
    return g.ns["_block"], g.max_cycles
