"""Superblock compilation for the interpreter cores.

``blocks`` holds the per-machine compiled-block cache and the discovery
pass; ``gen_x86``/``gen_ppc`` translate a run of decoded instructions
into one specialized Python function with operands pre-bound.
"""

from repro.compile.blocks import (  # noqa: F401
    BlockCache, CompiledBlock, compile_block, leaders_for, lookup_block,
)
