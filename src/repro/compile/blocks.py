"""Compiled-block discovery and the per-machine block cache.

A *superblock* here is a straight-line run of decoded instructions
ending at the first control-flow terminator, system instruction, basic
block leader (from the static CFG when one is available), unknown
encoding, or size cap.  Each run is handed to the per-arch generator
(``gen_x86``/``gen_ppc``) which emits one Python function with operand
fields, register indices and memory handlers bound at compile time, so
per-instruction dispatch cost is paid once per block instead of once
per instruction.

Correctness contract (everything the step core observes must match):

* Discovery never mutates CPU state: fetches go through the icache
  tiers or a raw decode plus ``aspace.check`` — never ``decode_at`` /
  ``_validate_fetch``, which set ``cr2``/``DAR`` on failure.
* A block only runs from the *hot* tier, and a hot block guarantees
  every one of its instruction addresses is present in the CPU's hot
  icache (``_prepare`` re-runs the same permission checks and the same
  warm-tier promotion the step core would).  Any icache invalidation
  or flush is forwarded here and demotes every hot block, so staleness
  is impossible without an intervening re-validation.
* Blocks whose first instruction cannot be compiled (unknown encoding,
  unbounded string op) are cached as *negative markers*
  (``fn is None``) so the dispatch loop falls back to single-stepping
  without re-running discovery every visit.

The cache mirrors the two-tier warm icache: ``fork()`` snapshots the
parent's blocks into the child's warm tier (shared dict, copy-on-write
on first eviction), and the first execution re-validates via
``_prepare`` exactly like a warm icache hit does.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.isa.faults import AccessKind, MemoryFault
from repro.static.effects import UnknownInstructionError, insn_effects

MASK32 = 0xFFFFFFFF
_FETCH = AccessKind.FETCH

#: Cap on instructions per superblock.  Long enough to swallow typical
#: kcc-emitted basic blocks, short enough that the dispatch-loop guards
#: (budget / pending-action / watchdog headroom) rarely force a
#: fallback to single-stepping.
MAX_BLOCK_INSNS = 32


class CompiledBlock:
    """One compiled superblock (or a negative marker when ``fn`` is None).

    ``end`` is the *unwrapped* exclusive byte bound (may be 2**32 for a
    block touching the top of the address space) so interval overlap
    tests against write ranges stay well-ordered.
    """

    __slots__ = ("start", "end", "n", "spans", "fn", "max_cycles")

    def __init__(self, start: int, end: int, n: int,
                 spans: Tuple[Tuple[int, int], ...], fn, max_cycles: int):
        self.start = start
        self.end = end
        self.n = n
        self.spans = spans          # ((addr, length), ...) per instruction
        self.fn = fn                # fn(cpu) -> None, or None (marker)
        self.max_cycles = max_cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "marker" if self.fn is None else f"{self.n} insns"
        return f"CompiledBlock({self.start:#x}..{self.end:#x}, {tag})"


class BlockCache:
    """Two-tier compiled-block cache, mirroring the warm icache.

    ``hot`` holds blocks whose instructions are all present in the hot
    icache (safe to run directly); ``warm`` holds inherited or demoted
    blocks that must pass ``_prepare`` before running.  The warm dict
    may be shared with forked machines and is copied before the first
    mutation.
    """

    __slots__ = ("hot", "warm", "_warm_owned", "_version",
                 "_snapshot", "_snapshot_version")

    def __init__(self) -> None:
        self.hot: Dict[int, CompiledBlock] = {}
        self.warm: Dict[int, CompiledBlock] = {}
        self._warm_owned = True
        self._version = 0
        self._snapshot: Optional[Dict[int, CompiledBlock]] = None
        self._snapshot_version = -1

    def _own_warm(self) -> Dict[int, CompiledBlock]:
        if not self._warm_owned:
            self.warm = dict(self.warm)
            self._warm_owned = True
        return self.warm

    def insert_hot(self, addr: int, block: CompiledBlock) -> None:
        self.hot[addr] = block
        self._version += 1

    def insert_warm(self, addr: int, block: CompiledBlock) -> None:
        self._own_warm()[addr] = block
        self._version += 1

    def invalidate(self, addr: int, size: int = 1) -> None:
        """A write landed in ``[addr, addr+size)``: evict every block
        whose extent overlaps it, then demote the remaining hot blocks
        (their icache entries were just demoted too, so the hot-tier
        invariant would no longer hold)."""
        end = addr + max(size, 1)
        hot = self.hot
        stale_hot = [a for a, b in hot.items()
                     if b.start < end and b.end > addr]
        stale_warm = [a for a, b in self.warm.items()
                      if b.start < end and b.end > addr]
        if stale_warm:
            warm = self._own_warm()
            for a in stale_warm:
                del warm[a]
        for a in stale_hot:
            del hot[a]
        if hot:
            warm = self._own_warm()
            warm.update(hot)
            hot.clear()
        self._version += 1

    def flush(self) -> None:
        self.hot.clear()
        self.warm = {}
        self._warm_owned = True
        self._version += 1

    def snapshot(self) -> Dict[int, CompiledBlock]:
        """Merged view of both tiers; cached until the next mutation so
        sibling forks share one dict."""
        if self._snapshot is None or self._snapshot_version != self._version:
            merged = dict(self.warm)
            merged.update(self.hot)
            self._snapshot = merged
            self._snapshot_version = self._version
        return self._snapshot

    def inherit(self, src: "BlockCache") -> None:
        self.hot.clear()
        self.warm = src.snapshot()
        self._warm_owned = False
        self._version += 1


# ---------------------------------------------------------------------------
# block-leader discovery (static CFG, cached per kernel image)

_LEADER_ATTR = "_compiled_block_leaders"
_leader_fallback: Dict[int, frozenset] = {}


def leaders_for(arch: str, image) -> frozenset:
    """Basic-block leader addresses from the static CFG; empty set when
    no CFG can be built (decode-until-branch fallback).

    Cached on the image object itself — ``build_kernel`` is lru-cached,
    so every machine for an arch shares one image and one leader set.
    """
    cached = getattr(image, _LEADER_ATTR, None)
    if cached is not None:
        return cached
    cached = _leader_fallback.get(id(image))
    if cached is not None:
        return cached
    try:
        from repro.static.cfg import build_cfg
        cfg = build_cfg(arch, image)
        leaders = set()
        for function in cfg.functions.values():
            leaders.update(function.blocks)
        leaders = frozenset(leaders)
    except Exception:
        leaders = frozenset()
    try:
        setattr(image, _LEADER_ATTR, leaders)
    except Exception:
        _leader_fallback[id(image)] = leaders
    return leaders


def _generator(arch: str):
    if arch == "x86":
        from repro.compile import gen_x86
        return gen_x86
    from repro.compile import gen_ppc
    return gen_ppc


# ---------------------------------------------------------------------------
# discovery + compilation


def compile_block(cpu, addr: int, arch: str, image) -> Optional[CompiledBlock]:
    """Discover and compile the superblock starting at ``addr``.

    Returns ``None`` when even the first fetch fails its permission
    check (the step core will raise the properly-attributed fault), or
    a negative marker when the first instruction cannot be compiled.
    """
    gen = _generator(arch)
    leaders = leaders_for(arch, image)
    nodes = []
    a = addr
    while True:
        if nodes and a in leaders:
            break
        try:
            instr = gen.fetch(cpu, a)
        except MemoryFault:
            break
        length = gen.insn_length(instr)
        unbounded = instr.execute in gen.UNBOUNDED
        if not unbounded:
            try:
                effects = insn_effects(instr, a)
            except UnknownInstructionError:
                unbounded = True
        if unbounded:
            # Not compilable: cycle cost is unbounded (rep movs/stos)
            # or semantics unknown.  Truncate before it; if
            # it is the block head, cache a marker so dispatch stops
            # retrying compilation at this address.
            if not nodes:
                return CompiledBlock(addr, addr + length, 1,
                                     ((addr, length),), None, 0)
            break
        hard_end = effects.is_terminator or effects.system
        nodes.append((a, instr))
        next_a = a + length
        if next_a > MASK32 + 1:
            next_a -= MASK32 + 1        # wrapped mid-instruction
        if hard_end:
            break
        if next_a <= a or len(nodes) >= MAX_BLOCK_INSNS:
            break                       # address wrap or size cap
        a = next_a
    if not nodes:
        return None
    fn, max_cycles = gen.generate(nodes, hard_end)
    spans = tuple((na, gen.insn_length(ni)) for na, ni in nodes)
    last_a, last_i = nodes[-1]
    return CompiledBlock(addr, last_a + gen.insn_length(last_i),
                         len(nodes), spans, fn, max_cycles)


def _prepare(cpu, block: CompiledBlock, gen) -> bool:
    """Re-validate a block before its first hot run: every instruction
    address must be in the hot icache afterwards.  Mirrors the step
    core's warm-hit path — permission check, then promotion of the
    *same* decode object from the warm tier (fresh raw decode on a true
    miss).  Returns False when any fetch check fails; the caller then
    single-steps, which raises the fault with correct attribution."""
    icache = cpu._icache
    need = [span for span in block.spans if span[0] not in icache]
    if not need:
        return True
    aspace = cpu.aspace
    try:
        for a, length in need:
            aspace.check(a, length, _FETCH)
    except MemoryFault:
        return False
    warm = cpu._icache_warm
    for a, _length in need:
        instr = warm.get(a)
        if instr is None:
            instr = gen.decode_raw(cpu, a)
        icache[a] = instr
    cpu._icache_version += len(need)
    return True


def lookup_block(cpu, cache: BlockCache, addr: int, arch: str,
                 image) -> Optional[CompiledBlock]:
    """Slow path behind a hot-tier miss: try the warm tier, else
    compile.  Returns a hot-ready block, a negative marker, or None
    (caller single-steps)."""
    gen = _generator(arch)
    block = cache.warm.get(addr)
    if block is not None:
        if block.fn is None or _prepare(cpu, block, gen):
            cache.insert_hot(addr, block)
            return block
        return None
    block = compile_block(cpu, addr, arch, image)
    if block is None:
        return None
    if block.fn is None or _prepare(cpu, block, gen):
        cache.insert_hot(addr, block)
        return block
    cache.insert_warm(addr, block)      # retry once the fault clears
    return None
