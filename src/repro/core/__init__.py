"""Public API: configure and run the paper's comparative study.

Typical use::

    from repro.core import Study, StudyConfig

    study = Study(StudyConfig(seed=7, scale=0.02))
    study.run()
    print(study.render_table("x86"))         # paper Table 5
    print(study.render_table("ppc"))         # paper Table 6
    print(study.render_figure(6))            # stack crash causes
    print(study.render_latency_figure())     # Figure 16 A-D

Single campaigns::

    from repro.core import run_campaign, CampaignKind
    result = run_campaign("ppc", CampaignKind.CODE, count=200)
"""

from repro.core.config import StudyConfig, EXPERIMENT_SETUP
from repro.core.study import Study
from repro.injection.campaign import run_campaign
from repro.injection.outcomes import CampaignKind

__all__ = ["Study", "StudyConfig", "EXPERIMENT_SETUP",
           "run_campaign", "CampaignKind"]
