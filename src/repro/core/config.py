"""Study configuration and the paper's experiment-setup constants."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.checkpoint.ladder import DEFAULT_CHECKPOINTS
from repro.injection.outcomes import CampaignKind

#: Paper Table 1: Experiment Setup Summary.
EXPERIMENT_SETUP = {
    "x86": {
        "processor": "Intel Pentium 4",
        "cpu_clock_ghz": 1.5,
        "memory_mb": 256,
        "distribution": "RedHat 9.0",
        "linux_kernel": "2.4.22",
        "compiler": "GCC 3.2.2",
        "machines": 3,
    },
    "ppc": {
        "processor": "Motorola MPC 7455",
        "cpu_clock_ghz": 1.0,
        "memory_mb": 256,
        "distribution": "YellowDog 3.0",
        "linux_kernel": "2.4.22",
        "compiler": "GCC 3.2.2",
        "machines": 2,
    },
}

#: Paper Tables 5/6: injections per campaign on each platform.
PAPER_CAMPAIGN_SIZES: Dict[str, Dict[CampaignKind, int]] = {
    "x86": {
        CampaignKind.STACK: 10_143,
        CampaignKind.REGISTER: 3_866,
        CampaignKind.DATA: 46_000,
        CampaignKind.CODE: 1_790,
    },
    "ppc": {
        CampaignKind.STACK: 3_017,
        CampaignKind.REGISTER: 3_967,
        CampaignKind.DATA: 46_000,
        CampaignKind.CODE: 2_188,
    },
}


@dataclass
class StudyConfig:
    """Configuration for a full two-platform study.

    ``scale`` scales the paper's campaign sizes (1.0 = the full
    115,000+ injections; the default 0.02 runs in minutes on a laptop
    while keeping the distribution shapes stable).  ``overrides`` pins
    exact campaign sizes when given.  ``workers`` is the number of
    campaign worker processes (1 = in-process serial loop; any value
    produces bit-identical results, see
    :mod:`repro.injection.parallel`).  ``store`` is a directory for
    the durable result store (:mod:`repro.store`): every campaign
    journals its results there as they complete, and with ``resume``
    a killed study continues from the journals bit-identically.
    """

    seed: int = 0
    scale: float = 0.02
    ops: int = 48
    dump_loss_probability: float = 0.08
    min_campaign: int = 40
    workers: int = 1
    store: Optional[str] = None
    resume: bool = False
    #: "dead" redraws code targets the static analyzer proves inert;
    #: "taint" additionally redraws bits the taint engine proves
    #: masked (applies to the code campaigns only; see repro.static)
    prune: str = "none"
    #: execution core for every campaign machine ("block" | "step");
    #: results are bit-identical either way (see repro.compile)
    exec_mode: str = "block"
    #: clean-run snapshots per campaign context (0 disables); results
    #: are bit-identical either way (see repro.checkpoint)
    checkpoints: int = DEFAULT_CHECKPOINTS
    #: registered fault-model name (see repro.faults); campaigns whose
    #: kind the model does not apply to (e.g. "targeted" outside data)
    #: fall back to the single-bit default so the study matrix always
    #: completes
    fault_model: str = "single-bit"
    overrides: Dict[str, Dict[CampaignKind, int]] = field(
        default_factory=dict)

    def campaign_count(self, arch: str, kind: CampaignKind) -> int:
        if arch in self.overrides and kind in self.overrides[arch]:
            return self.overrides[arch][kind]
        paper = PAPER_CAMPAIGN_SIZES[arch][kind]
        return max(self.min_campaign, int(round(paper * self.scale)))
