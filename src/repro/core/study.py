"""The full two-platform study: all eight campaigns plus reporting.

``Study.run()`` performs the paper's complete experimental matrix
(stack/register/data/code on both the P4-like and G4-like targets) at
the configured scale, then renders any table or figure of the paper's
evaluation section from the accumulated results.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analysis.compare import (
    render_figure_comparison, render_table_comparison,
)
from repro.analysis.figures import render_distribution
from repro.analysis.latency import BUCKET_LABELS, latency_percentages
from repro.analysis.tables import build_table, render_table
from repro.core.config import StudyConfig
from repro.injection.campaign import (
    Campaign, CampaignConfig, CampaignContext,
)
from repro.injection.outcomes import CampaignKind, InjectionResult

ARCHES = ("x86", "ppc")
KINDS = (CampaignKind.STACK, CampaignKind.REGISTER, CampaignKind.DATA,
         CampaignKind.CODE)

_FIGURE_TITLES = {
    4: "Overall Distribution of Crash Causes (P4)",
    5: "Overall Distribution of Crash Causes (G4)",
    6: "Crash Causes for Kernel Stack Injection",
    10: "Crash Causes for System Register Injection",
    11: "Crash Causes for Code Injection",
    12: "Crash Causes for Kernel Data Injection",
}

_KIND_OF_FIGURE = {6: CampaignKind.STACK, 10: CampaignKind.REGISTER,
                   11: CampaignKind.CODE, 12: CampaignKind.DATA}


class Study:
    """Runs and reports the paper's comparative error-injection study."""

    def __init__(self, config: Optional[StudyConfig] = None):
        self.config = config if config is not None else StudyConfig()
        #: results[arch][kind] -> list of InjectionResult
        self.results: Dict[str, Dict[CampaignKind,
                                     List[InjectionResult]]] = {}

    # -- running -----------------------------------------------------------

    def _campaign_config(self, arch: str, kind: CampaignKind,
                         count: Optional[int]) -> CampaignConfig:
        config = self.config
        from repro.faults import DEFAULT_MODEL, model_applies
        fault_model = config.fault_model
        if not model_applies(fault_model, kind.value):
            # e.g. "targeted" resolves named data structures, so only
            # the data campaigns can use it; the rest of the matrix
            # runs the paper's single-bit model
            fault_model = DEFAULT_MODEL
        return CampaignConfig(
            arch=arch, kind=kind,
            count=count if count is not None
            else config.campaign_count(arch, kind),
            seed=config.seed, ops=config.ops,
            dump_loss_probability=config.dump_loss_probability,
            # pruning is a code-campaign concept; other kinds always
            # run unpruned so their identities stay policy-free
            prune=config.prune if kind is CampaignKind.CODE
            else "none",
            exec_mode=config.exec_mode,
            checkpoints=config.checkpoints,
            fault_model=fault_model)

    def _store(self, store=None):
        """Resolve *store* (path or CampaignStore) or the config's."""
        target = store if store is not None else self.config.store
        if target is None:
            return None
        from repro.store import CampaignStore
        if isinstance(target, CampaignStore):
            return target
        return CampaignStore(target)

    def run_campaign(self, arch: str, kind: CampaignKind,
                     count: Optional[int] = None,
                     workers: Optional[int] = None,
                     store=None, resume: Optional[bool] = None,
                     progress=None,
                     progress_callback=None) -> List[InjectionResult]:
        config = self.config
        campaign_config = self._campaign_config(arch, kind, count)
        context = CampaignContext.get(arch, config.seed, config.ops)
        outcome = Campaign(campaign_config, context).run(
            workers=workers if workers is not None else config.workers,
            store=self._store(store),
            resume=config.resume if resume is None else resume,
            progress=progress, progress_callback=progress_callback)
        self.results.setdefault(arch, {})[kind] = outcome.results
        return outcome.results

    def run(self, arches: Iterable[str] = ARCHES,
            kinds: Iterable[CampaignKind] = KINDS) -> "Study":
        for arch in arches:
            for kind in kinds:
                self.run_campaign(arch, kind)
        return self

    # -- loading from a store ----------------------------------------------

    def load_campaign(self, arch: str, kind: CampaignKind,
                      count: Optional[int] = None,
                      store=None) -> List[InjectionResult]:
        """Stream a stored campaign into this study — no injection.

        The campaign must be complete for the effective count; every
        table/figure renderer then works off the journaled results
        exactly as it would off a fresh run.
        """
        resolved = self._store(store)
        if resolved is None:
            raise ValueError("no store: pass store= or set "
                             "StudyConfig.store")
        campaign_config = self._campaign_config(arch, kind, count)
        outcome = resolved.load(campaign_config)
        self.results.setdefault(arch, {})[kind] = outcome.results
        return outcome.results

    def load(self, arches: Iterable[str] = ARCHES,
             kinds: Iterable[CampaignKind] = KINDS,
             store=None) -> "Study":
        """Load the full study matrix from a store (see above)."""
        for arch in arches:
            for kind in kinds:
                self.load_campaign(arch, kind, store=store)
        return self

    # -- accessors ----------------------------------------------------------

    def results_for(self, arch: str,
                    kind: Optional[CampaignKind] = None
                    ) -> List[InjectionResult]:
        per_arch = self.results.get(arch, {})
        if kind is not None:
            return per_arch.get(kind, [])
        merged: List[InjectionResult] = []
        for kind_results in per_arch.values():
            merged.extend(kind_results)
        return merged

    # -- rendering -------------------------------------------------------------

    def render_table(self, arch: str, compare: bool = True) -> str:
        """Paper Table 5 (arch='x86') or Table 6 (arch='ppc')."""
        rows = build_table(self.results.get(arch, {}))
        label = "Pentium 4" if arch == "x86" else "PPC G4"
        text = render_table(rows, label)
        if compare:
            text += "\n\n" + render_table_comparison(rows, arch)
        return text

    def render_figure(self, figure: int, compare: bool = True) -> str:
        """Paper Figures 4, 5, 6, 10, 11, 12."""
        if figure in (4, 5):
            arch = "x86" if figure == 4 else "ppc"
            results = self.results_for(arch)
            text = render_distribution(results, _FIGURE_TITLES[figure],
                                       arch)
            if compare:
                text += "\n\n" + render_figure_comparison(
                    results, figure, arch, _FIGURE_TITLES[figure])
            return text
        kind = _KIND_OF_FIGURE[figure]
        sections: List[str] = []
        for arch in ARCHES:
            results = self.results_for(arch, kind)
            label = "Pentium" if arch == "x86" else "PPC"
            sections.append(render_distribution(
                results, f"{_FIGURE_TITLES[figure]} — {label}", arch))
            if compare:
                sections.append(render_figure_comparison(
                    results, figure, arch,
                    f"{_FIGURE_TITLES[figure]} — {label}"))
        return "\n\n".join(sections)

    def render_latency_figure(self) -> str:
        """Paper Figure 16 A-D: cycles-to-crash distributions."""
        panels = (
            ("A", "Stack Error Injection", CampaignKind.STACK),
            ("B", "System Register Error Injection",
             CampaignKind.REGISTER),
            ("C", "Code Error Injection", CampaignKind.CODE),
            ("D", "Data Error Injection", CampaignKind.DATA),
        )
        lines: List[str] = []
        for panel, title, kind in panels:
            lines.append(f"--- Figure 16({panel}): latency in "
                         f"{title} ---")
            header = f"{'platform':<10}" + "".join(
                f"{label:>8}" for label in BUCKET_LABELS)
            lines.append(header)
            for arch in ARCHES:
                percentages = latency_percentages(
                    self.results_for(arch, kind))
                label = "Pentium" if arch == "x86" else "PPC"
                lines.append(f"{label:<10}" + "".join(
                    f"{percentages[bucket]:7.1f}%"
                    for bucket in BUCKET_LABELS))
            lines.append("")
        return "\n".join(lines)

    def render_all(self) -> str:
        sections = [self.render_table("x86"), self.render_table("ppc")]
        for figure in (4, 5, 6, 10, 11, 12):
            sections.append(self.render_figure(figure))
        sections.append(self.render_latency_figure())
        return "\n\n".join(sections)
