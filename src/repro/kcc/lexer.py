"""Tokenizer for the kernel DSL."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = frozenset({
    "struct", "global", "fn", "var", "if", "else", "while", "return",
    "break", "continue", "const", "sizeof", "u8", "u16", "u32", "null",
})

# Multi-character operators first (longest match wins).
OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", ":",
)


class LexError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str          # "num", "name", "kw", "op", "eof"
    text: str
    value: int         # numeric value for "num" tokens
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Turn DSL source into a token list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    pos = 0
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if ch == "/" and pos + 1 < length and source[pos + 1] == "/":
            while pos < length and source[pos] != "\n":
                pos += 1
            continue
        if ch == "/" and pos + 1 < length and source[pos + 1] == "*":
            end = source.find("*/", pos + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if ch.isdigit():
            start = pos
            if source.startswith("0x", pos) or source.startswith("0X", pos):
                pos += 2
                while pos < length and (source[pos].isdigit()
                                        or source[pos] in "abcdefABCDEF"):
                    pos += 1
                text = source[start:pos]
                value = int(text, 16)
            else:
                while pos < length and source[pos].isdigit():
                    pos += 1
                text = source[start:pos]
                value = int(text)
            tokens.append(Token("num", text, value & 0xFFFFFFFF, line))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum()
                                    or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "kw" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, 0, line))
            continue
        for op in OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token("op", op, 0, line))
                pos += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", 0, line))
    return tokens
