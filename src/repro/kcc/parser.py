"""Recursive-descent parser for the kernel DSL.

Grammar sketch (see tests/test_kcc_parser.py for worked examples)::

    program  := (struct | global | const | fn)*
    struct   := "struct" NAME "{" (NAME ":" type ";")* "}"
    global   := "global" NAME ":" gtype ("[" cexpr "]")? ("=" init)? ";"
    const    := "const" NAME "=" cexpr ";"
    fn       := "fn" NAME "(" params? ")" ("->" type)? block
    stmt     := "var" NAME ":" type ("=" expr)? ";"
              | lvalue "=" expr ";"
              | "if" "(" expr ")" block ("else" (block | if))?
              | "while" "(" expr ")" block
              | "return" expr? ";" | "break" ";" | "continue" ";"
              | expr ";"

Expressions use C precedence; all arithmetic is 32-bit unsigned.
``sizeof(Struct)`` is backend-dependent and stays symbolic until
code generation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.kcc import ast
from repro.kcc.ast import Type, U8, U16, U32
from repro.kcc.lexer import Token, tokenize


class ParseError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.cur
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None
               ) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {self.cur.text!r}", self.cur.line)
        return self.advance()

    # -- types ----------------------------------------------------------------

    def parse_type(self) -> Type:
        if self.accept("op", "*"):
            if self.check("kw") and self.cur.text in ("u8", "u16", "u32"):
                return Type(4, pointee=self.advance().text)
            name = self.expect("name").text
            return Type(4, pointee=name)
        token = self.advance()
        if token.text == "u8":
            return U8
        if token.text == "u16":
            return U16
        if token.text == "u32":
            return U32
        raise ParseError(f"expected type, found {token.text!r}", token.line)

    # -- top level --------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self.check("eof"):
            if self.check("kw", "struct"):
                program.structs.append(self.parse_struct())
            elif self.check("kw", "global"):
                program.globals.append(self.parse_global(program))
            elif self.check("kw", "const"):
                line = self.advance().line
                name = self.expect("name").text
                self.expect("op", "=")
                value = self.parse_const_expr(program)
                self.expect("op", ";")
                if name in program.consts:
                    raise ParseError(f"duplicate const {name}", line)
                program.consts[name] = value & 0xFFFFFFFF
            elif self.check("kw", "fn"):
                program.functions.append(self.parse_fn())
            else:
                raise ParseError(
                    f"expected item, found {self.cur.text!r}", self.cur.line)
        return program

    def parse_struct(self) -> ast.StructDef:
        line = self.expect("kw", "struct").line
        name = self.expect("name").text
        self.expect("op", "{")
        fields: List[ast.StructField] = []
        while not self.accept("op", "}"):
            fline = self.cur.line
            fname = self.expect("name").text
            self.expect("op", ":")
            ftype = self.parse_type()
            self.expect("op", ";")
            fields.append(ast.StructField(fname, ftype, fline))
        return ast.StructDef(name, fields, line)

    def parse_global(self, program: ast.Program) -> ast.GlobalDef:
        line = self.expect("kw", "global").line
        name = self.expect("name").text
        self.expect("op", ":")
        is_struct = False
        struct = ""
        if self.check("name"):
            # A bare name in type position is a struct-typed global.
            struct = self.advance().text
            is_struct = True
            var_type = U32
        else:
            var_type = self.parse_type()
        count = 1
        if self.accept("op", "["):
            count = self.parse_const_expr(program)
            self.expect("op", "]")
        init: List[int] = []
        if self.accept("op", "="):
            if self.accept("op", "{"):
                while not self.accept("op", "}"):
                    init.append(self.parse_const_expr(program))
                    if not self.check("op", "}"):
                        self.expect("op", ",")
            else:
                init.append(self.parse_const_expr(program))
        self.expect("op", ";")
        return ast.GlobalDef(name, var_type, count, init, is_struct,
                             struct, line)

    def parse_const_expr(self, program: ast.Program) -> int:
        """Constant expressions: numbers, consts, + - * << | parens."""
        return self._const_binary(program, 0)

    def _const_binary(self, program: ast.Program, level: int) -> int:
        ops_by_level = [["|"], ["<<", ">>"], ["+", "-"], ["*"]]
        if level >= len(ops_by_level):
            return self._const_atom(program)
        value = self._const_binary(program, level + 1)
        while self.cur.kind == "op" and self.cur.text in ops_by_level[level]:
            op = self.advance().text
            rhs = self._const_binary(program, level + 1)
            if op == "+":
                value = (value + rhs) & 0xFFFFFFFF
            elif op == "-":
                value = (value - rhs) & 0xFFFFFFFF
            elif op == "*":
                value = (value * rhs) & 0xFFFFFFFF
            elif op == "<<":
                value = (value << (rhs & 31)) & 0xFFFFFFFF
            elif op == ">>":
                value = value >> (rhs & 31)
            else:
                value = value | rhs
        return value

    def _const_atom(self, program: ast.Program) -> int:
        if self.accept("op", "("):
            value = self.parse_const_expr(program)
            self.expect("op", ")")
            return value
        token = self.advance()
        if token.kind == "num":
            return token.value
        if token.kind == "name" and token.text in program.consts:
            return program.consts[token.text]
        raise ParseError(
            f"expected constant, found {token.text!r}", token.line)

    def parse_fn(self) -> ast.FuncDef:
        line = self.expect("kw", "fn").line
        name = self.expect("name").text
        self.expect("op", "(")
        params: List[ast.VarDecl] = []
        while not self.accept("op", ")"):
            pline = self.cur.line
            pname = self.expect("name").text
            self.expect("op", ":")
            ptype = self.parse_type()
            params.append(ast.VarDecl(line=pline, name=pname,
                                      var_type=ptype))
            if not self.check("op", ")"):
                self.expect("op", ",")
        return_type = U32
        if self.accept("op", "->"):
            return_type = self.parse_type()
        body = self.parse_block()
        return ast.FuncDef(name, params, return_type, body, line)

    # -- statements -----------------------------------------------------------------

    def parse_block(self) -> List[ast.Stmt]:
        self.expect("op", "{")
        body: List[ast.Stmt] = []
        while not self.accept("op", "}"):
            body.append(self.parse_stmt())
        return body

    def parse_stmt(self) -> ast.Stmt:
        line = self.cur.line
        if self.accept("kw", "var"):
            name = self.expect("name").text
            self.expect("op", ":")
            var_type = self.parse_type()
            init = None
            if self.accept("op", "="):
                init = self.parse_expr()
            self.expect("op", ";")
            return ast.VarDecl(line=line, name=name, var_type=var_type,
                               init=init)
        if self.check("kw", "if"):
            return self.parse_if()
        if self.accept("kw", "while"):
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            body = self.parse_block()
            return ast.While(line=line, cond=cond, body=body)
        if self.accept("kw", "return"):
            value = None
            if not self.check("op", ";"):
                value = self.parse_expr()
            self.expect("op", ";")
            return ast.Return(line=line, value=value)
        if self.accept("kw", "break"):
            self.expect("op", ";")
            return ast.Break(line=line)
        if self.accept("kw", "continue"):
            self.expect("op", ";")
            return ast.Continue(line=line)
        expr = self.parse_expr()
        if self.accept("op", "="):
            value = self.parse_expr()
            self.expect("op", ";")
            if not isinstance(expr, (ast.Name, ast.FieldAccess, ast.Index)):
                raise ParseError("invalid assignment target", line)
            return ast.Assign(line=line, target=expr, value=value)
        self.expect("op", ";")
        return ast.ExprStmt(line=line, expr=expr)

    def parse_if(self) -> ast.If:
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then_body = self.parse_block()
        else_body: List[ast.Stmt] = []
        if self.accept("kw", "else"):
            if self.check("kw", "if"):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return ast.If(line=line, cond=cond, then_body=then_body,
                      else_body=else_body)

    # -- expressions -----------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._binary(0)

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._unary()
        left = self._binary(level + 1)
        while self.cur.kind == "op" and \
                self.cur.text in _BINARY_LEVELS[level]:
            op = self.advance()
            right = self._binary(level + 1)
            left = ast.Binary(line=op.line, op=op.text, left=left,
                              right=right)
        return left

    def _unary(self) -> ast.Expr:
        token = self.cur
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self.advance()
            operand = self._unary()
            return ast.Unary(line=token.line, op=token.text,
                             operand=operand)
        if token.kind == "op" and token.text == "&":
            self.advance()
            name = self.expect("name").text
            return ast.AddrOf(line=token.line, name=name)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._atom()
        while True:
            if self.accept("op", "."):
                fname = self.expect("name").text
                expr = ast.FieldAccess(line=self.cur.line, base=expr,
                                       field_name=fname)
            elif self.check("op", "[") and isinstance(expr, ast.Name):
                self.advance()
                index = self.parse_expr()
                self.expect("op", "]")
                expr = ast.Index(line=self.cur.line, name=expr.name,
                                 index=index)
            else:
                return expr

    def _atom(self) -> ast.Expr:
        token = self.advance()
        if token.kind == "num":
            return ast.Num(line=token.line, value=token.value)
        if token.kind == "kw" and token.text == "null":
            return ast.Num(line=token.line, value=0)
        if token.kind == "kw" and token.text == "sizeof":
            self.expect("op", "(")
            struct = self.expect("name").text
            self.expect("op", ")")
            return ast.SizeOf(line=token.line, struct=struct)
        if token.kind == "name":
            if self.accept("op", "("):
                args: List[ast.Expr] = []
                while not self.accept("op", ")"):
                    args.append(self.parse_expr())
                    if not self.check("op", ")"):
                        self.expect("op", ",")
                return ast.Call(line=token.line, name=token.text, args=args)
            return ast.Name(line=token.line, name=token.text)
        if token.kind == "op" and token.text == "(":
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise ParseError(
            f"expected expression, found {token.text!r}", token.line)


def parse(source: str) -> ast.Program:
    """Parse DSL *source* into an (unanalyzed) :class:`ast.Program`."""
    return Parser(tokenize(source)).parse_program()
