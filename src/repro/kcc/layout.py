"""Struct and global data layout — per architecture.

This module encodes the paper's central data-sensitivity mechanism
(Section 5.5):

* the **x86 layout** packs struct fields at natural alignment and
  accesses each with its natural width (``mov al/ax/eax``), so every bit
  of every accessed byte carries meaning — "the more optimized access
  patterns on the P4 increase the chances that accessing a corrupted
  memory location will lead to problems";
* the **ppc layout** gives *every* field a full 32-bit word accessed
  with ``lwz``/``stw``; sub-word fields are masked in registers after
  the load, so flips in a u8 field's 24 unused bits are architecturally
  invisible — "the sparseness of the data can mask errors".

Byte/halfword *arrays* (I/O buffers) stay dense on both architectures,
as real compilers lay them out; the sparsity applies to discrete data
items (struct fields and scalar globals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.kcc import ast


@dataclass(frozen=True)
class FieldInfo:
    """Access recipe for one struct field under one architecture."""

    name: str
    offset: int
    access_width: int        # bytes moved by the load/store instruction
    semantic_bits: int       # bits that carry meaning (8, 16, 32)
    is_pointer: bool

    @property
    def load_mask(self) -> int:
        """Mask applied in-register after the load (PPC sub-word fields)."""
        if self.semantic_bits >= self.access_width * 8:
            return 0          # no masking needed
        return (1 << self.semantic_bits) - 1


@dataclass(frozen=True)
class StructLayout:
    name: str
    size: int
    fields: Dict[str, FieldInfo]

    def field(self, name: str) -> FieldInfo:
        return self.fields[name]


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def layout_struct_x86(struct: ast.StructDef) -> StructLayout:
    """Packed layout with natural alignment, like GCC on IA-32."""
    fields: Dict[str, FieldInfo] = {}
    offset = 0
    for field in struct.fields:
        width = field.field_type.width
        offset = _align(offset, width)
        fields[field.name] = FieldInfo(
            name=field.name, offset=offset, access_width=width,
            semantic_bits=width * 8,
            is_pointer=field.field_type.is_pointer)
        offset += width
    return StructLayout(struct.name, _align(max(offset, 4), 4), fields)


def layout_struct_ppc(struct: ast.StructDef) -> StructLayout:
    """Word-per-field layout with 32-bit access and in-register masks."""
    fields: Dict[str, FieldInfo] = {}
    for index, field in enumerate(struct.fields):
        fields[field.name] = FieldInfo(
            name=field.name, offset=index * 4, access_width=4,
            semantic_bits=field.field_type.width * 8,
            is_pointer=field.field_type.is_pointer)
    return StructLayout(struct.name, max(len(struct.fields), 1) * 4,
                        fields)


def compute_struct_layouts(program: ast.Program, arch: str
                           ) -> Dict[str, StructLayout]:
    engine = layout_struct_x86 if arch == "x86" else layout_struct_ppc
    return {struct.name: engine(struct) for struct in program.structs}


@dataclass(frozen=True)
class GlobalInfo:
    """Placement and access recipe for one global under one arch."""

    name: str
    addr: int
    size: int                # total bytes including the whole array
    count: int               # elements (1 for scalars)
    elem_size: int           # distance between elements
    access_width: int        # bytes per access instruction
    semantic_bits: int
    is_struct: bool
    struct: str

    @property
    def load_mask(self) -> int:
        if self.semantic_bits >= self.access_width * 8:
            return 0
        return (1 << self.semantic_bits) - 1


def place_globals(program: ast.Program, arch: str, data_base: int,
                  struct_layouts: Dict[str, StructLayout],
                  heap_names: "frozenset[str]" = frozenset(),
                  heap_base: int = 0) -> Dict[str, GlobalInfo]:
    """Assign every global an address and an access recipe.

    Placement order follows declaration order across all source files so
    that both architectures keep the same *relative* organization (the
    paper injects into the same logical data on both machines).

    Globals named in *heap_names* are placed at *heap_base* instead of
    the data section: they model dynamically allocated pools (page
    frames, ramdisk blocks) that live outside the kernel's .data/.bss
    in a real system and are therefore not data-injection targets.
    """
    out: Dict[str, GlobalInfo] = {}
    cursor = data_base
    heap_cursor = heap_base
    for item in program.globals:
        if item.is_struct:
            layout = struct_layouts[item.struct]
            elem_size = layout.size
            access_width = 4
            semantic_bits = 32
        else:
            width = item.var_type.width
            if item.count > 1:
                # dense arrays on both architectures
                elem_size = width
                access_width = width
                semantic_bits = width * 8
            elif arch == "ppc":
                # discrete data item: one word, masked at load
                elem_size = 4
                access_width = 4
                semantic_bits = width * 8
            else:
                elem_size = width
                access_width = width
                semantic_bits = width * 8
        size = elem_size * item.count
        if item.name in heap_names:
            heap_cursor = _align(heap_cursor, 4)
            address = heap_cursor
            heap_cursor += size
        else:
            cursor = _align(cursor, min(max(elem_size, 1), 4))
            address = cursor
            cursor += size
        out[item.name] = GlobalInfo(
            name=item.name, addr=address, size=size, count=item.count,
            elem_size=elem_size, access_width=access_width,
            semantic_bits=semantic_bits, is_struct=item.is_struct,
            struct=item.struct)
    return out


def build_data_image(program: ast.Program, arch: str, data_base: int,
                     globals_info: Dict[str, GlobalInfo],
                     little_endian: bool,
                     names: "frozenset[str] | None" = None) -> bytes:
    """Materialize one section's initialized bytes.

    When *names* is given, only those globals contribute (used to build
    the heap section separately from .data).
    """
    selected = {name: info for name, info in globals_info.items()
                if names is None or name in names}
    end = data_base
    for info in selected.values():
        end = max(end, info.addr + info.size)
    image = bytearray(end - data_base)
    order = "little" if little_endian else "big"
    for item in program.globals:
        if item.name not in selected:
            continue
        info = globals_info[item.name]
        if item.is_struct:
            continue            # struct globals are zero-initialized
        for index, value in enumerate(item.init[:item.count]):
            offset = info.addr - data_base + index * info.elem_size
            raw = (value & ((1 << (info.access_width * 8)) - 1)) \
                .to_bytes(info.access_width, order)
            image[offset:offset + info.access_width] = raw
    return bytes(image)


def globals_total_span(globals_info: Dict[str, GlobalInfo]) -> int:
    if not globals_info:
        return 0
    lo = min(info.addr for info in globals_info.values())
    hi = max(info.addr + info.size for info in globals_info.values())
    return hi - lo


def initialized_ranges(program: ast.Program,
                       globals_info: Dict[str, GlobalInfo]
                       ) -> List[range]:
    """Address ranges holding explicitly initialized data.

    The paper distinguishes initialized from uninitialized kernel data;
    the data-injection campaign samples both.
    """
    out: List[range] = []
    for item in program.globals:
        if item.init:
            info = globals_info[item.name]
            out.append(range(info.addr,
                             info.addr + len(item.init) * info.elem_size))
    return out
