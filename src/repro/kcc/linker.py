"""Linker: lay out compiled functions and data into a kernel image.

The image mimics a Linux 2.4 kernel mapping:

* text at ``0xC0100000`` (read+execute; writes trap — the paper's
  "writing to a read-only code segment" GP category on the P4);
* data at ``0xC0300000`` (the section the data campaign samples);
* per-task kernel stacks are mapped later by the machine layer.

The image records per-function instruction maps (for the code-injection
target generator and the profiler) and a reverse symbol index used by
crash dumps to attribute a faulting address to a kernel function and
subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kcc import ast
from repro.kcc.backend_ppc import compile_function as compile_ppc
from repro.kcc.backend_x86 import compile_function as compile_x86
from repro.kcc.layout import (
    GlobalInfo, StructLayout, build_data_image, compute_struct_layouts,
    initialized_ranges, place_globals,
)

TEXT_BASE = 0xC0100000
DATA_BASE = 0xC0300000
HEAP_BASE = 0xC0400000


class LinkError(Exception):
    pass


@dataclass
class FunctionInfo:
    name: str
    addr: int
    size: int
    insn_addrs: List[int]
    subsystem: str = ""


@dataclass
class KernelImage:
    """A fully linked kernel for one architecture."""

    arch: str                           # "x86" or "ppc"
    program: ast.Program
    text_base: int
    text_bytes: bytes
    data_base: int
    data_bytes: bytes
    functions: Dict[str, FunctionInfo]
    globals: Dict[str, GlobalInfo]
    struct_layouts: Dict[str, StructLayout]
    init_data_ranges: List[range] = field(default_factory=list)
    #: dynamically-allocated-pool section (outside .data; not a
    #: data-injection target)
    heap_base: int = HEAP_BASE
    heap_bytes: bytes = b""

    @property
    def little_endian(self) -> bool:
        return self.arch == "x86"

    @property
    def text_end(self) -> int:
        return self.text_base + len(self.text_bytes)

    @property
    def data_end(self) -> int:
        return self.data_base + len(self.data_bytes)

    def symbol(self, name: str) -> int:
        if name in self.functions:
            return self.functions[name].addr
        if name in self.globals:
            return self.globals[name].addr
        raise KeyError(name)

    def function_at(self, addr: int) -> Optional[FunctionInfo]:
        """Attribute an address to the function containing it."""
        for info in self.functions.values():
            if info.addr <= addr < info.addr + info.size:
                return info
        return None

    def sizeof(self, struct: str) -> int:
        return self.struct_layouts[struct].size

    def field(self, struct: str, name: str):
        return self.struct_layouts[struct].field(name)


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def build_image(program: ast.Program, arch: str,
                text_base: int = TEXT_BASE,
                data_base: int = DATA_BASE,
                heap_base: int = HEAP_BASE,
                heap_globals: "frozenset[str]" = frozenset(),
                subsystem_of: Optional[Dict[str, str]] = None,
                optimize: bool = True) -> KernelImage:
    """Compile and link an analyzed *program* for *arch*.

    ``subsystem_of`` maps function names to subsystem tags (``"mm"``,
    ``"fs"``, ...) used by crash-cause attribution and the profiler.
    ``heap_globals`` names pools placed outside the .data section.
    ``optimize`` runs the constant-folding pass (GCC does; see
    :mod:`repro.kcc.optimize`).
    """
    if arch not in ("x86", "ppc"):
        raise LinkError(f"unknown architecture {arch!r}")
    if optimize:
        from repro.kcc.optimize import optimize_program
        optimize_program(program)
    little_endian = arch == "x86"
    heap_names = frozenset(heap_globals)

    layouts = compute_struct_layouts(program, arch)
    globals_info = place_globals(program, arch, data_base, layouts,
                                 heap_names=heap_names,
                                 heap_base=heap_base)
    data_names = frozenset(name for name in globals_info
                           if name not in heap_names)
    data_bytes = build_data_image(program, arch, data_base, globals_info,
                                  little_endian, names=data_names)
    heap_bytes = build_data_image(program, arch, heap_base, globals_info,
                                  little_endian, names=heap_names) \
        if heap_names else b""

    compile_one = compile_x86 if arch == "x86" else compile_ppc
    compiled = [compile_one(func, globals_info, layouts)
                for func in program.functions]

    # assign addresses
    functions: Dict[str, FunctionInfo] = {}
    cursor = text_base
    placed: List[Tuple[int, object]] = []
    for unit in compiled:
        cursor = _align(cursor, 16)
        functions[unit.name] = FunctionInfo(
            name=unit.name, addr=cursor, size=len(unit.code),
            insn_addrs=[cursor + off for off in unit.insn_offsets],
            subsystem=(subsystem_of or {}).get(unit.name, ""))
        placed.append((cursor, unit))
        cursor += len(unit.code)

    # resolve relocations
    text = bytearray(cursor - text_base)
    for addr, unit in placed:
        code = bytearray(unit.code)
        for reloc in unit.relocs:
            target = functions.get(reloc.symbol)
            if target is None:
                info = globals_info.get(reloc.symbol)
                if info is None:
                    raise LinkError(
                        f"{unit.name}: undefined symbol {reloc.symbol}")
                value = info.addr
            else:
                value = target.addr
            if reloc.kind == "rel32":           # x86 call/jmp
                rel = value - (addr + reloc.offset + 4)
                code[reloc.offset:reloc.offset + 4] = \
                    (rel & 0xFFFFFFFF).to_bytes(4, "little")
            elif reloc.kind == "abs32":
                code[reloc.offset:reloc.offset + 4] = \
                    value.to_bytes(4, "little")
            elif reloc.kind == "rel24":         # ppc bl
                rel = value - (addr + reloc.offset)
                if not -(1 << 25) <= rel < (1 << 25):
                    raise LinkError(f"bl out of range to {reloc.symbol}")
                word = int.from_bytes(
                    code[reloc.offset:reloc.offset + 4], "big")
                word |= rel & 0x03FFFFFC
                code[reloc.offset:reloc.offset + 4] = \
                    word.to_bytes(4, "big")
            elif reloc.kind == "hi16":          # ppc lis (paired w/ lo16)
                word = int.from_bytes(
                    code[reloc.offset:reloc.offset + 4], "big")
                word = (word & 0xFFFF0000) | ((value >> 16) & 0xFFFF)
                code[reloc.offset:reloc.offset + 4] = \
                    word.to_bytes(4, "big")
            elif reloc.kind == "lo16":
                word = int.from_bytes(
                    code[reloc.offset:reloc.offset + 4], "big")
                word = (word & 0xFFFF0000) | (value & 0xFFFF)
                code[reloc.offset:reloc.offset + 4] = \
                    word.to_bytes(4, "big")
            else:  # pragma: no cover
                raise LinkError(f"unknown reloc kind {reloc.kind}")
        offset = addr - text_base
        text[offset:offset + len(code)] = code

    return KernelImage(
        arch=arch, program=program, text_base=text_base,
        text_bytes=bytes(text), data_base=data_base,
        data_bytes=data_bytes, functions=functions,
        globals=globals_info, struct_layouts=layouts,
        init_data_ranges=initialized_ranges(program, globals_info),
        heap_base=heap_base, heap_bytes=heap_bytes)
