"""Semantic analysis for the kernel DSL.

Binds names, infers expression types, validates calls and assignment
targets, and annotates the AST in place so both backends and the
reference interpreter can consume it without re-resolving anything.

Scoping is deliberately C89-flat: every ``var`` in a function body
(including nested blocks) lives for the whole function and must have a
unique name.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.kcc import ast
from repro.kcc.ast import Type, U32


class SemaError(Exception):
    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}")
        self.line = line


#: intrinsic name -> (number of args, returns a value?)
INTRINSICS: Dict[str, tuple] = {
    "__load8": (1, True),
    "__load16": (1, True),
    "__load32": (1, True),
    "__store8": (2, False),
    "__store16": (2, False),
    "__store32": (2, False),
    "__bug": (0, False),
    "__panic": (1, False),
    "__icall0": (1, True),
    "__icall1": (2, True),
    "__icall2": (3, True),
    "__icall3": (4, True),
}


class _FunctionScope:
    def __init__(self, func: ast.FuncDef):
        self.func = func
        self.params: Dict[str, int] = {}
        self.locals: Dict[str, ast.VarDecl] = {}
        for index, param in enumerate(func.params):
            if param.name in self.params:
                raise SemaError(f"duplicate parameter {param.name}",
                                param.line)
            self.params[param.name] = index
            param.index = index


class Analyzer:
    def __init__(self, program: ast.Program):
        self.program = program
        self.structs: Dict[str, ast.StructDef] = {}
        self.globals: Dict[str, ast.GlobalDef] = {}
        self.functions: Dict[str, ast.FuncDef] = {}

    # -- entry point ------------------------------------------------------

    def run(self) -> ast.Program:
        for struct in self.program.structs:
            if struct.name in self.structs:
                raise SemaError(f"duplicate struct {struct.name}",
                                struct.line)
            self.structs[struct.name] = struct
            seen: Set[str] = set()
            for field in struct.fields:
                if field.name in seen:
                    raise SemaError(
                        f"duplicate field {struct.name}.{field.name}",
                        field.line)
                seen.add(field.name)
                if field.field_type.is_pointer and \
                        field.field_type.pointee not in \
                        ("u8", "u16", "u32") and \
                        field.field_type.pointee not in \
                        {s.name for s in self.program.structs}:
                    raise SemaError(
                        f"unknown struct *{field.field_type.pointee}",
                        field.line)
        for item in self.program.globals:
            if item.name in self.globals:
                raise SemaError(f"duplicate global {item.name}", item.line)
            if item.is_struct and item.struct not in self.structs:
                raise SemaError(f"unknown struct {item.struct}", item.line)
            self.globals[item.name] = item
        for func in self.program.functions:
            if func.name in self.functions:
                raise SemaError(f"duplicate function {func.name}",
                                func.line)
            if func.name in INTRINSICS:
                raise SemaError(
                    f"{func.name} collides with an intrinsic", func.line)
            self.functions[func.name] = func
        for func in self.program.functions:
            self._analyze_function(func)
        return self.program

    # -- functions -----------------------------------------------------------

    def _analyze_function(self, func: ast.FuncDef) -> None:
        scope = _FunctionScope(func)
        func.locals = []
        func.has_calls = False
        self._analyze_block(func.body, scope, in_loop=False)

    def _analyze_block(self, body: List[ast.Stmt], scope: _FunctionScope,
                       in_loop: bool) -> None:
        for stmt in body:
            self._analyze_stmt(stmt, scope, in_loop)

    def _analyze_stmt(self, stmt: ast.Stmt, scope: _FunctionScope,
                      in_loop: bool) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.name in scope.locals or stmt.name in scope.params:
                raise SemaError(f"duplicate variable {stmt.name}",
                                stmt.line)
            if stmt.var_type.is_pointer and \
                    stmt.var_type.pointee not in ("u8", "u16", "u32") and \
                    stmt.var_type.pointee not in self.structs:
                raise SemaError(f"unknown struct *{stmt.var_type.pointee}",
                                stmt.line)
            stmt.index = len(scope.func.locals)
            scope.func.locals.append(stmt)
            scope.locals[stmt.name] = stmt
            if stmt.init is not None:
                self._analyze_expr(stmt.init, scope)
        elif isinstance(stmt, ast.Assign):
            self._analyze_expr(stmt.target, scope)
            if isinstance(stmt.target, ast.Name):
                if stmt.target.kind not in ("local", "param", "global"):
                    raise SemaError(
                        f"cannot assign to {stmt.target.name}", stmt.line)
                if stmt.target.kind == "global" and \
                        self.globals[stmt.target.name].count > 1:
                    raise SemaError(
                        f"cannot assign whole array {stmt.target.name}",
                        stmt.line)
            elif isinstance(stmt.target, ast.Index):
                if stmt.target.struct_array:
                    raise SemaError("cannot assign to struct array element",
                                    stmt.line)
            self._analyze_expr(stmt.value, scope)
        elif isinstance(stmt, ast.If):
            self._analyze_expr(stmt.cond, scope)
            self._analyze_block(stmt.then_body, scope, in_loop)
            self._analyze_block(stmt.else_body, scope, in_loop)
        elif isinstance(stmt, ast.While):
            self._analyze_expr(stmt.cond, scope)
            self._analyze_block(stmt.body, scope, in_loop=True)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._analyze_expr(stmt.value, scope)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if not in_loop:
                raise SemaError("break/continue outside loop", stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self._analyze_expr(stmt.expr, scope)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemaError(f"unknown statement {type(stmt).__name__}",
                            stmt.line)

    # -- expressions -----------------------------------------------------------

    def _analyze_expr(self, expr: ast.Expr, scope: _FunctionScope) -> Type:
        if isinstance(expr, ast.Num):
            expr.type = U32
        elif isinstance(expr, ast.Name):
            expr.type = self._bind_name(expr, scope)
        elif isinstance(expr, ast.AddrOf):
            if expr.name in self.globals:
                expr.kind = "global"
                item = self.globals[expr.name]
                if item.is_struct:
                    expr.type = Type(4, pointee=item.struct)
                else:
                    expr.type = Type(4, pointee=str(item.var_type))
            elif expr.name in self.functions:
                expr.kind = "func"
                expr.type = U32
            else:
                raise SemaError(f"cannot take address of {expr.name}",
                                expr.line)
        elif isinstance(expr, ast.Unary):
            self._analyze_expr(expr.operand, scope)
            expr.type = U32
        elif isinstance(expr, ast.Binary):
            left = self._analyze_expr(expr.left, scope)
            right = self._analyze_expr(expr.right, scope)
            if expr.op in ("+", "-") and left.is_pointer:
                expr.type = left
            elif expr.op == "+" and right.is_pointer:
                expr.type = right
            else:
                expr.type = U32
        elif isinstance(expr, ast.Call):
            if expr.name in INTRINSICS:
                expr.intrinsic = True
                arity, _ = INTRINSICS[expr.name]
                if len(expr.args) != arity:
                    raise SemaError(
                        f"{expr.name} expects {arity} args, "
                        f"got {len(expr.args)}", expr.line)
                expr.type = U32
            else:
                func = self.functions.get(expr.name)
                if func is None:
                    raise SemaError(f"unknown function {expr.name}",
                                    expr.line)
                if len(expr.args) != len(func.params):
                    raise SemaError(
                        f"{expr.name} expects {len(func.params)} args, "
                        f"got {len(expr.args)}", expr.line)
                expr.type = func.return_type
            scope.func.has_calls = True
            for arg in expr.args:
                self._analyze_expr(arg, scope)
        elif isinstance(expr, ast.FieldAccess):
            base = self._analyze_expr(expr.base, scope)
            if not base.is_pointer or base.pointee in ("u8", "u16", "u32"):
                raise SemaError(
                    f"field access on non-struct-pointer ({base})",
                    expr.line)
            struct = self.structs.get(base.pointee)
            if struct is None:
                raise SemaError(f"unknown struct {base.pointee}", expr.line)
            expr.struct = struct.name
            for field in struct.fields:
                if field.name == expr.field_name:
                    expr.type = field.field_type
                    break
            else:
                raise SemaError(
                    f"no field {expr.field_name} in {struct.name}",
                    expr.line)
        elif isinstance(expr, ast.Index):
            item = self.globals.get(expr.name)
            if item is None:
                raise SemaError(f"indexing unknown global {expr.name}",
                                expr.line)
            self._analyze_expr(expr.index, scope)
            if item.is_struct:
                expr.struct_array = True
                expr.elem = Type(4, pointee=item.struct)
                expr.type = expr.elem
            else:
                expr.struct_array = False
                expr.elem = item.var_type
                expr.type = item.var_type
        elif isinstance(expr, ast.SizeOf):
            if expr.struct not in self.structs:
                raise SemaError(f"sizeof unknown struct {expr.struct}",
                                expr.line)
            expr.type = U32
        else:  # pragma: no cover
            raise SemaError(f"unknown expression {type(expr).__name__}",
                            expr.line)
        return expr.type

    def _bind_name(self, expr: ast.Name, scope: _FunctionScope) -> Type:
        if expr.name in scope.locals:
            decl = scope.locals[expr.name]
            expr.kind = "local"
            expr.index = decl.index
            return decl.var_type
        if expr.name in scope.params:
            index = scope.params[expr.name]
            expr.kind = "param"
            expr.index = index
            return scope.func.params[index].var_type
        if expr.name in self.globals:
            item = self.globals[expr.name]
            if item.count > 1 or item.is_struct:
                raise SemaError(
                    f"{expr.name} is an array/struct; index it or take "
                    f"its address", expr.line)
            expr.kind = "global"
            return item.var_type
        if expr.name in self.program.consts:
            expr.kind = "const"
            expr.index = self.program.consts[expr.name]
            return U32
        raise SemaError(f"unknown name {expr.name}", expr.line)


def analyze(program: ast.Program) -> ast.Program:
    """Run semantic analysis, annotating *program* in place."""
    return Analyzer(program).run()
