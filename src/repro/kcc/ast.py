"""AST node definitions for the kernel DSL.

Nodes are plain dataclasses; semantic analysis (:mod:`repro.kcc.sema`)
annotates them in place (symbol binding, expression types) so that both
backends and the reference interpreter can consume the same tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# ---------------------------------------------------------------------------
# types


@dataclass(frozen=True)
class Type:
    """A DSL type: a scalar of 1/2/4 bytes, or a pointer.

    ``pointee`` is a struct name for ``*Struct``, one of ``"u8"``,
    ``"u16"``, ``"u32"`` for scalar pointers, or None for non-pointers.
    """

    width: int                  # scalar width in bytes (pointers: 4)
    pointee: Optional[str] = None

    @property
    def is_pointer(self) -> bool:
        return self.pointee is not None

    def __str__(self) -> str:
        if self.is_pointer:
            return f"*{self.pointee}"
        return {1: "u8", 2: "u16", 4: "u32"}[self.width]


U8 = Type(1)
U16 = Type(2)
U32 = Type(4)


# ---------------------------------------------------------------------------
# expressions


@dataclass
class Expr:
    line: int = 0
    #: filled in by sema: the expression's static type
    type: Type = U32


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Name(Expr):
    name: str = ""
    #: sema: "local", "param", "global", "const", "func"
    kind: str = ""
    #: sema: local/param index, or constant value for "const"
    index: int = 0


@dataclass
class AddrOf(Expr):
    name: str = ""              # global symbol or function name
    kind: str = ""              # sema: "global" or "func"


@dataclass
class Unary(Expr):
    op: str = ""                # "-", "!", "~"
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)
    #: sema: True when this is a __builtin intrinsic
    intrinsic: bool = False


@dataclass
class FieldAccess(Expr):
    base: Expr = None           # must have pointer-to-struct type
    field_name: str = ""
    #: sema: resolved struct name
    struct: str = ""


@dataclass
class Index(Expr):
    name: str = ""              # global array name
    index: Expr = None
    #: sema: element type
    elem: Type = U32
    #: sema: True if array of structs (expression yields pointer)
    struct_array: bool = False


@dataclass
class SizeOf(Expr):
    struct: str = ""


# ---------------------------------------------------------------------------
# statements


@dataclass
class Stmt:
    line: int = 0


@dataclass
class VarDecl(Stmt):
    name: str = ""
    var_type: Type = U32
    init: Optional[Expr] = None
    #: sema: local slot index
    index: int = 0


@dataclass
class Assign(Stmt):
    target: Expr = None         # Name, FieldAccess, or Index
    value: Expr = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


# ---------------------------------------------------------------------------
# top-level items


@dataclass
class StructField:
    name: str
    field_type: Type
    line: int


@dataclass
class StructDef:
    name: str
    fields: List[StructField]
    line: int


@dataclass
class GlobalDef:
    name: str
    var_type: Type
    count: int                  # 1 for scalars, >1 for arrays
    init: List[int]             # initial values (may be shorter)
    is_struct: bool             # struct-typed global (var_type.pointee!)
    struct: str                 # struct name when is_struct
    line: int = 0


@dataclass
class FuncDef:
    name: str
    params: List[VarDecl]
    return_type: Type
    body: List[Stmt]
    line: int = 0
    #: sema: all local VarDecls in declaration order (excludes params)
    locals: List[VarDecl] = field(default_factory=list)
    #: sema: does the body contain any Call?
    has_calls: bool = False


@dataclass
class Program:
    structs: List[StructDef] = field(default_factory=list)
    globals: List[GlobalDef] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
    consts: dict = field(default_factory=dict)

    def struct_by_name(self, name: str) -> StructDef:
        for struct in self.structs:
            if struct.name == name:
                return struct
        raise KeyError(name)

    def function_by_name(self, name: str) -> FuncDef:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)

    def global_by_name(self, name: str) -> GlobalDef:
        for item in self.globals:
            if item.name == name:
                return item
        raise KeyError(name)
