"""PowerPC code generator for the kernel DSL.

Code shape mirrors GCC 3.2 on PPC32 SysV:

* frames: ``stwu r1,-N(r1)`` (back chain written by the update form),
  ``mflr r0; stw r0,N+4(r1)``, callee-saved register save area;
* locals are homed in callee-saved registers r31 downward (18
  available) — values live in registers across calls, so corrupted
  state can sit unconsumed for many cycles (the paper's long G4
  code-error latencies).  The first local lands in r31, matching the
  paper's Figure 9 where r31 carries kjournald's struct pointer;
* every struct field and scalar global is a full 32-bit word accessed
  with ``lwz``/``stw``; sub-word fields are masked *in the register*
  after the load (``rlwinm``), which is exactly the mechanism that
  masks flips of their unused bits (the paper's G4 data/stack
  insensitivity);
* expression temporaries use the volatile registers r3-r12; around
  calls, live temporaries spill to dedicated frame slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.kcc import ast
from repro.kcc.layout import GlobalInfo, StructLayout
from repro.ppc.assembler import PPCAssembler, Reloc

#: callee-saved registers for locals, allocated r31 downward
_CALLEE_SAVED = tuple(range(31, 13, -1))      # r31 .. r14
#: volatile registers used as the expression temp pool
_TEMP_POOL = tuple(range(3, 13))              # r3 .. r12


class CompileError(Exception):
    pass


@dataclass
class CompiledFunction:
    name: str
    code: bytes
    relocs: List[Reloc]
    insn_offsets: List[int]


def _ha(addr: int) -> int:
    """High-adjusted 16 bits (compensates the signed low half)."""
    return ((addr + 0x8000) >> 16) & 0xFFFF


def _lo(addr: int) -> int:
    return addr & 0xFFFF


class PPCFunctionCompiler:
    """Compiles one analyzed :class:`ast.FuncDef` to PPC32 code."""

    def __init__(self, func: ast.FuncDef,
                 globals_info: Dict[str, GlobalInfo],
                 layouts: Dict[str, StructLayout]):
        self.func = func
        self.globals_info = globals_info
        self.layouts = layouts
        self.asm = PPCAssembler()
        self._label_counter = 0
        self._loop_stack: List[tuple] = []
        self._epilogue_label = self._new_label("epilogue")

        if len(func.params) > 8:
            raise CompileError(f"{func.name}: more than 8 parameters")

        # Homes: params first (they arrive in r3..; copied to homes),
        # then locals, all in callee-saved registers; overflow to frame.
        self.homes: Dict[str, int] = {}          # "p0"/"l3" -> reg
        self.frame_homes: Dict[str, int] = {}    # -> frame offset
        names = [f"p{index}" for index in range(len(func.params))] + \
                [f"l{index}" for index in range(len(func.locals))]
        overflow = 0
        for position, key in enumerate(names):
            if position < len(_CALLEE_SAVED):
                self.homes[key] = _CALLEE_SAVED[position]
            else:
                self.frame_homes[key] = overflow
                overflow += 1
        self.saved_regs = sorted(
            set(self.homes.values()), reverse=True)   # r31 first

        # Frame layout (from r1 upward):
        #   0: back chain
        #   4: padding
        #   8: callee-saved save area (len(saved_regs) words)
        #   ...: frame-home slots (overflow locals)
        #   ...: temp spill slots (10 words, one per pool register)
        save_area = 8
        self._save_area_base = save_area
        # block layout ascending by register number (stmw order)
        ascending = sorted(self.saved_regs)
        self._save_offsets = {
            reg: save_area + 4 * index
            for index, reg in enumerate(ascending)}
        frame_home_base = save_area + 4 * len(self.saved_regs)
        self._frame_home_base = frame_home_base
        # spill area: a stack of slots (calls nest, so per-register
        # slots would collide across nesting levels)
        self._spill_base = frame_home_base + 4 * overflow
        self._spill_slots = 8
        self._spill_depth = 0
        raw = self._spill_base + 4 * self._spill_slots
        self.frame_size = (raw + 15) & ~15

        self._in_use: List[int] = []              # allocated temp regs

    # -- helpers -----------------------------------------------------------

    def _new_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f".{self.func.name}.{hint}{self._label_counter}"

    def _alloc(self) -> int:
        for reg in _TEMP_POOL:
            if reg not in self._in_use:
                self._in_use.append(reg)
                return reg
        raise CompileError(f"{self.func.name}: expression too deep")

    def _free(self, reg: int) -> None:
        self._in_use.remove(reg)

    def _home_of(self, kind: str, index: int) -> "int | None":
        key = f"{'p' if kind == 'param' else 'l'}{index}"
        return self.homes.get(key)

    def _frame_home_offset(self, kind: str, index: int) -> int:
        key = f"{'p' if kind == 'param' else 'l'}{index}"
        return self._frame_home_base + 4 * self.frame_homes[key]

    # -- entry point ----------------------------------------------------------

    def compile(self) -> CompiledFunction:
        asm = self.asm
        insn_marks: List[int] = []

        asm.stwu(1, -self.frame_size, 1)
        asm.mflr(0)
        asm.stw(0, self.frame_size + 4, 1)
        # callee-saved save area: stmw for three or more registers
        # (GCC's heuristic); stmw/lmw require word alignment, which is
        # where Table 4's Alignment crashes come from when the stack
        # pointer is corrupted to an odd value
        if len(self.saved_regs) >= 3:
            asm.stmw(min(self.saved_regs), self._save_area_base, 1)
        else:
            for reg in self.saved_regs:
                asm.stw(reg, self._save_offsets[reg], 1)
        # copy incoming args (r3..) into their homes
        for index in range(len(self.func.params)):
            home = self._home_of("param", index)
            if home is not None:
                asm.mr(home, 3 + index)
            else:
                asm.stw(3 + index,
                        self._frame_home_offset("param", index), 1)

        self.compile_block(self.func.body)

        asm.label(self._epilogue_label)
        asm.lwz(0, self.frame_size + 4, 1)
        asm.mtlr(0)
        if len(self.saved_regs) >= 3:
            asm.lmw(min(self.saved_regs), self._save_area_base, 1)
        else:
            for reg in self.saved_regs:
                asm.lwz(reg, self._save_offsets[reg], 1)
        # restore the stack pointer from the back chain (GCC's
        # variable-frame epilogue): a corrupted back-chain word on the
        # stack propagates into r1 here — the paper's Stack Overflow
        # mechanism on the G4
        asm.lwz(1, 0, 1)
        asm.blr()

        code = asm.finish()
        insn_marks = [index * 4 for index in range(len(asm.words))]
        return CompiledFunction(self.func.name, code, asm.relocs,
                                insn_marks)

    # -- statements ---------------------------------------------------------------

    def compile_block(self, body: List[ast.Stmt]) -> None:
        for stmt in body:
            self.compile_stmt(stmt)

    def compile_stmt(self, stmt: ast.Stmt) -> None:
        asm = self.asm
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                reg = self.eval_expr(stmt.init)
                self._store_var("local", stmt.index, reg)
                self._free(reg)
        elif isinstance(stmt, ast.Assign):
            self.compile_assign(stmt)
        elif isinstance(stmt, ast.If):
            else_label = self._new_label("else")
            end_label = self._new_label("endif")
            self.compile_cond(stmt.cond, false_label=else_label)
            self.compile_block(stmt.then_body)
            if stmt.else_body:
                asm.b_label(end_label)
                asm.label(else_label)
                self.compile_block(stmt.else_body)
                asm.label(end_label)
            else:
                asm.label(else_label)
        elif isinstance(stmt, ast.While):
            head = self._new_label("while")
            end = self._new_label("endwhile")
            asm.label(head)
            self.compile_cond(stmt.cond, false_label=end)
            self._loop_stack.append((head, end))
            self.compile_block(stmt.body)
            self._loop_stack.pop()
            asm.b_label(head)
            asm.label(end)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                reg = self.eval_expr(stmt.value)
                if reg != 3:
                    asm.mr(3, reg)
                self._free(reg)
            else:
                asm.li(3, 0)
            asm.b_label(self._epilogue_label)
        elif isinstance(stmt, ast.Break):
            asm.b_label(self._loop_stack[-1][1])
        elif isinstance(stmt, ast.Continue):
            asm.b_label(self._loop_stack[-1][0])
        elif isinstance(stmt, ast.ExprStmt):
            reg = self.eval_expr(stmt.expr)
            self._free(reg)
        else:  # pragma: no cover
            raise CompileError(f"unhandled stmt {type(stmt).__name__}")

    def _store_var(self, kind: str, index: int, reg: int) -> None:
        home = self._home_of(kind, index)
        if home is not None:
            self.asm.mr(home, reg)
        else:
            self.asm.stw(reg, self._frame_home_offset(kind, index), 1)

    def compile_assign(self, stmt: ast.Assign) -> None:
        asm = self.asm
        target = stmt.target
        if isinstance(target, ast.Name):
            reg = self.eval_expr(stmt.value)
            if target.kind in ("local", "param"):
                self._store_var(target.kind, target.index, reg)
            else:
                info = self.globals_info[target.name]
                addr_reg = self._alloc()
                asm.lis(addr_reg, _ha(info.addr))
                self._store_word_like(reg, _lo_signed(info.addr),
                                      addr_reg, info.access_width)
                self._free(addr_reg)
            self._free(reg)
        elif isinstance(target, ast.FieldAccess):
            field = self.layouts[target.struct].field(target.field_name)
            base = self.eval_expr(target.base)
            value = self.eval_expr(stmt.value)
            # word store, raw value: masking happens at load
            asm.stw(value, field.offset, base)
            self._free(value)
            self._free(base)
        elif isinstance(target, ast.Index):
            info = self.globals_info[target.name]
            index = self.eval_expr(target.index)
            offset = self._scale_index(index, info)
            base = self._alloc()
            self._load_imm32(base, info.addr)
            value = self.eval_expr(stmt.value)
            if info.access_width == 4:
                asm.stwx(value, base, offset)
            elif info.access_width == 2:
                asm.sthx(value, base, offset)
            else:
                asm.stbx(value, base, offset)
            self._free(value)
            self._free(base)
            self._free(offset)
        else:  # pragma: no cover
            raise CompileError("invalid assignment target")

    def _store_word_like(self, value_reg: int, offset: int, base_reg: int,
                         width: int) -> None:
        # scalar globals: word slot on PPC (width 4) unless dense array
        if width == 4:
            self.asm.stw(value_reg, offset, base_reg)
        elif width == 2:
            self.asm.sth(value_reg, offset, base_reg)
        else:
            self.asm.stb(value_reg, offset, base_reg)

    def _scale_index(self, index_reg: int, info: GlobalInfo) -> int:
        """Return a temp register holding index*elem_size (frees input)."""
        asm = self.asm
        if info.elem_size == 1:
            return index_reg
        out = self._alloc()
        if info.elem_size == 2:
            asm.rlwinm(out, index_reg, 1, 0, 30)
        elif info.elem_size == 4:
            asm.rlwinm(out, index_reg, 2, 0, 29)
        else:
            asm.mulli(out, index_reg, info.elem_size)
        self._free(index_reg)
        return out

    # -- conditions ---------------------------------------------------------------

    def compile_cond(self, expr: ast.Expr, false_label: str) -> None:
        """Branch to *false_label* when *expr* is false."""
        asm = self.asm
        if isinstance(expr, ast.Binary) and expr.op in _CMP_FALSE_BRANCH:
            left = self.eval_expr(expr.left)
            right = self.eval_expr(expr.right)
            asm.cmplw(left, right)
            self._free(right)
            self._free(left)
            _CMP_FALSE_BRANCH[expr.op](asm, false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            self.compile_cond(expr.left, false_label)
            self.compile_cond(expr.right, false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            true_label = self._new_label("or")
            fall = self._new_label("orfall")
            self.compile_cond(expr.left, fall)
            asm.b_label(true_label)
            asm.label(fall)
            self.compile_cond(expr.right, false_label)
            asm.label(true_label)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            true_label = self._new_label("nottrue")
            self.compile_cond(expr.operand, true_label)
            asm.b_label(false_label)
            asm.label(true_label)
            return
        reg = self.eval_expr(expr)
        asm.cmplwi(reg, 0)
        self._free(reg)
        asm.beq(false_label)

    # -- expressions ------------------------------------------------------------------

    def eval_expr(self, expr: ast.Expr) -> int:
        """Evaluate *expr* into a freshly allocated temp register."""
        asm = self.asm
        if isinstance(expr, ast.Num):
            reg = self._alloc()
            self._load_imm32(reg, expr.value)
            return reg
        if isinstance(expr, ast.Name):
            return self._eval_name(expr)
        if isinstance(expr, ast.AddrOf):
            reg = self._alloc()
            if expr.kind == "global":
                self._load_imm32(reg, self.globals_info[expr.name].addr)
            else:
                asm.relocs.append(Reloc(asm.size, expr.name, "hi16"))
                asm.lis(reg, 0)
                asm.relocs.append(Reloc(asm.size, expr.name, "lo16"))
                asm.ori(reg, reg, 0)
            return reg
        if isinstance(expr, ast.SizeOf):
            reg = self._alloc()
            self._load_imm32(reg, self.layouts[expr.struct].size)
            return reg
        if isinstance(expr, ast.Unary):
            reg = self.eval_expr(expr.operand)
            if expr.op == "-":
                asm.neg(reg, reg)
            elif expr.op == "~":
                asm.nor(reg, reg, reg)
            else:   # !
                # reg = (reg == 0) ? 1 : 0
                zero = self._new_label("notz")
                end = self._new_label("notend")
                asm.cmplwi(reg, 0)
                asm.beq(zero)
                asm.li(reg, 0)
                asm.b_label(end)
                asm.label(zero)
                asm.li(reg, 1)
                asm.label(end)
            return reg
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.FieldAccess):
            field = self.layouts[expr.struct].field(expr.field_name)
            base = self.eval_expr(expr.base)
            asm.lwz(base, field.offset, base)
            if field.load_mask:
                # in-register masking: unused high bits never observed
                bits = field.semantic_bits
                asm.rlwinm(base, base, 0, 32 - bits, 31)
            return base
        if isinstance(expr, ast.Index):
            return self._eval_index(expr)
        raise CompileError(f"unhandled expr "
                           f"{type(expr).__name__}")  # pragma: no cover

    def _load_imm32(self, reg: int, value: int) -> None:
        value &= 0xFFFFFFFF
        high = (value >> 16) & 0xFFFF
        low = value & 0xFFFF
        if high:
            self.asm.lis(reg, high)
            if low:
                self.asm.ori(reg, reg, low)
        else:
            if low & 0x8000:
                self.asm.li(reg, 0)
                self.asm.ori(reg, reg, low)
            else:
                self.asm.li(reg, low)

    def _eval_name(self, expr: ast.Name) -> int:
        asm = self.asm
        reg = self._alloc()
        if expr.kind in ("local", "param"):
            home = self._home_of(expr.kind, expr.index)
            if home is not None:
                asm.mr(reg, home)
            else:
                asm.lwz(reg, self._frame_home_offset(expr.kind,
                                                     expr.index), 1)
        elif expr.kind == "global":
            info = self.globals_info[expr.name]
            asm.lis(reg, _ha(info.addr))
            if info.access_width == 4:
                asm.lwz(reg, _lo_signed(info.addr), reg)
                if info.load_mask:
                    bits = info.semantic_bits
                    asm.rlwinm(reg, reg, 0, 32 - bits, 31)
            elif info.access_width == 2:
                asm.lhz(reg, _lo_signed(info.addr), reg)
            else:
                asm.lbz(reg, _lo_signed(info.addr), reg)
        elif expr.kind == "const":
            self._load_imm32(reg, expr.index)
        else:  # pragma: no cover
            raise CompileError(f"unbound name {expr.name}")
        return reg

    def _eval_index(self, expr: ast.Index) -> int:
        asm = self.asm
        info = self.globals_info[expr.name]
        index = self.eval_expr(expr.index)
        if expr.struct_array:
            offset = self._scale_index(index, info)
            base = self._alloc()
            self._load_imm32(base, info.addr)
            asm.add(base, base, offset)
            self._free(offset)
            return base
        offset = self._scale_index(index, info)
        base = self._alloc()
        self._load_imm32(base, info.addr)
        if info.access_width == 4:
            asm.lwzx(base, base, offset)
        elif info.access_width == 2:
            asm.lhzx(base, base, offset)
        else:
            asm.lbzx(base, base, offset)
        self._free(offset)
        return base

    def _eval_binary(self, expr: ast.Binary) -> int:
        asm = self.asm
        op = expr.op
        if op in ("&&", "||"):
            reg = self._alloc()
            false_label = self._new_label("sc_false")
            end = self._new_label("sc_end")
            self._free(reg)          # keep pool clean for compile_cond
            self.compile_cond(expr, false_label)
            reg2 = self._alloc()
            asm.li(reg2, 1)
            asm.b_label(end)
            asm.label(false_label)
            asm.li(reg2, 0)
            asm.label(end)
            return reg2
        left = self.eval_expr(expr.left)
        right = self.eval_expr(expr.right)
        if op == "+":
            asm.add(left, left, right)
        elif op == "-":
            asm.subf(left, right, left)
        elif op == "*":
            asm.mullw(left, left, right)
        elif op == "/":
            asm.divwu(left, left, right)
        elif op == "%":
            # a % b = a - (a/b)*b
            quotient = self._alloc()
            asm.divwu(quotient, left, right)
            asm.mullw(quotient, quotient, right)
            asm.subf(left, quotient, left)
            self._free(quotient)
        elif op == "&":
            asm.and_(left, left, right)
        elif op == "|":
            asm.or_(left, left, right)
        elif op == "^":
            asm.xor_(left, left, right)
        elif op == "<<":
            asm.slw(left, left, right)
        elif op == ">>":
            asm.srw(left, left, right)
        elif op in _CMP_FALSE_BRANCH:
            true_label = self._new_label("cmp1")
            end = self._new_label("cmpend")
            asm.cmplw(left, right)
            _CMP_TRUE_BRANCH[op](asm, true_label)
            asm.li(left, 0)
            asm.b_label(end)
            asm.label(true_label)
            asm.li(left, 1)
            asm.label(end)
        else:  # pragma: no cover
            raise CompileError(f"unhandled operator {op}")
        self._free(right)
        return left

    def _eval_call(self, expr: ast.Call) -> int:
        if expr.intrinsic:
            return self._eval_intrinsic(expr)
        return self._call(expr.name, expr.args, indirect=None)

    def _call(self, name: str, args: List[ast.Expr],
              indirect: "ast.Expr | None") -> int:
        asm = self.asm
        if len(args) > 8:
            raise CompileError(f"call to {name}: more than 8 arguments")
        # spill live temps to fresh stack slots (LIFO across nesting)
        live = list(self._in_use)
        spilled: List[tuple] = []
        for reg in live:
            if self._spill_depth >= self._spill_slots:
                raise CompileError(
                    f"{self.func.name}: spill area exhausted")
            offset = self._spill_base + 4 * self._spill_depth
            self._spill_depth += 1
            asm.stw(reg, offset, 1)
            spilled.append((reg, offset))
        self._in_use = []
        # evaluate args; they allocate r3, r4, ... in order
        for position, arg in enumerate(args):
            reg = self.eval_expr(arg)
            if reg != 3 + position:          # defensive; see _call notes
                asm.mr(3 + position, reg)
                self._free(reg)
                self._in_use.append(3 + position)
        if indirect is not None:
            target = self.eval_expr(indirect)
            asm.mtctr(target)
            self._free(target)
            asm.bctrl()
        else:
            asm.bl_sym(name)
        # result handling: re-reserve the spilled regs, then pick a
        # destination, move the result, and restore the spills
        self._in_use = list(live)
        dest = self._alloc()
        if dest != 3:
            asm.mr(dest, 3)
        for reg, offset in reversed(spilled):
            asm.lwz(reg, offset, 1)
        self._spill_depth -= len(spilled)
        return dest

    def _eval_intrinsic(self, expr: ast.Call) -> int:
        asm = self.asm
        name = expr.name
        if name in ("__load8", "__load16", "__load32"):
            width = {"__load8": 1, "__load16": 2, "__load32": 4}[name]
            reg = self.eval_expr(expr.args[0])
            if width == 4:
                asm.lwz(reg, 0, reg)
            elif width == 2:
                asm.lhz(reg, 0, reg)
            else:
                asm.lbz(reg, 0, reg)
            return reg
        if name in ("__store8", "__store16", "__store32"):
            width = {"__store8": 1, "__store16": 2, "__store32": 4}[name]
            addr = self.eval_expr(expr.args[0])
            value = self.eval_expr(expr.args[1])
            if width == 4:
                asm.stw(value, 0, addr)
            elif width == 2:
                asm.sth(value, 0, addr)
            else:
                asm.stb(value, 0, addr)
            self._free(value)
            return addr          # reuse as (meaningless) result
        if name == "__bug":
            asm.trap()
            return self._alloc()
        if name == "__panic":
            info = self.globals_info.get("panic_code")
            if info is None:
                raise CompileError(
                    "__panic requires a 'global panic_code: u32;'")
            value = self.eval_expr(expr.args[0])
            addr = self._alloc()
            asm.lis(addr, _ha(info.addr))
            asm.stw(value, _lo_signed(info.addr), addr)
            self._free(addr)
            asm.trap()
            return value
        if name.startswith("__icall"):
            return self._call(name, expr.args[1:], indirect=expr.args[0])
        raise CompileError(f"unknown intrinsic {name}")  # pragma: no cover


def _lo_signed(addr: int) -> int:
    """Low 16 bits as the signed displacement paired with _ha()."""
    low = addr & 0xFFFF
    return low - 0x10000 if low & 0x8000 else low


def _false_branch(cond: str):
    def emit(asm: PPCAssembler, label: str) -> None:
        getattr(asm, cond)(label)
    return emit


# branch taken when the comparison is FALSE (inverted condition)
_CMP_FALSE_BRANCH = {
    "==": _false_branch("bne"),
    "!=": _false_branch("beq"),
    "<": _false_branch("bge"),
    "<=": _false_branch("bgt"),
    ">": _false_branch("ble"),
    ">=": _false_branch("blt"),
}

# branch taken when the comparison is TRUE
_CMP_TRUE_BRANCH = {
    "==": _false_branch("beq"),
    "!=": _false_branch("bne"),
    "<": _false_branch("blt"),
    "<=": _false_branch("ble"),
    ">": _false_branch("bgt"),
    ">=": _false_branch("bge"),
}


def compile_function(func: ast.FuncDef,
                     globals_info: Dict[str, GlobalInfo],
                     layouts: Dict[str, StructLayout]) -> CompiledFunction:
    return PPCFunctionCompiler(func, globals_info, layouts).compile()
