"""kcc — the kernel-DSL compiler.

The paper compiles one Linux 2.4.22 source tree with GCC 3.2.2 for two
architectures; the cross-architecture differences in error sensitivity
come from how the *same source* turns into machine state.  ``kcc``
reproduces that: a small C-like language (see ``docs in
repro.kernel.source``) is compiled by two backends:

* :mod:`repro.kcc.backend_x86` — packed struct layout with natural
  8/16/32-bit field access, locals mostly in stack slots (8 GPRs),
  push/pop-dense cdecl calls;
* :mod:`repro.kcc.backend_ppc` — every struct field padded to a 32-bit
  word and accessed with ``lwz``/``stw`` plus in-register masking,
  locals homed in callee-saved r14-r31, SysV-style frames.

A reference AST interpreter (:mod:`repro.kcc.interp`) executes the same
program over the same memory image and serves as the differential
oracle for both backends.
"""

from repro.kcc.lexer import LexError, tokenize
from repro.kcc.parser import ParseError, parse
from repro.kcc.sema import SemaError, analyze
from repro.kcc.linker import KernelImage, build_image

__all__ = [
    "tokenize", "LexError",
    "parse", "ParseError",
    "analyze", "SemaError",
    "build_image", "KernelImage",
]
