"""x86 code generator for the kernel DSL.

Code shape mirrors GCC 3.2 on IA-32 at the optimization level the
paper's kernel was built with:

* cdecl frames: ``push %ebp; mov %esp,%ebp; push %edi/%esi/%ebx;
  sub $N,%esp`` and the matching ``lea -0xc(%ebp),%esp; pop %ebx; pop
  %esi; pop %edi; pop %ebp; ret`` epilogue (exactly the paper's
  Figure 7 byte pattern);
* only three callee-saved registers are available to home locals — all
  other locals live in ``-N(%ebp)`` stack slots, and expression
  evaluation pushes intermediates, so the kernel stack carries dense,
  fully-meaningful 8/16/32-bit traffic (the paper's P4 stack
  sensitivity);
* struct fields are accessed at packed offsets with their natural
  width (``mov %al``, ``mov %ax``, ``mov %eax``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.kcc import ast
from repro.kcc.layout import GlobalInfo, StructLayout
from repro.x86.assembler import Mem, Reloc, X86Assembler

EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI = range(8)

#: callee-saved registers used to home the first locals (allocation
#: order matches GCC's preference: ebx, esi, edi)
_REG_HOMES = (EBX, ESI, EDI)


class CompileError(Exception):
    pass


@dataclass
class CompiledFunction:
    name: str
    code: bytes
    relocs: List[Reloc]
    insn_offsets: List[int]


class X86FunctionCompiler:
    """Compiles one analyzed :class:`ast.FuncDef` to IA-32 code."""

    def __init__(self, func: ast.FuncDef,
                 globals_info: Dict[str, GlobalInfo],
                 layouts: Dict[str, StructLayout]):
        self.func = func
        self.globals_info = globals_info
        self.layouts = layouts
        self.asm = X86Assembler()
        self._label_counter = 0
        self._loop_stack: List[tuple] = []   # (continue_label, break_label)
        self._epilogue_label = self._new_label("epilogue")

        # locals: first three in callee-saved registers, rest on stack
        self.reg_locals: Dict[int, int] = {}       # local index -> reg
        self.slot_locals: Dict[int, int] = {}      # local index -> ebp disp
        for index, _decl in enumerate(func.locals):
            if index < len(_REG_HOMES):
                self.reg_locals[index] = _REG_HOMES[index]
            else:
                slot = index - len(_REG_HOMES)
                self.slot_locals[index] = -16 - 4 * slot
        self.stack_slot_count = max(0, len(func.locals) - len(_REG_HOMES))

    # -- small helpers --------------------------------------------------------

    def _new_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f".{self.func.name}.{hint}{self._label_counter}"

    def _param_mem(self, index: int) -> Mem:
        return Mem(base=EBP, disp=8 + 4 * index)

    def _local_is_reg(self, index: int) -> bool:
        return index in self.reg_locals

    # -- entry point ------------------------------------------------------------

    def compile(self) -> CompiledFunction:
        asm = self.asm
        asm.push_r(EBP)
        asm.mov_rm_r(EBP, ESP)                # mov %esp,%ebp
        asm.push_r(EDI)
        asm.push_r(ESI)
        asm.push_r(EBX)
        if self.stack_slot_count:
            asm.alu_rm_imm("sub", ESP, 4 * self.stack_slot_count)
        self.compile_block(self.func.body)
        # fall-through return (value undefined, eax as-is)
        asm.label(self._epilogue_label)
        asm.lea(ESP, Mem(base=EBP, disp=-12))
        asm.pop_r(EBX)
        asm.pop_r(ESI)
        asm.pop_r(EDI)
        asm.pop_r(EBP)
        asm.ret()
        code = asm.finish()
        return CompiledFunction(self.func.name, code, asm.relocs,
                                list(asm.insn_offsets))

    # -- statements -----------------------------------------------------------------

    def compile_block(self, body: List[ast.Stmt]) -> None:
        for stmt in body:
            self.compile_stmt(stmt)

    def compile_stmt(self, stmt: ast.Stmt) -> None:
        asm = self.asm
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self.eval_expr(stmt.init)
                self._store_local(stmt.index)
        elif isinstance(stmt, ast.Assign):
            self.compile_assign(stmt)
        elif isinstance(stmt, ast.If):
            else_label = self._new_label("else")
            end_label = self._new_label("endif")
            self.compile_cond(stmt.cond, false_label=else_label)
            self.compile_block(stmt.then_body)
            if stmt.else_body:
                asm.jmp_label(end_label)
                asm.label(else_label)
                self.compile_block(stmt.else_body)
                asm.label(end_label)
            else:
                asm.label(else_label)
        elif isinstance(stmt, ast.While):
            head = self._new_label("while")
            end = self._new_label("endwhile")
            asm.label(head)
            self.compile_cond(stmt.cond, false_label=end)
            self._loop_stack.append((head, end))
            self.compile_block(stmt.body)
            self._loop_stack.pop()
            asm.jmp_label(head)
            asm.label(end)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval_expr(stmt.value)
            else:
                asm.mov_r_imm(EAX, 0)
            asm.jmp_label(self._epilogue_label)
        elif isinstance(stmt, ast.Break):
            asm.jmp_label(self._loop_stack[-1][1])
        elif isinstance(stmt, ast.Continue):
            asm.jmp_label(self._loop_stack[-1][0])
        elif isinstance(stmt, ast.ExprStmt):
            self.eval_expr(stmt.expr)
        else:  # pragma: no cover
            raise CompileError(f"unhandled stmt {type(stmt).__name__}")

    def _store_local(self, index: int) -> None:
        """Store EAX into a local's home."""
        if self._local_is_reg(index):
            self.asm.mov_rm_r(self.reg_locals[index], EAX)
        else:
            self.asm.mov_rm_r(Mem(base=EBP,
                                  disp=self.slot_locals[index]), EAX)

    def compile_assign(self, stmt: ast.Assign) -> None:
        asm = self.asm
        target = stmt.target
        if isinstance(target, ast.Name):
            self.eval_expr(stmt.value)
            if target.kind == "local":
                self._store_local(target.index)
            elif target.kind == "param":
                asm.mov_rm_r(self._param_mem(target.index), EAX)
            else:   # global scalar
                info = self.globals_info[target.name]
                asm.mov_rm_r(Mem(disp=info.addr), EAX,
                             width=info.access_width)
        elif isinstance(target, ast.FieldAccess):
            field = self.layouts[target.struct].field(target.field_name)
            self.eval_expr(target.base)
            asm.push_r(EAX)
            self.eval_expr(stmt.value)
            asm.pop_r(ECX)
            asm.mov_rm_r(Mem(base=ECX, disp=field.offset), EAX,
                         width=field.access_width)
        elif isinstance(target, ast.Index):
            info = self.globals_info[target.name]
            self.eval_expr(target.index)
            asm.push_r(EAX)
            self.eval_expr(stmt.value)
            asm.pop_r(ECX)
            if info.elem_size in (1, 2, 4):
                asm.mov_rm_r(Mem(index=ECX, scale=info.elem_size,
                                 disp=info.addr), EAX,
                             width=info.access_width)
            else:
                asm.imul_r_rm_imm(ECX, ECX, info.elem_size)
                asm.mov_rm_r(Mem(index=ECX, scale=1, disp=info.addr),
                             EAX, width=info.access_width)
        else:  # pragma: no cover
            raise CompileError("invalid assignment target")

    # -- conditions -------------------------------------------------------------------

    _NEGATED = {"==": "ne", "!=": "e", "<": "ae", "<=": "a",
                ">": "be", ">=": "b"}

    def compile_cond(self, expr: ast.Expr, false_label: str) -> None:
        """Branch to *false_label* when *expr* is false (0)."""
        asm = self.asm
        if isinstance(expr, ast.Binary) and expr.op in self._NEGATED:
            self.eval_expr(expr.left)
            asm.push_r(EAX)
            self.eval_expr(expr.right)
            asm.mov_rm_r(ECX, EAX)
            asm.pop_r(EAX)
            asm.alu_r_rm("cmp", EAX, ECX)
            asm.jcc_label(self._NEGATED[expr.op], false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            self.compile_cond(expr.left, false_label)
            self.compile_cond(expr.right, false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            true_label = self._new_label("or")
            self.compile_truthy(expr.left, true_label)
            self.compile_cond(expr.right, false_label)
            asm.label(true_label)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            true_label = self._new_label("nottrue")
            self.compile_cond(expr.operand, true_label)
            asm.jmp_label(false_label)
            asm.label(true_label)
            return
        self.eval_expr(expr)
        asm.test_rm_r(EAX, EAX)
        asm.jcc_label("e", false_label)

    def compile_truthy(self, expr: ast.Expr, true_label: str) -> None:
        """Branch to *true_label* when *expr* is true (non-zero)."""
        fall = self._new_label("truthyfall")
        self.compile_cond(expr, false_label=fall)
        self.asm.jmp_label(true_label)
        self.asm.label(fall)

    # -- expressions -----------------------------------------------------------------

    def eval_expr(self, expr: ast.Expr) -> None:
        """Evaluate *expr*; result in EAX (clobbers ECX/EDX, may push)."""
        asm = self.asm
        if isinstance(expr, ast.Num):
            asm.mov_r_imm(EAX, expr.value)
        elif isinstance(expr, ast.Name):
            self._eval_name(expr)
        elif isinstance(expr, ast.AddrOf):
            if expr.kind == "global":
                asm.mov_r_imm(EAX, self.globals_info[expr.name].addr)
            else:
                asm.mov_r_imm_sym(EAX, expr.name)
        elif isinstance(expr, ast.SizeOf):
            asm.mov_r_imm(EAX, self.layouts[expr.struct].size)
        elif isinstance(expr, ast.Unary):
            self.eval_expr(expr.operand)
            if expr.op == "-":
                asm.neg_rm(EAX)
            elif expr.op == "~":
                asm.not_rm(EAX)
            else:   # !
                zero = self._new_label("notz")
                end = self._new_label("notend")
                asm.test_rm_r(EAX, EAX)
                asm.jcc_label("e", zero)
                asm.mov_r_imm(EAX, 0)
                asm.jmp_label(end)
                asm.label(zero)
                asm.mov_r_imm(EAX, 1)
                asm.label(end)
        elif isinstance(expr, ast.Binary):
            self._eval_binary(expr)
        elif isinstance(expr, ast.Call):
            self._eval_call(expr)
        elif isinstance(expr, ast.FieldAccess):
            field = self.layouts[expr.struct].field(expr.field_name)
            self.eval_expr(expr.base)
            src = Mem(base=EAX, disp=field.offset)
            if field.access_width == 4:
                asm.mov_r_rm(EAX, src)
            else:
                asm.movzx(EAX, src, field.access_width)
        elif isinstance(expr, ast.Index):
            self._eval_index(expr)
        else:  # pragma: no cover
            raise CompileError(f"unhandled expr {type(expr).__name__}")

    def _eval_name(self, expr: ast.Name) -> None:
        asm = self.asm
        if expr.kind == "local":
            if self._local_is_reg(expr.index):
                asm.mov_rm_r(EAX, self.reg_locals[expr.index])
            else:
                asm.mov_r_rm(EAX, Mem(base=EBP,
                                      disp=self.slot_locals[expr.index]))
        elif expr.kind == "param":
            asm.mov_r_rm(EAX, self._param_mem(expr.index))
        elif expr.kind == "global":
            info = self.globals_info[expr.name]
            src = Mem(disp=info.addr)
            if info.access_width == 4:
                asm.mov_r_rm(EAX, src)
            else:
                asm.movzx(EAX, src, info.access_width)
        elif expr.kind == "const":
            asm.mov_r_imm(EAX, expr.index)
        else:  # pragma: no cover
            raise CompileError(f"unbound name {expr.name}")

    def _eval_index(self, expr: ast.Index) -> None:
        asm = self.asm
        info = self.globals_info[expr.name]
        self.eval_expr(expr.index)
        if expr.struct_array:
            if info.elem_size in (1, 2, 4, 8):
                asm.lea(EAX, Mem(index=EAX, scale=info.elem_size,
                                 disp=info.addr))
            else:
                asm.imul_r_rm_imm(EAX, EAX, info.elem_size)
                asm.alu_rm_imm("add", EAX, info.addr)
            return
        if info.elem_size in (1, 2, 4):
            src = Mem(index=EAX, scale=info.elem_size, disp=info.addr)
        else:  # pragma: no cover - scalar arrays always 1/2/4
            raise CompileError("bad element size")
        if info.access_width == 4:
            asm.mov_r_rm(EAX, src)
        else:
            asm.movzx(EAX, src, info.access_width)

    def _eval_binary(self, expr: ast.Binary) -> None:
        asm = self.asm
        op = expr.op
        if op in ("&&", "||"):
            end = self._new_label("sc_end")
            if op == "&&":
                false_label = self._new_label("sc_false")
                self.compile_cond(expr, false_label)
                asm.mov_r_imm(EAX, 1)
                asm.jmp_label(end)
                asm.label(false_label)
                asm.mov_r_imm(EAX, 0)
            else:
                false_label = self._new_label("sc_false")
                self.compile_cond(expr, false_label)
                asm.mov_r_imm(EAX, 1)
                asm.jmp_label(end)
                asm.label(false_label)
                asm.mov_r_imm(EAX, 0)
            asm.label(end)
            return
        self.eval_expr(expr.left)
        asm.push_r(EAX)
        self.eval_expr(expr.right)
        asm.mov_rm_r(ECX, EAX)               # right -> ecx
        asm.pop_r(EAX)                       # left  -> eax
        if op == "+":
            asm.alu_r_rm("add", EAX, ECX)
        elif op == "-":
            asm.alu_r_rm("sub", EAX, ECX)
        elif op == "&":
            asm.alu_r_rm("and", EAX, ECX)
        elif op == "|":
            asm.alu_r_rm("or", EAX, ECX)
        elif op == "^":
            asm.alu_r_rm("xor", EAX, ECX)
        elif op == "*":
            asm.imul_r_rm(EAX, ECX)
        elif op == "/":
            asm.alu_r_rm("xor", EDX, EDX)
            asm.div_rm(ECX)
        elif op == "%":
            asm.alu_r_rm("xor", EDX, EDX)
            asm.div_rm(ECX)
            asm.mov_rm_r(EAX, EDX)
        elif op == "<<":
            asm.shift_rm_cl("shl", EAX)
        elif op == ">>":
            asm.shift_rm_cl("shr", EAX)
        elif op in self._NEGATED:
            true_label = self._new_label("cmp1")
            end = self._new_label("cmpend")
            asm.alu_r_rm("cmp", EAX, ECX)
            cond = {"==": "e", "!=": "ne", "<": "b", "<=": "be",
                    ">": "a", ">=": "ae"}[op]
            asm.jcc_label(cond, true_label)
            asm.mov_r_imm(EAX, 0)
            asm.jmp_label(end)
            asm.label(true_label)
            asm.mov_r_imm(EAX, 1)
            asm.label(end)
        else:  # pragma: no cover
            raise CompileError(f"unhandled operator {op}")

    def _eval_call(self, expr: ast.Call) -> None:
        asm = self.asm
        if expr.intrinsic:
            self._eval_intrinsic(expr)
            return
        for arg in reversed(expr.args):
            self.eval_expr(arg)
            asm.push_r(EAX)
        asm.call_sym(expr.name)
        if expr.args:
            asm.alu_rm_imm("add", ESP, 4 * len(expr.args))

    def _eval_intrinsic(self, expr: ast.Call) -> None:
        asm = self.asm
        name = expr.name
        if name in ("__load8", "__load16", "__load32"):
            width = {"__load8": 1, "__load16": 2, "__load32": 4}[name]
            self.eval_expr(expr.args[0])
            if width == 4:
                asm.mov_r_rm(EAX, Mem(base=EAX))
            else:
                asm.movzx(EAX, Mem(base=EAX), width)
        elif name in ("__store8", "__store16", "__store32"):
            width = {"__store8": 1, "__store16": 2, "__store32": 4}[name]
            self.eval_expr(expr.args[0])
            asm.push_r(EAX)
            self.eval_expr(expr.args[1])
            asm.pop_r(ECX)
            asm.mov_rm_r(Mem(base=ECX), EAX, width=width)
        elif name == "__bug":
            asm.ud2a()
        elif name == "__panic":
            info = self.globals_info.get("panic_code")
            if info is None:
                raise CompileError(
                    "__panic requires a 'global panic_code: u32;'")
            self.eval_expr(expr.args[0])
            asm.mov_rm_r(Mem(disp=info.addr), EAX)
            asm.ud2a()
        elif name.startswith("__icall"):
            for arg in reversed(expr.args[1:]):
                self.eval_expr(arg)
                asm.push_r(EAX)
            self.eval_expr(expr.args[0])
            asm.call_rm(EAX)
            extra = len(expr.args) - 1
            if extra:
                asm.alu_rm_imm("add", ESP, 4 * extra)
        else:  # pragma: no cover
            raise CompileError(f"unknown intrinsic {name}")


def compile_function(func: ast.FuncDef,
                     globals_info: Dict[str, GlobalInfo],
                     layouts: Dict[str, StructLayout]) -> CompiledFunction:
    return X86FunctionCompiler(func, globals_info, layouts).compile()
