"""Reference interpreter for the kernel DSL.

Executes the analyzed AST directly against the *same memory image and
layout* as the compiled code for a given architecture, so compiled
execution on a simulated CPU can be differentially tested against it:
same arguments, same initial memory, then compare return values and the
final data-section bytes.

The interpreter reproduces each backend's observable memory semantics —
on the PPC layout, struct-field loads are masked in-register and stores
write the full raw word; on the x86 layout, fields are accessed with
their natural widths.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.memory import PhysicalMemory
from repro.kcc import ast
from repro.kcc.linker import KernelImage

MASK32 = 0xFFFFFFFF


class InterpError(Exception):
    pass


class InterpTrap(Exception):
    """A deliberate trap (__bug / __panic) reached during interpretation."""

    def __init__(self, kind: str, code: int = 0):
        self.kind = kind
        self.code = code
        super().__init__(f"{kind}({code})")


class _ReturnSignal(Exception):
    def __init__(self, value: int):
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class Interp:
    """AST interpreter bound to a :class:`KernelImage` and a memory."""

    def __init__(self, image: KernelImage, memory: PhysicalMemory,
                 max_steps: int = 2_000_000):
        self.image = image
        self.mem = memory
        self.max_steps = max_steps
        self.steps = 0
        self._addr_to_func = {info.addr: name
                              for name, info in image.functions.items()}

    # -- memory helpers -----------------------------------------------------

    def _read(self, addr: int, width: int) -> int:
        little = self.image.little_endian
        if width == 4:
            return self.mem.read_u32(addr, little)
        if width == 2:
            return self.mem.read_u16(addr, little)
        return self.mem.read_u8(addr)

    def _write(self, addr: int, value: int, width: int) -> None:
        little = self.image.little_endian
        if width == 4:
            self.mem.write_u32(addr, value, little)
        elif width == 2:
            self.mem.write_u16(addr, value, little)
        else:
            self.mem.write_u8(addr, value)

    # -- public API -----------------------------------------------------------

    def call(self, name: str, args: Optional[List[int]] = None) -> int:
        """Run function *name* to completion and return its result."""
        func = self.image.program.function_by_name(name)
        args = list(args or [])
        if len(args) != len(func.params):
            raise InterpError(
                f"{name} expects {len(func.params)} args, got {len(args)}")
        frame: Dict[str, int] = {}
        for index, value in enumerate(args):
            frame[f"p{index}"] = value & MASK32
        for index in range(len(func.locals)):
            frame[f"l{index}"] = 0
        try:
            self._exec_block(func.body, frame)
        except _ReturnSignal as signal:
            return signal.value
        return 0

    # -- statements ----------------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpError("interpreter step budget exceeded")

    def _exec_block(self, body: List[ast.Stmt],
                    frame: Dict[str, int]) -> None:
        for stmt in body:
            self._exec_stmt(stmt, frame)

    def _exec_stmt(self, stmt: ast.Stmt, frame: Dict[str, int]) -> None:
        self._tick()
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                frame[f"l{stmt.index}"] = self._eval(stmt.init, frame)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt, frame)
        elif isinstance(stmt, ast.If):
            if self._eval(stmt.cond, frame):
                self._exec_block(stmt.then_body, frame)
            else:
                self._exec_block(stmt.else_body, frame)
        elif isinstance(stmt, ast.While):
            while self._eval(stmt.cond, frame):
                self._tick()
                try:
                    self._exec_block(stmt.body, frame)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, ast.Return):
            value = self._eval(stmt.value, frame) \
                if stmt.value is not None else 0
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, frame)
        else:  # pragma: no cover
            raise InterpError(f"unhandled stmt {type(stmt).__name__}")

    def _assign(self, stmt: ast.Assign, frame: Dict[str, int]) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            value = self._eval(stmt.value, frame)
            if target.kind == "local":
                frame[f"l{target.index}"] = value
            elif target.kind == "param":
                frame[f"p{target.index}"] = value
            else:
                info = self.image.globals[target.name]
                self._write(info.addr, value, info.access_width)
        elif isinstance(target, ast.FieldAccess):
            field = self.image.field(target.struct, target.field_name)
            base = self._eval(target.base, frame)
            value = self._eval(stmt.value, frame)
            self._write((base + field.offset) & MASK32, value,
                        field.access_width)
        elif isinstance(target, ast.Index):
            info = self.image.globals[target.name]
            index = self._eval(target.index, frame)
            value = self._eval(stmt.value, frame)
            addr = (info.addr + index * info.elem_size) & MASK32
            self._write(addr, value, info.access_width)
        else:  # pragma: no cover
            raise InterpError("invalid assignment target")

    # -- expressions -----------------------------------------------------------------

    def _eval(self, expr: ast.Expr, frame: Dict[str, int]) -> int:
        self._tick()
        if isinstance(expr, ast.Num):
            return expr.value & MASK32
        if isinstance(expr, ast.Name):
            if expr.kind == "local":
                return frame[f"l{expr.index}"]
            if expr.kind == "param":
                return frame[f"p{expr.index}"]
            if expr.kind == "const":
                return expr.index & MASK32
            info = self.image.globals[expr.name]
            value = self._read(info.addr, info.access_width)
            if info.load_mask:
                value &= info.load_mask
            return value
        if isinstance(expr, ast.AddrOf):
            if expr.kind == "global":
                return self.image.globals[expr.name].addr
            return self.image.functions[expr.name].addr
        if isinstance(expr, ast.SizeOf):
            return self.image.sizeof(expr.struct)
        if isinstance(expr, ast.Unary):
            value = self._eval(expr.operand, frame)
            if expr.op == "-":
                return (-value) & MASK32
            if expr.op == "~":
                return (~value) & MASK32
            return 0 if value else 1
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, frame)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, frame)
        if isinstance(expr, ast.FieldAccess):
            field = self.image.field(expr.struct, expr.field_name)
            base = self._eval(expr.base, frame)
            value = self._read((base + field.offset) & MASK32,
                               field.access_width)
            if field.load_mask:
                value &= field.load_mask
            return value
        if isinstance(expr, ast.Index):
            info = self.image.globals[expr.name]
            index = self._eval(expr.index, frame)
            if expr.struct_array:
                return (info.addr + index * info.elem_size) & MASK32
            return self._read(
                (info.addr + index * info.elem_size) & MASK32,
                info.access_width)
        raise InterpError(
            f"unhandled expr {type(expr).__name__}")  # pragma: no cover

    def _eval_binary(self, expr: ast.Binary, frame: Dict[str, int]) -> int:
        op = expr.op
        if op == "&&":
            return 1 if (self._eval(expr.left, frame)
                         and self._eval(expr.right, frame)) else 0
        if op == "||":
            return 1 if (self._eval(expr.left, frame)
                         or self._eval(expr.right, frame)) else 0
        a = self._eval(expr.left, frame)
        b = self._eval(expr.right, frame)
        if op == "+":
            return (a + b) & MASK32
        if op == "-":
            return (a - b) & MASK32
        if op == "*":
            return (a * b) & MASK32
        if op == "/":
            if b == 0:
                raise InterpTrap("divide-by-zero")
            return a // b
        if op == "%":
            if b == 0:
                raise InterpTrap("divide-by-zero")
            return a % b
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<":
            # shift-count semantics differ: x86 masks the count to 5
            # bits; PPC's slw produces 0 for counts 32-63
            if self.image.arch == "x86":
                return (a << (b & 31)) & MASK32
            return (a << (b & 31)) & MASK32 if (b & 0x3F) < 32 else 0
        if op == ">>":
            if self.image.arch == "x86":
                return a >> (b & 31)
            return (a >> (b & 31)) if (b & 0x3F) < 32 else 0
        if op == "==":
            return 1 if a == b else 0
        if op == "!=":
            return 1 if a != b else 0
        if op == "<":
            return 1 if a < b else 0
        if op == "<=":
            return 1 if a <= b else 0
        if op == ">":
            return 1 if a > b else 0
        if op == ">=":
            return 1 if a >= b else 0
        raise InterpError(f"unhandled operator {op}")  # pragma: no cover

    def _eval_call(self, expr: ast.Call, frame: Dict[str, int]) -> int:
        if not expr.intrinsic:
            args = [self._eval(arg, frame) for arg in expr.args]
            return self.call(expr.name, args)
        name = expr.name
        if name in ("__load8", "__load16", "__load32"):
            width = {"__load8": 1, "__load16": 2, "__load32": 4}[name]
            return self._read(self._eval(expr.args[0], frame), width)
        if name in ("__store8", "__store16", "__store32"):
            width = {"__store8": 1, "__store16": 2, "__store32": 4}[name]
            addr = self._eval(expr.args[0], frame)
            value = self._eval(expr.args[1], frame)
            self._write(addr, value, width)
            return addr
        if name == "__bug":
            raise InterpTrap("bug")
        if name == "__panic":
            code = self._eval(expr.args[0], frame)
            info = self.image.globals.get("panic_code")
            if info is not None:
                self._write(info.addr, code, 4)
            raise InterpTrap("panic", code)
        if name.startswith("__icall"):
            target = self._eval(expr.args[0], frame)
            fname = self._addr_to_func.get(target)
            if fname is None:
                raise InterpError(
                    f"indirect call to non-function address {target:#x}")
            args = [self._eval(arg, frame) for arg in expr.args[1:]]
            return self.call(fname, args)
        raise InterpError(f"unknown intrinsic {name}")  # pragma: no cover
