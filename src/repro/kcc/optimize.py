"""AST-level optimizations: constant folding and algebraic identities.

GCC 3.2.2 folds constants even at -O0's codegen level; without this
pass every ``i * BLOCK_SZ`` in the kernel DSL would materialize both
operands at run time.  Folding happens *after* semantic analysis (the
tree is annotated) and before code generation; the reference
interpreter runs the same folded tree, so differential tests cover the
pass automatically.

All arithmetic here matches the language semantics: 32-bit unsigned
with wraparound, unsigned division/shift.  Architecture-divergent
cases (shift counts >= 32, division by zero) are left *unfolded* so
run-time semantics stay per-architecture.
"""

from __future__ import annotations

from typing import List, Optional

from repro.kcc import ast

MASK32 = 0xFFFFFFFF


def _fold_binary_consts(op: str, a: int, b: int) -> Optional[int]:
    if op == "+":
        return (a + b) & MASK32
    if op == "-":
        return (a - b) & MASK32
    if op == "*":
        return (a * b) & MASK32
    if op == "/":
        return a // b if b != 0 else None      # keep the runtime trap
    if op == "%":
        return a % b if b != 0 else None
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op in ("<<", ">>"):
        if b >= 32:
            return None                        # arch-divergent
        return ((a << b) & MASK32) if op == "<<" else (a >> b)
    if op == "==":
        return 1 if a == b else 0
    if op == "!=":
        return 1 if a != b else 0
    if op == "<":
        return 1 if a < b else 0
    if op == "<=":
        return 1 if a <= b else 0
    if op == ">":
        return 1 if a > b else 0
    if op == ">=":
        return 1 if a >= b else 0
    return None


def _is_const(expr: ast.Expr, value: Optional[int] = None) -> bool:
    if not isinstance(expr, ast.Num):
        return False
    return value is None or expr.value == value


def fold_expr(expr: ast.Expr) -> ast.Expr:
    """Return a (possibly) folded copy-in-place of *expr*."""
    if isinstance(expr, ast.Unary):
        expr.operand = fold_expr(expr.operand)
        if isinstance(expr.operand, ast.Num):
            value = expr.operand.value
            if expr.op == "-":
                return ast.Num(line=expr.line, value=(-value) & MASK32)
            if expr.op == "~":
                return ast.Num(line=expr.line, value=(~value) & MASK32)
            if expr.op == "!":
                return ast.Num(line=expr.line,
                               value=0 if value else 1)
        return expr
    if isinstance(expr, ast.Binary):
        expr.left = fold_expr(expr.left)
        expr.right = fold_expr(expr.right)
        left, right = expr.left, expr.right
        if isinstance(left, ast.Num) and isinstance(right, ast.Num) \
                and expr.op not in ("&&", "||"):
            folded = _fold_binary_consts(expr.op, left.value,
                                         right.value)
            if folded is not None:
                return ast.Num(line=expr.line, value=folded)
        # algebraic identities (sound for unsigned wraparound)
        if expr.op == "+":
            if _is_const(right, 0):
                return left
            if _is_const(left, 0):
                return right
        elif expr.op == "-" and _is_const(right, 0):
            return left
        elif expr.op == "*":
            if _is_const(right, 1):
                return left
            if _is_const(left, 1):
                return right
        elif expr.op in ("<<", ">>") and _is_const(right, 0):
            return left
        elif expr.op == "|":
            if _is_const(right, 0):
                return left
            if _is_const(left, 0):
                return right
        return expr
    if isinstance(expr, ast.Call):
        expr.args = [fold_expr(arg) for arg in expr.args]
        return expr
    if isinstance(expr, ast.FieldAccess):
        expr.base = fold_expr(expr.base)
        return expr
    if isinstance(expr, ast.Index):
        expr.index = fold_expr(expr.index)
        return expr
    return expr


def _fold_block(body: List[ast.Stmt]) -> List[ast.Stmt]:
    out: List[ast.Stmt] = []
    for stmt in body:
        folded = _fold_stmt(stmt)
        if folded is not None:
            out.append(folded)
    return out


def _fold_stmt(stmt: ast.Stmt) -> Optional[ast.Stmt]:
    if isinstance(stmt, ast.VarDecl):
        if stmt.init is not None:
            stmt.init = fold_expr(stmt.init)
        return stmt
    if isinstance(stmt, ast.Assign):
        stmt.target = fold_expr(stmt.target)
        stmt.value = fold_expr(stmt.value)
        return stmt
    if isinstance(stmt, ast.If):
        stmt.cond = fold_expr(stmt.cond)
        stmt.then_body = _fold_block(stmt.then_body)
        stmt.else_body = _fold_block(stmt.else_body)
        # if (CONST) { ... }: keep only the live branch — but only
        # when the dead branch declares no locals (slot indices are
        # assigned at sema time and must stay stable)
        if isinstance(stmt.cond, ast.Num):
            live = stmt.then_body if stmt.cond.value else stmt.else_body
            dead = stmt.else_body if stmt.cond.value else stmt.then_body
            if not _declares_locals(dead):
                if not live:
                    return None
                block = ast.If(line=stmt.line,
                               cond=ast.Num(line=stmt.line, value=1),
                               then_body=live, else_body=[])
                return block
        return stmt
    if isinstance(stmt, ast.While):
        stmt.cond = fold_expr(stmt.cond)
        stmt.body = _fold_block(stmt.body)
        if isinstance(stmt.cond, ast.Num) and stmt.cond.value == 0 \
                and not _declares_locals(stmt.body):
            return None                          # while (0): dead
        return stmt
    if isinstance(stmt, ast.Return):
        if stmt.value is not None:
            stmt.value = fold_expr(stmt.value)
        return stmt
    if isinstance(stmt, ast.ExprStmt):
        stmt.expr = fold_expr(stmt.expr)
        return stmt
    return stmt


def _declares_locals(body: List[ast.Stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.VarDecl):
            return True
        if isinstance(stmt, ast.If):
            if _declares_locals(stmt.then_body) or \
                    _declares_locals(stmt.else_body):
                return True
        elif isinstance(stmt, ast.While):
            if _declares_locals(stmt.body):
                return True
    return False


def optimize_program(program: ast.Program) -> ast.Program:
    """Fold every function body in place; returns the program."""
    for func in program.functions:
        func.body = _fold_block(func.body)
    return program
