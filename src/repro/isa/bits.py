"""Bit-level helpers shared by both simulated architectures.

All arithmetic in the simulators is performed on Python ints and then
normalized to 32-bit two's-complement values with these helpers.  The
single-bit-flip primitive used by every injector also lives here so that
the fault model has exactly one implementation.
"""

from __future__ import annotations

MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFFFFFF

_WIDTH_MASKS = {1: MASK8, 2: MASK16, 4: MASK32}


def mask_for_width(width: int) -> int:
    """Return the value mask for an access *width* in bytes (1, 2 or 4)."""
    try:
        return _WIDTH_MASKS[width]
    except KeyError:
        raise ValueError(f"unsupported access width: {width}") from None


def bit_flip(value: int, bit: int, width_bits: int = 32) -> int:
    """Flip a single *bit* (0 = least significant) of *value*.

    This is the canonical single-bit transient error model from the
    paper's Section 3.5 (90-99% of device-level transients behave as
    logic-level single-bit errors).
    """
    if not 0 <= bit < width_bits:
        raise ValueError(f"bit {bit} out of range for {width_bits}-bit value")
    return (value ^ (1 << bit)) & ((1 << width_bits) - 1)


def sign_extend(value: int, from_bits: int) -> int:
    """Sign-extend *value* (treated as *from_bits* wide) to 32 bits."""
    value &= (1 << from_bits) - 1
    sign = 1 << (from_bits - 1)
    if value & sign:
        value |= MASK32 ^ ((1 << from_bits) - 1)
    return value & MASK32


def to_signed(value: int, bits: int = 32) -> int:
    """Interpret an unsigned *value* as a two's-complement signed int."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def to_unsigned(value: int, bits: int = 32) -> int:
    """Normalize a possibly-negative Python int to *bits*-wide unsigned."""
    return value & ((1 << bits) - 1)


def rotl32(value: int, amount: int) -> int:
    """Rotate a 32-bit *value* left by *amount* bits."""
    amount &= 31
    value &= MASK32
    return ((value << amount) | (value >> (32 - amount))) & MASK32


def extract_bits(value: int, hi: int, lo: int) -> int:
    """Extract bits *hi*..*lo* (inclusive, LSB-0 numbering) of *value*."""
    if hi < lo:
        raise ValueError(f"invalid bit range {hi}..{lo}")
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


def byte_of(value: int, index: int) -> int:
    """Return byte *index* (0 = least significant) of a 32-bit value."""
    return (value >> (8 * index)) & MASK8
