"""Debug unit: instruction breakpoints and data watchpoints.

The paper's injector uses the CPUs' debugging features (the P4's DR0-DR3
debug address registers, the G4's IABR/DABR) to trigger injections and
to detect error activation.  This module models that hardware with the
two semantics the paper relies on (Section 3.3):

* an **instruction breakpoint** fires when the target address is
  *fetched*, before the instruction executes — so the injector can
  corrupt the instruction bytes just in time;
* a **data watchpoint** fires *after* the target memory is read or
  written — so the injector knows whether the corrupted datum was
  consumed (read: error activated and live) or clobbered (write: error
  overwritten and re-injected).

Slot counts mirror the hardware: four slots on the P4-like core, two on
the G4-like core (one instruction + one data); the injector only ever
needs one of each.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.isa.faults import AccessKind

_ids = itertools.count(1)


@dataclass
class InstructionBreakpoint:
    """Fires on instruction fetch at exactly ``addr``."""

    addr: int
    enabled: bool = True
    one_shot: bool = True
    bp_id: int = field(default_factory=lambda: next(_ids))


@dataclass
class Watchpoint:
    """Fires after a data access overlapping ``[addr, addr+length)``."""

    addr: int
    length: int = 4
    on_read: bool = True
    on_write: bool = True
    enabled: bool = True
    wp_id: int = field(default_factory=lambda: next(_ids))

    def overlaps(self, addr: int, size: int) -> bool:
        return addr < self.addr + self.length and self.addr < addr + size


@dataclass(frozen=True)
class BreakpointHit:
    """Delivered to the debug callback when an instruction BP fires."""

    breakpoint: InstructionBreakpoint
    addr: int
    cycles: int


@dataclass(frozen=True)
class WatchpointHit:
    """Delivered to the debug callback when a watchpoint fires."""

    watchpoint: Watchpoint
    addr: int
    size: int
    kind: AccessKind
    cycles: int


class DebugUnit:
    """Holds breakpoint/watchpoint slots and dispatches hits.

    The CPU cores call :meth:`check_fetch` before executing each
    instruction and :meth:`check_access` after each data access.  Hits
    are delivered to the registered callbacks; the fetch callback runs
    *before* the instruction is decoded so it may rewrite the
    instruction bytes (that is how code injection works).
    """

    def __init__(self, insn_slots: int = 4, data_slots: int = 4) -> None:
        self.insn_slots = insn_slots
        self.data_slots = data_slots
        self._insn_bps: Dict[int, InstructionBreakpoint] = {}
        self._watchpoints: List[Watchpoint] = []
        self.on_breakpoint: Optional[Callable[[BreakpointHit], None]] = None
        self.on_watchpoint: Optional[Callable[[WatchpointHit], None]] = None

    # -- slot management --------------------------------------------------

    def set_instruction_breakpoint(self, addr: int,
                                   one_shot: bool = True
                                   ) -> InstructionBreakpoint:
        if len(self._insn_bps) >= self.insn_slots:
            raise ValueError("no free instruction breakpoint slots")
        breakpoint = InstructionBreakpoint(addr=addr, one_shot=one_shot)
        self._insn_bps[addr] = breakpoint
        return breakpoint

    def clear_instruction_breakpoint(self, breakpoint: InstructionBreakpoint
                                     ) -> None:
        self._insn_bps.pop(breakpoint.addr, None)

    def set_watchpoint(self, addr: int, length: int = 4,
                       on_read: bool = True, on_write: bool = True
                       ) -> Watchpoint:
        if len(self._watchpoints) >= self.data_slots:
            raise ValueError("no free watchpoint slots")
        watchpoint = Watchpoint(addr=addr, length=length,
                                on_read=on_read, on_write=on_write)
        self._watchpoints.append(watchpoint)
        return watchpoint

    def clear_watchpoint(self, watchpoint: Watchpoint) -> None:
        try:
            self._watchpoints.remove(watchpoint)
        except ValueError:
            pass

    def clear_all(self) -> None:
        self._insn_bps.clear()
        self._watchpoints.clear()

    @property
    def has_watchpoints(self) -> bool:
        return bool(self._watchpoints)

    @property
    def has_instruction_breakpoints(self) -> bool:
        return bool(self._insn_bps)

    # -- CPU-facing hooks --------------------------------------------------

    def check_fetch(self, addr: int, cycles: int) -> None:
        """Called by the CPU before executing the instruction at *addr*."""
        breakpoint = self._insn_bps.get(addr)
        if breakpoint is None or not breakpoint.enabled:
            return
        if breakpoint.one_shot:
            del self._insn_bps[addr]
        if self.on_breakpoint is not None:
            self.on_breakpoint(BreakpointHit(breakpoint, addr, cycles))

    def check_access(self, addr: int, size: int, kind: AccessKind,
                     cycles: int) -> None:
        """Called by the CPU after a data read/write completes."""
        for watchpoint in self._watchpoints:
            if not watchpoint.enabled:
                continue
            if not watchpoint.overlaps(addr, size):
                continue
            if kind is AccessKind.READ and not watchpoint.on_read:
                continue
            if kind is AccessKind.WRITE and not watchpoint.on_write:
                continue
            if self.on_watchpoint is not None:
                self.on_watchpoint(
                    WatchpointHit(watchpoint, addr, size, kind, cycles))
