"""Sparse paged physical memory and the permission-checked address space.

The machines in this reproduction use a 32-bit flat address space laid
out like a Linux 2.4 kernel (text, data, per-task kernel stacks).  The
physical memory is a sparse dictionary of 4 KiB pages so that a 4 GiB
address space costs only what is actually touched.

Permissions are enforced by :class:`AddressSpace`: regions carry
read/write/execute rights, and any access outside a mapped region — or
violating the rights — raises a neutral :class:`~repro.isa.faults.MemoryFault`
that the CPU core translates into its architectural exception (page
fault / #GP on the P4-like core; DSI / ISI / bus error on the G4-like
core).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.bits import MASK32
from repro.isa.faults import AccessKind, MemoryFault

PAGE_SIZE = 4096
PAGE_SHIFT = 12


class MemoryError_(Exception):
    """Raised for host-level misuse of the memory model (not a fault)."""


class PhysicalMemory:
    """Byte-addressable sparse memory backed by 4 KiB pages.

    All multi-byte accessors are endianness-explicit because the two
    simulated processors disagree: the P4-like core is little-endian and
    the G4-like core is big-endian.

    :meth:`fork` produces a copy-on-write twin: both memories keep
    references to the same page buffers, and every write path copies a
    shared page lazily before mutating it, so forking is O(1) in pages
    and an injection run only pays for the pages it actually dirties.
    """

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}
        #: page indices whose buffer may be referenced by a relative
        #: (fork parent, fork child, or sibling) — copy before writing
        self._shared: set = set()
        #: pages privatized by copy-on-write (benchmark diagnostics)
        self.cow_page_copies = 0

    # -- forking ---------------------------------------------------------

    def fork(self) -> "PhysicalMemory":
        """Copy-on-write clone: share every page until someone writes.

        Both sides mark all current pages shared; whichever side writes
        a shared page first replaces its own reference with a private
        copy, leaving the other side's view untouched.  A page copied
        out may remain (harmlessly) marked shared on the other side and
        on earlier forks, costing at most one redundant copy there.
        """
        child = PhysicalMemory()
        child._pages = dict(self._pages)
        self._shared.update(self._pages)
        child._shared = set(self._pages)
        return child

    def shared_pages(self) -> int:
        """Pages still marked shared (benchmark diagnostics)."""
        return len(self._shared)

    # -- raw byte access ------------------------------------------------

    def _page(self, page_index: int) -> bytearray:
        """The writable buffer for *page_index* (COW-privatizing)."""
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_index] = page
        elif page_index in self._shared:
            page = bytearray(page)
            self._pages[page_index] = page
            self._shared.discard(page_index)
            self.cow_page_copies += 1
        return page

    def read(self, addr: int, size: int) -> bytes:
        """Read *size* raw bytes starting at *addr* (may span pages)."""
        addr &= MASK32
        out = bytearray(size)
        pos = 0
        while pos < size:
            page_index = (addr + pos) >> PAGE_SHIFT
            offset = (addr + pos) & (PAGE_SIZE - 1)
            chunk = min(size - pos, PAGE_SIZE - offset)
            page = self._pages.get(page_index)
            if page is not None:
                out[pos:pos + chunk] = page[offset:offset + chunk]
            pos += chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write raw *data* starting at *addr* (may span pages)."""
        addr &= MASK32
        pos = 0
        size = len(data)
        while pos < size:
            page_index = (addr + pos) >> PAGE_SHIFT
            offset = (addr + pos) & (PAGE_SIZE - 1)
            chunk = min(size - pos, PAGE_SIZE - offset)
            self._page(page_index)[offset:offset + chunk] = \
                data[pos:pos + chunk]
            pos += chunk

    # -- width accessors -------------------------------------------------

    def read_u8(self, addr: int) -> int:
        page = self._pages.get((addr & MASK32) >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[addr & (PAGE_SIZE - 1)]

    def write_u8(self, addr: int, value: int) -> None:
        self._page((addr & MASK32) >> PAGE_SHIFT)[addr & (PAGE_SIZE - 1)] = \
            value & 0xFF

    def read_u16(self, addr: int, little_endian: bool) -> int:
        addr &= MASK32
        offset = addr & (PAGE_SIZE - 1)
        if offset <= PAGE_SIZE - 2:          # single-page fast path
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                return 0
            if little_endian:
                return page[offset] | (page[offset + 1] << 8)
            return (page[offset] << 8) | page[offset + 1]
        raw = self.read(addr, 2)
        return int.from_bytes(raw, "little" if little_endian else "big")

    def write_u16(self, addr: int, value: int, little_endian: bool) -> None:
        addr &= MASK32
        offset = addr & (PAGE_SIZE - 1)
        if offset <= PAGE_SIZE - 2:
            page = self._page(addr >> PAGE_SHIFT)
            if little_endian:
                page[offset] = value & 0xFF
                page[offset + 1] = (value >> 8) & 0xFF
            else:
                page[offset] = (value >> 8) & 0xFF
                page[offset + 1] = value & 0xFF
            return
        self.write(addr, (value & 0xFFFF).to_bytes(
            2, "little" if little_endian else "big"))

    def read_u32(self, addr: int, little_endian: bool) -> int:
        addr &= MASK32
        offset = addr & (PAGE_SIZE - 1)
        if offset <= PAGE_SIZE - 4:          # single-page fast path
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                return 0
            return int.from_bytes(
                page[offset:offset + 4],
                "little" if little_endian else "big")
        raw = self.read(addr, 4)
        return int.from_bytes(raw, "little" if little_endian else "big")

    def write_u32(self, addr: int, value: int, little_endian: bool) -> None:
        addr &= MASK32
        offset = addr & (PAGE_SIZE - 1)
        if offset <= PAGE_SIZE - 4:
            page = self._page(addr >> PAGE_SHIFT)
            page[offset:offset + 4] = (value & MASK32).to_bytes(
                4, "little" if little_endian else "big")
            return
        self.write(addr, (value & MASK32).to_bytes(
            4, "little" if little_endian else "big"))

    # -- diagnostics -----------------------------------------------------

    def resident_bytes(self) -> int:
        """Bytes of host memory used by touched pages (for tests)."""
        return len(self._pages) * PAGE_SIZE


@dataclass(frozen=True)
class Region:
    """A mapped range of the address space with access rights.

    ``perm`` is a subset of ``"rwx"``.  ``name`` identifies the region in
    crash dumps (e.g. ``"ktext"``, ``"kdata"``, ``"kstack:pid=4"``).
    """

    start: int
    size: int
    perm: str
    name: str

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


_KIND_TO_PERM = {
    AccessKind.READ: "r",
    AccessKind.WRITE: "w",
    AccessKind.FETCH: "x",
}


@dataclass
class AddressSpace:
    """Permission-checked view of a :class:`PhysicalMemory`.

    Regions may be added and removed (task stacks come and go); lookup is
    a binary search over region start addresses.  When ``translation_on``
    is False (e.g. a register error cleared the G4's MSR[DR] bit), every
    kernel-high address loses its mapping and faults with
    ``Reason.NO_TRANSLATION`` — the machine check scenario from the
    paper's Section 5.2.
    """

    memory: PhysicalMemory
    translation_on: bool = True
    translation_base: int = 0x80000000
    _starts: List[int] = field(default_factory=list)
    _regions: List[Region] = field(default_factory=list)
    #: most-recently matched region (accesses are highly local)
    _last: Optional[Region] = field(default=None, repr=False)
    #: bumped on every layout change; external caches of resolved
    #: regions (repro.compile's per-site fast paths) key on it
    _epoch: int = 0

    def map_region(self, region: Region) -> None:
        index = bisect.bisect_left(self._starts, region.start)
        if index < len(self._regions) and \
                self._regions[index].start < region.end and \
                region.start < self._regions[index].end:
            raise MemoryError_(
                f"region {region.name} overlaps {self._regions[index].name}")
        if index > 0 and self._regions[index - 1].end > region.start:
            raise MemoryError_(
                f"region {region.name} overlaps "
                f"{self._regions[index - 1].name}")
        self._starts.insert(index, region.start)
        self._regions.insert(index, region)
        self._last = None
        self._epoch += 1

    def clone_layout(self, source: "AddressSpace") -> None:
        """Adopt *source*'s region table wholesale (fork fast path).

        Equivalent to replaying every ``map_region`` call in order —
        regions are immutable and already validated non-overlapping —
        without re-running the overlap checks.  The lists are copied,
        so later map/unmap calls stay private to each space.
        """
        self._starts = list(source._starts)
        self._regions = list(source._regions)
        self._last = None
        self._epoch += 1

    def unmap_region(self, name: str) -> None:
        for index, region in enumerate(self._regions):
            if region.name == name:
                del self._regions[index]
                del self._starts[index]
                self._last = None
                self._epoch += 1
                return
        raise MemoryError_(f"no region named {name}")

    def find_region(self, addr: int) -> Optional[Region]:
        addr &= MASK32
        index = bisect.bisect_right(self._starts, addr) - 1
        if index >= 0:
            region = self._regions[index]
            if region.contains(addr):
                return region
        return None

    def region_by_name(self, name: str) -> Optional[Region]:
        for region in self._regions:
            if region.name == name:
                return region
        return None

    @property
    def regions(self) -> List[Region]:
        return list(self._regions)

    # -- the permission check used by CPU cores ---------------------------

    def check(self, addr: int, size: int, kind: AccessKind) -> None:
        """Validate an access or raise a :class:`MemoryFault`."""
        addr &= MASK32
        if not self.translation_on and addr >= self.translation_base:
            raise MemoryFault(MemoryFault.Reason.NO_TRANSLATION, addr, kind,
                              "address translation disabled")
        region = self._last
        if region is None or not (region.start <= addr
                                  and addr + size <= region.end):
            region = self.find_region(addr)
            if region is None or addr + size > region.end:
                raise MemoryFault(MemoryFault.Reason.UNMAPPED, addr, kind,
                                  "access to unmapped address")
            self._last = region
        if _KIND_TO_PERM[kind] not in region.perm:
            raise MemoryFault(
                MemoryFault.Reason.PROTECTION, addr, kind,
                f"{kind.value} denied on {region.name} ({region.perm})")
