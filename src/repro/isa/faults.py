"""Hardware fault taxonomy shared by both simulated processors.

A :class:`Fault` is raised (as a Python exception) by a CPU core when an
instruction cannot complete: bad memory access, undefined encoding,
privilege violation, and so on.  The machine layer catches it, charges
the hardware exception-handling cycles (stage 2 of the paper's
cycles-to-crash model, Figure 3) and hands it to the simulated kernel's
software exception-handler model (stage 3).

Architecture-specific fault *vectors* live with their CPUs
(:mod:`repro.x86.exceptions`, :mod:`repro.ppc.exceptions`); this module
only defines the carrier type and the memory-access fault reasons both
share.
"""

from __future__ import annotations

import enum
from typing import Optional


class AccessKind(enum.Enum):
    """What the CPU was doing when a memory fault occurred."""

    READ = "read"
    WRITE = "write"
    FETCH = "fetch"


class Fault(Exception):
    """A hardware exception raised by a CPU core.

    Parameters
    ----------
    vector:
        Architecture-specific vector identifier (a member of the
        architecture's vector enum; stored untyped here to keep this
        module architecture-neutral).
    address:
        The faulting memory address, when one exists.
    detail:
        Free-form human-readable context used in crash dumps.
    """

    def __init__(self, vector: object, address: Optional[int] = None,
                 detail: str = ""):
        self.vector = vector
        self.address = address
        self.detail = detail
        super().__init__(f"{vector}: addr={address!r} {detail}".strip())


class MemoryFault(Fault):
    """A fault produced by the memory/permission layer.

    The address-space layer cannot know the architecture's vector
    numbering, so it raises this neutral fault; each CPU core translates
    it into the proper architectural exception (page fault vs DSI/ISI,
    general protection vs bus error, ...).
    """

    class Reason(enum.Enum):
        UNMAPPED = "unmapped"
        PROTECTION = "protection"
        UNALIGNED = "unaligned"
        NO_TRANSLATION = "no-translation"

    def __init__(self, reason: "MemoryFault.Reason", address: int,
                 kind: AccessKind, detail: str = ""):
        self.reason = reason
        self.kind = kind
        super().__init__(vector=reason, address=address, detail=detail)
