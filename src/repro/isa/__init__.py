"""Shared instruction-set-architecture plumbing.

This package holds everything the two simulated processors (``repro.x86``
and ``repro.ppc``) have in common: bit manipulation helpers, the sparse
physical memory model, the address-space/permission layer, the hardware
fault taxonomy, and the debug unit (instruction breakpoints and data
watchpoints) that the NFTAPE-style injector drives.
"""

from repro.isa.bits import (
    MASK8,
    MASK16,
    MASK32,
    bit_flip,
    sign_extend,
    to_signed,
    to_unsigned,
)
from repro.isa.faults import (
    AccessKind,
    Fault,
    MemoryFault,
)
from repro.isa.memory import AddressSpace, MemoryError_, PhysicalMemory, Region
from repro.isa.debug import (
    BreakpointHit,
    DebugUnit,
    InstructionBreakpoint,
    Watchpoint,
    WatchpointHit,
)

__all__ = [
    "MASK8",
    "MASK16",
    "MASK32",
    "bit_flip",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "AccessKind",
    "Fault",
    "MemoryFault",
    "AddressSpace",
    "MemoryError_",
    "PhysicalMemory",
    "Region",
    "BreakpointHit",
    "DebugUnit",
    "InstructionBreakpoint",
    "Watchpoint",
    "WatchpointHit",
]
