"""Single-injection executor (step 2 of the paper's Figure 2).

Each injection experiment forks a pristine booted machine, installs the
error according to its target class, runs the monitored workload
window, and classifies the outcome:

* **code** — an instruction breakpoint at the target address; when the
  fetch hits, one bit of the instruction's encoding is flipped (the
  error then persists for the rest of the run, paper Section 3.5);
* **stack/data** — at the injection instant the bit is flipped in
  memory and a data watchpoint armed; the first access activates the
  error (a write-first access re-injects the error into the fresh
  value, per Section 3.3);
* **register** — at the injection instant the register is flipped
  through the register-semantics layer (activation cannot be observed,
  as the paper notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.classify import classify_crash
from repro.checkpoint.ladder import Checkpoint
from repro.faults import (
    DEFAULT_MODEL, FaultPlan, flip_mask, get_model, plan_span,
    register_width,
)
from repro.injection.collector import CrashDataCollector
from repro.injection.outcomes import (
    CampaignKind, InjectionResult, Outcome,
)
from repro.injection.targets import CodeTarget, RegisterTarget, StackTarget
from repro.machine.events import HangDetected, KernelCrash
from repro.machine.machine import KSTACK_SIZE, Machine, MachineConfig
from repro.machine.register_semantics import (
    apply_ppc_msr_flip, apply_x86_register_flip,
)
from repro.workload.driver import UnixBenchDriver
from repro.workload.programs import BenchProgram, clone_programs


@dataclass
class RunSpec:
    """Everything one injection run needs."""

    base_machine: Machine
    base_programs: Dict[int, BenchProgram]
    kind: CampaignKind
    target: object
    ops: int
    seed: int
    dump_loss_probability: float = 0.08
    exec_mode: str = "block"
    #: registered fault-model name (:mod:`repro.faults`); the default
    #: reproduces the paper's single-bit single-shot model exactly
    fault_model: str = DEFAULT_MODEL
    #: start from this clean-run snapshot instead of the fork point
    #: (:mod:`repro.checkpoint`); results are bit-identical either way
    #: — the snapshot is just further along the same deterministic
    #: pre-trigger execution
    checkpoint: Optional[Checkpoint] = None


class InjectionRun:
    """Executes one injection experiment to an :class:`InjectionResult`."""

    def __init__(self, spec: RunSpec):
        self.spec = spec
        self.model = get_model(spec.fault_model)
        self.collector = CrashDataCollector()
        config = MachineConfig(
            seed=spec.seed,
            dump_loss_probability=spec.dump_loss_probability,
            exec_mode=spec.exec_mode)
        checkpoint = spec.checkpoint
        if checkpoint is not None:
            # time-travel dispatch: fork the snapshot (applying the
            # per-experiment config exactly as the from-boot fork
            # does) and restore the driver-side state beside it
            self.machine = checkpoint.machine.fork(
                config=config, collector=self.collector.receive)
            # fork() pets the watchdog at fork-time cycles; the clean
            # run's last pet is part of the replayed state (hang
            # detection timestamps feed crash messages)
            self.machine.watchdog._last_pet = checkpoint.last_pet
            programs = clone_programs(checkpoint.programs)
        else:
            self.machine = spec.base_machine.fork(
                config=config, collector=self.collector.receive)
            programs = clone_programs(spec.base_programs)
        self.driver = UnixBenchDriver(
            self.machine, seed=spec.seed, programs=programs)
        if checkpoint is not None:
            self.driver.completed_ops = checkpoint.completed_ops
            self.driver._ops_since_tick = checkpoint.ops_since_tick
            self.driver._rounds = checkpoint.rounds
        self.activated = False
        self.activation_cycles: Optional[int] = None
        self.activation_instret: Optional[int] = None

    # -- installation ---------------------------------------------------------

    def _install(self) -> None:
        kind = self.spec.kind
        if kind is CampaignKind.CODE:
            self._install_code(self.spec.target)
        elif kind in (CampaignKind.STACK, CampaignKind.DATA):
            self._install_memory(self.spec.target)
        else:
            self._install_register(self.spec.target)

    def _memory_region(self, target) -> Tuple[int, int]:
        """Byte range enclosing *target* — the row a burst may span."""
        machine = self.machine
        if isinstance(target, StackTarget):
            base = machine.tasks[target.pid].stack_base
            return (base, base + KSTACK_SIZE)
        image = machine.image
        if image.data_base <= target.addr < image.data_end:
            return (image.data_base, image.data_end)
        heap_end = image.heap_base + len(image.heap_bytes)
        if image.heap_bytes and image.heap_base <= target.addr < heap_end:
            return (image.heap_base, heap_end)
        return (target.addr, target.addr + 1)

    def _arm_retriggers(self, plan: FaultPlan,
                        apply_flips: Callable[[], None],
                        label: str) -> None:
        """Post-trigger arming hook for intermittent models.

        The machine holds one pending action, so the schedule is a
        chain: each firing re-applies the flips and schedules the next
        firing relative to its own retire count.  Scheduling is always
        relative to the fire-time ``instret``, which is identical under
        checkpoint dispatch on or off and in both exec modes.
        """
        if plan.retriggers <= 0:
            return
        machine = self.machine
        remaining = [plan.retriggers]

        def fire() -> None:
            apply_flips()
            remaining[0] -= 1
            if machine.trace is not None:
                machine.trace.on_inject(
                    machine, f"{label} retrigger "
                    f"({remaining[0]} remaining)")
            if remaining[0] > 0:
                machine.schedule_action(
                    machine.cpu.instret + plan.retrigger_period, fire)

        machine.schedule_action(
            machine.cpu.instret + plan.retrigger_period, fire)

    def _install_code(self, target: CodeTarget) -> None:
        machine = self.machine
        debug = machine.cpu.debug
        debug.set_instruction_breakpoint(target.addr)
        plan = self.model.code_plan(target.addr, target.bit,
                                    target.insn_len, self.spec.seed)

        def apply_flips() -> None:
            for addr, bit in plan.flips:
                machine.flip_memory_bit(addr, bit)

        def flip() -> None:
            apply_flips()
            if machine.trace is not None:
                if len(plan.flips) == 1:
                    detail = (f"code bit {target.bit} at "
                              f"{target.addr:#010x} ({target.function})")
                else:
                    detail = (f"code burst x{len(plan.flips)} from bit "
                              f"{target.bit} at {target.addr:#010x} "
                              f"({target.function})")
                machine.trace.on_inject(
                    machine, detail, addr=plan.flips[0][0])
            self._arm_retriggers(plan, apply_flips, "code")

        def on_hit(hit) -> None:
            self.activated = True
            self.activation_cycles = machine.cpu.cycles
            self.activation_instret = machine.cpu.instret
            if machine.trace is not None:
                machine.trace.on_activate(
                    machine, f"breakpoint hit in {target.function}",
                    addr=target.addr)
            if machine.arch == "x86":
                # DR breakpoints report *before* execution: the flipped
                # bytes are what executes right now
                flip()
            else:
                # the G4's IABR reports on instruction *completion*:
                # this execution uses the original bytes, and the
                # corrupted instruction takes effect at the next fetch
                # of that address — often the function's next
                # invocation, which is what stretches G4 code-error
                # latencies (paper Figure 16 C)
                machine.schedule_action(machine.cpu.instret + 1, flip)

        debug.on_breakpoint = on_hit

    def _install_memory(self, target) -> None:
        machine = self.machine
        debug = machine.cpu.debug
        region_lo, region_hi = self._memory_region(target)
        plan = self.model.memory_plan(target.addr, target.bit,
                                      self.spec.seed,
                                      region_lo, region_hi)
        span = plan_span(plan)
        assert span is not None, "memory plan with no flips"

        def apply_flips() -> None:
            for addr, bit in plan.flips:
                machine.flip_memory_bit(addr, bit)

        def on_access(hit) -> None:
            if self.activated:
                return
            self.activated = True
            self.activation_cycles = machine.cpu.cycles
            self.activation_instret = machine.cpu.instret
            if machine.trace is not None:
                machine.trace.on_activate(
                    machine, f"{hit.kind.value} touched the error",
                    addr=target.addr)
            if hit.kind.value == "write":
                # the write clobbered the error: re-inject into the
                # fresh value (paper Section 3.3)
                apply_flips()
            debug.clear_watchpoint(hit.watchpoint)

        def inject() -> None:
            apply_flips()
            if machine.trace is not None:
                if len(plan.flips) == 1:
                    detail = (f"memory bit {target.bit} at "
                              f"{target.addr:#010x}")
                else:
                    detail = (f"memory burst x{len(plan.flips)} from "
                              f"bit {target.bit} at {target.addr:#010x}")
                machine.trace.on_inject(machine, detail,
                                        addr=target.addr)
            debug.set_watchpoint(span[0], length=span[1] - span[0])
            debug.on_watchpoint = on_access
            self._arm_retriggers(plan, apply_flips, "memory")

        machine.schedule_action(target.at_instret, inject)

    def _install_register(self, target: RegisterTarget) -> None:
        machine = self.machine
        cpu = machine.cpu
        # bursts clamp at the architectural width; the clamp never
        # excludes the target's own bit (legacy behavior flipped it
        # unconditionally within the 32-bit value)
        width = max(register_width(machine.arch, target.name),
                    target.bit + 1)
        plan = self.model.register_plan(target.bit, width,
                                        self.spec.seed)
        mask = flip_mask(plan.register_bits)

        def apply_flips() -> None:
            if machine.arch == "x86":
                value = getattr(cpu, target.attr)
                apply_x86_register_flip(
                    machine, target.attr,
                    (value ^ mask) & 0xFFFFFFFF)
            elif target.spr == -1:
                apply_ppc_msr_flip(machine,
                                   (cpu.msr ^ mask) & 0xFFFFFFFF)
            else:
                cpu.set_spr(target.spr,
                            (cpu.get_spr(target.spr) ^ mask)
                            & 0xFFFFFFFF)

        def inject() -> None:
            # activation is not observable for system registers; the
            # paper measures latency from the injection instant
            self.activation_cycles = cpu.cycles
            self.activation_instret = cpu.instret
            if machine.trace is not None:
                if len(plan.register_bits) == 1:
                    detail = (f"register bit {target.bit} in "
                              f"{target.name}")
                else:
                    detail = (f"register burst x{len(plan.register_bits)}"
                              f" from bit {target.bit} in {target.name}")
                machine.trace.on_inject(machine, detail,
                                        reg=target.name)
            apply_flips()
            self._arm_retriggers(plan, apply_flips, "register")

        machine.schedule_action(target.at_instret, inject)

    # -- execution -----------------------------------------------------------

    def execute(self, install: bool = True) -> InjectionResult:
        spec = self.spec
        if install:
            self._install()
        base = dict(arch=self.machine.arch, kind=spec.kind,
                    target=spec.target)
        try:
            result = self.driver.run(spec.ops)
        except KernelCrash as crash:
            report = crash.report
            known = report.dump_delivered and not report.dump_failed
            cause = classify_crash(report)
            activation = self.activation_cycles
            activation_instret = self.activation_instret
            if activation is None:
                activation = report.cycles_at_crash
                activation_instret = report.instret_at_crash
            return InjectionResult(
                outcome=Outcome.CRASH_KNOWN if known
                else Outcome.CRASH_UNKNOWN,
                cause=cause if known else None,
                activation_cycles=activation,
                crash_cycles=report.cycles_at_crash,
                activation_instret=activation_instret,
                crash_instret=report.instret_at_crash,
                detail=report.detail,
                function=report.function,
                subsystem=report.subsystem,
                **base)
        except HangDetected as hang:
            return InjectionResult(
                outcome=Outcome.HANG,
                activation_cycles=self.activation_cycles,
                activation_instret=self.activation_instret,
                detail=str(hang),
                **base)
        if spec.kind is CampaignKind.REGISTER:
            # activation unobservable: completing cleanly means the
            # flip was absorbed
            outcome = Outcome.FAIL_SILENCE_VIOLATION \
                if result.fail_silence_violated else Outcome.NOT_MANIFESTED
        elif not self.activated:
            outcome = Outcome.NOT_ACTIVATED
        elif result.fail_silence_violated:
            outcome = Outcome.FAIL_SILENCE_VIOLATION
        else:
            outcome = Outcome.NOT_MANIFESTED
        return InjectionResult(
            outcome=outcome,
            activation_cycles=self.activation_cycles,
            activation_instret=self.activation_instret,
            detail="; ".join(
                f"{event.program}#{event.op_index}: "
                f"expected {event.expected}, got {event.actual}"
                for event in result.fsv_events[:3]),
            **base)
