"""Single-injection executor (step 2 of the paper's Figure 2).

Each injection experiment forks a pristine booted machine, installs the
error according to its target class, runs the monitored workload
window, and classifies the outcome:

* **code** — an instruction breakpoint at the target address; when the
  fetch hits, one bit of the instruction's encoding is flipped (the
  error then persists for the rest of the run, paper Section 3.5);
* **stack/data** — at the injection instant the bit is flipped in
  memory and a data watchpoint armed; the first access activates the
  error (a write-first access re-injects the error into the fresh
  value, per Section 3.3);
* **register** — at the injection instant the register is flipped
  through the register-semantics layer (activation cannot be observed,
  as the paper notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.classify import classify_crash
from repro.checkpoint.ladder import Checkpoint
from repro.injection.collector import CrashDataCollector
from repro.injection.outcomes import (
    CampaignKind, InjectionResult, Outcome,
)
from repro.injection.targets import CodeTarget, RegisterTarget
from repro.isa.bits import bit_flip
from repro.machine.events import HangDetected, KernelCrash
from repro.machine.machine import Machine, MachineConfig
from repro.machine.register_semantics import (
    apply_ppc_msr_flip, apply_x86_register_flip,
)
from repro.workload.driver import UnixBenchDriver
from repro.workload.programs import BenchProgram, clone_programs


@dataclass
class RunSpec:
    """Everything one injection run needs."""

    base_machine: Machine
    base_programs: Dict[int, BenchProgram]
    kind: CampaignKind
    target: object
    ops: int
    seed: int
    dump_loss_probability: float = 0.08
    exec_mode: str = "block"
    #: start from this clean-run snapshot instead of the fork point
    #: (:mod:`repro.checkpoint`); results are bit-identical either way
    #: — the snapshot is just further along the same deterministic
    #: pre-trigger execution
    checkpoint: Optional[Checkpoint] = None


class InjectionRun:
    """Executes one injection experiment to an :class:`InjectionResult`."""

    def __init__(self, spec: RunSpec):
        self.spec = spec
        self.collector = CrashDataCollector()
        config = MachineConfig(
            seed=spec.seed,
            dump_loss_probability=spec.dump_loss_probability,
            exec_mode=spec.exec_mode)
        checkpoint = spec.checkpoint
        if checkpoint is not None:
            # time-travel dispatch: fork the snapshot (applying the
            # per-experiment config exactly as the from-boot fork
            # does) and restore the driver-side state beside it
            self.machine = checkpoint.machine.fork(
                config=config, collector=self.collector.receive)
            # fork() pets the watchdog at fork-time cycles; the clean
            # run's last pet is part of the replayed state (hang
            # detection timestamps feed crash messages)
            self.machine.watchdog._last_pet = checkpoint.last_pet
            programs = clone_programs(checkpoint.programs)
        else:
            self.machine = spec.base_machine.fork(
                config=config, collector=self.collector.receive)
            programs = clone_programs(spec.base_programs)
        self.driver = UnixBenchDriver(
            self.machine, seed=spec.seed, programs=programs)
        if checkpoint is not None:
            self.driver.completed_ops = checkpoint.completed_ops
            self.driver._ops_since_tick = checkpoint.ops_since_tick
            self.driver._rounds = checkpoint.rounds
        self.activated = False
        self.activation_cycles: Optional[int] = None
        self.activation_instret: Optional[int] = None

    # -- installation ---------------------------------------------------------

    def _install(self) -> None:
        kind = self.spec.kind
        if kind is CampaignKind.CODE:
            self._install_code(self.spec.target)
        elif kind in (CampaignKind.STACK, CampaignKind.DATA):
            self._install_memory(self.spec.target)
        else:
            self._install_register(self.spec.target)

    def _install_code(self, target: CodeTarget) -> None:
        machine = self.machine
        debug = machine.cpu.debug
        debug.set_instruction_breakpoint(target.addr)

        def flip() -> None:
            byte_offset = target.bit // 8
            machine.flip_memory_bit(target.addr + byte_offset,
                                    target.bit % 8)
            if machine.trace is not None:
                machine.trace.on_inject(
                    machine, f"code bit {target.bit} at "
                    f"{target.addr:#010x} ({target.function})",
                    addr=target.addr + byte_offset)

        def on_hit(hit) -> None:
            self.activated = True
            self.activation_cycles = machine.cpu.cycles
            self.activation_instret = machine.cpu.instret
            if machine.trace is not None:
                machine.trace.on_activate(
                    machine, f"breakpoint hit in {target.function}",
                    addr=target.addr)
            if machine.arch == "x86":
                # DR breakpoints report *before* execution: the flipped
                # bytes are what executes right now
                flip()
            else:
                # the G4's IABR reports on instruction *completion*:
                # this execution uses the original bytes, and the
                # corrupted instruction takes effect at the next fetch
                # of that address — often the function's next
                # invocation, which is what stretches G4 code-error
                # latencies (paper Figure 16 C)
                machine.schedule_action(machine.cpu.instret + 1, flip)

        debug.on_breakpoint = on_hit

    def _install_memory(self, target) -> None:
        machine = self.machine
        debug = machine.cpu.debug

        def on_access(hit) -> None:
            if self.activated:
                return
            self.activated = True
            self.activation_cycles = machine.cpu.cycles
            self.activation_instret = machine.cpu.instret
            if machine.trace is not None:
                machine.trace.on_activate(
                    machine, f"{hit.kind.value} touched the error",
                    addr=target.addr)
            if hit.kind.value == "write":
                # the write clobbered the error: re-inject into the
                # fresh value (paper Section 3.3)
                machine.flip_memory_bit(target.addr, target.bit)
            debug.clear_watchpoint(hit.watchpoint)

        def inject() -> None:
            machine.flip_memory_bit(target.addr, target.bit)
            if machine.trace is not None:
                machine.trace.on_inject(
                    machine, f"memory bit {target.bit} at "
                    f"{target.addr:#010x}", addr=target.addr)
            debug.set_watchpoint(target.addr, length=1)
            debug.on_watchpoint = on_access

        machine.schedule_action(target.at_instret, inject)

    def _install_register(self, target: RegisterTarget) -> None:
        machine = self.machine
        cpu = machine.cpu

        def inject() -> None:
            # activation is not observable for system registers; the
            # paper measures latency from the injection instant
            self.activation_cycles = cpu.cycles
            self.activation_instret = cpu.instret
            if machine.trace is not None:
                machine.trace.on_inject(
                    machine, f"register bit {target.bit} in "
                    f"{target.name}", reg=target.name)
            if machine.arch == "x86":
                value = getattr(cpu, target.attr)
                apply_x86_register_flip(
                    machine, target.attr, bit_flip(value, target.bit))
            elif target.spr == -1:
                apply_ppc_msr_flip(machine,
                                   bit_flip(cpu.msr, target.bit))
            else:
                cpu.set_spr(target.spr,
                            bit_flip(cpu.get_spr(target.spr),
                                     target.bit))

        machine.schedule_action(target.at_instret, inject)

    # -- execution -----------------------------------------------------------

    def execute(self, install: bool = True) -> InjectionResult:
        spec = self.spec
        if install:
            self._install()
        base = dict(arch=self.machine.arch, kind=spec.kind,
                    target=spec.target)
        try:
            result = self.driver.run(spec.ops)
        except KernelCrash as crash:
            report = crash.report
            known = report.dump_delivered and not report.dump_failed
            cause = classify_crash(report)
            activation = self.activation_cycles
            activation_instret = self.activation_instret
            if activation is None:
                activation = report.cycles_at_crash
                activation_instret = report.instret_at_crash
            return InjectionResult(
                outcome=Outcome.CRASH_KNOWN if known
                else Outcome.CRASH_UNKNOWN,
                cause=cause if known else None,
                activation_cycles=activation,
                crash_cycles=report.cycles_at_crash,
                activation_instret=activation_instret,
                crash_instret=report.instret_at_crash,
                detail=report.detail,
                function=report.function,
                subsystem=report.subsystem,
                **base)
        except HangDetected as hang:
            return InjectionResult(
                outcome=Outcome.HANG,
                activation_cycles=self.activation_cycles,
                activation_instret=self.activation_instret,
                detail=str(hang),
                **base)
        if spec.kind is CampaignKind.REGISTER:
            # activation unobservable: completing cleanly means the
            # flip was absorbed
            outcome = Outcome.FAIL_SILENCE_VIOLATION \
                if result.fail_silence_violated else Outcome.NOT_MANIFESTED
        elif not self.activated:
            outcome = Outcome.NOT_ACTIVATED
        elif result.fail_silence_violated:
            outcome = Outcome.FAIL_SILENCE_VIOLATION
        else:
            outcome = Outcome.NOT_MANIFESTED
        return InjectionResult(
            outcome=outcome,
            activation_cycles=self.activation_cycles,
            activation_instret=self.activation_instret,
            detail="; ".join(
                f"{event.program}#{event.op_index}: "
                f"expected {event.expected}, got {event.actual}"
                for event in result.fsv_events[:3]),
            **base)
