"""Parallel sharded campaign engine (NFTAPE's multiple target nodes).

Every injection experiment forks an independent machine from the shared
:class:`~repro.injection.campaign.CampaignContext`, so a campaign is
embarrassingly parallel.  This module shards a campaign's pre-generated
target list across ``multiprocessing`` worker processes and merges the
shard results back into one :class:`CampaignResult`, under a strict
**serial-equivalence contract**:

* targets are pre-generated **once, in the parent** — the target list
  is exactly the serial path's list;
* each target travels with its **global** index, and the per-experiment
  seed stays ``config.seed + global_index * 7919`` — identical to the
  serial derivation, regardless of which shard runs it;
* every worker rebuilds its own ``CampaignContext`` from
  ``(arch, seed, ops)`` on startup (machines don't pickle; context
  construction is deterministic, so the rebuilt context is equivalent
  to the parent's), after clearing the process-global context cache;
* merged results are ordered by global index, so the result sequence is
  bit-identical to ``workers=1``.

Graceful degradation: a shard whose worker raises (or whose process
dies, breaking the pool) is retried **once, serially, in the parent**;
the failure is recorded as a :class:`ShardFailure` on
``CampaignResult.failures`` rather than silently dropped.

:func:`run_items` is the core engine: it takes an explicit
``(global_index, target)`` list — not necessarily contiguous — so the
result store (:mod:`repro.store.resume`) can hand it only the pending
slice of a resumed campaign, and an optional *sink* called in the
parent before each progress tick, which is where the write-ahead
journal attaches.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.injection.campaign import Campaign, CampaignContext, CampaignResult
from repro.injection.outcomes import InjectionResult

#: shards per worker — finer than 1:1 so a fast worker steals work from
#: a slow one and the progress callback ticks at sub-worker granularity
SHARDS_PER_WORKER = 4


@dataclass(frozen=True)
class ShardFailure:
    """One worker-side shard failure and how it was handled."""

    shard: int                 # shard index
    error: str                 # "ExceptionType: message" from the worker
    recovered: bool            # True when the serial retry succeeded


def shard_targets(count: int, workers: int
                  ) -> List[Tuple[int, int]]:
    """Split ``range(count)`` into contiguous ``(start, stop)`` shards.

    At most ``workers * SHARDS_PER_WORKER`` shards, never empty ones;
    the concatenation of all shards is exactly ``range(count)`` in
    order, so global indices survive sharding untouched.
    """
    if count <= 0:
        return []
    n_shards = min(count, max(1, workers) * SHARDS_PER_WORKER)
    base, extra = divmod(count, n_shards)
    shards: List[Tuple[int, int]] = []
    start = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        shards.append((start, start + size))
        start += size
    return shards


# -- worker side -------------------------------------------------------------

#: per-worker-process state, set once by the pool initializer
_WORKER_CONTEXT: Dict[str, Optional[CampaignContext]] = {"context": None}


def _worker_init(arch: str, seed: int, ops: int) -> None:
    """Set up this worker's context (runs once per worker process).

    With the ``fork`` start method the parent's context cache arrives
    in the child through the OS-level fork, so the worker reuses the
    already-built context for ``(arch, seed, ops)`` — no re-boot, no
    re-probe; every injection then COW-forks from that one base
    machine.  Context construction is deterministic, so the reused
    context is bit-equivalent to a rebuilt one.  Under ``spawn`` (or
    when the key is absent) the worker rebuilds from scratch exactly
    as before.
    """
    context = CampaignContext._cache.get((arch, seed, ops))
    if context is None:
        CampaignContext.clear_cache()
        context = CampaignContext.get(arch, seed, ops)
    _WORKER_CONTEXT["context"] = context


def _run_shard(payload):
    """Execute one shard; never raises (errors travel in the return).

    *payload* is ``(shard_index, config, items, fail)`` where *items*
    is a list of ``(global_index, target)`` pairs and *fail* is a test
    hook that simulates a worker dying mid-shard.
    """
    shard_index, config, items, fail = payload
    try:
        if fail:
            raise RuntimeError(
                f"injected worker failure in shard {shard_index}")
        campaign = Campaign(config, _WORKER_CONTEXT["context"])
        results = [(index, campaign.run_target(index, target))
                   for index, target in items]
        return shard_index, results, None
    except Exception as exc:               # noqa: BLE001 — reported to parent
        return shard_index, None, f"{type(exc).__name__}: {exc}"


# -- parent side -------------------------------------------------------------

def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def run_items(campaign: Campaign, items: Sequence[Tuple[int, object]],
              workers: int, progress=None,
              fail_shards: Optional[Sequence[int]] = None,
              sink=None, done_base: int = 0,
              total: Optional[int] = None,
              progress_callback=None
              ) -> Tuple[List[Tuple[int, InjectionResult]],
                         List[ShardFailure]]:
    """Run ``(global_index, target)`` *items* across *workers*.

    The core of the parallel engine, factored so the result store can
    hand it only the *pending* slice of a resumed campaign: *items*
    need not be contiguous — each carries its global index, and the
    per-experiment seed derivation is untouched.

    *sink*, when given, is called as ``sink(index, result)`` **in the
    parent, in shard-completion order, before the progress callback**
    — the write-ahead hook the journal attaches to.  *progress* is
    reported as ``done_base`` plus completed items, out of *total*
    (default ``done_base + len(items)``).  *progress_callback* is the
    batch form, ``(done, total, batch)`` with *batch* the just-merged
    shard's ``(global_index, result)`` pairs in index order, called
    after the sink; raising from it aborts the run at the next shard
    boundary (queued shards are cancelled, running ones drain).

    Returns ``(merged, failures)`` with *merged* sorted by global
    index and verified complete against *items*.
    """
    if total is None:
        total = done_base + len(items)
    merged: List[Tuple[int, InjectionResult]] = []
    failures: List[ShardFailure] = []
    if not items:
        return merged, failures

    config = campaign.config
    if config.checkpoints > 0:
        # build the ladder once in the parent, *before* the pool
        # forks: the snapshots ride into every worker through the same
        # OS-fork inheritance as the rest of the context, so no worker
        # repays the capture run (see test_checkpoint's regression)
        campaign.context.ladder(config.checkpoints)
    fail_set = set(fail_shards or ())
    payloads = []
    for shard_index, (start, stop) in enumerate(
            shard_targets(len(items), workers)):
        payloads.append((shard_index, config, list(items[start:stop]),
                         shard_index in fail_set))
    workers = min(workers, len(payloads))

    done = done_base

    def shard_finished(shard_results) -> None:
        nonlocal done
        if sink is not None:
            for index, result in shard_results:
                sink(index, result)
        merged.extend(shard_results)
        done += len(shard_results)
        if progress_callback is not None:
            progress_callback(done, total,
                              sorted(shard_results,
                                     key=lambda pair: pair[0]))
        if progress is not None:
            progress(done, total)

    pool = ProcessPoolExecutor(
        max_workers=workers, mp_context=_mp_context(),
        initializer=_worker_init,
        initargs=(config.arch, config.seed, config.ops))
    try:
        futures = {pool.submit(_run_shard, payload): payload
                   for payload in payloads}
        for future in as_completed(futures):
            payload = futures[future]
            try:
                shard_index, results, error = future.result()
            except Exception as exc:       # worker process died
                shard_index = payload[0]
                results, error = None, f"{type(exc).__name__}: {exc}"
            if error is not None:
                # degrade gracefully: retry the shard once, serially,
                # in the parent (which holds an equivalent context)
                shard_items = payload[2]
                results = [(index, campaign.run_target(index, target))
                           for index, target in shard_items]
                failures.append(ShardFailure(
                    shard=shard_index, error=error, recovered=True))
            shard_finished(results)
    except BaseException:
        # a sink or progress callback aborted the run (e.g. the
        # campaign service cancelling a job): drop the queued shards
        # so worker slots free at the next shard boundary instead of
        # after the whole campaign has drained
        pool.shutdown(wait=True, cancel_futures=True)
        raise
    pool.shutdown(wait=True)

    merged.sort(key=lambda pair: pair[0])
    expected = sorted(index for index, _target in items)
    if [index for index, _result in merged] != expected:
        raise RuntimeError("parallel merge lost targets: got "
                           f"{len(merged)} of {len(items)}")
    return merged, failures


def run_parallel(campaign: Campaign, workers: int, progress=None,
                 fail_shards: Optional[Sequence[int]] = None,
                 progress_callback=None) -> CampaignResult:
    """Run *campaign* across *workers* processes.

    Bit-identical to ``campaign.run()``; see the module docstring for
    the contract.  *progress* is the same ``(done, total)`` callback
    the serial loop takes, called once per completed shard;
    *progress_callback* is the batch form (see :func:`run_items`).
    *fail_shards* injects worker-side failures for the degradation
    tests.
    """
    campaign.context.collector.clear()
    targets = campaign.generate_targets()
    out = CampaignResult(config=campaign.config)
    merged, failures = run_items(
        campaign, list(enumerate(targets)), workers,
        progress=progress, fail_shards=fail_shards,
        progress_callback=progress_callback)
    out.failures.extend(failures)
    out.results.extend(result for _index, result in merged)
    return out
