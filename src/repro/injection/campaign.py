"""Campaign controller (step 3 of the paper's Figure 2, plus the loop).

A campaign pre-generates its targets, screens the ones the clean-run
probe proves can never activate (no reboot needed for those — exactly
the paper's "Error Not Activated: proceed to the next injection without
rebooting"), and fully simulates the rest, rebooting (forking a fresh
machine) between experiments.

``Campaign.run(workers=N)`` shards the pre-generated target list across
worker processes (see :mod:`repro.injection.parallel`) — NFTAPE's
multiple-target-node trick.  The parallel path is bit-identical to the
serial one: per-target seeds derive from the *global* target index.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkpoint.ladder import (
    DEFAULT_CHECKPOINTS, CheckpointLadder, build_ladder,
)
from repro.faults import DEFAULT_MODEL, FaultModelError, get_model
from repro.injection.collector import CrashDataCollector
from repro.injection.injector import InjectionRun, RunSpec
from repro.injection.outcomes import (
    CampaignKind, InjectionResult, Outcome,
)
from repro.injection.targets import TargetGenerator
from repro.machine.machine import KSTACK_SIZE, Machine, MachineConfig
from repro.workload.driver import UnixBenchDriver
from repro.workload.probe import CleanRunProbe, probe_clean_run
from repro.workload.profiler import FunctionProfile, profile_kernel

logger = logging.getLogger(__name__)

#: valid ``CampaignConfig.prune`` policies
PRUNE_POLICIES = ("none", "dead", "taint")


@dataclass
class CampaignConfig:
    arch: str                            # "x86" | "ppc"
    kind: CampaignKind
    count: int                           # number of injections
    seed: int = 0
    ops: int = 48                        # monitored workload window
    dump_loss_probability: float = 0.08
    profile_coverage: float = 0.95
    #: "none"; "dead" to redraw code targets landing on bits the
    #: static analyzer proves inert (decode-identical flips and
    #: unreachable code); or "taint" to additionally redraw bits the
    #: taint engine proves masked (the corruption dies on every
    #: static path before reaching a sink); code campaigns only
    prune: str = "none"
    #: execution core for every experiment machine ("block" | "step");
    #: bit-identical results either way, "block" is just faster
    exec_mode: str = "block"
    #: clean-run snapshots to dispatch experiments from (0 disables);
    #: like ``exec_mode``, a pure performance knob — bit-identical
    #: results either way, excluded from campaign identity
    checkpoints: int = DEFAULT_CHECKPOINTS
    #: registered fault-model name (:mod:`repro.faults`); part of
    #: campaign identity — two campaigns differing only here are
    #: different experiments
    fault_model: str = DEFAULT_MODEL

    def __post_init__(self):
        try:
            model = get_model(self.fault_model)
        except FaultModelError as exc:
            raise ValueError(str(exc)) from None
        if not model.applies_to(self.kind.value):
            raise ValueError(
                f"fault model {self.fault_model!r} does not apply to "
                f"{self.kind.value} campaigns")
        if self.exec_mode not in ("step", "block"):
            raise ValueError(
                f"exec_mode must be 'step' or 'block', "
                f"got {self.exec_mode!r}")
        if not isinstance(self.checkpoints, int) or \
                isinstance(self.checkpoints, bool) or \
                self.checkpoints < 0:
            raise ValueError(
                f"checkpoints must be a non-negative integer, "
                f"got {self.checkpoints!r}")
        if self.prune not in PRUNE_POLICIES:
            raise ValueError(f"unknown prune policy {self.prune!r}; "
                             f"expected one of {PRUNE_POLICIES}")
        if self.prune != "none" and self.kind is not CampaignKind.CODE:
            raise ValueError(
                f"prune={self.prune!r} only applies to code "
                f"campaigns, not {self.kind.value}")


@dataclass
class CampaignResult:
    config: CampaignConfig
    results: List[InjectionResult] = field(default_factory=list)
    #: ShardFailure records from the parallel engine (empty on the
    #: serial path; a recovered failure means its shard was retried
    #: serially and its results are present in ``results`` as usual)
    failures: list = field(default_factory=list)
    #: draws rejected during target generation by the prune policy
    pruned_draws: int = 0
    #: True when a requested prune policy was conservatively escaped
    #: because the fault model's multiplicity makes its single-bit
    #: inertness proofs unsound (the campaign ran unpruned)
    prune_escaped: bool = False

    @property
    def injected(self) -> int:
        return len(self.results)

    def count_outcome(self, outcome: Outcome) -> int:
        return sum(1 for result in self.results
                   if result.outcome is outcome)

    @property
    def activated(self) -> int:
        return sum(1 for result in self.results
                   if result.outcome is not Outcome.NOT_ACTIVATED)


class CampaignContext:
    """Shared per-(arch, seed, ops) expensive state.

    One boot + workload setup, one clean-run probe, one kernel profile —
    then every injection forks from the prepared machine.
    """

    _cache: Dict[tuple, "CampaignContext"] = {}

    def __init__(self, arch: str, seed: int, ops: int):
        self.arch = arch
        self.seed = seed
        self.ops = ops
        self.base_machine = Machine(
            arch, config=MachineConfig(seed=seed))
        self.base_machine.boot()
        base_driver = UnixBenchDriver(self.base_machine, seed=seed)
        base_driver.setup()
        self.base_programs = base_driver.programs
        #: campaign-level crash-record aggregate; every run folds its
        #: per-experiment collector in here, and ``Campaign.run``
        #: clears it so records never leak between campaigns sharing
        #: a cached context (e.g. consecutive ``Study.run`` campaigns)
        self.collector = CrashDataCollector()
        self.probe: CleanRunProbe = probe_clean_run(arch, seed=seed,
                                                    ops=ops)
        self.profile: FunctionProfile = profile_kernel(arch, seed=seed,
                                                       ops=ops)
        #: checkpoint ladders by rung count, built lazily (one extra
        #: clean run each) and shared by every campaign on this context
        self._ladders: Dict[int, CheckpointLadder] = {}
        if self.base_machine.cpu.instret != self.probe.boot_instret:
            raise RuntimeError(
                "clean-run probe diverged from the base machine: "
                f"{self.base_machine.cpu.instret} != "
                f"{self.probe.boot_instret}")

    @classmethod
    def get(cls, arch: str, seed: int = 0, ops: int = 48
            ) -> "CampaignContext":
        key = (arch, seed, ops)
        if key not in cls._cache:
            cls._cache[key] = cls(arch, seed, ops)
        return cls._cache[key]

    @classmethod
    def clear_cache(cls) -> None:
        """Drop every cached context.

        The cache is process-global and never invalidated on its own;
        worker processes call this on startup so a forked child always
        rebuilds from ``(arch, seed, ops)``, and the test suite calls
        it so session fixtures can't leak between parametrized arches.
        """
        cls._cache.clear()

    def ladder(self, count: int) -> Optional[CheckpointLadder]:
        """The *count*-rung checkpoint ladder (built on first use).

        The parallel engine calls this in the parent before spawning
        workers, so the snapshots travel to every worker through the
        same fork-inheritance path as the rest of the context.
        """
        if count <= 0:
            return None
        if count not in self._ladders:
            self._ladders[count] = build_ladder(self, count)
        return self._ladders[count]

    @property
    def run_window(self) -> tuple:
        return (self.probe.boot_instret, self.probe.total_instret)


class Campaign:
    """One injection campaign (one row of Table 5 / Table 6)."""

    def __init__(self, config: CampaignConfig,
                 context: Optional[CampaignContext] = None):
        self.config = config
        self.context = context if context is not None else \
            CampaignContext.get(config.arch, config.seed, config.ops)
        #: draws the prune policy rejected in the last
        #: ``generate_targets`` call (0 when prune is "none")
        self.pruned_draws = 0
        #: True when the last ``generate_targets`` call conservatively
        #: escaped the prune policy (multiplicity > 1 fault model)
        self.prune_escaped = False

    # -- target generation -----------------------------------------------------

    def generate_targets(self) -> list:
        context = self.context
        generator = TargetGenerator(context.base_machine.image,
                                    profile=context.profile,
                                    seed=self.config.seed ^ 0xBADC0DE)
        window = context.run_window
        kind = self.config.kind
        model = get_model(self.config.fault_model)
        if kind is CampaignKind.CODE:
            prune_bits = None
            self.prune_escaped = False
            if self.config.prune != "none" and \
                    model.spec.multiplicity > 1:
                # soundness gate: the static analyzer's inertness
                # proofs are per-bit (decode-identical / masked-flow
                # for ONE flipped bit) and do not compose — a pair of
                # individually-inert flips can decode to a different
                # instruction.  Escape loudly rather than prune
                # unsoundly.
                self.prune_escaped = True
                logger.warning(
                    "prune=%s escaped: fault model %r flips up to %d "
                    "bits per experiment and single-bit inertness "
                    "proofs do not compose; campaign runs unpruned",
                    self.config.prune, self.config.fault_model,
                    model.spec.multiplicity)
            elif self.config.prune == "dead":
                from repro.static.predictor import dead_code_bits
                prune_bits = dead_code_bits(self.config.arch)
            elif self.config.prune == "taint":
                from repro.static.predictor import taint_masked_bits
                prune_bits = taint_masked_bits(self.config.arch)
            targets = generator.code_targets(self.config.count,
                                             prune_bits=prune_bits)
            self.pruned_draws = generator.pruned_draws
            if prune_bits is not None:
                logger.info(
                    "prune=%s (%s): %d prunable bits; %d draw(s) "
                    "rejected and redrawn", self.config.prune,
                    self.config.arch, len(prune_bits),
                    self.pruned_draws)
            return targets
        if kind is CampaignKind.STACK:
            machine = context.base_machine
            allocations = {pid: (task.stack_base,
                                 task.stack_base + KSTACK_SIZE)
                           for pid, task in machine.tasks.items()}
            # the paper injects into the stack of a randomly chosen
            # kernel process: sample the measured *runtime* stack
            ranges = context.probe.stack_runtime_ranges(allocations)
            return generator.stack_targets(self.config.count,
                                           list(machine.tasks),
                                           ranges, window)
        if kind is CampaignKind.DATA:
            pool = None
            if model.spec.targeted:
                pool = model.target_pool(context.base_machine.image)
            return generator.data_targets(self.config.count, window,
                                          pool=pool)
        return generator.register_targets(self.config.count,
                                          self.config.arch, window)

    # -- screening ---------------------------------------------------------------

    def _screen_not_activated(self, target, index: int = 0) -> bool:
        """True when the clean-run probe proves no activation.

        *index* is the target's global position — multi-bit models
        need it because the watchpoint span (and therefore the byte
        range the screen must vouch for) derives from the
        per-experiment seed.  Single-bit models ignore it.
        """
        probe = self.context.probe
        kind = self.config.kind
        if kind is CampaignKind.CODE:
            # window-only: an address fetched during boot but never by
            # the monitored workload cannot trip a breakpoint armed
            # after the fork point (the injected run starts post-boot)
            return probe.first_executed_instret(target.addr) is None
        if kind in (CampaignKind.STACK, CampaignKind.DATA):
            model = get_model(self.config.fault_model)
            length = model.screen_span_bytes(
                target.bit, self.config.seed + index * 7919)
            return probe.first_access_after(target.at_instret,
                                            target.addr,
                                            length=length) is None
        return False                      # registers: no screening

    # -- checkpoint selection ----------------------------------------------------

    def _trigger_instret(self, target):
        """(trigger instret, inclusive) for checkpoint selection.

        Stack/data/register triggers are the generated injection
        instant; a checkpoint must lie strictly below it (the pending
        action can fire mid-call before a boundary at the same count).
        Code triggers are the probe's first window fetch of the target
        address; a boundary observing that instret still precedes the
        fetch, so equality is admissible.  ``(None, False)`` means no
        checkpoint applies (e.g. a screened code address).
        """
        if self.config.kind is CampaignKind.CODE:
            return (self.context.probe.first_executed_instret(
                target.addr), True)
        return (target.at_instret, False)

    # -- the loop -----------------------------------------------------------------

    def spec_for(self, index: int, target) -> RunSpec:
        """Build the :class:`RunSpec` for one pre-generated target.

        The per-experiment seed derives from the target's **global**
        index (``seed + index * 7919``); this is the single place that
        derivation lives, so the serial loop, any sharding, and trace
        replay (:mod:`repro.trace.replay`) all agree on it.

        Checkpoint selection also lives here: with ``checkpoints > 0``
        the spec carries the latest clean-run snapshot at or before
        the target's trigger instant, and the injector fast-forwards
        only the residue (bit-identical, see :mod:`repro.checkpoint`).
        """
        config = self.config
        checkpoint = None
        if config.checkpoints > 0:
            trigger, inclusive = self._trigger_instret(target)
            if trigger is not None:
                checkpoint = self.context.ladder(
                    config.checkpoints).best_for(trigger,
                                                 inclusive=inclusive)
        return RunSpec(
            base_machine=self.context.base_machine,
            base_programs=self.context.base_programs,
            kind=config.kind,
            target=target,
            ops=config.ops,
            seed=config.seed + index * 7919,
            dump_loss_probability=config.dump_loss_probability,
            exec_mode=config.exec_mode,
            fault_model=config.fault_model,
            checkpoint=checkpoint)

    def run_target(self, index: int, target) -> InjectionResult:
        """Run one pre-generated target.

        *index* is the target's **global** position in the campaign's
        pre-generated list: the per-experiment seed derives from it, so
        any execution order (serial loop, any sharding) produces the
        same result for the same target.
        """
        config = self.config
        if self._screen_not_activated(target, index):
            return InjectionResult(
                arch=config.arch, kind=config.kind, target=target,
                outcome=Outcome.NOT_ACTIVATED, screened=True)
        run = InjectionRun(self.spec_for(index, target))
        result = run.execute()
        self.context.collector.absorb(run.collector)
        return result

    def run(self, progress=None, workers: int = 1, store=None,
            resume: bool = False,
            progress_callback=None) -> CampaignResult:
        """Run the campaign.

        With *store* (a :class:`repro.store.CampaignStore` or a
        directory path) every result is journaled as it completes and
        already-journaled global indices are skipped — a killed run
        resumes bit-identically, and a raised ``count`` tops the
        stored campaign up.  *resume* must be set to continue a
        campaign that already has journaled results.

        *progress* is the legacy ``(done, total)`` tick.
        *progress_callback* is the batch form ``(done, total, batch)``
        where *batch* is the list of ``(global_index, result)`` pairs
        merged since the previous call — one pair per call on the
        serial path, one shard per call on the parallel path, and the
        already-journaled prefix as the first batch on a resume.  On
        store-backed runs every batch is journaled **before** the
        callback sees it, so a callback that raises (e.g. a service
        cancelling the job) aborts the run without losing work.
        """
        self.context.collector.clear()   # per-campaign reset
        if store is not None:
            from repro.store.resume import run_with_store
            out = run_with_store(self, store, resume=resume,
                                 progress=progress, workers=workers,
                                 progress_callback=progress_callback)
        elif workers > 1:
            from repro.injection.parallel import run_parallel
            out = run_parallel(self, workers, progress=progress,
                               progress_callback=progress_callback)
        else:
            out = CampaignResult(config=self.config)
            targets = self.generate_targets()
            for index, target in enumerate(targets):
                result = self.run_target(index, target)
                out.results.append(result)
                if progress_callback is not None:
                    progress_callback(index + 1, len(targets),
                                      [(index, result)])
                if progress is not None:
                    progress(index + 1, len(targets))
        # every path above calls generate_targets on this instance
        out.pruned_draws = self.pruned_draws
        out.prune_escaped = self.prune_escaped
        return out


def run_campaign(arch: str, kind: CampaignKind, count: int,
                 seed: int = 0, ops: int = 48,
                 workers: int = 1, store=None, resume: bool = False,
                 progress=None, prune: str = "none",
                 exec_mode: str = "block",
                 checkpoints: int = DEFAULT_CHECKPOINTS,
                 fault_model: str = DEFAULT_MODEL,
                 progress_callback=None) -> CampaignResult:
    """One-call convenience wrapper."""
    config = CampaignConfig(arch=arch, kind=kind, count=count, seed=seed,
                            ops=ops, prune=prune, exec_mode=exec_mode,
                            checkpoints=checkpoints,
                            fault_model=fault_model)
    return Campaign(config).run(workers=workers, store=store,
                                resume=resume, progress=progress,
                                progress_callback=progress_callback)
