"""Remote crash-data collector (control-host side).

Receives the crash packets the kernel-embedded handler ships over the
best-effort channel, decodes them, and keeps the records the off-line
crash-cause analysis consumes.  Packets that never arrive are exactly
the paper's unknown crashes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.machine.nic import Packet, decode_crash_packet


@dataclass
class CrashRecord:
    seq: int
    arch: str
    vector: int
    pc: int
    address: int
    cycles: int
    frame_pointers: List[int]
    detail: str


class CrashDataCollector:
    """The paper's remote crash data collector."""

    def __init__(self) -> None:
        self.records: List[CrashRecord] = []
        self._seen: Dict[int, int] = {}
        self.malformed = 0

    def receive(self, packet: Packet) -> None:
        """NIC delivery callback."""
        try:
            decoded = decode_crash_packet(packet.payload)
        except (ValueError, struct.error):
            self.malformed += 1
            return
        record = CrashRecord(
            seq=packet.seq,
            arch=decoded["arch"],
            vector=decoded["vector"],
            pc=decoded["pc"],
            address=decoded["address"],
            cycles=decoded["cycles"],
            frame_pointers=decoded["frame_pointers"],
            detail=decoded["detail"],
        )
        # dedup retransmissions by sequence number
        if packet.seq in self._seen:
            return
        self._seen[packet.seq] = len(self.records)
        self.records.append(record)

    @property
    def count(self) -> int:
        return len(self.records)

    def last(self) -> Optional[CrashRecord]:
        return self.records[-1] if self.records else None

    def absorb(self, other: "CrashDataCollector") -> None:
        """Fold another collector's decoded records into this one.

        Campaign-level aggregation: per-run collectors dedup by packet
        sequence number, but sequence numbers restart with every
        forked machine, so aggregation copies the already-deduped
        records instead of replaying packets (which would wrongly
        collapse records from different experiments).
        """
        self.records.extend(other.records)
        self.malformed += other.malformed

    def clear(self) -> None:
        self.records.clear()
        self._seen.clear()
        self.malformed = 0
