"""Injection target generation (step 1 of the paper's Figure 2).

Targets are pre-generated before the campaign starts, exactly as in the
paper — which is why the activation rate is below 100%: some
pre-generated errors are never injected/activated because the
corresponding breakpoint or location is never reached.

* **code** — an instruction inside a hot kernel function (selected by
  the profiler's >=95%-coverage list, weighted by measured usage), plus
  a bit position within that instruction's encoding;
* **stack** — a random byte *anywhere in the allocated 8 KiB kernel
  stack* of a randomly chosen kernel process, plus a bit and an
  injection instant;
* **data** — a random location in the kernel data section (initialized
  and uninitialized), plus a bit and an injection instant;
* **register** — a uniformly chosen register from the architecture's
  system-register catalogue, plus a bit within its width.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import AbstractSet, List, Optional, Sequence, Tuple

from repro.kcc.linker import KernelImage
from repro.ppc.registers import G4_SUPERVISOR_REGISTERS
from repro.workload.profiler import FunctionProfile
from repro.x86.registers import P4_SYSTEM_REGISTERS


@dataclass(frozen=True)
class CodeTarget:
    function: str
    addr: int                  # instruction address (breakpoint)
    insn_len: int
    bit: int                   # bit within the instruction bytes


@dataclass(frozen=True)
class StackTarget:
    pid: int
    addr: int                  # byte address within the 8 KiB stack
    bit: int                   # bit 0-7 within that byte
    at_instret: int            # injection instant


@dataclass(frozen=True)
class DataTarget:
    addr: int
    bit: int
    at_instret: int
    initialized: bool          # lies in explicitly initialized data?


@dataclass(frozen=True)
class RegisterTarget:
    name: str
    bit: int
    at_instret: int
    #: x86: cpu attribute; ppc: SPR number (-1 for the MSR)
    attr: str = ""
    spr: int = 0


class TargetGenerator:
    """Pre-generates target lists for every campaign kind."""

    def __init__(self, image: KernelImage,
                 profile: Optional[FunctionProfile] = None,
                 seed: int = 0):
        self.image = image
        self.profile = profile
        self.rng = random.Random(seed)
        #: draws rejected by the last ``code_targets`` prune predicate
        self.pruned_draws = 0

    # -- code -------------------------------------------------------------

    def _hot_functions(self, coverage: float = 0.99) -> List[str]:
        """Functions selected for code injection.

        The paper selects the most frequently used functions covering
        at least 95% of kernel usage and pre-generates breakpoint
        locations across them; injections then spread over the selected
        set (so rarely taken paths inside hot functions yield the
        not-activated share).
        """
        if self.profile is None:
            return list(self.image.functions)
        hot = [name for name, _weight in
               self.profile.hot_functions(coverage)
               if name in self.image.functions]
        return hot or list(self.image.functions)

    def code_targets(self, count: int,
                     prune_bits: Optional[AbstractSet[Tuple[int, int]]]
                     = None) -> List[CodeTarget]:
        """Pre-generate *count* code targets.

        With *prune_bits* (a set of provably-inert ``(addr, bit)``
        pairs from the static analyzer) pruned draws are rejected and
        redrawn from the same RNG stream, so a pruned campaign spends
        all of its budget on bits that can matter.  The number of
        rejected draws is recorded in ``self.pruned_draws``; the
        target list stays a pure function of ``(image, profile, seed,
        prune_bits)``, so resumes remain bit-identical.
        """
        names = self._hot_functions()
        out: List[CodeTarget] = []
        self.pruned_draws = 0
        attempts_left = count * 1000 + 1000
        while len(out) < count:
            if attempts_left <= 0:
                raise RuntimeError(
                    "code target generation stalled: prune predicate "
                    "rejects (nearly) every draw")
            attempts_left -= 1
            name = self.rng.choice(names)
            info = self.image.functions[name]
            index = self.rng.randrange(len(info.insn_addrs))
            addr = info.insn_addrs[index]
            if index + 1 < len(info.insn_addrs):
                length = info.insn_addrs[index + 1] - addr
            else:
                length = info.addr + info.size - addr
            length = max(1, length)
            bit = self.rng.randrange(length * 8)
            if prune_bits is not None and (addr, bit) in prune_bits:
                self.pruned_draws += 1
                continue
            out.append(CodeTarget(name, addr, length, bit))
        return out

    # -- stack -------------------------------------------------------------

    def stack_targets(self, count: int, pids: Sequence[int],
                      stack_ranges: dict, run_instret: Tuple[int, int]
                      ) -> List[StackTarget]:
        """*stack_ranges*: pid -> (base, top); instants within run."""
        out: List[StackTarget] = []
        lo, hi = run_instret
        for _ in range(count):
            pid = self.rng.choice(list(pids))
            base, top = stack_ranges[pid]
            addr = self.rng.randrange(base, top)
            out.append(StackTarget(
                pid=pid, addr=addr, bit=self.rng.randrange(8),
                at_instret=self.rng.randrange(lo, hi)))
        return out

    # -- data ---------------------------------------------------------------

    def data_targets(self, count: int, run_instret: Tuple[int, int],
                     pool: Optional[Sequence[Tuple[int, int]]] = None
                     ) -> List[DataTarget]:
        """Pre-generate *count* data targets.

        By default addresses draw uniformly over the ``.data`` section
        (the paper's model).  With *pool* — ``(lo, hi)`` byte ranges
        from a targeted fault model — addresses draw uniformly over
        the union of the ranges instead, so each named structure's
        weight is its size in bytes.
        """
        image = self.image
        lo, hi = run_instret
        init_ranges = image.init_data_ranges
        out: List[DataTarget] = []
        for _ in range(count):
            if pool is None:
                addr = self.rng.randrange(image.data_base,
                                          image.data_end)
            else:
                addr = self._pool_draw(pool)
            initialized = any(addr in r for r in init_ranges)
            out.append(DataTarget(
                addr=addr, bit=self.rng.randrange(8),
                at_instret=self.rng.randrange(lo, hi),
                initialized=initialized))
        return out

    def _pool_draw(self, pool: Sequence[Tuple[int, int]]) -> int:
        """One uniform draw over the union of ``(lo, hi)`` ranges."""
        total = sum(hi - lo for lo, hi in pool)
        if total <= 0:
            raise ValueError(f"empty target pool: {pool!r}")
        offset = self.rng.randrange(total)
        for lo, hi in pool:
            if offset < hi - lo:
                return lo + offset
            offset -= hi - lo
        raise AssertionError("unreachable")

    # -- registers -----------------------------------------------------------

    def register_targets(self, count: int, arch: str,
                         run_instret: Tuple[int, int]
                         ) -> List[RegisterTarget]:
        lo, hi = run_instret
        out: List[RegisterTarget] = []
        if arch == "x86":
            for _ in range(count):
                reg = self.rng.choice(P4_SYSTEM_REGISTERS)
                out.append(RegisterTarget(
                    name=reg.name, bit=self.rng.randrange(reg.bits),
                    at_instret=self.rng.randrange(lo, hi),
                    attr=reg.attr))
        else:
            for _ in range(count):
                reg = self.rng.choice(G4_SUPERVISOR_REGISTERS)
                out.append(RegisterTarget(
                    name=reg.name, bit=self.rng.randrange(reg.bits),
                    at_instret=self.rng.randrange(lo, hi),
                    spr=reg.spr))
        return out
