"""NFTAPE-style fault/error injection framework.

Implements the paper's automated three-step process (Figure 2):

1. **Generate injection targets** (:mod:`repro.injection.targets`) —
   code breakpoint locations from the profiled hot functions, random
   stack/data locations, and system registers;
2. **Inject errors** (:mod:`repro.injection.injector`) — instruction
   breakpoints for code (error inserted when the target is fetched),
   data watchpoints for stack/data (activation = the first access;
   write-first errors are re-injected), scheduled actions for registers;
3. **Collect data** (:mod:`repro.injection.collector`,
   :mod:`repro.injection.campaign`) — outcome classification, crash
   dumps over the lossy channel, and campaign statistics.
"""

from repro.injection.outcomes import (
    CampaignKind, CrashCauseG4, CrashCauseP4, InjectionResult, Outcome,
)
from repro.injection.targets import (
    CodeTarget, DataTarget, RegisterTarget, StackTarget, TargetGenerator,
)
from repro.injection.collector import CrashDataCollector
from repro.injection.campaign import Campaign, CampaignConfig, CampaignResult
from repro.injection.parallel import ShardFailure, run_parallel

__all__ = [
    "Outcome", "CampaignKind", "CrashCauseP4", "CrashCauseG4",
    "InjectionResult",
    "CodeTarget", "StackTarget", "DataTarget", "RegisterTarget",
    "TargetGenerator",
    "CrashDataCollector",
    "Campaign", "CampaignConfig", "CampaignResult",
    "ShardFailure", "run_parallel",
]
