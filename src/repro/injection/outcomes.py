"""Outcome taxonomy: the paper's Tables 2, 3, and 4 as types."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union


class CampaignKind(enum.Enum):
    """The four injection target classes."""

    STACK = "stack"
    REGISTER = "register"
    DATA = "data"
    CODE = "code"


class Outcome(enum.Enum):
    """Table 2 outcome categories (crash split by dump availability)."""

    NOT_ACTIVATED = "not-activated"
    NOT_MANIFESTED = "not-manifested"
    FAIL_SILENCE_VIOLATION = "fsv"
    CRASH_KNOWN = "crash-known"
    CRASH_UNKNOWN = "crash-unknown"
    HANG = "hang"

    @property
    def activated(self) -> bool:
        return self is not Outcome.NOT_ACTIVATED

    @property
    def manifested(self) -> bool:
        return self not in (Outcome.NOT_ACTIVATED, Outcome.NOT_MANIFESTED)


class CrashCauseP4(enum.Enum):
    """Table 3: crash cause categories on the Pentium 4."""

    NULL_POINTER = "NULL Pointer"
    BAD_PAGING = "Bad Paging"
    INVALID_INSTRUCTION = "Invalid Instruction"
    GENERAL_PROTECTION = "General Protection Fault"
    KERNEL_PANIC = "Kernel Panic"
    INVALID_TSS = "Invalid TSS"
    DIVIDE_ERROR = "Divide Error"
    BOUNDS_TRAP = "Bounds Trap"


class CrashCauseG4(enum.Enum):
    """Table 4: crash cause categories on the PowerPC G4."""

    BAD_AREA = "Bad Area"
    ILLEGAL_INSTRUCTION = "Illegal Instruction"
    STACK_OVERFLOW = "Stack Overflow"
    MACHINE_CHECK = "Machine Check"
    ALIGNMENT = "Alignment"
    PANIC = "Panic!!!"
    BUS_ERROR = "Bus Error"
    BAD_TRAP = "Bad Trap"


#: crash cause taxonomy (arch-specific enums, paper Tables 3 and 4)
CrashCause = Union[CrashCauseP4, CrashCauseG4]


@dataclass
class InjectionResult:
    """The record one injection experiment produces."""

    arch: str
    kind: CampaignKind
    target: object                       # the *Target dataclass
    outcome: Outcome
    #: crash cause (CrashCauseP4 or CrashCauseG4) for known crashes
    cause: Optional[CrashCause] = None
    #: cycles at error activation (injection, for registers)
    activation_cycles: Optional[int] = None
    #: cycles at crash (None unless a crash was observed)
    crash_cycles: Optional[int] = None
    #: retired instructions at error activation (same instant as
    #: ``activation_cycles``), so latency is reportable in instructions
    activation_instret: Optional[int] = None
    #: retired instructions at crash (``CrashReport.instret_at_crash``)
    crash_instret: Optional[int] = None
    detail: str = ""
    function: str = ""
    subsystem: str = ""
    #: True when activation was decided by the clean-run screen and no
    #: full simulation was needed (not-activated fast path)
    screened: bool = False

    @property
    def latency(self) -> Optional[int]:
        """Cycles-to-crash (paper Figure 3)."""
        if self.crash_cycles is None or self.activation_cycles is None:
            return None
        return max(0, self.crash_cycles - self.activation_cycles)

    @property
    def latency_instructions(self) -> Optional[int]:
        """Instructions-to-crash (the cycle latency's instret twin)."""
        if self.crash_instret is None or self.activation_instret is None:
            return None
        return max(0, self.crash_instret - self.activation_instret)


def summarize(results) -> dict:
    """Counts per outcome (handy in tests and logs)."""
    counts: dict = {}
    for result in results:
        counts[result.outcome] = counts.get(result.outcome, 0) + 1
    return counts
