"""repro — reproduction of "Error Sensitivity of the Linux Kernel
Executing on PowerPC G4 and Pentium 4 Processors" (DSN 2004).

The package builds everything the paper's measurement study needs, in
pure Python:

* two simulated processors with the architectural properties under
  study (:mod:`repro.x86`, :mod:`repro.ppc`);
* a compiler from a miniature kernel language to both ISAs
  (:mod:`repro.kcc`) and the miniature Linux-like kernel itself
  (:mod:`repro.kernel`);
* a bootable machine with watchdog and crash-dump NIC
  (:mod:`repro.machine`), the UnixBench-like instrumented workload
  (:mod:`repro.workload`);
* the NFTAPE-style injection framework (:mod:`repro.injection`) and
  the off-line analysis (:mod:`repro.analysis`);
* the public study API (:mod:`repro.core`).

Quick start::

    from repro.core import Study, StudyConfig
    study = Study(StudyConfig(scale=0.01)).run()
    print(study.render_all())
"""

__version__ = "1.0.0"

from repro.core import CampaignKind, Study, StudyConfig, run_campaign

__all__ = ["Study", "StudyConfig", "run_campaign", "CampaignKind",
           "__version__"]
