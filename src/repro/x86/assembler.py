"""Structured IA-32 assembler used by the ``kcc`` x86 backend.

This is a builder API, not a text assembler: the compiler backend calls
methods like :meth:`X86Assembler.mov_r_rm` and the encoder produces the
same byte sequences GCC 3.2 emits for the paper's examples (``8d 65 f4
lea -0xc(%ebp),%esp``; ``5b pop %ebx``; ...).  Labels are local;
cross-function calls become relocations resolved by the linker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.isa.bits import to_unsigned
from repro.x86.registers import SEG_DS, SEG_FS, SEG_GS

_SEG_PREFIX = {SEG_FS: 0x64, SEG_GS: 0x65}


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``disp(base, index, scale)``."""

    base: int = -1
    index: int = -1
    scale: int = 1
    disp: int = 0
    seg: int = SEG_DS


@dataclass
class Reloc:
    """An unresolved reference to an external symbol."""

    offset: int           # where the 32-bit field sits in the code
    symbol: str
    kind: str             # "rel32" (call/jmp) or "abs32"


class AssemblerError(Exception):
    pass


ALU_CODES = {"add": 0, "or": 1, "adc": 2, "sbb": 3,
             "and": 4, "sub": 5, "xor": 6, "cmp": 7}

COND_CODES = {"o": 0, "no": 1, "b": 2, "ae": 3, "e": 4, "ne": 5,
              "be": 6, "a": 7, "s": 8, "ns": 9, "p": 10, "np": 11,
              "l": 12, "ge": 13, "le": 14, "g": 15}


class X86Assembler:
    """Accumulates encoded instructions plus labels and relocations."""

    def __init__(self) -> None:
        self.code = bytearray()
        self.labels: Dict[str, int] = {}
        self._label_fixups: List[Tuple[int, str, int]] = []  # off, lbl, size
        self.relocs: List[Reloc] = []
        #: byte offset of each emitted instruction (for injection maps)
        self.insn_offsets: List[int] = []

    # -- plumbing ---------------------------------------------------------

    def _start(self) -> None:
        self.insn_offsets.append(len(self.code))

    def emit(self, *values: int) -> None:
        self.code.extend(values)

    def emit32(self, value: int) -> None:
        self.code.extend(to_unsigned(value).to_bytes(4, "little"))

    def emit16(self, value: int) -> None:
        self.code.extend((value & 0xFFFF).to_bytes(2, "little"))

    def label(self, name: str) -> None:
        if name in self.labels:
            raise AssemblerError(f"duplicate label {name}")
        self.labels[name] = len(self.code)

    def new_label(self, hint: str = "L") -> str:
        return f".{hint}{len(self._label_fixups)}_{len(self.code)}"

    def _modrm(self, reg: int, rm: "int | Mem") -> None:
        """Emit ModRM (+SIB +disp) addressing *rm* with /reg field *reg*."""
        if isinstance(rm, int):
            self.emit(0xC0 | (reg << 3) | rm)
            return
        mem = rm
        if mem.seg in _SEG_PREFIX:
            # segment prefixes must precede the opcode; callers that use
            # FS/GS go through _seg() before encoding the opcode.
            raise AssemblerError("segment prefix must be emitted first")
        if mem.base < 0 and mem.index < 0:
            # absolute: mod=00 rm=101 disp32
            self.emit((reg << 3) | 5)
            self.emit32(mem.disp)
            return
        disp = mem.disp & 0xFFFFFFFF
        signed = disp - (1 << 32) if disp & 0x80000000 else disp
        if mem.base < 0:
            # index without base: SIB with base=101, mod=00, disp32
            self.emit((reg << 3) | 4)
            scale = {1: 0, 2: 1, 4: 2, 8: 3}[mem.scale]
            self.emit((scale << 6) | (mem.index << 3) | 5)
            self.emit32(disp)
            return
        if disp == 0 and mem.base != 5:
            mod = 0
        elif -128 <= signed <= 127:
            mod = 1
        else:
            mod = 2
        if mem.index >= 0 or mem.base == 4:
            self.emit((mod << 6) | (reg << 3) | 4)
            index = mem.index if mem.index >= 0 else 4
            scale = {1: 0, 2: 1, 4: 2, 8: 3}[mem.scale]
            self.emit((scale << 6) | (index << 3) | mem.base)
        else:
            self.emit((mod << 6) | (reg << 3) | mem.base)
        if mod == 1:
            self.emit(signed & 0xFF)
        elif mod == 2:
            self.emit32(disp)

    def _seg(self, mem: "int | Mem") -> "int | Mem":
        """Emit a segment prefix if the operand needs one."""
        if isinstance(mem, Mem) and mem.seg in _SEG_PREFIX:
            self.emit(_SEG_PREFIX[mem.seg])
            return Mem(mem.base, mem.index, mem.scale, mem.disp, SEG_DS)
        return mem

    # -- data movement ------------------------------------------------------

    def mov_r_imm(self, reg: int, imm: int) -> None:
        self._start()
        self.emit(0xB8 + reg)
        self.emit32(imm)

    def mov_r_imm_sym(self, reg: int, symbol: str) -> None:
        """mov reg, &symbol — resolved at link time."""
        self._start()
        self.emit(0xB8 + reg)
        self.relocs.append(Reloc(len(self.code), symbol, "abs32"))
        self.emit32(0)

    def mov_r_rm(self, reg: int, rm: "int | Mem", width: int = 4) -> None:
        self._start()
        rm = self._seg(rm)
        if width == 2:
            self.emit(0x66)
        self.emit(0x8A if width == 1 else 0x8B)
        self._modrm(reg, rm)

    def mov_rm_r(self, rm: "int | Mem", reg: int, width: int = 4) -> None:
        self._start()
        rm = self._seg(rm)
        if width == 2:
            self.emit(0x66)
        self.emit(0x88 if width == 1 else 0x89)
        self._modrm(reg, rm)

    def mov_rm_imm(self, rm: "int | Mem", imm: int, width: int = 4) -> None:
        self._start()
        rm = self._seg(rm)
        if width == 2:
            self.emit(0x66)
        self.emit(0xC6 if width == 1 else 0xC7)
        self._modrm(0, rm)
        if width == 1:
            self.emit(imm & 0xFF)
        elif width == 2:
            self.emit16(imm)
        else:
            self.emit32(imm)

    def movzx(self, reg: int, rm: "int | Mem", src_width: int) -> None:
        self._start()
        rm = self._seg(rm)
        self.emit(0x0F, 0xB6 if src_width == 1 else 0xB7)
        self._modrm(reg, rm)

    def movsx(self, reg: int, rm: "int | Mem", src_width: int) -> None:
        self._start()
        rm = self._seg(rm)
        self.emit(0x0F, 0xBE if src_width == 1 else 0xBF)
        self._modrm(reg, rm)

    def lea(self, reg: int, mem: Mem) -> None:
        self._start()
        self.emit(0x8D)
        self._modrm(reg, mem)

    def xchg_r_rm(self, reg: int, rm: "int | Mem") -> None:
        self._start()
        self.emit(0x87)
        self._modrm(reg, rm)

    # -- ALU -----------------------------------------------------------------

    def alu_r_rm(self, op: str, reg: int, rm: "int | Mem",
                 width: int = 4) -> None:
        self._start()
        rm = self._seg(rm)
        if width == 2:
            self.emit(0x66)
        base = ALU_CODES[op] << 3
        self.emit(base + (0x02 if width == 1 else 0x03))
        self._modrm(reg, rm)

    def alu_rm_r(self, op: str, rm: "int | Mem", reg: int,
                 width: int = 4) -> None:
        self._start()
        rm = self._seg(rm)
        if width == 2:
            self.emit(0x66)
        base = ALU_CODES[op] << 3
        self.emit(base + (0x00 if width == 1 else 0x01))
        self._modrm(reg, rm)

    def alu_rm_imm(self, op: str, rm: "int | Mem", imm: int,
                   width: int = 4) -> None:
        self._start()
        rm = self._seg(rm)
        if width == 2:
            self.emit(0x66)
        signed = imm - (1 << 32) if imm & 0x80000000 else imm
        if width == 1:
            self.emit(0x80)
            self._modrm(ALU_CODES[op], rm)
            self.emit(imm & 0xFF)
        elif -128 <= signed <= 127:
            self.emit(0x83)
            self._modrm(ALU_CODES[op], rm)
            self.emit(imm & 0xFF)
        else:
            self.emit(0x81)
            self._modrm(ALU_CODES[op], rm)
            if width == 2:
                self.emit16(imm)
            else:
                self.emit32(imm)

    def test_rm_r(self, rm: "int | Mem", reg: int, width: int = 4) -> None:
        self._start()
        rm = self._seg(rm)
        if width == 2:
            self.emit(0x66)
        self.emit(0x84 if width == 1 else 0x85)
        self._modrm(reg, rm)

    def imul_r_rm(self, reg: int, rm: "int | Mem") -> None:
        self._start()
        self.emit(0x0F, 0xAF)
        self._modrm(reg, rm)

    def imul_r_rm_imm(self, reg: int, rm: "int | Mem", imm: int) -> None:
        self._start()
        self.emit(0x69)
        self._modrm(reg, rm)
        self.emit32(imm)

    def div_rm(self, rm: "int | Mem") -> None:
        self._start()
        self.emit(0xF7)
        self._modrm(6, rm)

    def idiv_rm(self, rm: "int | Mem") -> None:
        self._start()
        self.emit(0xF7)
        self._modrm(7, rm)

    def neg_rm(self, rm: "int | Mem") -> None:
        self._start()
        self.emit(0xF7)
        self._modrm(3, rm)

    def not_rm(self, rm: "int | Mem") -> None:
        self._start()
        self.emit(0xF7)
        self._modrm(2, rm)

    def shift_rm_imm(self, op: str, rm: "int | Mem", count: int) -> None:
        self._start()
        codes = {"rol": 0, "ror": 1, "shl": 4, "shr": 5, "sar": 7}
        if count == 1:
            self.emit(0xD1)
            self._modrm(codes[op], rm)
        else:
            self.emit(0xC1)
            self._modrm(codes[op], rm)
            self.emit(count & 0x1F)

    def shift_rm_cl(self, op: str, rm: "int | Mem") -> None:
        self._start()
        codes = {"rol": 0, "ror": 1, "shl": 4, "shr": 5, "sar": 7}
        self.emit(0xD3)
        self._modrm(codes[op], rm)

    def inc_r(self, reg: int) -> None:
        self._start()
        self.emit(0x40 + reg)

    def dec_r(self, reg: int) -> None:
        self._start()
        self.emit(0x48 + reg)

    def cdq(self) -> None:
        self._start()
        self.emit(0x99)

    # -- stack ---------------------------------------------------------------

    def push_r(self, reg: int) -> None:
        self._start()
        self.emit(0x50 + reg)

    def pop_r(self, reg: int) -> None:
        self._start()
        self.emit(0x58 + reg)

    def push_imm(self, imm: int) -> None:
        self._start()
        signed = imm - (1 << 32) if imm & 0x80000000 else imm
        if -128 <= signed <= 127:
            self.emit(0x6A, imm & 0xFF)
        else:
            self.emit(0x68)
            self.emit32(imm)

    def push_rm(self, rm: "int | Mem") -> None:
        self._start()
        rm = self._seg(rm)
        self.emit(0xFF)
        self._modrm(6, rm)

    # -- control flow ---------------------------------------------------------

    def call_sym(self, symbol: str) -> None:
        self._start()
        self.emit(0xE8)
        self.relocs.append(Reloc(len(self.code), symbol, "rel32"))
        self.emit32(0)

    def call_rm(self, rm: "int | Mem") -> None:
        self._start()
        self.emit(0xFF)
        self._modrm(2, rm)

    def jmp_label(self, label: str) -> None:
        self._start()
        self.emit(0xE9)
        self._label_fixups.append((len(self.code), label, 4))
        self.emit32(0)

    def jcc_label(self, cond: str, label: str) -> None:
        self._start()
        self.emit(0x0F, 0x80 + COND_CODES[cond])
        self._label_fixups.append((len(self.code), label, 4))
        self.emit32(0)

    def ret(self) -> None:
        self._start()
        self.emit(0xC3)

    def nop(self) -> None:
        self._start()
        self.emit(0x90)

    def ud2a(self) -> None:
        self._start()
        self.emit(0x0F, 0x0B)

    def int_n(self, vector: int) -> None:
        self._start()
        self.emit(0xCD, vector & 0xFF)

    def hlt(self) -> None:
        self._start()
        self.emit(0xF4)

    # -- finalization -----------------------------------------------------------

    def finish(self) -> bytes:
        """Resolve local label fixups; relocations stay for the linker."""
        for offset, label, size in self._label_fixups:
            if label not in self.labels:
                raise AssemblerError(f"undefined label {label}")
            rel = self.labels[label] - (offset + size)
            self.code[offset:offset + size] = \
                to_unsigned(rel).to_bytes(size, "little")
        self._label_fixups.clear()
        return bytes(self.code)
