"""IA-32 subset decoder and instruction semantics for the P4-like core.

Decoding is deliberately table-driven over the *first byte* exactly as
real hardware is: when a bit flip lands in an instruction, the bytes
that follow are re-interpreted from scratch, instruction lengths change,
and the stream re-synchronizes into a different sequence of mostly
valid instructions (the paper's Figure 14 mechanism).  Undefined
encodings decode to an instruction whose execution raises #UD, so the
disassembler can still render them as ``(bad)``.

The subset covers what the ``kcc`` x86 backend emits plus the
instructions that matter when corrupted code is executed (``bound``,
``int``, ``iret``, ``hlt``, string ops, segment moves, ...).  Roughly
65% of one-byte opcode space decodes to something valid, comparable to
real IA-32 density, which is what gives the P4 its low
Invalid-Instruction crash share in code campaigns (24% in the paper
versus 41% on the G4).
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.isa.bits import MASK32, mask_for_width, sign_extend, to_signed
from repro.x86.exceptions import X86Vector
from repro.x86.insn import Instr
from repro.x86.registers import (
    FLAG_CF, FLAG_NT, FLAG_OF, FLAG_SF, FLAG_ZF,
    SEG_CS, SEG_DS, SEG_ES, SEG_FS, SEG_GS, SEG_SS,
)

# ---------------------------------------------------------------------------
# helpers


def _le16(buf: bytes, pos: int) -> int:
    return buf[pos] | (buf[pos + 1] << 8)


def _le32(buf: bytes, pos: int) -> int:
    return (buf[pos] | (buf[pos + 1] << 8) | (buf[pos + 2] << 16)
            | (buf[pos + 3] << 24))


class _ModRM:
    __slots__ = ("reg", "rm_reg", "base", "index", "scale", "disp", "length")

    def __init__(self) -> None:
        self.reg = 0
        self.rm_reg = -1
        self.base = -1
        self.index = -1
        self.scale = 1
        self.disp = 0
        self.length = 0


def _parse_modrm(buf: bytes, pos: int) -> _ModRM:
    """Parse a ModRM (+ optional SIB + displacement) at *pos*."""
    out = _ModRM()
    start = pos
    modrm = buf[pos]
    pos += 1
    mod = modrm >> 6
    out.reg = (modrm >> 3) & 7
    rm = modrm & 7
    if mod == 3:
        out.rm_reg = rm
    else:
        force_disp32 = False
        if rm == 4:
            sib = buf[pos]
            pos += 1
            out.scale = 1 << (sib >> 6)
            index = (sib >> 3) & 7
            base = sib & 7
            if index != 4:
                out.index = index
            if base == 5 and mod == 0:
                force_disp32 = True
            else:
                out.base = base
        elif rm == 5 and mod == 0:
            force_disp32 = True
        else:
            out.base = rm
        if mod == 1:
            out.disp = sign_extend(buf[pos], 8)
            pos += 1
        elif mod == 2 or force_disp32:
            out.disp = _le32(buf, pos)
            pos += 4
    out.length = pos - start
    return out


# ---------------------------------------------------------------------------
# semantics: ALU ops

ALU_ADD, ALU_OR, ALU_ADC, ALU_SBB, ALU_AND, ALU_SUB, ALU_XOR, ALU_CMP = \
    range(8)
ALU_NAMES = ("add", "or", "adc", "sbb", "and", "sub", "xor", "cmp")


def _alu_compute(cpu, op: int, a: int, b: int, width: int) -> Tuple[int, bool]:
    """Return (result, writeback?) and set flags."""
    if op == ALU_ADD:
        return cpu.set_flags_add(a, b, width), True
    if op == ALU_ADC:
        carry = 1 if cpu.eflags & FLAG_CF else 0
        return cpu.set_flags_add(a, (b + carry) & mask_for_width(width),
                                 width), True
    if op == ALU_SUB:
        return cpu.set_flags_sub(a, b, width), True
    if op == ALU_SBB:
        borrow = 1 if cpu.eflags & FLAG_CF else 0
        return cpu.set_flags_sub(a, (b + borrow) & mask_for_width(width),
                                 width), True
    if op == ALU_CMP:
        cpu.set_flags_sub(a, b, width)
        return 0, False
    if op == ALU_AND:
        result = a & b
    elif op == ALU_OR:
        result = a | b
    else:  # ALU_XOR
        result = a ^ b
    cpu.set_flags_logic(result, width)
    return result, True


def exec_alu_rm_r(cpu, i: Instr) -> None:
    if i.rm_reg >= 0:
        a = cpu.get_reg(i.rm_reg, i.width)
        result, writeback = _alu_compute(
            cpu, i.op2, a, cpu.get_reg(i.reg, i.width), i.width)
        if writeback:
            cpu.set_reg(i.rm_reg, i.width, result)
    else:
        addr = cpu.ea(i)
        a = cpu.load(addr, i.width, i.seg)
        result, writeback = _alu_compute(
            cpu, i.op2, a, cpu.get_reg(i.reg, i.width), i.width)
        if writeback:
            cpu.store(addr, result, i.width, i.seg)


def exec_alu_r_rm(cpu, i: Instr) -> None:
    if i.rm_reg >= 0:
        b = cpu.get_reg(i.rm_reg, i.width)
    else:
        b = cpu.load(cpu.ea(i), i.width, i.seg)
    a = cpu.get_reg(i.reg, i.width)
    result, writeback = _alu_compute(cpu, i.op2, a, b, i.width)
    if writeback:
        cpu.set_reg(i.reg, i.width, result)


def exec_alu_a_imm(cpu, i: Instr) -> None:
    a = cpu.get_reg(0, i.width)
    result, writeback = _alu_compute(cpu, i.op2, a, i.imm, i.width)
    if writeback:
        cpu.set_reg(0, i.width, result)


def exec_grp1_rm_imm(cpu, i: Instr) -> None:
    if i.rm_reg >= 0:
        a = cpu.get_reg(i.rm_reg, i.width)
        result, writeback = _alu_compute(cpu, i.op2, a, i.imm, i.width)
        if writeback:
            cpu.set_reg(i.rm_reg, i.width, result)
    else:
        addr = cpu.ea(i)
        a = cpu.load(addr, i.width, i.seg)
        result, writeback = _alu_compute(cpu, i.op2, a, i.imm, i.width)
        if writeback:
            cpu.store(addr, result, i.width, i.seg)


def exec_test_rm_r(cpu, i: Instr) -> None:
    if i.rm_reg >= 0:
        a = cpu.get_reg(i.rm_reg, i.width)
    else:
        a = cpu.load(cpu.ea(i), i.width, i.seg)
    cpu.set_flags_logic(a & cpu.get_reg(i.reg, i.width), i.width)


def exec_test_a_imm(cpu, i: Instr) -> None:
    cpu.set_flags_logic(cpu.get_reg(0, i.width) & i.imm, i.width)


# ---------------------------------------------------------------------------
# semantics: data movement


def exec_mov_rm_r(cpu, i: Instr) -> None:
    value = cpu.get_reg(i.reg, i.width)
    if i.rm_reg >= 0:
        cpu.set_reg(i.rm_reg, i.width, value)
    else:
        cpu.store(cpu.ea(i), value, i.width, i.seg)


def exec_mov_r_rm(cpu, i: Instr) -> None:
    if i.rm_reg >= 0:
        value = cpu.get_reg(i.rm_reg, i.width)
    else:
        value = cpu.load(cpu.ea(i), i.width, i.seg)
    cpu.set_reg(i.reg, i.width, value)


def exec_mov_r_imm(cpu, i: Instr) -> None:
    cpu.set_reg(i.reg, i.width, i.imm)


def exec_mov_rm_imm(cpu, i: Instr) -> None:
    if i.rm_reg >= 0:
        cpu.set_reg(i.rm_reg, i.width, i.imm)
    else:
        cpu.store(cpu.ea(i), i.imm, i.width, i.seg)


def exec_movzx(cpu, i: Instr) -> None:
    src_width = i.op2
    if i.rm_reg >= 0:
        value = cpu.get_reg(i.rm_reg, src_width)
    else:
        value = cpu.load(cpu.ea(i), src_width, i.seg)
    cpu.set_reg(i.reg, 4, value)


def exec_movsx(cpu, i: Instr) -> None:
    src_width = i.op2
    if i.rm_reg >= 0:
        value = cpu.get_reg(i.rm_reg, src_width)
    else:
        value = cpu.load(cpu.ea(i), src_width, i.seg)
    cpu.set_reg(i.reg, 4, sign_extend(value, src_width * 8))


def exec_lea(cpu, i: Instr) -> None:
    if i.rm_reg >= 0:
        # lea with a register rm is undefined on real hardware
        cpu.fault(X86Vector.INVALID_OPCODE, detail="lea with register rm")
    cpu.set_reg(i.reg, 4, cpu.ea(i))


def exec_moffs_load(cpu, i: Instr) -> None:
    cpu.set_reg(0, i.width, cpu.load(i.disp, i.width, i.seg))


def exec_moffs_store(cpu, i: Instr) -> None:
    cpu.store(i.disp, cpu.get_reg(0, i.width), i.width, i.seg)


def exec_xchg_r_rm(cpu, i: Instr) -> None:
    a = cpu.get_reg(i.reg, i.width)
    if i.rm_reg >= 0:
        b = cpu.get_reg(i.rm_reg, i.width)
        cpu.set_reg(i.rm_reg, i.width, a)
    else:
        addr = cpu.ea(i)
        b = cpu.load(addr, i.width, i.seg)
        cpu.store(addr, a, i.width, i.seg)
    cpu.set_reg(i.reg, i.width, b)


def exec_xchg_eax_r(cpu, i: Instr) -> None:
    a = cpu.regs[0]
    cpu.regs[0] = cpu.regs[i.reg]
    cpu.regs[i.reg] = a


def exec_cdq(cpu, i: Instr) -> None:
    cpu.regs[2] = MASK32 if cpu.regs[0] & 0x80000000 else 0


def exec_cwde(cpu, i: Instr) -> None:
    cpu.regs[0] = sign_extend(cpu.regs[0] & 0xFFFF, 16)


# ---------------------------------------------------------------------------
# semantics: stack


def exec_push_r(cpu, i: Instr) -> None:
    cpu.push32(cpu.regs[i.reg])


def exec_pop_r(cpu, i: Instr) -> None:
    cpu.regs[i.reg] = cpu.pop32()


def exec_push_imm(cpu, i: Instr) -> None:
    cpu.push32(i.imm)


def exec_pop_rm(cpu, i: Instr) -> None:
    value = cpu.pop32()
    if i.rm_reg >= 0:
        cpu.regs[i.rm_reg] = value
    else:
        cpu.store(cpu.ea(i), value, 4, i.seg)


def exec_pushfd(cpu, i: Instr) -> None:
    cpu.push32(cpu.eflags)


def exec_popfd(cpu, i: Instr) -> None:
    cpu.eflags = cpu.pop32()


def exec_leave(cpu, i: Instr) -> None:
    cpu.regs[4] = cpu.regs[5]
    cpu.regs[5] = cpu.pop32()


# ---------------------------------------------------------------------------
# semantics: inc/dec and group 5


def exec_inc_r(cpu, i: Instr) -> None:
    value = (cpu.regs[i.reg] + 1) & MASK32
    cpu.regs[i.reg] = value
    cpu.set_flags_incdec(value, overflow=value == 0x80000000)


def exec_dec_r(cpu, i: Instr) -> None:
    value = (cpu.regs[i.reg] - 1) & MASK32
    cpu.regs[i.reg] = value
    cpu.set_flags_incdec(value, overflow=value == 0x7FFFFFFF)


def exec_grp5(cpu, i: Instr) -> None:
    op = i.op2
    if op in (0, 1):  # inc/dec r/m
        if i.rm_reg >= 0:
            value = cpu.get_reg(i.rm_reg, i.width)
        else:
            addr = cpu.ea(i)
            value = cpu.load(addr, i.width, i.seg)
        delta = 1 if op == 0 else -1
        value = (value + delta) & mask_for_width(i.width)
        cpu.set_flags_incdec(value, overflow=False)
        if i.rm_reg >= 0:
            cpu.set_reg(i.rm_reg, i.width, value)
        else:
            cpu.store(addr, value, i.width, i.seg)
    elif op == 2:  # call r/m
        if i.rm_reg >= 0:
            target = cpu.regs[i.rm_reg]
        else:
            target = cpu.load(cpu.ea(i), 4, i.seg)
        cpu.push32(cpu.eip)
        cpu.branch(target)
    elif op == 4:  # jmp r/m
        if i.rm_reg >= 0:
            target = cpu.regs[i.rm_reg]
        else:
            target = cpu.load(cpu.ea(i), 4, i.seg)
        cpu.branch(target)
    elif op == 6:  # push r/m
        if i.rm_reg >= 0:
            cpu.push32(cpu.regs[i.rm_reg])
        else:
            cpu.push32(cpu.load(cpu.ea(i), 4, i.seg))
    else:
        cpu.fault(X86Vector.INVALID_OPCODE, detail=f"grp5 /{op}")


# ---------------------------------------------------------------------------
# semantics: control flow


def exec_ret(cpu, i: Instr) -> None:
    cpu.branch(cpu.pop32())
    cpu.regs[4] = (cpu.regs[4] + i.imm) & MASK32


def exec_call_rel(cpu, i: Instr) -> None:
    cpu.push32(cpu.eip)
    cpu.branch((cpu.eip + i.imm) & MASK32)


def exec_jmp_rel(cpu, i: Instr) -> None:
    cpu.branch((cpu.eip + i.imm) & MASK32)


_COND_CHECKS: List[Callable[[int], bool]] = [
    lambda f: bool(f & FLAG_OF),                               # o
    lambda f: not f & FLAG_OF,                                 # no
    lambda f: bool(f & FLAG_CF),                               # b
    lambda f: not f & FLAG_CF,                                 # ae
    lambda f: bool(f & FLAG_ZF),                               # e
    lambda f: not f & FLAG_ZF,                                 # ne
    lambda f: bool(f & (FLAG_CF | FLAG_ZF)),                   # be
    lambda f: not f & (FLAG_CF | FLAG_ZF),                     # a
    lambda f: bool(f & FLAG_SF),                               # s
    lambda f: not f & FLAG_SF,                                 # ns
    lambda f: bool(f & 0x4),                                   # p
    lambda f: not f & 0x4,                                     # np
    lambda f: bool(f & FLAG_SF) != bool(f & FLAG_OF),          # l
    lambda f: bool(f & FLAG_SF) == bool(f & FLAG_OF),          # ge
    lambda f: bool(f & FLAG_ZF)
    or (bool(f & FLAG_SF) != bool(f & FLAG_OF)),               # le
    lambda f: not f & FLAG_ZF
    and (bool(f & FLAG_SF) == bool(f & FLAG_OF)),              # g
]

COND_NAMES = ("o", "no", "b", "ae", "e", "ne", "be", "a",
              "s", "ns", "p", "np", "l", "ge", "le", "g")


def exec_jcc(cpu, i: Instr) -> None:
    if _COND_CHECKS[i.op2](cpu.eflags):
        cpu.branch((cpu.eip + i.imm) & MASK32)


# ---------------------------------------------------------------------------
# semantics: group 2 (shifts) and group 3 (mul/div/...)


def exec_grp2(cpu, i: Instr) -> None:
    op = i.op2 & 7
    count_kind = i.op2 >> 3        # 0: imm, 1: one, 2: CL
    if count_kind == 0:
        count = i.imm & 31
    elif count_kind == 1:
        count = 1
    else:
        count = cpu.regs[1] & 31
    if i.rm_reg >= 0:
        value = cpu.get_reg(i.rm_reg, i.width)
    else:
        addr = cpu.ea(i)
        value = cpu.load(addr, i.width, i.seg)
    bits = i.width * 8
    mask = mask_for_width(i.width)
    if count:
        if op == 4:      # shl
            result = (value << count) & mask
            carry = (value >> (bits - count)) & 1 if count <= bits else 0
        elif op == 5:    # shr
            result = (value & mask) >> count
            carry = (value >> (count - 1)) & 1
        elif op == 7:    # sar
            signed = to_signed(value, bits)
            result = (signed >> count) & mask
            carry = (signed >> (count - 1)) & 1
        elif op == 0:    # rol
            count %= bits
            result = ((value << count) | (value >> (bits - count))) & mask \
                if count else value & mask
            carry = result & 1
        elif op == 1:    # ror
            count %= bits
            result = ((value >> count) | (value << (bits - count))) & mask \
                if count else value & mask
            carry = (result >> (bits - 1)) & 1
        else:
            cpu.fault(X86Vector.INVALID_OPCODE, detail=f"grp2 /{op}")
            return
        cpu.set_flags_logic(result, i.width)
        if carry:
            cpu.eflags |= FLAG_CF
        if i.rm_reg >= 0:
            cpu.set_reg(i.rm_reg, i.width, result)
        else:
            cpu.store(addr, result, i.width, i.seg)


def exec_grp3(cpu, i: Instr) -> None:
    op = i.op2
    mask = mask_for_width(i.width)
    bits = i.width * 8
    if i.rm_reg >= 0:
        value = cpu.get_reg(i.rm_reg, i.width)
    else:
        addr = cpu.ea(i)
        value = cpu.load(addr, i.width, i.seg)
    if op == 0 or op == 1:       # test r/m, imm
        cpu.set_flags_logic(value & i.imm, i.width)
    elif op == 2:                # not
        result = (~value) & mask
        if i.rm_reg >= 0:
            cpu.set_reg(i.rm_reg, i.width, result)
        else:
            cpu.store(addr, result, i.width, i.seg)
    elif op == 3:                # neg
        result = (-value) & mask
        cpu.set_flags_sub(0, value, i.width)
        if i.rm_reg >= 0:
            cpu.set_reg(i.rm_reg, i.width, result)
        else:
            cpu.store(addr, result, i.width, i.seg)
    elif op == 4:                # mul
        product = (cpu.get_reg(0, i.width) * value)
        cpu.set_reg(0, i.width, product & mask)
        if i.width == 4:
            cpu.regs[2] = (product >> 32) & MASK32
        cpu.cycles += 4
    elif op == 5:                # imul
        product = to_signed(cpu.get_reg(0, i.width), bits) * \
            to_signed(value, bits)
        cpu.set_reg(0, i.width, product & mask)
        if i.width == 4:
            cpu.regs[2] = (product >> 32) & MASK32
        cpu.cycles += 4
    elif op == 6:                # div
        if value == 0:
            cpu.fault(X86Vector.DIVIDE_ERROR, detail="divide by zero")
        if i.width == 4:
            dividend = (cpu.regs[2] << 32) | cpu.regs[0]
        else:
            dividend = cpu.get_reg(0, i.width)
        quotient = dividend // value
        if quotient > mask:
            cpu.fault(X86Vector.DIVIDE_ERROR, detail="quotient overflow")
        cpu.set_reg(0, i.width, quotient)
        if i.width == 4:
            cpu.regs[2] = dividend % value
        cpu.cycles += 20
    elif op == 7:                # idiv
        signed_value = to_signed(value, bits)
        if signed_value == 0:
            cpu.fault(X86Vector.DIVIDE_ERROR, detail="divide by zero")
        if i.width == 4:
            dividend = to_signed((cpu.regs[2] << 32) | cpu.regs[0], 64)
        else:
            dividend = to_signed(cpu.get_reg(0, i.width), bits)
        quotient = int(dividend / signed_value)
        if not -(1 << (bits - 1)) <= quotient < (1 << (bits - 1)):
            cpu.fault(X86Vector.DIVIDE_ERROR, detail="quotient overflow")
        cpu.set_reg(0, i.width, quotient & mask)
        if i.width == 4:
            cpu.regs[2] = (dividend - quotient * signed_value) & MASK32
        cpu.cycles += 20


def exec_imul_r_rm(cpu, i: Instr) -> None:
    if i.rm_reg >= 0:
        b = cpu.get_reg(i.rm_reg, i.width)
    else:
        b = cpu.load(cpu.ea(i), i.width, i.seg)
    product = to_signed(cpu.get_reg(i.reg, i.width), 32) * to_signed(b, 32)
    cpu.set_reg(i.reg, i.width, product & MASK32)
    cpu.cycles += 4


def exec_imul_rmi(cpu, i: Instr) -> None:
    """imul reg, r/m, imm (opcode 0x69 / 0x6B)."""
    if i.rm_reg >= 0:
        b = cpu.get_reg(i.rm_reg, i.width)
    else:
        b = cpu.load(cpu.ea(i), i.width, i.seg)
    product = to_signed(b, 32) * to_signed(i.imm, 32)
    cpu.set_reg(i.reg, i.width, product & MASK32)
    cpu.cycles += 4


# ---------------------------------------------------------------------------
# semantics: traps, system instructions, misc


def exec_nop(cpu, i: Instr) -> None:
    pass


def exec_clc(cpu, i: Instr) -> None:
    cpu.eflags &= ~FLAG_CF


def exec_stc(cpu, i: Instr) -> None:
    cpu.eflags |= FLAG_CF


def exec_cmc(cpu, i: Instr) -> None:
    cpu.eflags ^= FLAG_CF


def exec_ud2(cpu, i: Instr) -> None:
    cpu.fault(X86Vector.INVALID_OPCODE, detail="ud2a")


def exec_invalid(cpu, i: Instr) -> None:
    cpu.fault(X86Vector.INVALID_OPCODE,
              detail=f"undefined opcode {i.mnemonic}")


def exec_int(cpu, i: Instr) -> None:
    vector = i.imm & 0xFF
    if vector == X86Vector.SYSCALL:
        cpu.fault(X86Vector.SYSCALL, detail="int 0x80")
    if vector * 8 + 7 > cpu.idtr_limit:
        cpu.fault(X86Vector.GENERAL_PROTECTION,
                  detail=f"int {vector:#x} beyond IDT limit",
                  error_code=vector * 8 + 2)
    if vector == X86Vector.BREAKPOINT or vector == X86Vector.DEBUG:
        return
    # A stray software interrupt in kernel mode invokes a real handler
    # which normally returns; charge the round-trip cost.
    cpu.cycles += 120


def exec_int3(cpu, i: Instr) -> None:
    cpu.cycles += 60


def exec_into(cpu, i: Instr) -> None:
    if cpu.eflags & FLAG_OF:
        cpu.fault(X86Vector.OVERFLOW, detail="into with OF set")


def exec_iret(cpu, i: Instr) -> None:
    if cpu.eflags & FLAG_NT:
        # Nested-task return: the paper traces every Invalid TSS crash
        # to a corrupted NT bit in EFLAGS (Section 5.2).
        cpu.fault(X86Vector.INVALID_TSS,
                  detail="iret with NT set: back-link TSS invalid")
    new_eip = cpu.pop32()
    cpu.pop32()                      # cs (flat model: ignored)
    cpu.eflags = cpu.pop32()
    cpu.branch(new_eip)


def exec_hlt(cpu, i: Instr) -> None:
    cpu.check_privilege("hlt")
    cpu.halted = True


def exec_cli(cpu, i: Instr) -> None:
    cpu.check_privilege("cli")
    cpu.eflags &= ~0x200


def exec_sti(cpu, i: Instr) -> None:
    cpu.check_privilege("sti")
    cpu.eflags |= 0x200


def exec_bound(cpu, i: Instr) -> None:
    if i.rm_reg >= 0:
        cpu.fault(X86Vector.INVALID_OPCODE, detail="bound with register rm")
    addr = cpu.ea(i)
    lower = cpu.load(addr, 4, i.seg)
    upper = cpu.load((addr + 4) & MASK32, 4, i.seg)
    value = to_signed(cpu.regs[i.reg], 32)
    if value < to_signed(lower, 32) or value > to_signed(upper, 32):
        cpu.fault(X86Vector.BOUNDS, address=addr,
                  detail="bound range exceeded")


def exec_push_sreg(cpu, i: Instr) -> None:
    cpu.push32(cpu.get_sreg(i.reg))


def exec_pop_sreg(cpu, i: Instr) -> None:
    cpu.load_sreg(i.reg, cpu.pop32())


def exec_mov_sreg_rm(cpu, i: Instr) -> None:
    if i.rm_reg >= 0:
        selector = cpu.get_reg(i.rm_reg, 2)
    else:
        selector = cpu.load(cpu.ea(i), 2, i.seg)
    cpu.load_sreg(i.reg, selector)


def exec_mov_rm_sreg(cpu, i: Instr) -> None:
    value = cpu.get_sreg(i.reg)
    if i.rm_reg >= 0:
        cpu.set_reg(i.rm_reg, 4, value)
    else:
        cpu.store(cpu.ea(i), value, 2, i.seg)


def exec_mov_cr(cpu, i: Instr) -> None:
    cpu.check_privilege("mov cr")
    if i.op2 == 0:   # mov r32, crN
        cpu.regs[i.rm_reg if i.rm_reg >= 0 else 0] = cpu.get_cr(i.reg)
    else:            # mov crN, r32
        cpu.set_cr(i.reg, cpu.regs[i.rm_reg if i.rm_reg >= 0 else 0])


def exec_movs(cpu, i: Instr) -> None:
    """movsb/movsd, optionally rep-prefixed (op2=1)."""
    step = i.width
    count = 1
    if i.op2:
        count = cpu.regs[1]        # ecx
        cpu.regs[1] = 0
    for _ in range(count):
        value = cpu.load(cpu.regs[6], i.width, i.seg)
        cpu.store(cpu.regs[7], value, i.width, SEG_ES)
        cpu.regs[6] = (cpu.regs[6] + step) & MASK32
        cpu.regs[7] = (cpu.regs[7] + step) & MASK32
        cpu.cycles += 1


def exec_stos(cpu, i: Instr) -> None:
    step = i.width
    count = 1
    if i.op2:
        count = cpu.regs[1]
        cpu.regs[1] = 0
    value = cpu.get_reg(0, i.width)
    for _ in range(count):
        cpu.store(cpu.regs[7], value, i.width, SEG_ES)
        cpu.regs[7] = (cpu.regs[7] + step) & MASK32
        cpu.cycles += 1


def exec_setcc(cpu, i: Instr) -> None:
    value = 1 if _COND_CHECKS[i.op2](cpu.eflags) else 0
    if i.rm_reg >= 0:
        cpu.set_reg(i.rm_reg, 1, value)
    else:
        cpu.store(cpu.ea(i), value, 1, i.seg)


def exec_cmovcc(cpu, i: Instr) -> None:
    if not _COND_CHECKS[i.op2](cpu.eflags):
        return
    if i.rm_reg >= 0:
        value = cpu.get_reg(i.rm_reg, i.width)
    else:
        value = cpu.load(cpu.ea(i), i.width, i.seg)
    cpu.set_reg(i.reg, i.width, value)


def exec_bt(cpu, i: Instr) -> None:
    """bt/bts/btr/btc r/m32, r32 (op2: 0=bt 1=bts 2=btr 3=btc)."""
    bit = cpu.get_reg(i.reg, 4) & 31
    if i.rm_reg >= 0:
        value = cpu.get_reg(i.rm_reg, 4)
    else:
        addr = cpu.ea(i)
        value = cpu.load(addr, 4, i.seg)
    if value & (1 << bit):
        cpu.eflags |= FLAG_CF
    else:
        cpu.eflags &= ~FLAG_CF
    if i.op2 == 1:
        value |= 1 << bit
    elif i.op2 == 2:
        value &= ~(1 << bit)
    elif i.op2 == 3:
        value ^= 1 << bit
    if i.op2:
        if i.rm_reg >= 0:
            cpu.set_reg(i.rm_reg, 4, value)
        else:
            cpu.store(addr, value, 4, i.seg)


def exec_bsf(cpu, i: Instr) -> None:
    if i.rm_reg >= 0:
        value = cpu.get_reg(i.rm_reg, 4)
    else:
        value = cpu.load(cpu.ea(i), 4, i.seg)
    if value == 0:
        cpu.eflags |= FLAG_ZF
        return
    cpu.eflags &= ~FLAG_ZF
    index = (value & -value).bit_length() - 1
    cpu.set_reg(i.reg, 4, index)


def exec_bsr(cpu, i: Instr) -> None:
    if i.rm_reg >= 0:
        value = cpu.get_reg(i.rm_reg, 4)
    else:
        value = cpu.load(cpu.ea(i), 4, i.seg)
    if value == 0:
        cpu.eflags |= FLAG_ZF
        return
    cpu.eflags &= ~FLAG_ZF
    cpu.set_reg(i.reg, 4, value.bit_length() - 1)


def exec_shld(cpu, i: Instr) -> None:
    """shld/shrd r/m32, r32, imm8 (op2: 0=shld, 1=shrd)."""
    count = i.imm & 31
    if count == 0:
        return
    if i.rm_reg >= 0:
        value = cpu.get_reg(i.rm_reg, 4)
    else:
        addr = cpu.ea(i)
        value = cpu.load(addr, 4, i.seg)
    filler = cpu.get_reg(i.reg, 4)
    if i.op2 == 0:
        result = ((value << count) | (filler >> (32 - count))) & MASK32
    else:
        result = ((value >> count) | (filler << (32 - count))) & MASK32
    cpu.set_flags_logic(result, 4)
    if i.rm_reg >= 0:
        cpu.set_reg(i.rm_reg, 4, result)
    else:
        cpu.store(addr, result, 4, i.seg)


def exec_xadd(cpu, i: Instr) -> None:
    if i.rm_reg >= 0:
        old = cpu.get_reg(i.rm_reg, i.width)
        total = cpu.set_flags_add(old, cpu.get_reg(i.reg, i.width),
                                  i.width)
        cpu.set_reg(i.rm_reg, i.width, total)
    else:
        addr = cpu.ea(i)
        old = cpu.load(addr, i.width, i.seg)
        total = cpu.set_flags_add(old, cpu.get_reg(i.reg, i.width),
                                  i.width)
        cpu.store(addr, total, i.width, i.seg)
    cpu.set_reg(i.reg, i.width, old)


def exec_bt_imm(cpu, i: Instr) -> None:
    """grp8: bt/bts/btr/btc r/m32, imm8 (op2 selects the operation)."""
    bit = i.imm & 31
    if i.rm_reg >= 0:
        value = cpu.get_reg(i.rm_reg, 4)
    else:
        addr = cpu.ea(i)
        value = cpu.load(addr, 4, i.seg)
    if value & (1 << bit):
        cpu.eflags |= FLAG_CF
    else:
        cpu.eflags &= ~FLAG_CF
    if i.op2 == 1:
        value |= 1 << bit
    elif i.op2 == 2:
        value &= ~(1 << bit)
    elif i.op2 == 3:
        value ^= 1 << bit
    if i.op2:
        if i.rm_reg >= 0:
            cpu.set_reg(i.rm_reg, 4, value)
        else:
            cpu.store(addr, value, 4, i.seg)


def exec_cmpxchg(cpu, i: Instr) -> None:
    accumulator = cpu.get_reg(0, i.width)
    if i.rm_reg >= 0:
        value = cpu.get_reg(i.rm_reg, i.width)
    else:
        addr = cpu.ea(i)
        value = cpu.load(addr, i.width, i.seg)
    cpu.set_flags_sub(accumulator, value, i.width)
    if accumulator == value:
        replacement = cpu.get_reg(i.reg, i.width)
        if i.rm_reg >= 0:
            cpu.set_reg(i.rm_reg, i.width, replacement)
        else:
            cpu.store(addr, replacement, i.width, i.seg)
    else:
        cpu.set_reg(0, i.width, value)


# ---------------------------------------------------------------------------
# the decoder

MAX_INSN_LEN = 12


def decode(buf: bytes, addr: int = 0) -> Instr:
    """Decode one instruction from *buf* (>= MAX_INSN_LEN bytes).

    Never raises: undefined encodings produce an Instr that faults with
    #UD when executed, matching hardware behaviour.
    """
    pos = 0
    width = 4
    seg = SEG_DS
    # prefixes (at most 4 considered; more makes the insn undefined)
    for _ in range(4):
        byte = buf[pos]
        if byte == 0x66:
            width = 2
            pos += 1
        elif byte == 0x64:
            seg = SEG_FS
            pos += 1
        elif byte == 0x65:
            seg = SEG_GS
            pos += 1
        elif byte == 0x2E:
            seg = SEG_CS
            pos += 1
        elif byte == 0x36:
            seg = SEG_SS
            pos += 1
        elif byte == 0x3E:
            seg = SEG_DS
            pos += 1
        elif byte == 0x26:
            seg = SEG_ES
            pos += 1
        elif byte == 0xF0:          # lock: accepted and ignored
            pos += 1
        elif byte == 0xF2 or byte == 0xF3:
            return _decode_rep(buf, pos, width, seg)
        else:
            break
    return _decode_opcode(buf, pos, width, seg)


def _bad(pos_end: int, mnemonic: str = "(bad)") -> Instr:
    return Instr(mnemonic, max(pos_end, 1), 1, exec_invalid)


def _decode_rep(buf: bytes, pos: int, width: int, seg: int) -> Instr:
    pos += 1
    byte = buf[pos]
    if byte == 0xA4:
        return Instr("rep movsb", pos + 1, 2, exec_movs, width=1, seg=seg,
                     op2=1)
    if byte == 0xA5:
        return Instr("rep movsd", pos + 1, 2, exec_movs,
                     width=2 if width == 2 else 4, seg=seg, op2=1)
    if byte == 0xAA:
        return Instr("rep stosb", pos + 1, 2, exec_stos, width=1, seg=seg,
                     op2=1)
    if byte == 0xAB:
        return Instr("rep stosd", pos + 1, 2, exec_stos,
                     width=2 if width == 2 else 4, seg=seg, op2=1)
    if byte == 0x90:
        return Instr("pause", pos + 1, 1, exec_nop)
    return _bad(pos + 1)


def _with_modrm(buf: bytes, pos: int, mnemonic: str, execute, width: int,
                seg: int, op2: int = 0, imm_size: int = 0,
                imm_signed: bool = False, cycles: int = 1) -> Instr:
    modrm = _parse_modrm(buf, pos)
    end = pos + modrm.length
    imm = 0
    if imm_size:
        if imm_size == 1:
            imm = sign_extend(buf[end], 8) if imm_signed else buf[end]
        elif imm_size == 2:
            imm = _le16(buf, end)
        else:
            imm = _le32(buf, end)
        end += imm_size
    memory = modrm.rm_reg < 0
    return Instr(mnemonic, end, cycles + (2 if memory else 0), execute,
                 reg=modrm.reg, rm_reg=modrm.rm_reg, base=modrm.base,
                 index=modrm.index, scale=modrm.scale, disp=modrm.disp,
                 imm=imm, width=width, seg=seg, op2=op2)


def _decode_opcode(buf: bytes, pos: int, width: int, seg: int) -> Instr:
    opcode = buf[pos]
    pos += 1

    if opcode == 0x0F:
        return _decode_0f(buf, pos, width, seg)

    # -- the classic ALU block 0x00-0x3F --
    if opcode < 0x40:
        alu_op = opcode >> 3
        form = opcode & 7
        name = ALU_NAMES[alu_op]
        if form == 0:
            return _with_modrm(buf, pos, name, exec_alu_rm_r, 1, seg, alu_op)
        if form == 1:
            return _with_modrm(buf, pos, name, exec_alu_rm_r, width, seg,
                               alu_op)
        if form == 2:
            return _with_modrm(buf, pos, name, exec_alu_r_rm, 1, seg, alu_op)
        if form == 3:
            return _with_modrm(buf, pos, name, exec_alu_r_rm, width, seg,
                               alu_op)
        if form == 4:
            return Instr(name, pos + 1, 1, exec_alu_a_imm, imm=buf[pos],
                         width=1, op2=alu_op)
        if form == 5:
            if width == 2:
                return Instr(name, pos + 2, 1, exec_alu_a_imm,
                             imm=_le16(buf, pos), width=2, op2=alu_op)
            return Instr(name, pos + 4, 1, exec_alu_a_imm,
                         imm=_le32(buf, pos), width=4, op2=alu_op)
        # forms 6/7: legacy segment push/pop (0x06 push es, 0x07 pop es,
        # 0x0E push cs, 0x16/0x17, 0x1E/0x1F) and the BCD adjusters
        # (0x27 daa, 0x2F das, 0x37 aaa, 0x3F aas).  All valid on real
        # hardware, which matters for decode density under bit flips.
        if opcode in (0x06, 0x0E, 0x16, 0x1E):
            return Instr("push-sreg", pos, 2, exec_push_sreg,
                         reg=(0x00, 0x01, 0x02, 0x03)[opcode >> 3])
        if opcode in (0x07, 0x17, 0x1F):
            return Instr("pop-sreg", pos, 2, exec_pop_sreg,
                         reg=(0x00, None, 0x02, 0x03)[opcode >> 3])
        if opcode in (0x27, 0x2F, 0x37, 0x3F):
            return Instr(("daa", "das", "aaa", "aas")[(opcode >> 3) - 4],
                         pos, 1, exec_nop)
        return _bad(pos, f"(bad {opcode:#04x})")

    if opcode < 0x48:                                   # inc r32
        return Instr("inc", pos, 1, exec_inc_r, reg=opcode - 0x40)
    if opcode < 0x50:                                   # dec r32
        return Instr("dec", pos, 1, exec_dec_r, reg=opcode - 0x48)
    if opcode < 0x58:                                   # push r32
        return Instr("push", pos, 2, exec_push_r, reg=opcode - 0x50)
    if opcode < 0x60:                                   # pop r32
        return Instr("pop", pos, 2, exec_pop_r, reg=opcode - 0x58)

    if opcode == 0x62:
        return _with_modrm(buf, pos, "bound", exec_bound, 4, seg, cycles=3)
    if opcode == 0x68:
        return Instr("push", pos + 4, 2, exec_push_imm, imm=_le32(buf, pos))
    if opcode == 0x6A:
        return Instr("push", pos + 1, 2, exec_push_imm,
                     imm=sign_extend(buf[pos], 8))
    if opcode == 0x69:
        return _with_modrm(buf, pos, "imul", exec_imul_rmi, width, seg,
                           imm_size=4, cycles=4)
    if opcode == 0x6B:
        return _with_modrm(buf, pos, "imul", exec_imul_rmi, width, seg,
                           imm_size=1, imm_signed=True, cycles=4)

    if 0x70 <= opcode <= 0x7F:                          # jcc rel8
        return Instr("j" + COND_NAMES[opcode & 0xF], pos + 1, 1, exec_jcc,
                     imm=sign_extend(buf[pos], 8), op2=opcode & 0xF)

    if opcode == 0x80:
        return _with_modrm(buf, pos, "grp1b", exec_grp1_rm_imm, 1, seg,
                           op2=(buf[pos] >> 3) & 7, imm_size=1)
    if opcode == 0x81:
        return _with_modrm(buf, pos, "grp1", exec_grp1_rm_imm, width, seg,
                           op2=(buf[pos] >> 3) & 7,
                           imm_size=2 if width == 2 else 4)
    if opcode == 0x83:
        return _with_modrm(buf, pos, "grp1s", exec_grp1_rm_imm, width, seg,
                           op2=(buf[pos] >> 3) & 7, imm_size=1,
                           imm_signed=True)
    if opcode == 0x84:
        return _with_modrm(buf, pos, "test", exec_test_rm_r, 1, seg)
    if opcode == 0x85:
        return _with_modrm(buf, pos, "test", exec_test_rm_r, width, seg)
    if opcode == 0x86:
        return _with_modrm(buf, pos, "xchg", exec_xchg_r_rm, 1, seg)
    if opcode == 0x87:
        return _with_modrm(buf, pos, "xchg", exec_xchg_r_rm, width, seg)
    if opcode == 0x88:
        return _with_modrm(buf, pos, "mov", exec_mov_rm_r, 1, seg)
    if opcode == 0x89:
        return _with_modrm(buf, pos, "mov", exec_mov_rm_r, width, seg)
    if opcode == 0x8A:
        return _with_modrm(buf, pos, "mov", exec_mov_r_rm, 1, seg)
    if opcode == 0x8B:
        return _with_modrm(buf, pos, "mov", exec_mov_r_rm, width, seg)
    if opcode == 0x8C:
        return _with_modrm(buf, pos, "mov", exec_mov_rm_sreg, 2, seg)
    if opcode == 0x8D:
        return _with_modrm(buf, pos, "lea", exec_lea, 4, seg, cycles=1)
    if opcode == 0x8E:
        return _with_modrm(buf, pos, "mov", exec_mov_sreg_rm, 2, seg,
                           cycles=6)
    if opcode == 0x8F:
        return _with_modrm(buf, pos, "pop", exec_pop_rm, 4, seg, cycles=2)

    if opcode == 0x90:
        return Instr("nop", pos, 1, exec_nop)
    if 0x91 <= opcode <= 0x97:
        return Instr("xchg", pos, 2, exec_xchg_eax_r, reg=opcode - 0x90)
    if opcode == 0x98:
        return Instr("cwde", pos, 1, exec_cwde)
    if opcode == 0x99:
        return Instr("cdq", pos, 1, exec_cdq)
    if opcode == 0x9C:
        return Instr("pushfd", pos, 2, exec_pushfd)
    if opcode == 0x9D:
        return Instr("popfd", pos, 2, exec_popfd)

    if opcode == 0xA0:
        return Instr("mov", pos + 4, 3, exec_moffs_load,
                     disp=_le32(buf, pos), width=1, seg=seg)
    if opcode == 0xA1:
        return Instr("mov", pos + 4, 3, exec_moffs_load,
                     disp=_le32(buf, pos), width=width, seg=seg)
    if opcode == 0xA2:
        return Instr("mov", pos + 4, 2, exec_moffs_store,
                     disp=_le32(buf, pos), width=1, seg=seg)
    if opcode == 0xA3:
        return Instr("mov", pos + 4, 2, exec_moffs_store,
                     disp=_le32(buf, pos), width=width, seg=seg)
    if opcode == 0xA4:
        return Instr("movsb", pos, 2, exec_movs, width=1, seg=seg)
    if opcode == 0xA5:
        return Instr("movsd", pos, 2, exec_movs,
                     width=2 if width == 2 else 4, seg=seg)
    if opcode == 0xA8:
        return Instr("test", pos + 1, 1, exec_test_a_imm, imm=buf[pos],
                     width=1)
    if opcode == 0xA9:
        if width == 2:
            return Instr("test", pos + 2, 1, exec_test_a_imm,
                         imm=_le16(buf, pos), width=2)
        return Instr("test", pos + 4, 1, exec_test_a_imm,
                     imm=_le32(buf, pos), width=4)
    if opcode == 0xAA:
        return Instr("stosb", pos, 2, exec_stos, width=1, seg=seg)
    if opcode == 0xAB:
        return Instr("stosd", pos, 2, exec_stos,
                     width=2 if width == 2 else 4, seg=seg)

    if 0xB0 <= opcode <= 0xB7:                          # mov r8, imm8
        return Instr("mov", pos + 1, 1, exec_mov_r_imm, reg=opcode - 0xB0,
                     imm=buf[pos], width=1)
    if 0xB8 <= opcode <= 0xBF:                          # mov r32, imm32
        if width == 2:
            return Instr("mov", pos + 2, 1, exec_mov_r_imm,
                         reg=opcode - 0xB8, imm=_le16(buf, pos), width=2)
        return Instr("mov", pos + 4, 1, exec_mov_r_imm, reg=opcode - 0xB8,
                     imm=_le32(buf, pos), width=4)

    if opcode == 0xC0:
        return _with_modrm(buf, pos, "grp2b", exec_grp2, 1, seg,
                           op2=(buf[pos] >> 3) & 7, imm_size=1)
    if opcode == 0xC1:
        return _with_modrm(buf, pos, "grp2", exec_grp2, width, seg,
                           op2=(buf[pos] >> 3) & 7, imm_size=1)
    if opcode == 0xC2:
        return Instr("ret", pos + 2, 4, exec_ret, imm=_le16(buf, pos))
    if opcode == 0xC3:
        return Instr("ret", pos, 4, exec_ret)
    if opcode == 0xC6:
        return _with_modrm(buf, pos, "mov", exec_mov_rm_imm, 1, seg,
                           imm_size=1)
    if opcode == 0xC7:
        return _with_modrm(buf, pos, "mov", exec_mov_rm_imm, width, seg,
                           imm_size=2 if width == 2 else 4)
    if opcode == 0xC9:
        return Instr("leave", pos, 3, exec_leave)
    if opcode == 0xCC:
        return Instr("int3", pos, 2, exec_int3)
    if opcode == 0xCD:
        return Instr("int", pos + 1, 2, exec_int, imm=buf[pos])
    if opcode == 0xCE:
        return Instr("into", pos, 2, exec_into)
    if opcode == 0xCF:
        return Instr("iret", pos, 10, exec_iret)

    if opcode == 0xD1:
        return _with_modrm(buf, pos, "grp2", exec_grp2, width, seg,
                           op2=((buf[pos] >> 3) & 7) | (1 << 3))
    if opcode == 0xD3:
        return _with_modrm(buf, pos, "grp2", exec_grp2, width, seg,
                           op2=((buf[pos] >> 3) & 7) | (2 << 3))

    if opcode == 0xE8:
        return Instr("call", pos + 4, 4, exec_call_rel,
                     imm=_le32(buf, pos))
    if opcode == 0xE9:
        return Instr("jmp", pos + 4, 2, exec_jmp_rel, imm=_le32(buf, pos))
    if opcode == 0xEB:
        return Instr("jmp", pos + 1, 2, exec_jmp_rel,
                     imm=sign_extend(buf[pos], 8))

    if opcode == 0xF4:
        return Instr("hlt", pos, 1, exec_hlt)
    if opcode == 0xF5:
        return Instr("cmc", pos, 1, exec_cmc)
    if opcode == 0xF6:
        op2 = (buf[pos] >> 3) & 7
        return _with_modrm(buf, pos, "grp3b", exec_grp3, 1, seg, op2=op2,
                           imm_size=1 if op2 in (0, 1) else 0)
    if opcode == 0xF7:
        op2 = (buf[pos] >> 3) & 7
        return _with_modrm(buf, pos, "grp3", exec_grp3, width, seg, op2=op2,
                           imm_size=(2 if width == 2 else 4)
                           if op2 in (0, 1) else 0)
    if opcode == 0xF8:
        return Instr("clc", pos, 1, exec_clc)
    if opcode == 0xF9:
        return Instr("stc", pos, 1, exec_stc)
    if opcode == 0xFA:
        return Instr("cli", pos, 2, exec_cli)
    if opcode == 0xFB:
        return Instr("sti", pos, 2, exec_sti)
    if opcode == 0xFE:
        op2 = (buf[pos] >> 3) & 7
        if op2 in (0, 1):
            return _with_modrm(buf, pos, "grp5b", exec_grp5, 1, seg, op2=op2)
        return _bad(pos + 1)
    if opcode == 0xFF:
        return _with_modrm(buf, pos, "grp5", exec_grp5, width, seg,
                           op2=(buf[pos] >> 3) & 7, cycles=2)

    if opcode == 0x0F:
        return _decode_0f(buf, pos, width, seg)

    return _bad(pos, f"(bad {opcode:#04x})")


def _decode_0f(buf: bytes, pos: int, width: int, seg: int) -> Instr:
    opcode = buf[pos]
    pos += 1
    if opcode == 0x0B:
        return Instr("ud2a", pos, 1, exec_ud2)
    if 0x80 <= opcode <= 0x8F:
        return Instr("j" + COND_NAMES[opcode & 0xF], pos + 4, 1, exec_jcc,
                     imm=_le32(buf, pos), op2=opcode & 0xF)
    if 0x90 <= opcode <= 0x9F:
        return _with_modrm(buf, pos, "set" + COND_NAMES[opcode & 0xF],
                           exec_setcc, 1, seg, op2=opcode & 0xF)
    if 0x40 <= opcode <= 0x4F:
        return _with_modrm(buf, pos, "cmov" + COND_NAMES[opcode & 0xF],
                           exec_cmovcc, width, seg, op2=opcode & 0xF)
    if opcode == 0xA3:
        return _with_modrm(buf, pos, "bt", exec_bt, 4, seg, op2=0)
    if opcode == 0xAB:
        return _with_modrm(buf, pos, "bts", exec_bt, 4, seg, op2=1)
    if opcode == 0xB3:
        return _with_modrm(buf, pos, "btr", exec_bt, 4, seg, op2=2)
    if opcode == 0xBB:
        return _with_modrm(buf, pos, "btc", exec_bt, 4, seg, op2=3)
    if opcode == 0xBA:
        # grp8: bt/bts/btr/btc r/m32, imm8 — model as bt-with-reg by
        # loading the immediate into the reg slot via op2 encoding
        modrm_op = (buf[pos] >> 3) & 7
        if modrm_op < 4:
            return _bad(pos + 1)
        return _with_modrm(buf, pos, ("bt", "bts", "btr", "btc")
                           [modrm_op - 4], exec_bt_imm, 4, seg,
                           op2=modrm_op - 4, imm_size=1)
    if opcode == 0xBC:
        return _with_modrm(buf, pos, "bsf", exec_bsf, 4, seg)
    if opcode == 0xBD:
        return _with_modrm(buf, pos, "bsr", exec_bsr, 4, seg)
    if opcode == 0xA4:
        return _with_modrm(buf, pos, "shld", exec_shld, 4, seg, op2=0,
                           imm_size=1)
    if opcode == 0xAC:
        return _with_modrm(buf, pos, "shrd", exec_shld, 4, seg, op2=1,
                           imm_size=1)
    if opcode == 0xC0:
        return _with_modrm(buf, pos, "xadd", exec_xadd, 1, seg)
    if opcode == 0xC1:
        return _with_modrm(buf, pos, "xadd", exec_xadd, width, seg)
    if opcode == 0xB0:
        return _with_modrm(buf, pos, "cmpxchg", exec_cmpxchg, 1, seg)
    if opcode == 0xB1:
        return _with_modrm(buf, pos, "cmpxchg", exec_cmpxchg, width, seg)
    if opcode == 0xAF:
        return _with_modrm(buf, pos, "imul", exec_imul_r_rm, width, seg,
                           cycles=4)
    if opcode == 0xB6:
        return _with_modrm(buf, pos, "movzx", exec_movzx, 4, seg, op2=1)
    if opcode == 0xB7:
        return _with_modrm(buf, pos, "movzx", exec_movzx, 4, seg, op2=2)
    if opcode == 0xBE:
        return _with_modrm(buf, pos, "movsx", exec_movsx, 4, seg, op2=1)
    if opcode == 0xBF:
        return _with_modrm(buf, pos, "movsx", exec_movsx, 4, seg, op2=2)
    if opcode == 0x20:
        return _with_modrm(buf, pos, "mov", exec_mov_cr, 4, seg, op2=0,
                           cycles=10)
    if opcode == 0x22:
        return _with_modrm(buf, pos, "mov", exec_mov_cr, 4, seg, op2=1,
                           cycles=10)
    if opcode == 0x09:
        return Instr("wbinvd", pos, 50, exec_nop)
    if opcode == 0x31:
        return Instr("rdtsc", pos, 10, exec_nop)
    return _bad(pos, f"(bad 0f {opcode:#04x})")
