"""P4-like IA-32 simulator.

This package models the architectural features of the Intel Pentium 4
that the paper holds responsible for its error-sensitivity profile:

* variable-length instruction encodings (1-8 bytes in our subset), so a
  single bit flip can re-synchronize the instruction stream into a
  different sequence of valid-but-wrong instructions (paper Figure 14);
* a small register file (8 GPRs), forcing compilers to keep locals on
  the stack and producing dense 8/16/32-bit memory traffic;
* the IA-32 exception model: #DE, #BR, #UD, #GP, #PF, #TS — the crash
  cause categories of the paper's Table 3;
* no architectural stack-overflow detection: a corrupted stack pointer
  silently propagates until some dereference faults (paper Section 5.1).
"""

from repro.x86.cpu import X86CPU
from repro.x86.exceptions import X86Fault, X86Vector
from repro.x86.registers import (
    EAX, EBP, EBX, ECX, EDI, EDX, ESI, ESP,
    GPR_NAMES, SEGMENT_NAMES,
)
from repro.x86.assembler import X86Assembler
from repro.x86.disasm import disassemble, disassemble_range

__all__ = [
    "X86CPU", "X86Fault", "X86Vector", "X86Assembler",
    "disassemble", "disassemble_range",
    "EAX", "ECX", "EDX", "EBX", "ESP", "EBP", "ESI", "EDI",
    "GPR_NAMES", "SEGMENT_NAMES",
]
