"""The P4-like CPU core: fetch/decode/execute with a decode cache.

The core is deliberately always-in-kernel-mode (the paper injects only
into kernel state; the workload driver calls into simulated kernel code
directly).  A ``user_mode`` flag exists so privileged-instruction
semantics remain testable.

Architectural choices that matter to the study:

* **decode cache** — decoded instructions are cached per address, like
  the P4's trace cache; any write to the text region (including an
  injected bit flip) flushes it, so corrupted bytes are re-decoded and
  the stream re-synchronizes.
* **no stack-overflow detection** — ``push``/``pop`` only fail when the
  memory system faults; a corrupted ESP silently walks out of the task
  stack (paper Section 5.1).
* **segment registers hold raw selectors** — validity is only checked
  when a selector is *loaded* or *used*, so an injected FS/GS bit flip
  stays latent until the next context-switch reload (the paper's
  longest observed latencies, >1G cycles).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.isa.bits import MASK32, mask_for_width
from repro.isa.debug import DebugUnit
from repro.isa.faults import AccessKind, MemoryFault
from repro.isa.memory import AddressSpace, PhysicalMemory
from repro.x86 import decoder
from repro.x86.exceptions import X86Fault, X86Vector
from repro.x86.insn import Instr
from repro.x86.registers import (
    CR0_PE, CR0_PG, CR0_WP, FLAG_CF, FLAG_IF, FLAG_OF, FLAG_SF, FLAG_ZF, GPR_NAMES, SEG_CS, SEG_DS, SEG_FS, SEG_GS, SEG_SS, VALID_SELECTORS,
)

_ARITH_FLAGS = FLAG_CF | FLAG_ZF | FLAG_SF | FLAG_OF | 0x14  # + PF, AF


class X86CPU:
    """A 32-bit P4-flavoured processor core."""

    #: Parity-ish clock: the paper's P4 runs at 1.5 GHz.
    CLOCK_HZ = 1_500_000_000
    LITTLE_ENDIAN = True
    NAME = "P4"

    def __init__(self, memory: Optional[PhysicalMemory] = None,
                 aspace: Optional[AddressSpace] = None,
                 debug: Optional[DebugUnit] = None) -> None:
        self.mem = memory if memory is not None else PhysicalMemory()
        self.aspace = aspace if aspace is not None else \
            AddressSpace(self.mem)
        self.debug = debug if debug is not None else DebugUnit(4, 4)

        self.regs = [0] * 8
        self.eip = 0
        self.current_eip = 0
        self.eflags = FLAG_IF | 0x2
        self.sregs = [0x18, 0x10, 0x18, 0x18, 0x00, 0x00]

        self.cr0 = CR0_PE | CR0_PG | CR0_WP
        self.cr2 = 0
        self.cr3 = 0x00101000
        self.cr4 = 0x0
        self._cr3_valid = self.cr3
        self.dr0 = self.dr1 = self.dr2 = self.dr3 = 0
        self.dr6 = self.dr7 = 0
        self.gdtr_base, self.gdtr_limit = 0xC0090000, 0xFF
        self.idtr_base, self.idtr_limit = 0xC0091000, 0x7FF
        self.ldtr = 0x0
        self.tr = 0x80

        self.cycles = 0
        self.instret = 0
        self.halted = False
        self.user_mode = False

        # Flight-recorder hook (repro.trace.recorder.TraceRecorder).
        # None when tracing is disabled: every emission site below
        # guards on this one attribute, so the disabled hot path pays
        # a single flag test and nothing else.  An armed recorder only
        # reads state — simulated cycles/instret/RNG are untouched.
        self.tracer = None

        self._icache: Dict[int, Instr] = {}
        # Warm tier: decoded instructions inherited from a fork parent
        # (or demoted by a code write).  A warm entry's decode is valid
        # — it was produced from the same bytes this machine sees — but
        # the fetch permission check has not run on *this* machine yet,
        # so the first fetch revalidates exactly like a decode miss
        # before promoting the entry to ``_icache``.  The dict may be
        # shared by reference with a fork relative (``_warm_owned``
        # False): it is then copied before the first mutation, so
        # inheriting a warm cache costs O(1), not O(entries).
        self._icache_warm: Dict[int, Instr] = {}
        self._warm_owned = True
        # bumped whenever either cache tier changes; guards the frozen
        # merged snapshot handed to fork children
        self._icache_version = 0
        self._snapshot: Optional[Dict[int, Instr]] = None
        self._snapshot_version = -1
        # compiled-block cache (attached by Machine in block exec mode);
        # None means the step core runs alone
        self._block_cache = None

    # ------------------------------------------------------------------
    # register access helpers

    def get_reg(self, reg: int, width: int) -> int:
        if width == 4:
            return self.regs[reg]
        if width == 2:
            return self.regs[reg] & 0xFFFF
        if reg < 4:                         # al, cl, dl, bl
            return self.regs[reg] & 0xFF
        return (self.regs[reg - 4] >> 8) & 0xFF   # ah, ch, dh, bh

    def set_reg(self, reg: int, width: int, value: int) -> None:
        if width == 4:
            self.regs[reg] = value & MASK32
        elif width == 2:
            self.regs[reg] = (self.regs[reg] & 0xFFFF0000) | (value & 0xFFFF)
        elif reg < 4:
            self.regs[reg] = (self.regs[reg] & 0xFFFFFF00) | (value & 0xFF)
        else:
            self.regs[reg - 4] = (self.regs[reg - 4] & 0xFFFF00FF) | \
                ((value & 0xFF) << 8)

    @property
    def esp_alias(self) -> int:
        """ESP exposed as a system-register injection target."""
        return self.regs[4]

    @esp_alias.setter
    def esp_alias(self, value: int) -> None:
        self.regs[4] = value & MASK32

    @property
    def fs(self) -> int:
        return self.sregs[SEG_FS]

    @fs.setter
    def fs(self, value: int) -> None:
        self.sregs[SEG_FS] = value & 0xFFFF

    @property
    def gs(self) -> int:
        return self.sregs[SEG_GS]

    @gs.setter
    def gs(self, value: int) -> None:
        self.sregs[SEG_GS] = value & 0xFFFF

    def get_sreg(self, index: int) -> int:
        return self.sregs[index]

    def load_sreg(self, index: int, selector: int) -> None:
        """Load a segment register, validating the selector.

        Loading an invalid selector raises #GP; a null selector is legal
        in FS/GS (it faults later, on use).
        """
        selector &= 0xFFFF
        if self.cr0 & CR0_PE == 0:
            self.fault(X86Vector.GENERAL_PROTECTION,
                       detail="segment load with protection disabled")
        if selector not in VALID_SELECTORS:
            self.fault(X86Vector.GENERAL_PROTECTION,
                       detail=f"invalid selector {selector:#06x}",
                       error_code=selector & 0xFFFC)
        if selector == 0 and index in (SEG_CS, SEG_SS):
            self.fault(X86Vector.GENERAL_PROTECTION,
                       detail="null selector into CS/SS")
        self.sregs[index] = selector
        self.cycles += 6

    def get_cr(self, index: int) -> int:
        return getattr(self, f"cr{index}", 0)

    def set_cr(self, index: int, value: int) -> None:
        value &= MASK32
        if index == 0:
            self.cr0 = value
            if not value & CR0_PG:
                self.aspace.translation_on = False
        elif index == 3:
            self.cr3 = value
            if value != self._cr3_valid:
                # A wrong page-directory base makes every kernel-high
                # translation garbage.
                self.aspace.translation_on = False
        elif index in (2, 4):
            setattr(self, f"cr{index}", value)
        # undefined control registers absorb writes silently

    # ------------------------------------------------------------------
    # memory access

    def seg_base(self, seg: int) -> int:
        """Flat model: every usable segment has base 0.

        Using FS/GS with an invalid selector faults here — the paper's
        General Protection crashes from corrupted FS/GS.
        """
        if seg in (SEG_FS, SEG_GS):
            selector = self.sregs[seg]
            if selector == 0 or selector not in VALID_SELECTORS:
                self.fault(X86Vector.GENERAL_PROTECTION,
                           detail=f"use of unusable segment "
                                  f"{('es','cs','ss','ds','fs','gs')[seg]}"
                                  f"={selector:#06x}",
                           error_code=selector & 0xFFFC)
        return 0

    def _memfault(self, mf: MemoryFault) -> None:
        if mf.reason is MemoryFault.Reason.PROTECTION:
            # Table 3: "writing to a read-only code or data segment" is
            # a General Protection Fault.
            raise X86Fault(X86Vector.GENERAL_PROTECTION, mf.address,
                           mf.detail) from None
        self.cr2 = mf.address & MASK32
        raise X86Fault(X86Vector.PAGE_FAULT, mf.address,
                       mf.detail,
                       error_code=2 if mf.kind is AccessKind.WRITE else 0
                       ) from None

    def load(self, addr: int, width: int, seg: int = SEG_DS) -> int:
        addr = (addr + self.seg_base(seg)) & MASK32
        try:
            self.aspace.check(addr, width, AccessKind.READ)
        except MemoryFault as mf:
            self._memfault(mf)
        if width == 4:
            value = self.mem.read_u32(addr, True)
        elif width == 2:
            value = self.mem.read_u16(addr, True)
        else:
            value = self.mem.read_u8(addr)
        self.cycles += 2
        if self.tracer is not None:
            self.tracer.on_load(self, addr, width, value)
        if self.debug._watchpoints:
            self.debug.check_access(addr, width, AccessKind.READ,
                                    self.cycles)
        return value

    def store(self, addr: int, value: int, width: int,
              seg: int = SEG_DS) -> None:
        addr = (addr + self.seg_base(seg)) & MASK32
        try:
            self.aspace.check(addr, width, AccessKind.WRITE)
        except MemoryFault as mf:
            self._memfault(mf)
        if width == 4:
            self.mem.write_u32(addr, value, True)
        elif width == 2:
            self.mem.write_u16(addr, value, True)
        else:
            self.mem.write_u8(addr, value)
        self.cycles += 2
        if self.tracer is not None:
            self.tracer.on_store(self, addr, width, value)
        if self.debug._watchpoints:
            self.debug.check_access(addr, width, AccessKind.WRITE,
                                    self.cycles)

    def push32(self, value: int) -> None:
        self.regs[4] = (self.regs[4] - 4) & MASK32
        self.store(self.regs[4], value, 4, SEG_SS)

    def pop32(self) -> int:
        value = self.load(self.regs[4], 4, SEG_SS)
        self.regs[4] = (self.regs[4] + 4) & MASK32
        return value

    # ------------------------------------------------------------------
    # flags

    def set_flags_add(self, a: int, b: int, width: int) -> int:
        mask = mask_for_width(width)
        bits = width * 8
        a &= mask
        b &= mask
        total = a + b
        result = total & mask
        flags = self.eflags & ~_ARITH_FLAGS
        if total > mask:
            flags |= FLAG_CF
        if result == 0:
            flags |= FLAG_ZF
        if result & (1 << (bits - 1)):
            flags |= FLAG_SF
        if (~(a ^ b) & (a ^ result)) & (1 << (bits - 1)):
            flags |= FLAG_OF
        self.eflags = flags
        return result

    def set_flags_sub(self, a: int, b: int, width: int) -> int:
        mask = mask_for_width(width)
        bits = width * 8
        a &= mask
        b &= mask
        result = (a - b) & mask
        flags = self.eflags & ~_ARITH_FLAGS
        if a < b:
            flags |= FLAG_CF
        if result == 0:
            flags |= FLAG_ZF
        if result & (1 << (bits - 1)):
            flags |= FLAG_SF
        if ((a ^ b) & (a ^ result)) & (1 << (bits - 1)):
            flags |= FLAG_OF
        self.eflags = flags
        return result

    def set_flags_logic(self, result: int, width: int) -> None:
        mask = mask_for_width(width)
        result &= mask
        flags = self.eflags & ~_ARITH_FLAGS
        if result == 0:
            flags |= FLAG_ZF
        if result & (1 << (width * 8 - 1)):
            flags |= FLAG_SF
        self.eflags = flags

    def set_flags_incdec(self, result: int, overflow: bool) -> None:
        flags = self.eflags & ~(FLAG_ZF | FLAG_SF | FLAG_OF)
        if result == 0:
            flags |= FLAG_ZF
        if result & 0x80000000:
            flags |= FLAG_SF
        if overflow:
            flags |= FLAG_OF
        self.eflags = flags

    # ------------------------------------------------------------------
    # control

    def branch(self, target: int) -> None:
        self.eip = target & MASK32
        self.cycles += 2

    def fault(self, vector: X86Vector, address: Optional[int] = None,
              detail: str = "", error_code: int = 0) -> None:
        raise X86Fault(vector, address, detail, error_code)

    def check_privilege(self, what: str) -> None:
        if self.user_mode:
            self.fault(X86Vector.GENERAL_PROTECTION,
                       detail=f"privileged instruction in user mode: {what}")

    # ------------------------------------------------------------------
    # decode cache + step

    def flush_icache(self) -> None:
        """Invalidate the decode cache (called after any code write)."""
        self._icache.clear()
        self._icache_warm = {}
        self._warm_owned = True
        self._icache_version += 1
        if self._block_cache is not None:
            self._block_cache.flush()

    def _own_warm(self) -> Dict[int, Instr]:
        if not self._warm_owned:
            self._icache_warm = dict(self._icache_warm)
            self._warm_owned = True
        return self._icache_warm

    def invalidate_icache(self, addr: int, size: int = 1) -> None:
        """Evict decodes a write to ``[addr, addr+size)`` could corrupt.

        Variable-length encoding means any cached instruction starting
        up to ``MAX_INSN_LEN - 1`` bytes before *addr* may span the
        written bytes; those entries are dropped from both tiers.  The
        survivors are demoted to the warm tier so their next fetch
        re-runs the permission check — exactly what the full flush this
        replaces forced — while keeping their (still valid) decodes.
        """
        warm = self._own_warm()
        for start in range(addr - decoder.MAX_INSN_LEN + 1, addr + size):
            self._icache.pop(start & MASK32, None)
            warm.pop(start & MASK32, None)
        if self._icache:
            warm.update(self._icache)
            self._icache.clear()
        self._icache_version += 1
        if self._block_cache is not None:
            self._block_cache.invalidate(addr, size)

    def icache_snapshot(self) -> Dict[int, Instr]:
        """A frozen warm-tier image for a fork child (never mutated).

        Rebuilt only when a cache tier changed since the last fork, so
        forking many clones from one static base — the campaign
        pattern — pays the merge once.
        """
        if self._snapshot is None or \
                self._snapshot_version != self._icache_version:
            merged = dict(self._icache_warm)
            merged.update(self._icache)
            self._snapshot = merged
            self._snapshot_version = self._icache_version
        return self._snapshot

    def inherit_icache(self, src: "X86CPU") -> None:
        """Adopt *src*'s decoded instructions as this core's warm tier.

        Only valid when both memories hold identical bytes (a fork
        instant): decode is a pure function of the bytes, and both
        caches are invalidated on text writes, so the inherited decodes
        can never go stale.  Every entry still revalidates its fetch
        check on first use here, so a clone behaves bit-for-bit like a
        cold core that decoded everything itself.  The snapshot dict is
        shared by reference and copied only if this core ever needs to
        mutate it (a text write).
        """
        self._icache.clear()
        self._icache_warm = src.icache_snapshot()
        self._warm_owned = False
        self._icache_version += 1

    def _validate_fetch(self, addr: int, length: int) -> None:
        try:
            self.aspace.check(addr, length, AccessKind.FETCH)
        except MemoryFault as mf:
            if mf.reason is MemoryFault.Reason.PROTECTION:
                raise X86Fault(X86Vector.GENERAL_PROTECTION, mf.address,
                               "fetch from non-executable region") from None
            self.cr2 = mf.address & MASK32
            raise X86Fault(X86Vector.PAGE_FAULT, mf.address,
                           "instruction fetch page fault",
                           error_code=0x10) from None

    def decode_at(self, addr: int) -> Instr:
        raw = self.mem.read(addr, decoder.MAX_INSN_LEN)
        instr = decoder.decode(raw, addr)
        self._validate_fetch(addr, instr.length)
        return instr

    def step(self) -> None:
        """Execute one instruction (or raise an :class:`X86Fault`)."""
        if self.halted:
            self.cycles += 1
            return
        eip = self.eip
        self.current_eip = eip
        if self.tracer is not None:
            self.tracer.on_fetch(self, eip)
        if self.debug._insn_bps:
            self.debug.check_fetch(eip, self.cycles)
        instr = self._icache.get(eip)
        if instr is None:
            # No pop: the warm dict may be shared with fork relatives.
            # ``_icache`` is consulted first, so the duplicate is inert.
            instr = self._icache_warm.get(eip)
            if instr is not None:
                self._validate_fetch(eip, instr.length)
            else:
                instr = self.decode_at(eip)
            self._icache[eip] = instr
            self._icache_version += 1
        self.eip = (eip + instr.length) & MASK32
        instr.execute(self, instr)
        self.cycles += instr.cycles
        self.instret += 1

    # ------------------------------------------------------------------
    # effective address (used by instruction semantics)

    def ea(self, i: Instr) -> int:
        addr = i.disp
        if i.base >= 0:
            addr += self.regs[i.base]
        if i.index >= 0:
            addr += self.regs[i.index] * i.scale
        return addr & MASK32

    # ------------------------------------------------------------------
    # diagnostics

    def snapshot(self) -> Dict[str, int]:
        """Register state for crash dumps."""
        state = {name: self.regs[index]
                 for index, name in enumerate(GPR_NAMES)}
        state["eip"] = self.current_eip
        state["eflags"] = self.eflags
        state["cr0"] = self.cr0
        state["cr2"] = self.cr2
        state["fs"] = self.sregs[SEG_FS]
        state["gs"] = self.sregs[SEG_GS]
        return state
